//! The ABADD walkthrough of Figs. 16 and 18: microarchitecture capture,
//! hierarchical compilation (the register compiler calling the mux
//! compiler), and bottom-up logic optimization with mux+FF merging.
//!
//! ```text
//! cargo run --example abadd
//! ```

use milo::circuits::abadd;
use milo_compilers::expand_micro_components;
use milo_netlist::DesignDb;
use milo_opt::optimize_bottom_up;
use milo_techmap::{ecl_library, map_netlist};
use milo_timing::statistics;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut top = abadd();
    println!(
        "ABADD entry (Fig. 16): {} microarchitecture components",
        top.component_count()
    );

    // Fig. 16: the logic compilers expand ADD4, MUX2:1:4 and REG4;
    // the register compiler calls the multiplexor compiler (MUX4:1:1).
    let mut db = DesignDb::new();
    expand_micro_components(&mut top, &mut db)?;
    let mut names: Vec<&str> = db.names().collect();
    names.sort();
    println!("compiled designs in the database: {names:?}");
    assert!(db.contains("ADD4"));
    assert!(db.contains("MUX2:1:4"));
    assert!(db.contains("MUX4:1:1"), "nested compiler call of Fig. 16");

    let top_name = db.insert(top);
    let direct = map_netlist(&db.flatten(&top_name)?, &ecl_library())?;
    let direct_stats = statistics(&direct)?;

    // Fig. 18: bottom-up optimization, merging mux+FF pairs.
    let (optimized, levels) = optimize_bottom_up(&top_name, &mut db, &ecl_library())?;
    let opt_stats = statistics(&optimized)?;

    println!("\nper-level optimization (Fig. 18):");
    for l in &levels {
        println!(
            "  {:>10}: area {:>6.2} -> {:>6.2} ({} rules)",
            l.design, l.before.area, l.after.area, l.fired
        );
    }
    println!("\ndirect-mapped area: {:.2}", direct_stats.area);
    println!("optimized area:     {:.2}", opt_stats.area);
    assert!(opt_stats.area < direct_stats.area);
    Ok(())
}
