//! Comparing MILO's rule-assisted flow with the DAGON-style
//! "algorithms only" baseline (§2.2.3) on random logic.
//!
//! ```text
//! cargo run --release --example dagon_compare
//! ```

use milo::circuits::random_logic;
use milo_techmap::{cmos_library, dagon_map, map_netlist, Objective};
use milo_timing::statistics;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = cmos_library();
    println!("gate circuit mapped three ways (CMOS standard cells):\n");
    println!(
        "{:>6}  {:>14} {:>14} {:>14}",
        "gates", "lookup area", "dagon(area)", "dagon(delay)"
    );
    for gates in [50usize, 100, 200] {
        let nl = random_logic(gates, 10, 0xDA60 + gates as u64);
        let direct = map_netlist(&nl, &lib)?;
        let d_area = dagon_map(&nl, &lib, Objective::Area)?;
        let d_delay = dagon_map(&nl, &lib, Objective::Delay)?;
        let s1 = statistics(&direct)?;
        let s2 = statistics(&d_area)?;
        let s3 = statistics(&d_delay)?;
        println!(
            "{gates:>6}  {:>8.1} cells {:>8.1} cells {:>8.1} cells ({:.2} ns vs {:.2} ns)",
            s1.area, s2.area, s3.area, s3.delay, s2.delay
        );
    }
    println!("\nDAGON's dynamic-programming tree covering finds complex-cell covers (AOI)");
    println!("the one-to-one lookup mapper cannot, at the cost of considering every");
    println!("pattern at every node — the paper's \"algorithms only\" strategy (§2.2.3).");
    Ok(())
}
