//! Quickstart: parse a textual netlist, run the MILO flow with a
//! progress observer, and print the before/after statistics.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use milo::{parse_netlist, Constraints, FlowEvent, Milo};
use milo_techmap::ecl_library;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small control block, entered the way a schematic designer would:
    // literal two-level logic with some redundancy.
    let source = "
design quickstart
input a b c sel
output f g
# f = (a & b) | (a & !b) | (b & c)   -- reduces to a | (b & c)
comp inv   n1 A0=b Y=nb
comp and2  t1 A0=a  A1=b  Y=p1
comp and2  t2 A0=a  A1=nb Y=p2
comp and2  t3 A0=b  A1=c  Y=p3
comp or3   o1 A0=p1 A1=p2 A2=p3 Y=f
# g: a 2:1 mux built from gates
comp inv   n2 A0=sel Y=nsel
comp and2  m1 A0=a A1=nsel Y=q1
comp and2  m2 A0=c A1=sel  Y=q2
comp or2   m3 A0=q1 A1=q2  Y=g
";
    let netlist = parse_netlist(source)?;
    println!(
        "Parsed `{}`: {} components, {} nets",
        netlist.name,
        netlist.component_count(),
        netlist.net_count()
    );

    let mut milo = Milo::new(ecl_library());
    // Hold the baseline delay while minimizing area and power.
    let baseline = milo.elaborate_unoptimized(&netlist)?;
    let baseline_delay = milo_timing::statistics(&baseline)?.delay;

    // The default paper flow, observed pass by pass.
    let mut flow = milo.flow();
    flow.observe(|event| {
        if let FlowEvent::PassFinished { report, .. } = event {
            println!(
                "  pass {:<16} {:>8.1} µs  ({} applied{})",
                report.name,
                report.wall.as_nanos() as f64 / 1000.0,
                report.rules_applied,
                if report.note.is_empty() {
                    String::new()
                } else {
                    format!("; {}", report.note)
                }
            );
        }
    });
    println!("\nrunning the default flow:");
    let out = flow.run(
        &mut milo,
        &netlist,
        &Constraints::none().with_max_delay(baseline_delay),
    )?;
    let result = out.result;

    println!("\n             baseline    MILO");
    println!(
        "delay (ns)   {:>8.2}  {:>8.2}   ({:.0} % better)",
        result.baseline.delay,
        result.stats.delay,
        result.delay_improvement_pct()
    );
    println!(
        "area (cells) {:>8.2}  {:>8.2}   ({:.0} % better)",
        result.baseline.area,
        result.stats.area,
        result.area_improvement_pct()
    );
    println!(
        "power (mA)   {:>8.2}  {:>8.2}",
        result.baseline.power, result.stats.power
    );
    println!(
        "cells        {:>8}  {:>8}",
        result.baseline.cells, result.stats.cells
    );
    println!(
        "\ntiming strategies applied: {}",
        result.timing.applied.len()
    );
    for firing in &result.timing.applied {
        println!(
            "  {} at {:?}: {:.2} -> {:.2} ns",
            firing.strategy.label(),
            firing.site,
            firing.before,
            firing.after
        );
    }
    assert!(result.stats.area <= result.baseline.area);
    assert_eq!(out.report.passes.len(), 5);
    Ok(())
}
