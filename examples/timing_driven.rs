//! Constraint-driven synthesis: the same 8-bit adder datapath under a
//! loose and a tight timing constraint. The tight run makes the
//! microarchitecture critic swap the ripple adder for carry-lookahead
//! (the Fig. 16 tradeoff), buying speed with area. The tight run goes
//! through a customized flow — a skip predicate drops the electric
//! critic's first pass when no fanout work is possible — to show the
//! pass-level control the Flow API adds.
//!
//! ```text
//! cargo run --example timing_driven
//! ```

use milo::circuits::datapath;
use milo_core::{Constraints, Milo};
use milo_techmap::ecl_library;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let entry = datapath(8);
    let mut milo = Milo::new(ecl_library());

    let loose = milo.synthesize(&entry, &Constraints::none())?;
    println!(
        "unconstrained: delay {:.2} ns, area {:.1}",
        loose.stats.delay, loose.stats.area
    );

    let target = loose.stats.delay * 0.75;
    let mut flow = milo.flow();
    // Skip the dedicated fanout pass on small designs — the driver's
    // final electric check still repairs any violations.
    flow.skip_when("fanout-repair", |ctx| ctx.work.component_count() < 256);
    let out = flow.run(
        &mut milo,
        &entry,
        &Constraints::none().with_max_delay(target),
    )?;
    let tight = &out.result;
    let critic = tight.critic.as_ref().expect("micro entry");
    println!(
        "constrained to {target:.2} ns: delay {:.2} ns, area {:.1} ({} CLA upgrades)",
        tight.stats.delay, tight.stats.area, critic.cla_upgrades
    );
    println!("timing met: {:?}", critic.met_timing);
    println!("\nper-pass wall time:");
    for pass in &out.report.passes {
        println!(
            "  {:<16} {:>8.1} µs{}",
            pass.name,
            pass.wall.as_nanos() as f64 / 1000.0,
            if pass.skipped { "  (skipped)" } else { "" }
        );
    }
    assert!(tight.stats.delay < loose.stats.delay);
    assert!(
        tight.stats.area > loose.stats.area,
        "speed was bought with area"
    );
    assert_eq!(critic.met_timing, Some(true));
    Ok(())
}
