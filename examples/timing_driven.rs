//! Constraint-driven synthesis: the same 8-bit adder datapath under a
//! loose and a tight timing constraint. The tight run makes the
//! microarchitecture critic swap the ripple adder for carry-lookahead
//! (the Fig. 16 tradeoff), buying speed with area.
//!
//! ```text
//! cargo run --example timing_driven
//! ```

use milo::circuits::datapath;
use milo_core::{Constraints, Milo};
use milo_techmap::ecl_library;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let entry = datapath(8);
    let mut milo = Milo::new(ecl_library());

    let loose = milo.synthesize(&entry, &Constraints::none())?;
    println!(
        "unconstrained: delay {:.2} ns, area {:.1}",
        loose.stats.delay, loose.stats.area
    );

    let target = loose.stats.delay * 0.75;
    let tight = milo.synthesize(&entry, &Constraints::none().with_max_delay(target))?;
    let critic = tight.critic.as_ref().expect("micro entry");
    println!(
        "constrained to {target:.2} ns: delay {:.2} ns, area {:.1} ({} CLA upgrades)",
        tight.stats.delay, tight.stats.area, critic.cla_upgrades
    );
    println!("timing met: {:?}", critic.met_timing);
    assert!(tight.stats.delay < loose.stats.delay);
    assert!(
        tight.stats.area > loose.stats.area,
        "speed was bought with area"
    );
    assert_eq!(critic.met_timing, Some(true));
    Ok(())
}
