//! The Fig. 14/15 microarchitecture rule: an adder incrementing a
//! register is recognized and replaced by a counter, with measured
//! statistics from the compile→map feedback loop of §6.3.
//!
//! ```text
//! cargo run --example counter_rewrite
//! ```

use milo::circuits::fig19::circuit8;
use milo_core::{Constraints, Milo};
use milo_techmap::ecl_library;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Circuit 8 contains the Fig. 14 pattern: an 8-bit adder whose sum
    // feeds a register that feeds back into the adder, with B == 1.
    let entry = circuit8();
    let mut milo = Milo::new(ecl_library());
    let result = milo.synthesize(&entry, &Constraints::none())?;

    let critic = result
        .critic
        .as_ref()
        .expect("micro-level entry has a critic report");
    println!("microarchitecture critic fired: {:?}", critic.fired);
    assert!(
        critic.fired.contains(&"adder-register-to-counter"),
        "the Fig. 14 pattern must be recognized"
    );
    println!(
        "mapped statistics before critic: area {:.1}, delay {:.2} ns",
        critic.before.area, critic.before.delay
    );
    println!(
        "mapped statistics after critic:  area {:.1}, delay {:.2} ns",
        critic.after.area, critic.after.delay
    );
    println!(
        "\nfull pipeline: area {:.1} -> {:.1} ({:.0} % better)",
        result.baseline.area,
        result.stats.area,
        result.area_improvement_pct()
    );
    assert!(result.stats.area < result.baseline.area);
    Ok(())
}
