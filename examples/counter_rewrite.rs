//! The Fig. 14/15 microarchitecture rule: an adder incrementing a
//! register is recognized and replaced by a counter, with measured
//! statistics from the compile→map feedback loop of §6.3. Runs through
//! the Flow API and prints the per-pass report (and its JSON form, the
//! shape a synthesis service would return).
//!
//! ```text
//! cargo run --example counter_rewrite
//! ```

use milo::circuits::fig19::circuit8;
use milo_core::{Constraints, Milo};
use milo_techmap::ecl_library;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Circuit 8 contains the Fig. 14 pattern: an 8-bit adder whose sum
    // feeds a register that feeds back into the adder, with B == 1.
    let entry = circuit8();
    let mut milo = Milo::new(ecl_library());
    let mut flow = milo.flow();
    let out = flow.run(&mut milo, &entry, &Constraints::none())?;
    let result = &out.result;

    let critic = result
        .critic
        .as_ref()
        .expect("micro-level entry has a critic report");
    println!("microarchitecture critic fired: {:?}", critic.fired);
    assert!(
        critic.fired.contains(&"adder-register-to-counter"),
        "the Fig. 14 pattern must be recognized"
    );
    println!(
        "mapped statistics before critic: area {:.1}, delay {:.2} ns",
        critic.before.area, critic.before.delay
    );
    println!(
        "mapped statistics after critic:  area {:.1}, delay {:.2} ns",
        critic.after.area, critic.after.delay
    );

    println!("\nper-pass flow report:");
    for pass in &out.report.passes {
        println!(
            "  {:<16} {:>8.1} µs  {:>3} applied  {}",
            pass.name,
            pass.wall.as_nanos() as f64 / 1000.0,
            pass.rules_applied,
            pass.note
        );
    }
    println!(
        "\nfull pipeline: area {:.1} -> {:.1} ({:.0} % better)",
        result.baseline.area,
        result.stats.area,
        result.area_improvement_pct()
    );
    println!("\nflow report as JSON:\n{}", out.report.to_json());
    assert!(result.stats.area < result.baseline.area);
    Ok(())
}
