//! Root facade for the MILO workspace.
//!
//! Re-exports the public API of [`milo_core`] so examples and integration
//! tests can use a single `milo` dependency.
pub use milo_circuits as circuits;
pub use milo_core::*;
