//! Offline stand-in for the `criterion` benchmarking crate (see
//! `vendor/README.md`).
//!
//! Implements the macro + builder surface the workspace's benches use:
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion`],
//! [`BenchmarkId`], benchmark groups with `sample_size`,
//! `bench_function` / `bench_with_input`, and [`black_box`]. Each
//! benchmark runs a short warmup, then a fixed measurement window, and
//! prints the mean time per iteration. Set `MILO_BENCH_MS` to change the
//! per-benchmark measurement window (milliseconds).

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported for bench bodies.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Builds a parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Measurement loop handle passed to bench closures.
pub struct Bencher {
    measure_window: Duration,
    /// (total elapsed, iterations) of the measurement phase.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `f`, first warming up, then measuring for the configured
    /// window.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warmup + per-iteration estimate.
        let warmup_target = self.measure_window / 4;
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < warmup_target || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let est_per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;
        let iters = if est_per_iter.is_zero() {
            1_000_000
        } else {
            (self.measure_window.as_nanos() / est_per_iter.as_nanos().max(1)).clamp(1, 5_000_000)
                as u64
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.result = Some((start.elapsed(), iters));
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    measure_window: Duration,
    /// Collected `(id, mean time per iteration)` results.
    pub results: Vec<(String, Duration)>,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("MILO_BENCH_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(300);
        Self {
            measure_window: Duration::from_millis(ms),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut b = Bencher {
            measure_window: self.measure_window,
            result: None,
        };
        f(&mut b);
        let (elapsed, iters) = b.result.unwrap_or((Duration::ZERO, 1));
        let per_iter = elapsed / iters.max(1) as u32;
        println!(
            "{id:<40} time: {:>12}   ({iters} iterations)",
            fmt_duration(per_iter)
        );
        self.results.push((id, per_iter));
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name.to_owned(), f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
        }
    }

    /// Prints the closing summary line.
    pub fn final_summary(&self) {
        println!("benchmarks complete: {} measurements", self.results.len());
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is time-window based
    /// here, so the count is ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measure_window = d;
        self
    }

    /// Runs `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let id = format!("{}/{}", self.name, name);
        self.criterion.run_one(id, f);
        self
    }

    /// Runs `group/id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(full, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main` running benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_result() {
        std::env::set_var("MILO_BENCH_MS", "5");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.results.len(), 1);
        assert_eq!(c.results[0].0, "noop");
    }

    #[test]
    fn group_prefixes_ids() {
        std::env::set_var("MILO_BENCH_MS", "5");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &x| b.iter(|| x * 2));
        g.finish();
        assert_eq!(c.results[0].0, "grp/f/3");
    }
}
