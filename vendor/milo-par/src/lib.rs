//! # milo-par
//!
//! Minimal fork/join parallelism for the MILO workspace, built on
//! [`std::thread::scope`]. This plays the role `rayon` normally would
//! (the build environment cannot download crates), exposing exactly the
//! shape the synthesis hot paths need: *map a function over independent
//! items on all cores, collecting results in input order*.
//!
//! Determinism policy: results are written to a pre-sized buffer at the
//! item's input index, so the output order never depends on thread
//! scheduling. Work is distributed by atomic index-stealing, which keeps
//! cores busy even when per-item costs are skewed (common for ESPRESSO
//! covers of wildly different sizes).
//!
//! ```
//! let squares = milo_par::par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use for `n` items: capped by available
/// parallelism and by the item count itself.
pub fn thread_count(n: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    cores.min(n).max(1)
}

/// Applies `f` to every item, in parallel, returning results in input
/// order. Falls back to a plain sequential map for 0–1 items or when
/// only one core is available.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = thread_count(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    // Hand each worker a disjoint &mut view of the result buffer via a
    // raw pointer; disjointness is guaranteed by the atomic index.
    struct SendPtr<R>(*mut Option<R>);
    unsafe impl<R: Send> Send for SendPtr<R> {}
    unsafe impl<R: Send> Sync for SendPtr<R> {}
    let out = SendPtr(slots.as_mut_ptr());
    let out_ref = &out;
    let f_ref = &f;
    let next_ref = &next;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move || loop {
                let i = next_ref.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f_ref(&items[i]);
                // SAFETY: each index is claimed exactly once, so no two
                // threads write the same slot; the buffer outlives the
                // scope.
                unsafe { *out_ref.0.add(i) = Some(r) };
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// Runs two independent closures in parallel and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if thread_count(2) <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        let rb = hb.join().expect("join: worker panicked");
        (ra, rb)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn par_map_skewed_workloads() {
        // Items with very different costs still land in order.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, |&x| {
            let mut acc = 0u64;
            for i in 0..(x % 7) * 10_000 {
                acc = acc.wrapping_add(i);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }
}
