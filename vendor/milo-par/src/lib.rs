//! # milo-par
//!
//! Minimal fork/join parallelism for the MILO workspace, built on
//! [`std::thread::scope`]. This plays the role `rayon` normally would
//! (the build environment cannot download crates), exposing exactly the
//! shape the synthesis hot paths need: *map a function over independent
//! items on all cores, collecting results in input order*.
//!
//! Determinism policy: results are written to a pre-sized buffer at the
//! item's input index, so the output order never depends on thread
//! scheduling. Work is distributed by atomic index-stealing, which keeps
//! cores busy even when per-item costs are skewed (common for ESPRESSO
//! covers of wildly different sizes).
//!
//! ```
//! let squares = milo_par::par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A panic caught on a worker, carried back to the caller instead of
/// aborting the whole fork/join region. Holds the original payload, so
/// re-raising with [`Panic::resume`] is transparent; [`Panic::message`]
/// extracts the usual `&str`/`String` payloads for error reporting.
pub struct Panic(pub Box<dyn Any + Send + 'static>);

impl Panic {
    /// The panic message, when the payload is a string (the common
    /// `panic!("…")` case); a placeholder otherwise.
    pub fn message(&self) -> String {
        if let Some(s) = self.0.downcast_ref::<&str>() {
            (*s).to_owned()
        } else if let Some(s) = self.0.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_owned()
        }
    }

    /// Re-raises the original panic on the current thread.
    pub fn resume(self) -> ! {
        resume_unwind(self.0)
    }
}

impl fmt::Debug for Panic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Panic({:?})", self.message())
    }
}

/// Number of worker threads to use for `n` items: capped by available
/// parallelism and by the item count itself.
pub fn thread_count(n: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    cores.min(n).max(1)
}

/// Applies `f` to every item, in parallel, returning results in input
/// order. Falls back to a plain sequential map for 0–1 items or when
/// only one core is available.
///
/// # Panics
///
/// A panicking item re-raises the *first* (input-order) panic payload
/// on the caller after every item has been attempted — deterministic,
/// unlike raw scope propagation. Callers who need to survive individual
/// failures use [`try_par_map`].
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    for r in try_par_map(items, f) {
        match r {
            Ok(v) => out.push(v),
            Err(p) => p.resume(),
        }
    }
    out
}

/// [`par_map`] with per-item panic isolation: a panicking item yields
/// `Err(Panic)` in its slot while every other item still completes and
/// the process survives. This is what lets a batch of independent
/// designs degrade per-design instead of poisoning the whole call.
///
/// `f` runs under [`catch_unwind`]; it must leave no shared state
/// half-mutated on unwind (each worker invocation only borrows its own
/// item, so the usual caller passes a pure-ish function).
pub fn try_par_map<T, R, F>(items: &[T], f: F) -> Vec<Result<R, Panic>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let catch = |item: &T| catch_unwind(AssertUnwindSafe(|| f(item))).map_err(Panic);
    let threads = thread_count(items.len());
    if threads <= 1 {
        return items.iter().map(catch).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<Result<R, Panic>>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    // Hand each worker a disjoint &mut view of the result buffer via a
    // raw pointer; disjointness is guaranteed by the atomic index.
    struct SendPtr<R>(*mut Option<R>);
    unsafe impl<R: Send> Send for SendPtr<R> {}
    unsafe impl<R: Send> Sync for SendPtr<R> {}
    let out = SendPtr(slots.as_mut_ptr());
    let out_ref = &out;
    let catch_ref = &catch;
    let next_ref = &next;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move || loop {
                let i = next_ref.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = catch_ref(&items[i]);
                // SAFETY: each index is claimed exactly once, so no two
                // threads write the same slot; the buffer outlives the
                // scope.
                unsafe { *out_ref.0.add(i) = Some(r) };
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// Runs two independent closures in parallel and returns both results.
///
/// # Panics
///
/// If either closure panics, the payload is re-raised here (the first
/// arm's payload wins when both panic) after both arms have finished —
/// the worker never takes the process down on its own thread.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    match try_join(a, b) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(p), _) | (_, Err(p)) => p.resume(),
    }
}

/// [`join`] with panic isolation: each arm's panic comes back as
/// `Err(Panic)` instead of unwinding across the scope, so the caller
/// can keep the healthy arm's result.
pub fn try_join<A, B, RA, RB>(a: A, b: B) -> (Result<RA, Panic>, Result<RB, Panic>)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let catch_a = move || catch_unwind(AssertUnwindSafe(a)).map_err(Panic);
    let catch_b = move || catch_unwind(AssertUnwindSafe(b)).map_err(Panic);
    if thread_count(2) <= 1 {
        let ra = catch_a();
        let rb = catch_b();
        return (ra, rb);
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(catch_b);
        let ra = catch_a();
        // The worker catches its own unwind, so this join only fails on
        // a payload that itself panicked on drop — not survivable.
        let rb = hb.join().expect("join: worker result");
        (ra, rb)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    /// A panic in one fork/join task must not abort the process: the
    /// payload comes back to the caller in that item's slot and every
    /// other item still completes.
    #[test]
    fn try_par_map_returns_panic_payload() {
        let items: Vec<u32> = (0..32).collect();
        let out = try_par_map(&items, |&x| {
            assert!(x != 13, "unlucky item {x}");
            x * 2
        });
        assert_eq!(out.len(), 32);
        for (i, r) in out.iter().enumerate() {
            if i == 13 {
                let p = r.as_ref().expect_err("item 13 panicked");
                assert_eq!(p.message(), "unlucky item 13");
            } else {
                assert_eq!(*r.as_ref().expect("healthy item"), i as u32 * 2);
            }
        }
    }

    #[test]
    fn try_join_isolates_each_arm() {
        let (a, b) = try_join(|| panic!("arm a down"), || 7);
        assert_eq!(a.expect_err("a panicked").message(), "arm a down");
        assert_eq!(b.expect("b healthy"), 7);

        let (a, b) = try_join(|| "fine", || -> u32 { panic!("arm b down") });
        assert_eq!(a.expect("a healthy"), "fine");
        assert_eq!(b.expect_err("b panicked").message(), "arm b down");
    }

    #[test]
    fn par_map_reraises_first_panic_in_input_order() {
        let items: Vec<u32> = (0..16).collect();
        let caught = std::panic::catch_unwind(|| {
            par_map(&items, |&x| {
                assert!(!(x == 5 || x == 11), "boom {x}");
                x
            })
        });
        let payload = caught.expect_err("propagates");
        let msg = Panic(payload).message();
        assert_eq!(msg, "boom 5", "first input-order payload wins");
    }

    #[test]
    fn par_map_skewed_workloads() {
        // Items with very different costs still land in order.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, |&x| {
            let mut acc = 0u64;
            for i in 0..(x % 7) * 10_000 {
                acc = acc.wrapping_add(i);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }
}
