//! # milo-par
//!
//! Minimal fork/join parallelism for the MILO workspace, built on a
//! lazily-initialized persistent worker pool. This plays the role
//! `rayon` normally would (the build environment cannot download
//! crates), exposing exactly the shape the synthesis hot paths need:
//! *map a function over independent items on all cores, collecting
//! results in input order*.
//!
//! The pool spawns `threads - 1` workers on first use and keeps them
//! parked between calls, so a service synthesizing thousands of designs
//! pays thread startup once instead of once per batch (the previous
//! scoped-thread implementation re-spawned on every call, which large
//! fuzz and scale workloads made measurable). The submitting thread
//! always participates in its own job, which both keeps the pool
//! deadlock-free under nested parallelism (ESPRESSO fan-out inside a
//! batch arm) and degrades gracefully to a plain sequential map on
//! single-core machines, where the pool has no workers at all.
//!
//! Thread budget: `MILO_PAR_THREADS` (total threads including the
//! caller, minimum 1) overrides [`std::thread::available_parallelism`].
//! It is read once, at first pool use.
//!
//! Determinism policy: results are written to a pre-sized buffer at the
//! item's input index, so the output order never depends on thread
//! scheduling. Work is distributed by atomic index-stealing, which keeps
//! cores busy even when per-item costs are skewed (common for ESPRESSO
//! covers of wildly different sizes).
//!
//! ```
//! let squares = milo_par::par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::any::Any;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A panic caught on a worker, carried back to the caller instead of
/// aborting the whole fork/join region. Holds the original payload, so
/// re-raising with [`Panic::resume`] is transparent; [`Panic::message`]
/// extracts the usual `&str`/`String` payloads for error reporting.
pub struct Panic(pub Box<dyn Any + Send + 'static>);

impl Panic {
    /// The panic message, when the payload is a string (the common
    /// `panic!("…")` case); a placeholder otherwise.
    pub fn message(&self) -> String {
        if let Some(s) = self.0.downcast_ref::<&str>() {
            (*s).to_owned()
        } else if let Some(s) = self.0.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_owned()
        }
    }

    /// Re-raises the original panic on the current thread.
    pub fn resume(self) -> ! {
        resume_unwind(self.0)
    }
}

impl fmt::Debug for Panic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Panic({:?})", self.message())
    }
}

/// `par.steals` in the global metrics registry: items executed by pool
/// workers rather than the submitting thread — how much work actually
/// migrated across threads (docs/OBSERVABILITY.md).
fn obs_steals() -> &'static milo_trace::Counter {
    static C: OnceLock<Arc<milo_trace::Counter>> = OnceLock::new();
    C.get_or_init(|| milo_trace::Registry::global().counter("par.steals"))
}

/// `par.jobs`: fork/join regions submitted to the pool.
fn obs_jobs() -> &'static milo_trace::Counter {
    static C: OnceLock<Arc<milo_trace::Counter>> = OnceLock::new();
    C.get_or_init(|| milo_trace::Registry::global().counter("par.jobs"))
}

/// Total thread budget (workers + caller): `MILO_PAR_THREADS` when set,
/// otherwise available parallelism. Read once.
fn configured_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Some(n) = std::env::var("MILO_PAR_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            return n.max(1);
        }
        std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1)
    })
}

/// Number of threads that would cooperate on `n` items: capped by the
/// configured thread budget and by the item count itself.
pub fn thread_count(n: usize) -> usize {
    configured_threads().min(n).max(1)
}

/// One fork/join region, shared between the submitting thread and the
/// pool workers. Items are claimed by atomic index-stealing; the region
/// is complete when `done == len`.
///
/// The raw pointers target buffers on the submitting thread's stack.
/// They stay valid for the whole region because the submitter blocks in
/// [`Job::wait`] until every item has finished, and a worker never
/// dereferences them after the claim counter passes `len` — stale queue
/// entries popped later claim an out-of-range index and return
/// immediately.
struct Job {
    /// Next unclaimed item index.
    next: AtomicUsize,
    /// Completed item count.
    done: AtomicUsize,
    /// Total items.
    len: usize,
    /// `*const T` — the input slice.
    items: *const (),
    /// `*const F` (or a `Mutex<Option<B>>` for join jobs).
    func: *const (),
    /// `*mut Option<Result<R, Panic>>` — the result buffer.
    slots: *const (),
    /// Monomorphized per-item dispatcher that re-types the pointers.
    drive: unsafe fn(&Job, usize),
    /// Completion latch (guards the condvar, not the result buffer).
    finished: Mutex<bool>,
    complete: Condvar,
}

// SAFETY: the erased pointers are only dereferenced for exclusively
// claimed in-range indices while the submitting thread is blocked in
// `wait`, per the struct-level invariant above.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claims and runs items until none remain, returning how many this
    /// thread claimed. Called by workers and by the submitting thread
    /// alike; `drive` never unwinds (it catches per-item panics into
    /// the item's slot).
    fn run(&self) -> usize {
        let mut claimed = 0usize;
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.len {
                return claimed;
            }
            claimed += 1;
            // SAFETY: `i` is in range and this thread exclusively owns
            // it (fetch_add hands out each index once).
            unsafe { (self.drive)(self, i) };
            // `Release` pairs with the `Acquire` in `wait`: the caller
            // must observe every slot write before reading the buffer.
            if self.done.fetch_add(1, Ordering::Release) + 1 == self.len {
                let mut flag = self.finished.lock().expect("job latch poisoned");
                *flag = true;
                drop(flag);
                self.complete.notify_all();
            }
        }
    }

    /// Blocks until every item has completed (possibly finishing the
    /// final items on other threads after the caller ran out of claims).
    fn wait(&self) {
        {
            let mut flag = self.finished.lock().expect("job latch poisoned");
            while !*flag {
                flag = self.complete.wait(flag).expect("job latch poisoned");
            }
        }
        // Synchronize with every worker's Release increment (the latch
        // only proves the *last* finisher's writes are visible).
        let done = self.done.load(Ordering::Acquire);
        debug_assert_eq!(done, self.len);
    }
}

/// Queue shared by the pool's workers.
struct Shared {
    queue: Mutex<VecDeque<Arc<Job>>>,
    ready: Condvar,
}

/// The persistent worker pool: `threads - 1` parked OS threads feeding
/// off a shared job queue. With one configured thread there are no
/// workers and every call degrades to a sequential map in the caller.
struct Pool {
    shared: Arc<Shared>,
    workers: usize,
}

impl Pool {
    /// The process-wide pool, spawned on first use.
    fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| Pool::with_workers(configured_threads().saturating_sub(1)))
    }

    /// A pool with exactly `workers` worker threads (tests force a
    /// multi-worker pool on single-core machines this way). Spawn
    /// failures reduce the worker count instead of propagating: the
    /// caller participates in every job, so zero workers still works.
    fn with_workers(workers: usize) -> Pool {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        });
        let mut spawned = 0;
        for i in 0..workers {
            let sh = Arc::clone(&shared);
            let ok = std::thread::Builder::new()
                .name(format!("milo-par-{i}"))
                .spawn(move || worker_loop(&sh))
                .is_ok();
            if !ok {
                break;
            }
            spawned += 1;
        }
        Pool {
            shared,
            workers: spawned,
        }
    }

    /// Enqueues `copies` handles to `job` for the workers. The caller
    /// then participates via `job.run()`, so jobs complete even if every
    /// worker is busy elsewhere.
    fn submit(&self, job: &Arc<Job>, copies: usize) {
        obs_jobs().inc();
        let mut q = self.shared.queue.lock().expect("pool queue poisoned");
        for _ in 0..copies {
            q.push_back(Arc::clone(job));
        }
        drop(q);
        if copies == 1 {
            self.shared.ready.notify_one();
        } else {
            self.shared.ready.notify_all();
        }
    }
}

/// Worker body: pop a job, help drain it, repeat forever. Stale handles
/// for already-finished jobs cost one atomic claim and are discarded.
/// Each parked wait becomes one `par.idle` complete event and each
/// drained job one `par.busy` span, so a trace shows exactly when each
/// worker was working; stolen item counts feed `par.steals`.
fn worker_loop(shared: &Shared) {
    loop {
        let idle_from = milo_trace::now_ns();
        let job = {
            let mut q = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                q = shared.ready.wait(q).expect("pool queue poisoned");
            }
        };
        milo_trace::complete("par.idle", idle_from);
        let busy = milo_trace::span("par.busy");
        let claimed = job.run();
        drop(busy);
        if claimed > 0 {
            obs_steals().add(claimed as u64);
        }
    }
}

/// Applies `f` to every item, in parallel, returning results in input
/// order. Falls back to a plain sequential map for 0–1 items or when
/// the pool has no workers (single-core machines).
///
/// # Panics
///
/// A panicking item re-raises the *first* (input-order) panic payload
/// on the caller after every item has been attempted — deterministic,
/// unlike raw scope propagation. Callers who need to survive individual
/// failures use [`try_par_map`].
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    for r in try_par_map(items, f) {
        match r {
            Ok(v) => out.push(v),
            Err(p) => p.resume(),
        }
    }
    out
}

/// [`par_map`] with per-item panic isolation: a panicking item yields
/// `Err(Panic)` in its slot while every other item still completes and
/// the process survives. This is what lets a batch of independent
/// designs degrade per-design instead of poisoning the whole call.
///
/// `f` runs under [`catch_unwind`]; it must leave no shared state
/// half-mutated on unwind (each worker invocation only borrows its own
/// item, so the usual caller passes a pure-ish function).
pub fn try_par_map<T, R, F>(items: &[T], f: F) -> Vec<Result<R, Panic>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    try_par_map_on(Pool::global(), items, f)
}

/// [`try_par_map`] against an explicit pool (the global one in
/// production; tests force multi-worker pools on single-core machines).
fn try_par_map_on<T, R, F>(pool: &Pool, items: &[T], f: F) -> Vec<Result<R, Panic>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let helpers = pool.workers.min(items.len().saturating_sub(1));
    if helpers == 0 {
        return items
            .iter()
            .map(|item| catch_unwind(AssertUnwindSafe(|| f(item))).map_err(Panic))
            .collect();
    }

    let mut slots: Vec<Option<Result<R, Panic>>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);

    /// Re-types the erased job pointers and runs one item, catching its
    /// panic into the slot.
    unsafe fn drive_map<T, R, F>(job: &Job, i: usize)
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        // SAFETY: the pointers were erased from live borrows in
        // `try_par_map_on`, which outlives the job; `i` is in range and
        // exclusively claimed, so the slot write is unaliased.
        unsafe {
            let item = &*(job.items as *const T).add(i);
            let f = &*(job.func as *const F);
            let slot = (job.slots as *mut Option<Result<R, Panic>>).add(i);
            *slot = Some(catch_unwind(AssertUnwindSafe(|| f(item))).map_err(Panic));
        }
    }

    let job = Arc::new(Job {
        next: AtomicUsize::new(0),
        done: AtomicUsize::new(0),
        len: items.len(),
        items: items.as_ptr() as *const (),
        func: (&raw const f).cast(),
        slots: slots.as_mut_ptr() as *const (),
        drive: drive_map::<T, R, F>,
        finished: Mutex::new(false),
        complete: Condvar::new(),
    });
    pool.submit(&job, helpers);
    job.run();
    job.wait();

    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// Runs two independent closures in parallel and returns both results.
///
/// # Panics
///
/// If either closure panics, the payload is re-raised here (the first
/// arm's payload wins when both panic) after both arms have finished —
/// the worker never takes the process down on its own thread.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    match try_join(a, b) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(p), _) | (_, Err(p)) => p.resume(),
    }
}

/// [`join`] with panic isolation: each arm's panic comes back as
/// `Err(Panic)` instead of unwinding across the pool, so the caller
/// can keep the healthy arm's result.
pub fn try_join<A, B, RA, RB>(a: A, b: B) -> (Result<RA, Panic>, Result<RB, Panic>)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    try_join_on(Pool::global(), a, b)
}

/// [`try_join`] against an explicit pool. Arm `b` is offered to the
/// pool as a one-item job; whoever gets there first runs it — a parked
/// worker, or the caller itself right after finishing arm `a` (which
/// is also the single-core fallback, where the offer is never made).
fn try_join_on<A, B, RA, RB>(pool: &Pool, a: A, b: B) -> (Result<RA, Panic>, Result<RB, Panic>)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if pool.workers == 0 {
        let ra = catch_unwind(AssertUnwindSafe(a)).map_err(Panic);
        let rb = catch_unwind(AssertUnwindSafe(b)).map_err(Panic);
        return (ra, rb);
    }

    let func: Mutex<Option<B>> = Mutex::new(Some(b));
    let mut slot: Option<Result<RB, Panic>> = None;

    /// Takes the one-shot closure out of its mutex and runs it into the
    /// single result slot.
    unsafe fn drive_join<B, RB>(job: &Job, _i: usize)
    where
        B: FnOnce() -> RB + Send,
        RB: Send,
    {
        // SAFETY: pointers erased from live borrows in `try_join_on`;
        // the job has exactly one item, claimed exactly once, so the
        // take and the slot write are unaliased.
        unsafe {
            let func = &*(job.func as *const Mutex<Option<B>>);
            let b = func
                .lock()
                .expect("join arm lock poisoned")
                .take()
                .expect("join arm claimed once");
            let slot = job.slots as *mut Option<Result<RB, Panic>>;
            *slot = Some(catch_unwind(AssertUnwindSafe(b)).map_err(Panic));
        }
    }

    let job = Arc::new(Job {
        next: AtomicUsize::new(0),
        done: AtomicUsize::new(0),
        len: 1,
        items: std::ptr::null(),
        func: (&raw const func).cast(),
        slots: (&raw mut slot).cast(),
        drive: drive_join::<B, RB>,
        finished: Mutex::new(false),
        complete: Condvar::new(),
    });
    pool.submit(&job, 1);
    let ra = catch_unwind(AssertUnwindSafe(a)).map_err(Panic);
    job.run();
    job.wait();

    let rb = slot.take().expect("join arm filled");
    (ra, rb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    /// A panic in one fork/join task must not abort the process: the
    /// payload comes back to the caller in that item's slot and every
    /// other item still completes.
    #[test]
    fn try_par_map_returns_panic_payload() {
        let items: Vec<u32> = (0..32).collect();
        let out = try_par_map(&items, |&x| {
            assert!(x != 13, "unlucky item {x}");
            x * 2
        });
        assert_eq!(out.len(), 32);
        for (i, r) in out.iter().enumerate() {
            if i == 13 {
                let p = r.as_ref().expect_err("item 13 panicked");
                assert_eq!(p.message(), "unlucky item 13");
            } else {
                assert_eq!(*r.as_ref().expect("healthy item"), i as u32 * 2);
            }
        }
    }

    #[test]
    fn try_join_isolates_each_arm() {
        let (a, b) = try_join(|| panic!("arm a down"), || 7);
        assert_eq!(a.expect_err("a panicked").message(), "arm a down");
        assert_eq!(b.expect("b healthy"), 7);

        let (a, b) = try_join(|| "fine", || -> u32 { panic!("arm b down") });
        assert_eq!(a.expect("a healthy"), "fine");
        assert_eq!(b.expect_err("b panicked").message(), "arm b down");
    }

    #[test]
    fn par_map_reraises_first_panic_in_input_order() {
        let items: Vec<u32> = (0..16).collect();
        let caught = std::panic::catch_unwind(|| {
            par_map(&items, |&x| {
                assert!(!(x == 5 || x == 11), "boom {x}");
                x
            })
        });
        let payload = caught.expect_err("propagates");
        let msg = Panic(payload).message();
        assert_eq!(msg, "boom 5", "first input-order payload wins");
    }

    #[test]
    fn par_map_skewed_workloads() {
        // Items with very different costs still land in order.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, |&x| {
            let mut acc = 0u64;
            for i in 0..(x % 7) * 10_000 {
                acc = acc.wrapping_add(i);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    // The tests above run against the global pool, which has no workers
    // on a single-core CI machine (the sequential fallback). The tests
    // below force a multi-worker pool so the pooled code path is always
    // exercised regardless of the host's core count.

    #[test]
    fn pooled_map_preserves_order() {
        let pool = Pool::with_workers(3);
        let items: Vec<usize> = (0..2000).collect();
        let out = try_par_map_on(&pool, &items, |&x| x * 3);
        for (i, r) in out.into_iter().enumerate() {
            assert_eq!(r.expect("healthy item"), i * 3);
        }
    }

    #[test]
    fn pooled_map_isolates_panics() {
        let pool = Pool::with_workers(2);
        let items: Vec<u32> = (0..64).collect();
        let out = try_par_map_on(&pool, &items, |&x| {
            assert!(x % 17 != 13, "boom {x}");
            x + 1
        });
        for (i, r) in out.iter().enumerate() {
            if i % 17 == 13 {
                assert_eq!(
                    r.as_ref().expect_err("panicked").message(),
                    format!("boom {i}")
                );
            } else {
                assert_eq!(*r.as_ref().expect("healthy"), i as u32 + 1);
            }
        }
    }

    /// The pool is persistent: back-to-back jobs reuse the same workers
    /// and stale queue handles from finished jobs are discarded without
    /// touching the (long-gone) result buffers.
    #[test]
    fn pooled_map_reuses_workers_across_jobs() {
        let pool = Pool::with_workers(3);
        for round in 0..200u64 {
            let items: Vec<u64> = (0..9).collect();
            let out = try_par_map_on(&pool, &items, |&x| x + round);
            for (i, r) in out.into_iter().enumerate() {
                assert_eq!(r.expect("healthy"), i as u64 + round);
            }
        }
    }

    /// Nested fan-out (a parallel map inside a parallel map, the
    /// ESPRESSO-inside-batch shape) must not deadlock even when every
    /// worker is busy: the submitting thread always participates.
    #[test]
    fn pooled_map_survives_nesting() {
        let pool = Pool::with_workers(2);
        let outer: Vec<u64> = (0..8).collect();
        let out = try_par_map_on(&pool, &outer, |&x| {
            let inner: Vec<u64> = (0..16).collect();
            try_par_map_on(&pool, &inner, |&y| x * 100 + y)
                .into_iter()
                .map(|r| r.expect("inner healthy"))
                .sum::<u64>()
        });
        for (i, r) in out.into_iter().enumerate() {
            let expect: u64 = (0..16).map(|y| i as u64 * 100 + y).sum();
            assert_eq!(r.expect("outer healthy"), expect);
        }
    }

    /// Multiple threads submitting to one pool concurrently (the batch
    /// service shape) all complete with correct, ordered results.
    #[test]
    fn pooled_map_supports_concurrent_submitters() {
        let pool = Pool::with_workers(3);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let pool = &pool;
                scope.spawn(move || {
                    for round in 0..50u64 {
                        let items: Vec<u64> = (0..13).collect();
                        let out = try_par_map_on(pool, &items, |&x| x + t * 1000 + round);
                        for (i, r) in out.into_iter().enumerate() {
                            assert_eq!(r.expect("healthy"), i as u64 + t * 1000 + round);
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn pooled_join_runs_both_arms_and_isolates_panics() {
        let pool = Pool::with_workers(2);
        let (a, b) = try_join_on(&pool, || 40 + 2, || "pooled");
        assert_eq!(a.expect("a healthy"), 42);
        assert_eq!(b.expect("b healthy"), "pooled");

        let (a, b) = try_join_on(&pool, || panic!("left down"), || 9);
        assert_eq!(a.expect_err("a panicked").message(), "left down");
        assert_eq!(b.expect("b healthy"), 9);

        let (a, b) = try_join_on(&pool, || "ok", || -> u32 { panic!("right down") });
        assert_eq!(a.expect("a healthy"), "ok");
        assert_eq!(b.expect_err("b panicked").message(), "right down");
    }

    /// A zero-worker pool (single-core fallback) still completes every
    /// shape sequentially.
    #[test]
    fn zero_worker_pool_falls_back_sequentially() {
        let pool = Pool::with_workers(0);
        let items: Vec<u32> = (0..10).collect();
        let out = try_par_map_on(&pool, &items, |&x| x * x);
        for (i, r) in out.into_iter().enumerate() {
            assert_eq!(r.expect("healthy"), (i * i) as u32);
        }
        let (a, b) = try_join_on(&pool, || 1, || 2);
        assert_eq!((a.expect("a"), b.expect("b")), (1, 2));
    }
}
