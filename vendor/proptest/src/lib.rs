//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Supports the subset this workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! * integer `Range` / `RangeInclusive` strategies and [`any`] for
//!   `bool` and unsigned integers;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`] and [`TestCaseError`].
//!
//! Case values are drawn from a PRNG seeded from the test name, so runs
//! are reproducible; there is no shrinking — the failure message reports
//! the generating arguments instead.

use std::ops::{Range, RangeInclusive};

/// Run configuration for a `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Error produced by a failing or rejected test case.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case was rejected by `prop_assume!` and does not count.
    Reject(String),
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with a message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Deterministic xoshiro256++ generator used to drive strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds from a string (typically the test name) so every test gets
    /// a distinct but reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn below(&mut self, span: u64) -> u64 {
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Integer types usable in range strategies.
pub trait RangeValue: Copy {
    /// Widens to u64.
    fn to_u64(self) -> u64;
    /// Narrows from u64.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_range_value {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn to_u64(self) -> u64 { self as u64 }
            fn from_u64(v: u64) -> Self { v as $t }
        }
    )*};
}
impl_range_value!(u8, u16, u32, u64, usize);

impl<T: RangeValue> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "empty range strategy");
        T::from_u64(lo + rng.below(hi - lo))
    }
}

impl<T: RangeValue> Strategy for RangeInclusive<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "empty range strategy");
        T::from_u64(lo + rng.below(hi - lo + 1))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self { rng.next_u64() as $t }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The any-value strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Asserts a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assert_eq failed: {:?} != {:?}", __a, __b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assert_eq failed: {:?} != {:?}: {}", __a, __b, format!($($fmt)+)),
            ));
        }
    }};
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assert_ne failed: both {:?}",
                __a
            )));
        }
    }};
}

/// Rejects the current case (it does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { [$crate::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut __accepted: u32 = 0;
            let mut __tries: u32 = 0;
            let __max_tries = __config.cases.saturating_mul(20).max(20);
            while __accepted < __config.cases && __tries < __max_tries {
                __tries += 1;
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                let mut __desc = ::std::string::String::new();
                $(__desc.push_str(&format!("{}={:?} ", stringify!($arg), &$arg));)*
                let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __result {
                    ::std::result::Result::Ok(()) => __accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest {} failed at case {} [{}]: {}",
                            stringify!($name), __accepted, __desc.trim_end(), __msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { [$cfg] $($rest)* }
    };
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_are_honoured(x in 3u8..=9, y in 0usize..4) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn assume_rejects_without_failing(v in any::<u64>()) {
            prop_assume!(v.is_multiple_of(2));
            prop_assert_eq!(v % 2, 0);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn question_mark_compatible() {
        fn inner() -> Result<(), TestCaseError> {
            Err::<(), TestCaseError>(TestCaseError::fail("boom"))?;
            Ok(())
        }
        assert!(matches!(inner(), Err(TestCaseError::Fail(m)) if m == "boom"));
    }
}
