//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the subset the workspace uses: `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` over integer `Range`/`RangeInclusive`, and
//! `Rng::gen_bool`. The generator is xoshiro256++ seeded via SplitMix64 —
//! deterministic per seed, which is the only property callers rely on.

use std::ops::{Range, RangeInclusive};

/// Sampling from a uniform integer range.
pub trait UniformSample: Copy {
    /// Widens to the u64 sampling domain.
    fn to_u64(self) -> u64;
    /// Narrows back from the u64 sampling domain.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn to_u64(self) -> u64 { self as u64 }
            fn from_u64(v: u64) -> Self { v as $t }
        }
    )*};
}
impl_uniform!(u8, u16, u32, u64, usize, i32, i64);

/// Argument forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Bounds as a half-open `[lo, hi)` pair in the u64 domain.
    fn bounds(self) -> (u64, u64);
}

impl<T: UniformSample> SampleRange<T> for Range<T> {
    fn bounds(self) -> (u64, u64) {
        (self.start.to_u64(), self.end.to_u64())
    }
}

impl<T: UniformSample> SampleRange<T> for RangeInclusive<T> {
    fn bounds(self) -> (u64, u64) {
        (self.start().to_u64(), self.end().to_u64() + 1)
    }
}

/// Random-number-generator operations.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from an integer range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T: UniformSample, R: SampleRange<T>>(&mut self, range: R) -> T {
        let (lo, hi) = range.bounds();
        assert!(lo < hi, "gen_range called with an empty range");
        let span = hi - lo;
        // Debiased multiply-shift rejection (Lemire).
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(span as u128);
            let low = m as u64;
            if low >= span.wrapping_neg() % span.max(1) || span.is_power_of_two() {
                return T::from_u64(lo + (m >> 64) as u64);
            }
        }
    }

    /// Bernoulli sample.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    /// The workspace's standard generator: xoshiro256++ seeded through
    /// SplitMix64. (Upstream `StdRng` is a ChaCha variant; only
    /// determinism-per-seed matters here.)
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(2u8..=3);
            assert!((2..=3).contains(&y));
        }
    }

    #[test]
    fn all_values_reachable() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
