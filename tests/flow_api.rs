//! Contract tests for the composable Flow/pass API: the default flow
//! must reproduce `Milo::synthesize` exactly, `synthesize_batch` must
//! equal per-design sequential runs (stats *and* mapped netlists), and
//! reordered / skipped / custom flows must still produce valid netlists.

use milo::circuits::{datapath, fig19, random_logic};
use milo::{Constraints, FlowEvent, Milo, Pass, PassReport};
use milo_compilers::verify::check_comb_equivalence;
use milo_netlist::{validate, Netlist, Violation};
use milo_techmap::ecl_library;
use proptest::prelude::*;

/// A structural fingerprint covering everything synthesis output cares
/// about: components (name, kind, pin bindings), nets, and ports.
/// Unlike `emit_netlist`, it handles technology cells.
fn fingerprint(nl: &Netlist) -> String {
    use std::fmt::Write;
    let mut out = format!("design {} nets {}\n", nl.name, nl.net_count());
    for id in nl.component_ids() {
        let c = nl.component(id).expect("live id");
        write!(out, "comp {} {}", c.name, c.kind.label()).expect("write");
        for pin in &c.pins {
            if let Some(net) = pin.net {
                write!(out, " {}=n{}", pin.name, net.index()).expect("write");
            }
        }
        out.push('\n');
    }
    for p in nl.ports() {
        writeln!(out, "port {} {:?} n{}", p.name, p.dir, p.net.index()).expect("write");
    }
    out
}

fn non_dangling(nl: &Netlist) -> Vec<Violation> {
    validate(nl, true)
        .into_iter()
        .filter(|v| !matches!(v, Violation::DanglingOutput { .. }))
        .collect()
}

#[test]
fn default_flow_matches_synthesize_shim() {
    let cases: Vec<Netlist> = vec![
        fig19::circuit3(), // gate-level
        fig19::circuit8(), // micro-level (critic fires)
        random_logic(80, 10, 7),
    ];
    for case in &cases {
        let mut via_shim = Milo::new(ecl_library());
        let shim = via_shim
            .synthesize(case, &Constraints::none())
            .expect("shim synthesizes");

        let mut via_flow = Milo::new(ecl_library());
        let mut flow = via_flow.flow();
        let out = flow
            .run(&mut via_flow, case, &Constraints::none())
            .expect("flow runs");

        assert_eq!(shim.stats, out.result.stats, "{}", case.name);
        assert_eq!(shim.baseline, out.result.baseline, "{}", case.name);
        assert_eq!(
            fingerprint(&shim.netlist),
            fingerprint(&out.result.netlist),
            "{}",
            case.name
        );
        assert_eq!(shim.buffers_inserted, out.result.buffers_inserted);
        assert_eq!(shim.violations.len(), out.result.violations.len());
        assert_eq!(shim.levels.len(), out.result.levels.len());
        assert_eq!(shim.critic.is_some(), out.result.critic.is_some());
        // The report covers the five paper passes, none skipped.
        assert_eq!(
            out.report
                .passes
                .iter()
                .map(|p| p.name.as_str())
                .collect::<Vec<_>>(),
            vec![
                "micro-critic",
                "compile",
                "bottom-up-logic",
                "fanout-repair",
                "timing-area"
            ]
        );
        assert!(out.report.passes.iter().all(|p| !p.skipped));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Batched synthesis equals per-design sequential synthesis — same
    /// statistics and same mapped netlists — over randomized design
    /// sets. Sequential arms start from a fresh instance, matching the
    /// batch's snapshot semantics (every arm sees the database as of
    /// batch entry).
    #[test]
    fn batch_matches_sequential(count in 1usize..5, seed in any::<u64>(), bits in 2u32..6) {
        let mut designs: Vec<Netlist> = (0..count)
            .map(|i| random_logic(30 + 10 * i, 8, seed.wrapping_add(i as u64)))
            .collect();
        // One micro-level member exercises the critic + compilers arm.
        designs.push(datapath(bits as u8));

        let sequential: Vec<_> = designs
            .iter()
            .map(|nl| {
                Milo::new(ecl_library())
                    .synthesize(nl, &Constraints::none())
                    .expect("sequential synthesizes")
            })
            .collect();

        let mut milo = Milo::new(ecl_library());
        let batch = milo
            .synthesize_batch(&designs, &Constraints::none())
            .expect("batch synthesizes");

        prop_assert_eq!(batch.len(), sequential.len());
        for (b, s) in batch.iter().zip(&sequential) {
            prop_assert_eq!(b.stats, s.stats);
            prop_assert_eq!(b.baseline, s.baseline);
            prop_assert_eq!(fingerprint(&b.netlist), fingerprint(&s.netlist));
            prop_assert_eq!(b.buffers_inserted, s.buffers_inserted);
        }
        // The arms' compiled designs were folded back into the cache.
        prop_assert!(milo.database().len() >= designs.len());
    }
}

#[test]
fn batch_of_empty_and_single() {
    let mut milo = Milo::new(ecl_library());
    assert!(milo
        .synthesize_batch(&[], &Constraints::none())
        .expect("empty batch")
        .is_empty());
    let one = milo
        .synthesize_batch(&[fig19::circuit3()], &Constraints::none())
        .expect("single batch");
    let mut fresh = Milo::new(ecl_library());
    let seq = fresh
        .synthesize(&fig19::circuit3(), &Constraints::none())
        .expect("sequential");
    assert_eq!(one[0].stats, seq.stats);
}

#[test]
fn reordering_and_skipping_passes_still_validates() {
    let case = fig19::circuit3();
    let mut reference = Milo::new(ecl_library());
    let baseline = reference
        .elaborate_unoptimized(&case)
        .expect("baseline elaborates");

    // Skip the optional passes: no critic, no bottom-up optimization,
    // fanout repair predicated off. The driver epilogue still maps,
    // repairs fanout, and validates.
    let mut milo = Milo::new(ecl_library());
    let mut flow = milo.flow();
    flow.remove("micro-critic");
    flow.remove("bottom-up-logic");
    flow.skip_when("fanout-repair", |_| true);
    let out = flow
        .run(&mut milo, &case, &Constraints::none())
        .expect("skipping flow runs");
    assert!(
        non_dangling(&out.result.netlist).is_empty(),
        "{:?}",
        non_dangling(&out.result.netlist)
    );
    check_comb_equivalence(&baseline, &out.result.netlist, 256).expect("function preserved");
    let skipped: Vec<_> = out.report.passes.iter().filter(|p| p.skipped).collect();
    assert_eq!(skipped.len(), 1);
    assert_eq!(skipped[0].name, "fanout-repair");

    // Reorder: run the time/area optimizer before the electric critic
    // (a removed boxed pass is itself a pass, so it re-inserts as-is).
    let mut milo2 = Milo::new(ecl_library());
    let mut flow2 = milo2.flow();
    let timing_area = flow2.remove("timing-area").expect("pass exists");
    flow2.insert_before("fanout-repair", timing_area);
    let out2 = flow2
        .run(&mut milo2, &case, &Constraints::none())
        .expect("reordered flow runs");
    assert!(
        non_dangling(&out2.result.netlist).is_empty(),
        "{:?}",
        non_dangling(&out2.result.netlist)
    );
    check_comb_equivalence(&baseline, &out2.result.netlist, 256).expect("function preserved");
}

/// A custom pass: counts mapped cells, applying nothing.
struct CellCensus {
    seen: usize,
}

impl Pass for CellCensus {
    fn name(&self) -> &str {
        "cell-census"
    }
    fn run(&mut self, ctx: &mut milo::FlowContext<'_>) -> Result<PassReport, milo::MiloError> {
        ctx.ensure_mapped()?;
        self.seen = ctx
            .work
            .component_ids()
            .filter(|&id| {
                matches!(
                    ctx.work.component(id).map(|c| &c.kind),
                    Ok(milo_netlist::ComponentKind::Tech(_))
                )
            })
            .count();
        Ok(PassReport::noted(0, format!("{} mapped cells", self.seen)))
    }
}

#[test]
fn custom_pass_insertion_and_observer() {
    let case = fig19::circuit3();
    let mut milo = Milo::new(ecl_library());
    let mut flow = milo.flow();
    flow.insert_after("bottom-up-logic", CellCensus { seen: 0 });

    let events = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let sink = std::sync::Arc::clone(&events);
    flow.observe(move |e| {
        let line = match e {
            FlowEvent::FlowStarted { design, passes } => format!("start {design} {passes}"),
            FlowEvent::PassStarted { name, .. } => format!("pass {name}"),
            FlowEvent::PassFinished { report, .. } => format!("done {}", report.name),
        };
        sink.lock().expect("observer lock").push(line);
    });

    let out = flow
        .run(&mut milo, &case, &Constraints::none())
        .expect("flow runs");
    assert_eq!(out.report.passes.len(), 6);
    assert_eq!(out.report.passes[3].name, "cell-census");
    assert!(out.report.passes[3].note.ends_with("mapped cells"));

    let events = events.lock().expect("events lock");
    assert_eq!(events[0], format!("start {} 6", case.name));
    assert_eq!(events.iter().filter(|l| l.starts_with("pass ")).count(), 6);
    assert_eq!(events.iter().filter(|l| l.starts_with("done ")).count(), 6);

    // The default flow samples statistics, so mapped-stage passes carry
    // before/after deltas, and the report serializes to JSON.
    let timing_pass = out
        .report
        .passes
        .iter()
        .find(|p| p.name == "timing-area")
        .expect("timing pass present");
    assert!(timing_pass.cells_delta().is_some());
    let json = out.to_json();
    for key in [
        "\"result\"",
        "\"flow\"",
        "\"passes\"",
        "\"rules_applied\"",
        "\"design\"",
        "\"stats\"",
        "\"baseline\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
}
