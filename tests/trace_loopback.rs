//! Loopback test for the `trace` op: Chrome trace-event JSON drained
//! over the wire must survive the service's own strict JSON parser and
//! come back well-formed — balanced `B`/`E` span pairs per thread, the
//! expected span names from every instrumented layer, and an empty
//! event list while tracing is disabled.
//!
//! This suite lives in its own integration-test binary on purpose: it
//! flips the process-wide tracing flag, and sibling tests running in
//! parallel threads mid-span would break the balance assertion.

use milo_core::Constraints;
use milo_serve::{spawn, Client, ServerConfig, SubmitOptions, Value};
use milo_techmap::ecl_library;

const DESIGN: &str = "design traced\ninput a b c\noutput y\n\
                      comp and2 g1 A0=a A1=b Y=t\ncomp or2 g2 A0=t A1=c Y=y\n";

/// Flattens a `trace` response into its event objects.
fn events(trace: &Value) -> Vec<Value> {
    trace
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("trace carries a traceEvents array")
        .to_vec()
}

fn field<'a>(event: &'a Value, key: &str) -> &'a Value {
    event.get(key).unwrap_or(&Value::Null)
}

/// Per-tid `B`/`E` balance: every begin has a later end on the same
/// thread, and no end arrives without an open begin.
fn is_balanced(events: &[Value]) -> bool {
    let mut open: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for e in events {
        let tid = field(e, "tid").as_u64().unwrap_or(0);
        match field(e, "ph").as_str() {
            Some("B") => *open.entry(tid).or_insert(0) += 1,
            Some("E") => {
                let depth = open.entry(tid).or_insert(0);
                if *depth == 0 {
                    return false;
                }
                *depth -= 1;
            }
            _ => {}
        }
    }
    open.values().all(|&d| d == 0)
}

fn span_names(events: &[Value]) -> Vec<String> {
    events
        .iter()
        .filter(|e| {
            matches!(
                field(e, "ph").as_str(),
                Some("B") | Some("X") | Some("i") | Some("I")
            )
        })
        .filter_map(|e| field(e, "name").as_str().map(str::to_owned))
        .collect()
}

#[test]
fn chrome_trace_round_trips_through_the_service_json() {
    // Phase 1 — tracing off (the default): the op answers, the event
    // list is empty, and nothing was buffered by the submissions.
    milo_trace::set_enabled(false);
    let _ = milo_trace::drain_chrome_json(); // flush any prior state
    let handle = spawn(
        ServerConfig::new(ecl_library())
            .with_addr("127.0.0.1:0")
            .with_workers(1),
    )
    .expect("service binds");
    let mut client = Client::connect(handle.addr()).expect("connects");
    let constraints = Constraints::none().with_max_delay(6.0);
    let job = client
        .submit_with(DESIGN, &constraints, &SubmitOptions::new())
        .expect("submits");
    let result = client.result(job).expect("round-trips");
    assert_eq!(result.get("state").and_then(Value::as_str), Some("done"));
    let quiet = client.trace().expect("trace op answers");
    assert!(
        events(&quiet).is_empty(),
        "disabled tracing must emit zero events"
    );

    // Phase 2 — tracing on: a fresh synthesis (new design name, so the
    // cache can't answer) must produce flow/pass/engine spans that
    // round-trip through `serve::json` balanced.
    milo_trace::set_enabled(true);
    let design2 = DESIGN.replace("traced", "traced2");
    let job2 = client
        .submit_with(&design2, &constraints, &SubmitOptions::new())
        .expect("submits");
    let result2 = client.result(job2).expect("round-trips");
    assert_eq!(result2.get("state").and_then(Value::as_str), Some("done"));

    // The worker closes its job span moments after publishing the
    // terminal state, so accumulate consuming drains until the picture
    // is complete and balanced.
    let mut all: Vec<Value> = Vec::new();
    for _ in 0..100 {
        all.extend(events(&client.trace().expect("trace op answers")));
        let names = span_names(&all);
        let complete = names.iter().any(|n| n.starts_with("job:"))
            && names.iter().any(|n| n.starts_with("flow:"))
            && names.iter().any(|n| n.starts_with("pass:"))
            && names.iter().any(|n| n == "job.submit");
        if complete && is_balanced(&all) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    milo_trace::set_enabled(false);

    let names = span_names(&all);
    for expected in ["job:", "flow:", "pass:"] {
        assert!(
            names.iter().any(|n| n.starts_with(expected)),
            "missing a {expected}* span in {names:?}"
        );
    }
    assert!(
        names.iter().any(|n| n == "job.submit"),
        "missing the job.submit instant in {names:?}"
    );
    assert!(is_balanced(&all), "B/E pairs must balance per thread");

    // Every event row is well-formed Chrome trace shape: a string
    // name, a phase, and integer pid/tid.
    for e in &all {
        assert!(field(e, "name").as_str().is_some(), "event has a name: {e}");
        assert!(field(e, "ph").as_str().is_some(), "event has a phase: {e}");
        assert!(field(e, "pid").as_u64().is_some(), "event has a pid: {e}");
        assert!(field(e, "tid").as_u64().is_some(), "event has a tid: {e}");
    }

    // Metadata rows name the service threads, so Perfetto's track
    // labels are human-readable.
    assert!(
        all.iter().any(|e| {
            field(e, "ph").as_str() == Some("M") && field(e, "name").as_str() == Some("thread_name")
        }),
        "thread_name metadata rows present"
    );

    drop(client);
    drop(handle);
    let _ = milo_trace::drain_chrome_json(); // leave the process clean
}
