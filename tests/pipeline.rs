//! End-to-end integration tests spanning every crate: entry → critic →
//! compilers → mapper → optimizer, with behavioural equivalence checks.

use milo::circuits::{abadd, fig19, random_logic};
use milo::{parse_netlist, Constraints, Milo};
use milo_compilers::verify::{check_comb_equivalence, check_seq_equivalence};
use milo_netlist::{validate, PinDir, Violation};
use milo_techmap::{cmos_library, ecl_library, map_netlist};
use milo_timing::statistics;

fn non_dangling(nl: &milo_netlist::Netlist) -> Vec<Violation> {
    validate(nl, true)
        .into_iter()
        .filter(|v| !matches!(v, Violation::DanglingOutput { .. }))
        .collect()
}

#[test]
fn fig19_gate_circuit_full_pipeline_equivalence() {
    let case = fig19::circuit3();
    let mut milo = Milo::new(ecl_library());
    let baseline = milo.elaborate_unoptimized(&case).expect("baseline");
    let result = milo
        .synthesize(&case, &Constraints::none())
        .expect("synthesis");
    assert!(result.stats.area <= result.baseline.area);
    assert!(
        non_dangling(&result.netlist).is_empty(),
        "{:?}",
        non_dangling(&result.netlist)
    );
    check_comb_equivalence(&baseline, &result.netlist, 256).expect("function preserved");
}

#[test]
fn fig19_micro_circuit_full_pipeline_equivalence() {
    let case = fig19::circuit8();
    let mut milo = Milo::new(ecl_library());
    let baseline = milo.elaborate_unoptimized(&case).expect("baseline");
    let result = milo
        .synthesize(&case, &Constraints::none())
        .expect("synthesis");
    let critic = result.critic.as_ref().expect("micro entry");
    assert!(critic.fired.contains(&"adder-register-to-counter"));
    assert!(result.stats.area < result.baseline.area);
    check_seq_equivalence(&baseline, &result.netlist, 50, 23).expect("behaviour preserved");
}

#[test]
fn timing_constraint_is_met_and_respected() {
    let case = fig19::circuit4();
    let mut milo = Milo::new(ecl_library());
    let loose = milo.synthesize(&case, &Constraints::none()).expect("loose");
    let target = loose.stats.delay * 0.85;
    let tight = milo
        .synthesize(&case, &Constraints::none().with_max_delay(target))
        .expect("tight");
    assert!(tight.timing.met, "{:?}", tight.timing);
    assert!(tight.stats.delay <= target + 1e-9);
}

#[test]
fn abadd_through_core_pipeline() {
    let entry = abadd();
    let mut milo = Milo::new(ecl_library());
    let baseline = milo.elaborate_unoptimized(&entry).expect("baseline");
    let result = milo
        .synthesize(&entry, &Constraints::none())
        .expect("synthesis");
    // Fig. 18: merged mux-FF macros appear.
    let mxff = result
        .netlist
        .component_ids()
        .filter(|&id| {
            matches!(
                result.netlist.component(id).map(|c| &c.kind),
                Ok(milo_netlist::ComponentKind::Tech(c)) if c.name.starts_with("MXFF")
            )
        })
        .count();
    assert!(mxff >= 4, "expected merged mux-FF macros, got {mxff}");
    check_seq_equivalence(&baseline, &result.netlist, 60, 31).expect("behaviour preserved");
}

#[test]
fn parse_synthesize_roundtrip() {
    let src = "
design parsed
input a b c
output y z
comp and3 g1 A0=a A1=b A2=c Y=t
comp inv  g2 A0=t Y=u
comp inv  g3 A0=u Y=y
comp xor2 g4 A0=a A1=c Y=z
";
    let nl = parse_netlist(src).expect("parses");
    let mut milo = Milo::new(cmos_library());
    let baseline = milo.elaborate_unoptimized(&nl).expect("baseline");
    let result = milo
        .synthesize(&nl, &Constraints::none())
        .expect("synthesis");
    // The inverter pair around t must be gone.
    assert!(result.stats.cells < baseline.component_count());
    check_comb_equivalence(&baseline, &result.netlist, 0).expect("equivalent");
}

#[test]
fn random_logic_survives_both_libraries() {
    for (seed, lib) in [(11u64, ecl_library()), (12, cmos_library())] {
        let nl = random_logic(80, 10, seed);
        let mut milo = Milo::new(lib);
        let baseline = milo.elaborate_unoptimized(&nl).expect("baseline");
        let result = milo
            .synthesize(&nl, &Constraints::none())
            .expect("synthesis");
        assert!(result.stats.area <= statistics(&baseline).expect("stats").area + 1e-9);
        check_comb_equivalence(&baseline, &result.netlist, 600).expect("equivalent");
    }
}

#[test]
fn compiler_cache_reused_across_runs() {
    let mut milo = Milo::new(ecl_library());
    milo.synthesize(&abadd(), &Constraints::none())
        .expect("first run");
    let designs_after_first = milo.database().len();
    milo.synthesize(&abadd(), &Constraints::none())
        .expect("second run");
    // Only the per-run top-level entries are new; the compiled component
    // designs (ADD4, MUX2:1:4, REG4…) are cache hits.
    assert!(milo.database().contains("ADD4"));
    assert!(milo.database().len() <= designs_after_first + 3);
}

#[test]
fn dagon_baseline_agrees_with_lookup_mapper() {
    // The "algorithms only" baseline and the lookup mapper implement the
    // same function on pure gate circuits.
    let nl = random_logic(60, 8, 99);
    let lib = cmos_library();
    let direct = map_netlist(&nl, &lib).expect("maps");
    let dagon = milo_techmap::dagon_map(&nl, &lib, milo_techmap::Objective::Area).expect("maps");
    check_comb_equivalence(&direct, &dagon, 512).expect("equivalent");
}

#[test]
fn ports_survive_synthesis() {
    let case = fig19::circuit1();
    let mut milo = Milo::new(ecl_library());
    let result = milo
        .synthesize(&case, &Constraints::none())
        .expect("synthesis");
    let inputs =
        |nl: &milo_netlist::Netlist| nl.ports().iter().filter(|p| p.dir == PinDir::In).count();
    assert_eq!(inputs(&case), inputs(&result.netlist));
    assert_eq!(case.ports().len(), result.netlist.ports().len());
}

#[test]
fn per_path_constraint_targets_one_output() {
    // Circuit 4 has three outputs (eq, lt, gt). Constrain only `lt`.
    let case = fig19::circuit4();
    let mut milo = Milo::new(ecl_library());
    let loose = milo.synthesize(&case, &Constraints::none()).expect("loose");
    // Find the unconstrained arrival of `lt`.
    let sta = milo_timing::analyze(&loose.netlist).expect("sta");
    let lt_net = loose.netlist.port("lt").expect("lt port").net;
    let lt_arrival = sta.arrival(lt_net);
    let target = lt_arrival * 0.8;
    let tight = milo
        .synthesize(&case, &Constraints::none().with_path_delay("lt", target))
        .expect("tight");
    assert!(tight.timing.met, "{:?}", tight.timing);
    let sta2 = milo_timing::analyze(&tight.netlist).expect("sta");
    let lt_net2 = tight.netlist.port("lt").expect("lt port").net;
    assert!(
        sta2.arrival(lt_net2) <= target + 1e-9,
        "constrained path meets its requirement: {} vs {}",
        sta2.arrival(lt_net2),
        target
    );
}
