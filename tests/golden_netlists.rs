//! Golden regression tests for the optimizer's *results*, not its
//! speed: final netlist statistics (cell count, area, critical-path
//! delay) for three representative designs. Matcher or engine changes
//! that alter which rewrites fire — e.g. a conflict-set ordering bug in
//! the incremental `MatchIndex` — fail here loudly instead of slipping
//! through as a silent quality regression. If a change *intentionally*
//! improves results, update the constants (and say so in the PR).

use milo::circuits::{abadd, fig19, random_logic};
use milo::{Constraints, Milo};
use milo_bench::metarule_rules::metarule_rule_set;
use milo_rules::Engine;
use milo_techmap::{cmos_library, ecl_library, map_netlist};
use milo_timing::statistics;

fn assert_close(what: &str, got: f64, want: f64) {
    assert!(
        (got - want).abs() <= want.abs() * 1e-9 + 1e-9,
        "{what}: got {got}, want {want}"
    );
}

#[test]
fn golden_fig19_circuit3_pipeline() {
    let mut milo = Milo::new(ecl_library());
    let result = milo
        .synthesize(&fig19::circuit3(), &Constraints::none())
        .expect("synthesizes");
    let s = &result.stats;
    assert_eq!(s.cells, 6, "area {} delay {}", s.area, s.delay);
    assert_close("area", s.area, 8.2);
    assert_close("delay", s.delay, 2.2922);
}

#[test]
fn golden_abadd_datapath_pipeline() {
    let mut milo = Milo::new(ecl_library());
    let result = milo
        .synthesize(&abadd(), &Constraints::none())
        .expect("synthesizes");
    let s = &result.stats;
    assert_eq!(s.cells, 9, "area {} delay {}", s.area, s.delay);
    assert_close("area", s.area, 27.8);
    assert_close("delay", s.delay, 4.52);
}

/// The three golden synthesis designs through `synthesize_batch`: the
/// batched path runs the same Pass API stages, so it must reproduce the
/// committed per-design snapshots exactly, in input order.
#[test]
fn golden_batch_matches_sequential_snapshots() {
    let designs = [fig19::circuit3(), abadd(), random_logic(80, 10, 7)];
    let mut milo = Milo::new(ecl_library());
    let results = milo
        .synthesize_batch(&designs, &Constraints::none())
        .expect("batch synthesizes");
    assert_eq!(results.len(), 3);

    // fig19 circuit 3 — same constants as the sequential golden above.
    let s = &results[0].stats;
    assert_eq!(s.cells, 6, "area {} delay {}", s.area, s.delay);
    assert_close("c3 area", s.area, 8.2);
    assert_close("c3 delay", s.delay, 2.2922);

    // ABADD datapath — same constants as the sequential golden above.
    let s = &results[1].stats;
    assert_eq!(s.cells, 9, "area {} delay {}", s.area, s.delay);
    assert_close("abadd area", s.area, 27.8);
    assert_close("abadd delay", s.delay, 4.52);

    // 80-gate random logic — pinned here (no sequential twin above).
    let s = &results[2].stats;
    let mut seq = Milo::new(ecl_library());
    let want = seq
        .synthesize(&random_logic(80, 10, 7), &Constraints::none())
        .expect("sequential synthesizes");
    assert_eq!(
        s.cells, want.stats.cells,
        "area {} delay {}",
        s.area, s.delay
    );
    assert_close("rand area", s.area, want.stats.area);
    assert_close("rand delay", s.delay, want.stats.delay);
}

#[test]
fn golden_random_logic_sweeps() {
    let lib = cmos_library();
    let mut nl = map_netlist(&random_logic(200, 16, 9), &lib).expect("maps");
    let mut engine = Engine::new(metarule_rule_set(&lib));
    let fired = engine.run_sweeps(&mut nl, None, 20);
    let s = statistics(&nl).expect("analyzes");
    assert_eq!(
        (fired, s.cells),
        (28, 211),
        "area {} delay {}",
        s.area,
        s.delay
    );
    assert_close("area", s.area, 263.37);
    assert_close("delay", s.delay, 17.445);
}
