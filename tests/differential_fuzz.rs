//! Differential fuzz over the scenario zoo: every generated design must
//! synthesize identically through `Flow::standard()`, the `Milo::synthesize`
//! shim, and `synthesize_batch`, validate cleanly, and stay functionally
//! equivalent to its unoptimized elaboration.
//!
//! This tier-1 run keeps the seed count small (debug builds are slow);
//! the full sweep lives in the `milo-bench` `fuzz` bin:
//! `cargo run --release -p milo-bench --bin fuzz -- --seeds 100`.
//!
//! To replay a failure from either harness, set `MILO_FUZZ_SEED=<seed>` —
//! it overrides the default seed range here too.

use milo_bench::fuzz::{fuzz_case, seeds_from_env};

#[test]
fn differential_fuzz_smoke() {
    // Eight seeds starting at 1: covers every generator family in the
    // seed→case mapping without dominating tier-1 wall time.
    let seeds = seeds_from_env(1, 8);
    let mut failures = Vec::new();
    for &seed in &seeds {
        if let Err(msg) = fuzz_case(seed) {
            failures.push(msg);
        }
    }
    assert!(
        failures.is_empty(),
        "{} seed(s) diverged:\n{}",
        failures.len(),
        failures.join("\n")
    );
}
