//! Seed-pinned golden fingerprints for every scenario-zoo generator
//! family (plus the long-standing `random_logic`).
//!
//! The differential-fuzz harness and the `scale/*` benches both lean on
//! the generators being bit-for-bit deterministic *across releases*: a
//! replayed `MILO_FUZZ_SEED` must rebuild the exact failing design, and
//! a bench delta must mean the synthesizer changed, not the workload.
//! These constants pin that contract — if a generator (or the vendored
//! `StdRng` stream it consumes) changes shape, the hash moves and this
//! test names the family that broke.
//!
//! When a generator change is *intentional*, regenerate the constant:
//! `milo_netlist::structural_hash(&<family>(<args>))` and update the pin
//! together with a note in the commit message.

use milo::circuits::{
    fsm_bank, high_fanout, pipelined_datapath, random_control, random_logic, reconvergent_ladder,
};
use milo_netlist::{structural_hash, structural_summary, Netlist};

fn pin(name: &str, nl: &Netlist, expect: u64) {
    let got = structural_hash(nl);
    assert_eq!(
        got,
        expect,
        "{name}: structural hash moved (got 0x{got:016x}, pinned 0x{expect:016x}).\n\
         If the generator change is intentional, re-pin the constant.\n\
         Summary head:\n{}",
        structural_summary(nl)
            .lines()
            .take(12)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn pipelined_datapath_pinned() {
    pin(
        "pipelined_datapath(3, 4, 42)",
        &pipelined_datapath(3, 4, 42),
        0xb4c6_a160_b9ec_baf5,
    );
}

#[test]
fn random_control_pinned() {
    pin(
        "random_control(500, 12, 42)",
        &random_control(500, 12, 42),
        0x9f1f_4ab9_ed90_68ec,
    );
}

#[test]
fn fsm_bank_pinned() {
    pin(
        "fsm_bank(3, 2, 42)",
        &fsm_bank(3, 2, 42),
        0xca4b_e299_6cd6_52e0,
    );
}

#[test]
fn high_fanout_pinned() {
    pin(
        "high_fanout(24, 42)",
        &high_fanout(24, 42),
        0xddde_353a_7410_5cca,
    );
}

#[test]
fn reconvergent_ladder_pinned() {
    pin(
        "reconvergent_ladder(12, 42)",
        &reconvergent_ladder(12, 42),
        0xdc4b_2b32_1c81_7654,
    );
}

#[test]
fn random_logic_pinned() {
    pin(
        "random_logic(80, 10, 7)",
        &random_logic(80, 10, 7),
        0xe09f_80f9_c643_f04e,
    );
}

/// The hash is a digest of the summary: if the two ever disagree on
/// what "the structure" is, replayability tooling built on either one
/// silently diverges from the other.
#[test]
fn hash_digests_summary() {
    let nl = random_control(200, 8, 3);
    let a = structural_hash(&nl);
    let b = structural_hash(&nl.clone());
    assert_eq!(a, b, "hash must be pure");
    assert_ne!(
        structural_summary(&nl),
        structural_summary(&random_control(200, 8, 4)),
        "different seeds must differ structurally"
    );
}
