//! Property-based tests over the core invariants, spanning crates.

use milo_compilers::verify::{check_comb_equivalence, check_seq_equivalence, micro_wrapper};
use milo_logic::{espresso, good_factor, Cover, TruthTable};
use milo_netlist::{
    ArithOps, CarryMode, CmpOp, ControlSet, CounterFunctions, DesignDb, GateFn, MicroComponent,
    RegFunctions, Trigger,
};
use milo_rules::{Engine, Selection};
use milo_techmap::{cmos_library, ecl_library, map_netlist};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// ESPRESSO minimization preserves the function exactly and never
    /// increases the literal count.
    #[test]
    fn espresso_preserves_function(vars in 2u8..=5, bits in any::<u64>()) {
        let mask = if vars == 6 { u64::MAX } else { (1u64 << (1u32 << vars)) - 1 };
        let tt = TruthTable::new(vars, bits & mask);
        let flat = Cover::from_truth(&tt);
        let res = espresso::minimize(&flat, None);
        prop_assert_eq!(res.cover.to_truth(), tt);
        prop_assert!(res.literals_after <= res.literals_before);
        prop_assert!(espresso::verify(&res.cover, &flat, None));
    }

    /// Weak-division factoring preserves the function.
    #[test]
    fn factoring_preserves_function(vars in 2u8..=5, bits in any::<u64>()) {
        let mask = if vars == 6 { u64::MAX } else { (1u64 << (1u32 << vars)) - 1 };
        let tt = TruthTable::new(vars, bits & mask);
        let cover = espresso::minimize(&Cover::from_truth(&tt), None).cover;
        let expr = good_factor(&cover);
        for row in 0..(1u32 << vars) {
            prop_assert_eq!(expr.eval(row), tt.eval(row), "row {}", row);
        }
        prop_assert!(expr.literal_count() <= cover.literal_count());
    }

    /// The arithmetic-unit compiler is correct for every parameter
    /// combination (checked against the word-level model by simulation).
    #[test]
    fn arith_compiler_correct(
        bits in 1u8..=5,
        add in any::<bool>(),
        sub in any::<bool>(),
        inc in any::<bool>(),
        dec in any::<bool>(),
        cla in any::<bool>(),
    ) {
        let ops = ArithOps { add, sub, inc, dec };
        prop_assume!(!ops.ops().is_empty());
        let mode = if cla { CarryMode::CarryLookahead } else { CarryMode::Ripple };
        let micro = MicroComponent::ArithmeticUnit { bits, ops, mode };
        let mut db = DesignDb::new();
        let name = milo_compilers::compile(&micro, &mut db).expect("compiles");
        let flat = db.flatten(&name).expect("flattens");
        check_comb_equivalence(&micro_wrapper(micro), &flat, 2000)
            .map_err(TestCaseError::fail)?;
    }

    /// The register compiler is correct for every parameter combination.
    #[test]
    fn register_compiler_correct(
        bits in 1u8..=4,
        shift_left in any::<bool>(),
        shift_right in any::<bool>(),
        set in any::<bool>(),
        reset in any::<bool>(),
        enable in any::<bool>(),
    ) {
        let funcs = RegFunctions { load: true, shift_left, shift_right };
        let ctrl = ControlSet { set, reset, enable };
        let micro = MicroComponent::Register {
            bits,
            trigger: Trigger::EdgeTriggered,
            funcs,
            ctrl,
        };
        let mut db = DesignDb::new();
        let name = milo_compilers::compile(&micro, &mut db).expect("compiles");
        let flat = db.flatten(&name).expect("flattens");
        check_seq_equivalence(&micro_wrapper(micro), &flat, 120, 5)
            .map_err(TestCaseError::fail)?;
    }

    /// The counter compiler is correct for every parameter combination.
    #[test]
    fn counter_compiler_correct(
        bits in 1u8..=4,
        load in any::<bool>(),
        up in any::<bool>(),
        down in any::<bool>(),
        reset in any::<bool>(),
        enable in any::<bool>(),
    ) {
        let funcs = CounterFunctions { load, up, down };
        let ctrl = ControlSet { set: false, reset, enable };
        let micro = MicroComponent::Counter { bits, funcs, ctrl };
        let mut db = DesignDb::new();
        let name = milo_compilers::compile(&micro, &mut db).expect("compiles");
        let flat = db.flatten(&name).expect("flattens");
        check_seq_equivalence(&micro_wrapper(micro), &flat, 150, 9)
            .map_err(TestCaseError::fail)?;
    }

    /// The comparator compiler is correct for every predicate and width.
    #[test]
    fn comparator_compiler_correct(bits in 1u8..=5, op_idx in 0usize..6) {
        let function = [CmpOp::Eq, CmpOp::Lt, CmpOp::Gt, CmpOp::Le, CmpOp::Ge, CmpOp::Ne][op_idx];
        let micro = MicroComponent::Comparator { bits, function };
        let mut db = DesignDb::new();
        let name = milo_compilers::compile(&micro, &mut db).expect("compiles");
        let flat = db.flatten(&name).expect("flattens");
        check_comb_equivalence(&micro_wrapper(micro), &flat, 2000)
            .map_err(TestCaseError::fail)?;
    }

    /// Technology mapping preserves combinational behaviour on random
    /// logic, in both libraries.
    #[test]
    fn mapping_preserves_random_logic(seed in 0u64..5000, ecl in any::<bool>()) {
        let nl = milo::circuits::random_logic(40, 8, seed);
        let lib = if ecl { ecl_library() } else { cmos_library() };
        let mapped = map_netlist(&nl, &lib).expect("maps");
        check_comb_equivalence(&nl, &mapped, 300).map_err(TestCaseError::fail)?;
    }

    /// The logic-critic rule engine never changes circuit behaviour.
    #[test]
    fn logic_rules_preserve_function(seed in 0u64..5000) {
        let lib = cmos_library();
        let nl = milo::circuits::random_logic(50, 8, seed);
        let mapped = map_netlist(&nl, &lib).expect("maps");
        let mut work = mapped.clone();
        let mut engine = Engine::new(milo_opt::logic_rules(&lib));
        engine.run(&mut work, Selection::OpsOrder, None, 500);
        check_comb_equivalence(&mapped, &work, 300).map_err(TestCaseError::fail)?;
    }

    /// Wide-gate compilation matches the gate function for every width.
    #[test]
    fn wide_gate_compiler_correct(inputs in 2u8..=10, fn_idx in 0usize..6) {
        let function = [GateFn::And, GateFn::Or, GateFn::Nand, GateFn::Nor, GateFn::Xor, GateFn::Xnor][fn_idx];
        let micro = MicroComponent::Gate { function, inputs };
        let mut db = DesignDb::new();
        let name = milo_compilers::compile(&micro, &mut db).expect("compiles");
        let flat = db.flatten(&name).expect("flattens");
        check_comb_equivalence(&micro_wrapper(micro), &flat, 1024)
            .map_err(TestCaseError::fail)?;
    }

    /// The multiplexor compiler is correct for every width/way/enable
    /// combination the generic library supports.
    #[test]
    fn mux_compiler_correct(
        bits in 1u8..=3,
        ways_log in 1u32..=3,
        enable in any::<bool>(),
    ) {
        let inputs = 1u8 << ways_log;
        let micro = MicroComponent::Multiplexor { bits, inputs, enable };
        let mut db = DesignDb::new();
        let name = milo_compilers::compile(&micro, &mut db).expect("compiles");
        let flat = db.flatten(&name).expect("flattens");
        check_comb_equivalence(&micro_wrapper(micro), &flat, 2000)
            .map_err(TestCaseError::fail)?;
    }

    /// The decoder compiler is correct for every width/enable combination.
    #[test]
    fn decoder_compiler_correct(bits in 1u8..=4, enable in any::<bool>()) {
        let micro = MicroComponent::Decoder { bits, enable };
        let mut db = DesignDb::new();
        let name = milo_compilers::compile(&micro, &mut db).expect("compiles");
        let flat = db.flatten(&name).expect("flattens");
        check_comb_equivalence(&micro_wrapper(micro), &flat, 0)
            .map_err(TestCaseError::fail)?;
    }

    /// The logic-unit compiler is correct across functions/widths/fanins.
    #[test]
    fn logic_unit_compiler_correct(
        bits in 1u8..=3,
        inputs in 2u8..=6,
        fn_idx in 0usize..6,
    ) {
        let function = [GateFn::And, GateFn::Or, GateFn::Nand, GateFn::Nor, GateFn::Xor, GateFn::Xnor][fn_idx];
        let micro = MicroComponent::LogicUnit { function, inputs, bits };
        let mut db = DesignDb::new();
        let name = milo_compilers::compile(&micro, &mut db).expect("compiles");
        let flat = db.flatten(&name).expect("flattens");
        check_comb_equivalence(&micro_wrapper(micro), &flat, 2000)
            .map_err(TestCaseError::fail)?;
    }

    /// The LSS-style universal-gate conversion preserves behaviour and the
    /// follow-up inverter cleanup never changes it either.
    #[test]
    fn universal_conversion_preserves_function(seed in 0u64..5000, nor in any::<bool>()) {
        let nl = milo::circuits::random_logic(30, 6, seed);
        let family = if nor {
            milo_techmap::UniversalGate::Nor
        } else {
            milo_techmap::UniversalGate::Nand
        };
        let mut converted = milo_techmap::to_universal(&nl, family).expect("converts");
        check_comb_equivalence(&nl, &converted, 200).map_err(TestCaseError::fail)?;
        milo_techmap::simplify_inverters(&mut converted);
        check_comb_equivalence(&nl, &converted, 200).map_err(TestCaseError::fail)?;
    }
}
