//! Equivalence properties guarding the hot-path optimizations: the
//! hashed-dedup division, the memoized kernel extraction, the dense
//! containment pass, parallel per-output minimization, and the
//! incremental STA must all agree exactly with their straightforward
//! (pre-optimization) counterparts.

use milo_logic::{
    divide, espresso, good_factor, good_factor_with_cache, Cover, Cube, KernelCache, TruthTable,
};
use milo_netlist::{ComponentKind, Netlist, PinDir, PinRef, TechCell};
use milo_rules::{Engine, MatchIndex, RuleCtx, Tx};
use milo_techmap::{cmos_library, map_netlist};
use milo_timing::{analyze, IncrementalSta};
use proptest::prelude::*;

fn masked_truth(vars: u8, bits: u64) -> TruthTable {
    let mask = if vars >= 6 {
        u64::MAX
    } else {
        (1u64 << (1u32 << vars)) - 1
    };
    TruthTable::new(vars, bits & mask)
}

/// The pre-optimization algebraic division, verbatim: quadratic
/// `Vec::contains` candidate intersection and `produced` scan.
fn reference_divide(f: &Cover, d: &Cover) -> (Cover, Cover) {
    let nvars = f.nvars();
    if d.is_empty() {
        return (Cover::zero(nvars), f.clone());
    }
    let mut candidate_sets: Vec<Vec<Cube>> = Vec::new();
    for dc in d.cubes() {
        let mut set: Vec<Cube> = Vec::new();
        for fc in f.cubes() {
            if let Some(q) = fc.algebraic_quotient(dc) {
                if q.support_mask() & dc.support_mask() == 0 && !set.contains(&q) {
                    set.push(q);
                }
            }
        }
        candidate_sets.push(set);
    }
    let mut quotient_cubes: Vec<Cube> = Vec::new();
    if let Some((first, rest)) = candidate_sets.split_first() {
        'cand: for q in first {
            for set in rest {
                if !set.contains(q) {
                    continue 'cand;
                }
            }
            quotient_cubes.push(*q);
        }
    }
    let quotient = Cover::from_cubes(nvars, quotient_cubes);
    let mut produced: Vec<Cube> = Vec::new();
    for dc in d.cubes() {
        for qc in quotient.cubes() {
            produced.push(dc.intersect(qc));
        }
    }
    let remainder: Vec<Cube> = f
        .cubes()
        .iter()
        .filter(|fc| !produced.contains(fc))
        .copied()
        .collect();
    (quotient, Cover::from_cubes(nvars, remainder))
}

/// The pre-optimization single-cube containment, verbatim.
fn reference_containment(cover: &Cover) -> Vec<Cube> {
    let cubes = cover.cubes();
    let mut kept: Vec<Cube> = Vec::new();
    'outer: for (i, c) in cubes.iter().enumerate() {
        for (j, d) in cubes.iter().enumerate() {
            if i != j && d.contains(c) && !(c.contains(d) && i < j) {
                continue 'outer;
            }
        }
        kept.push(*c);
    }
    kept
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The hashed-set division returns cube-for-cube the same quotient
    /// and remainder as the quadratic reference, and preserves the
    /// division identity `f ≡ d·q + r` semantically.
    #[test]
    fn hashed_divide_matches_reference(vars in 2u8..=6, fbits in any::<u64>(), dbits in any::<u64>()) {
        let f = espresso::minimize(&Cover::from_truth(&masked_truth(vars, fbits)), None).cover;
        let d = espresso::minimize(&Cover::from_truth(&masked_truth(vars, dbits)), None).cover;
        let div = divide::divide(&f, &d);
        let (rq, rr) = reference_divide(&f, &d);
        prop_assert_eq!(div.quotient.cubes(), rq.cubes());
        prop_assert_eq!(div.remainder.cubes(), rr.cubes());
        // Division identity, checked by truth table.
        let dq = d.and(&div.quotient);
        let rebuilt = dq.or(&div.remainder);
        let mut all = rebuilt.clone();
        // d·q + r must cover exactly f (algebraic division never changes
        // the function).
        all.single_cube_containment();
        prop_assert_eq!(all.to_truth(), f.to_truth());
    }

    /// The hashed containment/dedup pass keeps exactly the cubes the
    /// quadratic reference kept, in the same order.
    #[test]
    fn containment_matches_reference(vars in 2u8..=6, bits in any::<u64>(), extra in any::<u64>()) {
        // A messy cover with duplicates and contained cubes.
        let base = Cover::from_truth(&masked_truth(vars, bits));
        let mut cover = base.clone();
        for c in Cover::from_truth(&masked_truth(vars, bits & extra)).cubes() {
            cover.push(*c); // duplicates of a subfunction's minterms
        }
        for c in espresso::minimize(&base, None).cover.cubes() {
            cover.push(*c); // large cubes containing earlier minterms
        }
        let expected = reference_containment(&cover);
        let mut got = cover.clone();
        got.single_cube_containment();
        prop_assert_eq!(got.cubes(), &expected[..]);
    }

    /// Memoized kernel extraction factors to the same expression as the
    /// uncached path, and the factored form preserves the function.
    #[test]
    fn kernel_cache_is_transparent(vars in 2u8..=6, bits in any::<u64>()) {
        let tt = masked_truth(vars, bits);
        let cover = espresso::minimize(&Cover::from_truth(&tt), None).cover;
        let plain = good_factor(&cover);
        let mut cache = KernelCache::new();
        let cached = good_factor_with_cache(&cover, &mut cache);
        prop_assert_eq!(&plain, &cached);
        // Run a second time through the warm cache: still identical.
        let warm = good_factor_with_cache(&cover, &mut cache);
        prop_assert_eq!(&plain, &warm);
        for row in 0..(1u32 << vars) {
            prop_assert_eq!(cached.eval(row), tt.eval(row), "row {}", row);
        }
    }

    /// Parallel per-output minimization returns exactly what one-by-one
    /// minimization returns, in input order.
    #[test]
    fn minimize_many_matches_sequential(count in 1usize..8, bits in any::<u64>(), step in any::<u64>()) {
        let covers: Vec<Cover> = (0..count as u64)
            .map(|k| Cover::from_truth(&masked_truth(5, bits ^ (step.wrapping_mul(k + 1)))))
            .collect();
        let many = espresso::minimize_many(&covers);
        prop_assert_eq!(many.len(), covers.len());
        for (m, c) in many.iter().zip(&covers) {
            let single = espresso::minimize(c, None);
            prop_assert_eq!(m.cover.cubes(), single.cover.cubes());
            prop_assert_eq!(m.cover.to_truth(), c.to_truth());
        }
    }

    /// Incremental STA equals from-scratch analysis after every rewrite
    /// of a randomized apply/undo sequence.
    #[test]
    fn incremental_sta_matches_analyze(seed in 0u64..400, script in any::<u64>()) {
        let lib = cmos_library();
        let mut nl = map_netlist(&milo::circuits::random_logic(50, 8, seed), &lib).expect("maps");
        let mut inc = IncrementalSta::new(&nl).expect("analyzes");
        let mut state = script | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..10 {
            let log = random_rewrite(&mut nl, &lib, next());
            let ts = log.touch_set();
            if next() & 1 == 0 {
                // Keep the rewrite.
                inc.refresh(&nl, &ts).expect("refreshes");
            } else {
                // Back it out — the same touch set describes the undo.
                log.undo(&mut nl);
                inc.refresh(&nl, &ts).expect("refreshes");
            }
            assert_sta_equal(&nl, &inc);
        }
    }

    /// The incremental `MatchIndex` conflict set equals the full-rescan
    /// conflict set after every step of a randomized apply/undo
    /// sequence — the matcher-side analog of
    /// `incremental_sta_matches_analyze`, mixing rule firings (the
    /// rewrites the engine itself produces) with the generic rewrite
    /// shapes of `random_rewrite`.
    #[test]
    fn match_index_equals_rescan(seed in 0u64..300, script in any::<u64>()) {
        let lib = cmos_library();
        let mut nl = map_netlist(&milo::circuits::random_logic(40, 8, seed), &lib).expect("maps");
        let mut rules = milo_opt::logic_rules(&lib);
        rules.push(Box::new(milo_opt::critics::FanoutRepair::new(lib.clone())));
        let engine = Engine::new(rules);
        let mut index = MatchIndex::build(engine.rules(), &RuleCtx { nl: &nl, sta: None }, None);
        assert_index_equals_rescan(&engine, &index, &nl);
        let mut state = script | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..10 {
            let r = next();
            // Half the steps fire one of the engine's own rule matches;
            // the other half run a generic random rewrite.
            let log = if r & 1 == 0 {
                let conflict = engine.conflict_set(&nl, None, None);
                if conflict.is_empty() {
                    random_rewrite(&mut nl, &lib, next())
                } else {
                    let (idx, m) = conflict[(r >> 8) as usize % conflict.len()].clone();
                    let mut tx = Tx::new(&mut nl);
                    let applied = engine.rules()[idx].apply(&mut tx, &m);
                    let log = tx.commit();
                    match applied {
                        Ok(()) => log,
                        Err(_) => {
                            // Rejected rewrite: back out, repair from the
                            // same touch set (it describes both directions).
                            let ts = log.touch_set();
                            log.undo(&mut nl);
                            index.repair(engine.rules(), &RuleCtx { nl: &nl, sta: None }, &ts);
                            assert_index_equals_rescan(&engine, &index, &nl);
                            continue;
                        }
                    }
                }
            } else {
                random_rewrite(&mut nl, &lib, next())
            };
            let ts = log.touch_set();
            if next() & 3 == 0 {
                // Back the rewrite out — the same touch set describes
                // the undo's repair.
                log.undo(&mut nl);
            }
            index.repair(engine.rules(), &RuleCtx { nl: &nl, sta: None }, &ts);
            assert_index_equals_rescan(&engine, &index, &nl);
        }
    }

    /// A full indexed sweep run with the rescan oracle enabled: every
    /// conflict set the engine serves from the repaired index is
    /// asserted equal to a full rescan, and the result still preserves
    /// the circuit function.
    #[test]
    fn indexed_sweeps_agree_with_oracle(seed in 0u64..60) {
        let lib = cmos_library();
        let mut nl = map_netlist(&milo::circuits::random_logic(60, 10, seed), &lib).expect("maps");
        let golden = nl.clone();
        let mut engine = Engine::new(milo_bench::metarule_rules::metarule_rule_set(&lib));
        engine.set_match_oracle(true);
        engine.run_sweeps(&mut nl, None, 20);
        milo_compilers::verify::check_comb_equivalence(&golden, &nl, 64).expect("function preserved");
    }
}

/// Multiset comparison of the index's conflict set against a raw
/// full-rescan of every rule (no refraction is recorded in these tests,
/// so `Engine::conflict_set` is exactly the rescan).
fn assert_index_equals_rescan(engine: &Engine, index: &MatchIndex, nl: &Netlist) {
    type Key = (
        usize,
        milo_netlist::ComponentId,
        Vec<milo_netlist::ComponentId>,
        Vec<PinRef>,
        usize,
        String,
    );
    let key = |(i, m): &(usize, milo_rules::RuleMatch)| -> Key {
        (
            *i,
            m.site,
            m.aux.clone(),
            m.pins.clone(),
            m.choice,
            m.note.clone(),
        )
    };
    let mut indexed: Vec<Key> = index.matches().iter().map(key).collect();
    let mut rescan: Vec<Key> = engine
        .conflict_set(nl, None, None)
        .iter()
        .map(key)
        .collect();
    indexed.sort();
    rescan.sort();
    assert_eq!(indexed, rescan, "index diverged from full rescan");
}

/// Applies one random local rewrite inside a transaction, returning the
/// undo log: a power-level kind change, a buffer splice, or an input pin
/// swap — the shapes the critics and strategies produce.
fn random_rewrite(
    nl: &mut Netlist,
    lib: &milo_techmap::TechLibrary,
    r: u64,
) -> milo_rules::UndoLog {
    let comps: Vec<_> = nl.component_ids().collect();
    let site = comps[(r >> 8) as usize % comps.len()];
    let cell = match &nl.component(site).expect("live").kind {
        ComponentKind::Tech(c) => c.clone(),
        _ => return Tx::new(nl).commit(),
    };
    let mut tx = Tx::new(nl);
    match r % 3 {
        0 => {
            // Swap to a power variant when one exists.
            let variant: Option<TechCell> = lib
                .faster_variant(&cell)
                .or_else(|| lib.slower_variant(&cell))
                .cloned();
            if let Some(v) = variant {
                tx.change_kind(site, ComponentKind::Tech(v))
                    .expect("compatible pins");
            }
        }
        1 => {
            // Splice a buffer after the site's output net.
            let y = tx.netlist().pin_net(site, "Y");
            if let (Some(y), Some(buf)) = (y, lib.buffer().cloned()) {
                let mid = tx.add_net("prop_mid");
                tx.move_loads(y, mid).expect("moves loads");
                let b = tx.add_component("prop_buf", ComponentKind::Tech(buf));
                tx.connect_named(b, "A0", y).expect("connects");
                let out = tx.add_net("prop_out");
                tx.connect_named(b, "Y", out).expect("connects");
                tx.move_loads(mid, out).expect("moves loads");
                tx.remove_net(mid).expect("mid is unused");
            }
        }
        _ => {
            // Swap the first two input pins of a multi-input gate.
            let comp = tx.netlist().component(site).expect("live");
            let ins: Vec<(u16, milo_netlist::NetId)> = comp
                .pins
                .iter()
                .enumerate()
                .filter(|(_, p)| p.dir == PinDir::In)
                .filter_map(|(i, p)| p.net.map(|n| (i as u16, n)))
                .collect();
            if ins.len() >= 2 && ins[0].1 != ins[1].1 {
                tx.disconnect(PinRef::new(site, ins[0].0))
                    .expect("disconnects");
                tx.disconnect(PinRef::new(site, ins[1].0))
                    .expect("disconnects");
                tx.connect(PinRef::new(site, ins[0].0), ins[1].1)
                    .expect("connects");
                tx.connect(PinRef::new(site, ins[1].0), ins[0].1)
                    .expect("connects");
            }
        }
    }
    tx.commit()
}

/// Bitwise comparison of the incremental analysis against a from-scratch
/// run: every net arrival, every endpoint, and the worst delay.
fn assert_sta_equal(nl: &Netlist, inc: &IncrementalSta) {
    let fresh = analyze(nl).expect("analyzes");
    for net in nl.net_ids() {
        assert_eq!(
            inc.sta().arrival(net).to_bits(),
            fresh.arrival(net).to_bits(),
            "arrival mismatch at {net:?}"
        );
    }
    assert_eq!(
        inc.sta().worst_delay().to_bits(),
        fresh.worst_delay().to_bits()
    );
    assert_eq!(inc.sta().endpoints().len(), fresh.endpoints().len());
    for (a, b) in inc.sta().endpoints().iter().zip(fresh.endpoints()) {
        assert_eq!(a.0, b.0, "endpoint identity");
        assert_eq!(a.1.to_bits(), b.1.to_bits(), "endpoint arrival");
        assert_eq!(a.2, b.2, "endpoint net");
    }
}
