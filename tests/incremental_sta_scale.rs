//! Scale regression tests for `IncrementalSta`'s full-rebuild fallbacks.
//!
//! The incremental refresh path is property-tested against from-scratch
//! `analyze` on small designs; these tests pin the two *fallback* triggers
//! at 10k gates — the scale where silently degenerating to full rebuilds
//! on every refresh (or, worse, refreshing from stale cached port tables)
//! would either tank sweep performance or corrupt arrival times:
//!
//! * a multi-driven net inside the refresh cone must force a rebuild;
//! * a port-list change must force a rebuild (the cached per-net port
//!   tables are stale);
//! * a healthy local rewrite (power-level kind change) must *not* force
//!   a rebuild, and must still match a fresh analysis exactly.

use milo::circuits::random_control;
use milo_netlist::{ComponentKind, Netlist, PinDir, TouchSet};
use milo_techmap::{cmos_library, ecl_library, map_netlist};
use milo_timing::{analyze, IncrementalSta};

const GATES: usize = 10_000;

fn big_mapped() -> Netlist {
    map_netlist(&random_control(GATES, 24, 11), &cmos_library()).expect("maps")
}

/// Every net's arrival (and the worst delay) must agree with a
/// from-scratch analysis of the same netlist.
fn assert_matches_fresh(inc: &IncrementalSta, nl: &Netlist) {
    let fresh = analyze(nl).expect("analyzes");
    for net in nl.net_ids() {
        let a = inc.sta().arrival(net);
        let b = fresh.arrival(net);
        assert!(
            (a - b).abs() < 1e-9,
            "net {net:?}: incremental arrival {a} vs fresh {b}"
        );
    }
    let (a, b) = (inc.sta().worst_delay(), fresh.worst_delay());
    assert!((a - b).abs() < 1e-9, "worst delay: {a} vs {b}");
}

#[test]
fn multi_driven_net_falls_back_to_rebuild() {
    let lib = cmos_library();
    let mut nl = big_mapped();
    let mut inc = IncrementalSta::new(&nl).expect("analyzes");
    assert_eq!(inc.full_rebuilds, 1, "only the initial build");

    // Attach a second driver to an already-driven net. Feeding the extra
    // buffer from a primary input keeps the graph acyclic.
    let victim = nl
        .net_ids()
        .find(|&n| nl.driver(n).is_some() && nl.load_count(n) > 0)
        .expect("a driven net with loads");
    let src = nl
        .ports()
        .iter()
        .find(|p| p.dir == PinDir::In)
        .expect("an input port")
        .net;
    let buf_cell = lib.buffer().expect("buffer cell").clone();
    let buf = nl.add_component("dup_drv", ComponentKind::Tech(buf_cell));
    nl.connect_named(buf, "A0", src).expect("connects");
    nl.connect_named(buf, "Y", victim).expect("connects");

    let mut touched = TouchSet::new();
    touched.component(buf);
    touched.net(victim);
    inc.refresh(&nl, &touched).expect("refreshes");
    assert_eq!(
        inc.full_rebuilds, 2,
        "a multi-driven net must force a full rebuild"
    );
    assert_matches_fresh(&inc, &nl);
}

#[test]
fn port_list_change_falls_back_to_rebuild() {
    let mut nl = big_mapped();
    let mut inc = IncrementalSta::new(&nl).expect("analyzes");
    assert_eq!(inc.full_rebuilds, 1, "only the initial build");

    // A new out port adds fanout (and thus delay) its net's cached port
    // tables know nothing about.
    let net = nl
        .net_ids()
        .find(|&n| nl.driver(n).is_some() && nl.load_count(n) > 0)
        .expect("a driven net");
    nl.add_port("late_probe", PinDir::Out, net);

    let mut touched = TouchSet::new();
    touched.net(net);
    inc.refresh(&nl, &touched).expect("refreshes");
    assert_eq!(
        inc.full_rebuilds, 2,
        "a port-list change must force a full rebuild"
    );
    assert_matches_fresh(&inc, &nl);
}

#[test]
fn power_level_kind_change_refreshes_without_rebuild() {
    // The ECL library carries power-level variants (the CMOS one does
    // not); it is also the library the default flow rewrites under.
    let lib = ecl_library();
    let mut nl = map_netlist(&random_control(GATES, 24, 11), &lib).expect("maps");
    let mut inc = IncrementalSta::new(&nl).expect("analyzes");
    assert_eq!(inc.full_rebuilds, 1, "only the initial build");

    // The timing-area pass's bread-and-butter rewrite: swap a cell for a
    // power variant of the same function. Pins are unchanged, so the
    // refresh must stay on the incremental cone path.
    let (victim, alt) = nl
        .component_ids()
        .find_map(|id| {
            let c = nl.component(id).ok()?;
            let ComponentKind::Tech(cell) = &c.kind else {
                return None;
            };
            if c.kind.is_sequential() {
                return None;
            }
            let alt = lib
                .power_variants(cell)
                .into_iter()
                .find(|v| v.name != cell.name)?
                .clone();
            Some((id, alt))
        })
        .expect("a cell with a power variant");
    nl.component_mut(victim).expect("live id").kind = ComponentKind::Tech(alt);

    let mut touched = TouchSet::new();
    touched.component(victim);
    inc.refresh(&nl, &touched).expect("refreshes");
    assert_eq!(
        inc.full_rebuilds, 1,
        "a healthy local rewrite must stay incremental"
    );
    assert!(inc.incremental_props > 0, "the cone must have recomputed");
    assert_matches_fresh(&inc, &nl);
}
