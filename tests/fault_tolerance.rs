//! Fault-tolerant flow execution: panic isolation, per-pass budgets,
//! checkpoint/rollback, batch partial failure, and the deterministic
//! fault-injection harness that exercises all of it. See
//! `docs/ROBUSTNESS.md` for the contract.

use milo::circuits::{abadd, fig19, random_logic};
use milo::{
    Constraints, FailureAction, FaultInjector, Milo, MiloError, PassOutcome, PassPolicy,
    RecoveryAction, RewriteBudget,
};
use milo_bench::metarule_rules::metarule_rule_set;
use milo_netlist::{validate, Netlist, NetlistError, Violation};
use milo_rules::{Engine, Rule, RuleClass, RuleCtx, RuleMatch, Tx};
use milo_techmap::{cmos_library, ecl_library, map_netlist};
use proptest::prelude::*;
use std::sync::Arc;

/// Structural fingerprint (same shape as `tests/flow_api.rs`):
/// components with pin bindings, nets, ports.
fn fingerprint(nl: &Netlist) -> String {
    use std::fmt::Write;
    let mut out = format!("design {} nets {}\n", nl.name, nl.net_count());
    for id in nl.component_ids() {
        let c = nl.component(id).expect("live id");
        write!(out, "comp {} {}", c.name, c.kind.label()).expect("write");
        for pin in &c.pins {
            if let Some(net) = pin.net {
                write!(out, " {}=n{}", pin.name, net.index()).expect("write");
            }
        }
        out.push('\n');
    }
    for p in nl.ports() {
        writeln!(out, "port {} {:?} n{}", p.name, p.dir, p.net.index()).expect("write");
    }
    out
}

fn non_dangling(nl: &Netlist) -> Vec<Violation> {
    validate(nl, true)
        .into_iter()
        .filter(|v| !matches!(v, Violation::DanglingOutput { .. }))
        .collect()
}

fn injector(spec: &str) -> Arc<FaultInjector> {
    Arc::new(FaultInjector::parse(spec).expect("valid fault spec"))
}

/// The headline acceptance scenario: a batch of 8 designs with 2
/// fault-injected (one panic that survives its retry, one corruption)
/// completes with 6 healthy results that match fresh sequential runs
/// exactly, plus 2 structured errors — the process never dies and the
/// healthy designs never notice.
#[test]
fn batch_partial_failure_isolates_faulty_designs() {
    let designs = [
        fig19::circuit3(),
        abadd(),
        random_logic(80, 10, 7),
        random_logic(40, 8, 1),
        random_logic(40, 8, 2), // panic target (twice: first run + retry)
        random_logic(40, 8, 3), // corruption target
        random_logic(50, 9, 4),
        random_logic(60, 10, 5),
    ];
    let mut milo = Milo::new(ecl_library());
    milo.set_fault_injector(injector(
        "panic@bottom-up-logic/rand40_2#2;corrupt@timing-area/rand40_3",
    ));
    let results = milo.synthesize_batch_results(&designs, &Constraints::none());
    assert_eq!(results.len(), 8);

    for (i, (nl, run)) in designs.iter().zip(&results).enumerate() {
        match i {
            4 => match run {
                Err(MiloError::PassPanicked {
                    pass,
                    design,
                    payload,
                    recovery,
                }) => {
                    assert_eq!(pass, "bottom-up-logic");
                    assert_eq!(design, "rand40_2");
                    assert!(payload.contains("injected fault"), "{payload}");
                    assert_eq!(
                        *recovery,
                        RecoveryAction::Retried,
                        "second charge hit the retry"
                    );
                }
                other => panic!("expected PassPanicked for rand40_2, got {other:?}"),
            },
            5 => match run {
                Err(MiloError::DesignCorrupt { design, detail }) => {
                    assert_eq!(design, "rand40_3");
                    assert!(detail.contains("drivers"), "{detail}");
                }
                other => panic!("expected DesignCorrupt for rand40_3, got {other:?}"),
            },
            _ => {
                let got = run.as_ref().unwrap_or_else(|e| {
                    panic!("healthy design {} failed: {e}", nl.name);
                });
                let mut seq = Milo::new(ecl_library());
                let want = seq
                    .synthesize(nl, &Constraints::none())
                    .expect("sequential synthesizes");
                assert_eq!(
                    fingerprint(&got.netlist),
                    fingerprint(&want.netlist),
                    "batch arm diverged from sequential for {}",
                    nl.name
                );
            }
        }
    }
}

/// `synthesize_batch` (the atomic API) keeps its historical contract:
/// first error in input order, nothing merged.
#[test]
fn atomic_batch_surfaces_first_error_in_input_order() {
    let designs = [
        random_logic(40, 8, 1),
        random_logic(40, 8, 2),
        random_logic(40, 8, 3),
    ];
    let mut milo = Milo::new(ecl_library());
    milo.set_fault_injector(injector(
        "corrupt@timing-area/rand40_3;panic@compile/rand40_2#2",
    ));
    let db_before = milo.database().len();
    let err = milo
        .synthesize_batch(&designs, &Constraints::none())
        .expect_err("two designs are faulted");
    // rand40_2 comes before rand40_3 in input order.
    match err {
        MiloError::PassPanicked { design, .. } => assert_eq!(design, "rand40_2"),
        other => panic!("expected the earlier design's panic, got {other:?}"),
    }
    assert_eq!(
        milo.database().len(),
        db_before,
        "failed batch merges nothing"
    );
}

/// A panicked arm whose fault has a single charge succeeds on its one
/// bounded retry — transient faults don't fail the design.
#[test]
fn batch_retry_recovers_single_charge_panic() {
    let designs = [random_logic(40, 8, 1), random_logic(40, 8, 2)];
    let mut milo = Milo::new(ecl_library());
    milo.set_fault_injector(injector("panic@bottom-up-logic/rand40_1#1"));
    let results = milo.synthesize_batch_results(&designs, &Constraints::none());
    for (nl, run) in designs.iter().zip(&results) {
        let got = run
            .as_ref()
            .unwrap_or_else(|e| panic!("{} failed despite retry: {e}", nl.name));
        let mut seq = Milo::new(ecl_library());
        let want = seq
            .synthesize(nl, &Constraints::none())
            .expect("sequential synthesizes");
        assert_eq!(fingerprint(&got.netlist), fingerprint(&want.netlist));
    }
}

/// Acceptance scenario two: `RollbackAndContinue` on an injected
/// `BottomUpLogic` panic still produces a valid mapped netlist, with
/// `degraded: true` in the JSON report and the pass marked rolled-back.
#[test]
fn rollback_and_continue_degrades_gracefully() {
    let mut milo = Milo::new(ecl_library());
    let mut flow = milo.flow();
    flow.with_policy(
        "bottom-up-logic",
        PassPolicy::on_failure(FailureAction::RollbackAndContinue),
    )
    .inject_faults(injector("panic@bottom-up-logic/fig19_3"));
    let out = flow
        .run(&mut milo, &fig19::circuit3(), &Constraints::none())
        .expect("flow degrades instead of dying");

    assert!(out.report.degraded);
    let p = out
        .report
        .passes
        .iter()
        .find(|p| p.name == "bottom-up-logic")
        .expect("pass reported");
    assert_eq!(p.outcome, PassOutcome::RolledBack);
    assert!(
        p.error.as_deref().is_some_and(|e| e.contains("panicked")),
        "{:?}",
        p.error
    );
    let json = out.report.to_json();
    assert!(json.contains("\"degraded\": true"), "{json}");
    assert!(json.contains("\"outcome\": \"rolled-back\""), "{json}");

    // The epilogue direct-mapped the compiled top: still a legal netlist.
    assert!(non_dangling(&out.result.netlist).is_empty());
    assert!(out.result.stats.cells > 0);
}

// A rolled-back pass must leave state byte-identical to its pre-pass
// checkpoint — so a flow that panics-and-rolls-back inside a pass ends
// up exactly where a flow that skipped the pass outright does.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn rollback_is_byte_identical_to_skipping(seed in 0u64..1000) {
        let nl = random_logic(40, 8, seed);

        let mut skip_milo = Milo::new(ecl_library());
        let mut skip_flow = skip_milo.flow();
        skip_flow.skip_when("bottom-up-logic", |_| true);
        let skipped = skip_flow
            .run(&mut skip_milo, &nl, &Constraints::none())
            .expect("skip flow runs");

        let mut rb_milo = Milo::new(ecl_library());
        let mut rb_flow = rb_milo.flow();
        rb_flow
            .with_policy(
                "bottom-up-logic",
                PassPolicy::on_failure(FailureAction::RollbackAndContinue),
            )
            .inject_faults(injector("panic@bottom-up-logic/*"));
        let rolled = rb_flow
            .run(&mut rb_milo, &nl, &Constraints::none())
            .expect("rollback flow runs");

        prop_assert!(rolled.report.degraded);
        prop_assert!(!skipped.report.degraded);
        prop_assert_eq!(
            fingerprint(&rolled.result.netlist),
            fingerprint(&skipped.result.netlist)
        );
    }
}

/// Budget exhaustion under `SkipPass` keeps the partial (valid, merely
/// over-budget) work and completes the flow, degraded.
#[test]
fn budget_exhaustion_skips_and_keeps_partial_work() {
    let mut milo = Milo::new(ecl_library());
    let mut flow = milo.flow();
    flow.with_policy(
        "bottom-up-logic",
        PassPolicy::on_failure(FailureAction::SkipPass).with_budget(RewriteBudget::rewrites(0)),
    );
    let out = flow
        .run(&mut milo, &random_logic(80, 10, 7), &Constraints::none())
        .expect("flow completes over budget");
    assert!(out.report.degraded);
    let p = out
        .report
        .passes
        .iter()
        .find(|p| p.name == "bottom-up-logic")
        .expect("pass reported");
    assert_eq!(p.outcome, PassOutcome::FailedSkipped);
    assert!(
        p.error.as_deref().is_some_and(|e| e.contains("budget")),
        "{:?}",
        p.error
    );
    assert!(non_dangling(&out.result.netlist).is_empty());
}

/// With validation checkpoints on, injected corruption is pinned to the
/// pass that caused it; rollback then recovers to a result identical to
/// a clean run (the recompile after rollback is deterministic).
#[test]
fn validation_checkpoint_pins_and_rollback_recovers() {
    let mut clean_milo = Milo::new(ecl_library());
    let clean = clean_milo
        .synthesize(&fig19::circuit3(), &Constraints::none())
        .expect("clean run");

    let mut milo = Milo::new(ecl_library());
    let mut flow = milo.flow();
    flow.sample_stats(false) // match the synthesize shim exactly
        .validate_each_pass(true)
        .with_policy(
            "compile",
            PassPolicy::on_failure(FailureAction::RollbackAndContinue),
        )
        .inject_faults(injector("corrupt@compile/fig19_3"));
    let out = flow
        .run(&mut milo, &fig19::circuit3(), &Constraints::none())
        .expect("rollback recovers");

    assert!(out.report.degraded);
    let p = out
        .report
        .passes
        .iter()
        .find(|p| p.name == "compile")
        .expect("pass reported");
    assert_eq!(p.outcome, PassOutcome::RolledBack);
    assert!(
        p.error.as_deref().is_some_and(|e| e.contains("validation")),
        "{:?}",
        p.error
    );
    assert_eq!(
        fingerprint(&out.result.netlist),
        fingerprint(&clean.netlist),
        "post-rollback recompile must reproduce the clean result"
    );
}

/// With validation checkpoints on and the default abort policy, the
/// error names the corrupting pass.
#[test]
fn validation_checkpoint_aborts_at_corrupting_pass() {
    let mut milo = Milo::new(ecl_library());
    let mut flow = milo.flow();
    flow.validate_each_pass(true)
        .inject_faults(injector("corrupt@compile/fig19_3"));
    let err = flow
        .run(&mut milo, &fig19::circuit3(), &Constraints::none())
        .expect_err("corruption must not produce a result");
    match err {
        MiloError::ValidationFailed {
            pass,
            design,
            violations,
            recovery,
        } => {
            assert_eq!(pass, "compile");
            assert_eq!(design, "fig19_3");
            assert!(!violations.is_empty());
            assert_eq!(recovery, RecoveryAction::Aborted);
        }
        other => panic!("expected ValidationFailed, got {other:?}"),
    }
}

/// Without per-pass validation, the epilogue's corruption gate still
/// refuses to map/report a structurally corrupt netlist.
#[test]
fn corruption_gate_catches_late_corruption() {
    let mut milo = Milo::new(ecl_library());
    let mut flow = milo.flow();
    flow.inject_faults(injector("corrupt@timing-area/fig19_3"));
    let err = flow
        .run(&mut milo, &fig19::circuit3(), &Constraints::none())
        .expect_err("corrupt netlist must not be reported");
    match err {
        MiloError::DesignCorrupt { design, detail } => {
            assert_eq!(design, "fig19_3");
            assert!(detail.contains("drivers"), "{detail}");
        }
        other => panic!("expected DesignCorrupt, got {other:?}"),
    }
}

/// A rule that does real transactional work (adds a net, removes a
/// component) and then panics — the worst case for mid-sweep recovery.
struct MidSweepPanic;

impl Rule for MidSweepPanic {
    fn name(&self) -> &'static str {
        "mid-sweep-panic"
    }
    fn class(&self) -> RuleClass {
        RuleClass::Logic
    }
    fn matches(&self, ctx: &RuleCtx) -> Vec<RuleMatch> {
        ctx.nl.component_ids().take(1).map(RuleMatch::at).collect()
    }
    fn apply(&self, tx: &mut Tx, m: &RuleMatch) -> Result<(), NetlistError> {
        tx.add_net("doomed_partial_net");
        tx.remove_component(m.site)?;
        panic!("injected mid-sweep fault");
    }
}

// Satellite property: an injected mid-sweep panic (with partially
// applied transactional mutations) plus a journal rollback leaves the
// netlist byte-identical to the checkpoint, for arbitrary designs —
// the engine-level half of checkpoint/rollback.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn midsweep_panic_and_rollback_restore_checkpoint(
        seed in 0u64..10_000,
        gates in 20usize..64,
    ) {
        let lib = cmos_library();
        let mut nl = map_netlist(&random_logic(gates, 8, seed), &lib).expect("maps");
        let mut rules = metarule_rule_set(&lib);
        rules.push(Box::new(MidSweepPanic));
        let mut engine = Engine::new(rules);
        engine.enable_journal();

        let mark = engine.journal_mark();
        let checkpoint = fingerprint(&nl);

        // Real metarule firings interleave with the panicking rule's
        // caught-and-undone attempts.
        let fired = engine.run_sweeps(&mut nl, None, 10);
        prop_assert_eq!(engine.journal_mark(), mark + fired);

        let undone = engine.rollback_to(&mut nl, mark);
        prop_assert_eq!(undone, fired);
        prop_assert_eq!(fingerprint(&nl), checkpoint);
    }
}

/// CI fault-injection matrix entry point: driven entirely by
/// `MILO_FAULT_INJECT`, ignored otherwise. Healthy (and successfully
/// retried) designs must match a clean, injector-disarmed run exactly;
/// targeted designs may instead fail with a structured fault error.
#[test]
#[ignore = "set MILO_FAULT_INJECT and run explicitly (CI fault-injection matrix)"]
fn fault_injection_matrix_golden_designs() {
    let spec = std::env::var("MILO_FAULT_INJECT").unwrap_or_default();
    assert!(
        !spec.trim().is_empty(),
        "this test is driven by MILO_FAULT_INJECT"
    );
    let targeted = |name: &str| {
        spec.split(';').any(|clause| {
            clause
                .split_once('/')
                .map(|(_, d)| {
                    let d = d.split('#').next().unwrap_or(d).trim();
                    d == "*" || d == name
                })
                .unwrap_or(false)
        })
    };

    let designs = [fig19::circuit3(), abadd(), random_logic(80, 10, 7)];
    let mut milo = Milo::new(ecl_library());
    let results = milo.synthesize_batch_results(&designs, &Constraints::none());

    for (nl, run) in designs.iter().zip(&results) {
        // An empty programmatic injector masks the env injector, so the
        // comparator run is guaranteed clean.
        let mut clean = Milo::new(ecl_library());
        clean.set_fault_injector(Arc::new(FaultInjector::new(Vec::new())));
        let want = clean
            .synthesize(nl, &Constraints::none())
            .expect("clean comparator run");
        match run {
            Ok(got) => {
                assert_eq!(
                    fingerprint(&got.netlist),
                    fingerprint(&want.netlist),
                    "{} does not match its clean golden output",
                    nl.name
                );
            }
            Err(e) => {
                assert!(
                    targeted(&nl.name),
                    "untargeted design {} failed: {e}",
                    nl.name
                );
                assert!(
                    matches!(
                        e,
                        MiloError::PassPanicked { .. }
                            | MiloError::DesignCorrupt { .. }
                            | MiloError::BudgetExceeded { .. }
                            | MiloError::ValidationFailed { .. }
                    ),
                    "fault must surface as a structured error, got: {e}"
                );
            }
        }
    }
}
