//! Loopback integration tests for the milo-serve daemon: the service's
//! determinism contract (per-job results byte-identical to the offline
//! batch driver), all three cache tiers (memory, disk, prefix),
//! eviction under a byte budget, disk warm-starts, priority/fairness
//! scheduling, batch submission, the v1.1 protocol envelope, fault
//! isolation, cancellation, and protocol robustness — all over real
//! TCP connections.

use milo_circuits::{abadd, fig19, pipelined_datapath, random_control, random_logic};
use milo_core::netlist::Netlist;
use milo_core::{
    emit_netlist, parse_netlist, Constraints, FaultInjector, FaultKind, FaultSpec, Milo,
};
use milo_serve::{spawn, Client, Priority, ServerConfig, SubmitOptions, Value};
use milo_techmap::ecl_library;
use std::sync::Arc;

/// CI runs this suite a second time with `MILO_SERVE_CACHE_BYTES` set
/// to a tiny budget, which evicts entries between submissions. The
/// determinism contract (byte-identical results) must hold anyway and
/// is always asserted; only assertions about *which tier answered*
/// are skipped under an overridden budget.
fn tiny_budget() -> bool {
    std::env::var("MILO_SERVE_CACHE_BYTES").is_ok()
}

/// A fresh private scratch directory for disk-cache tests.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("milo-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A design's wire text, plus the same design as the offline driver
/// will see it (the wire round-trip renames nets, so offline runs must
/// consume the parsed form, not the original).
fn wire(nl: &Netlist) -> (String, Netlist) {
    let text = emit_netlist(nl).expect("benchmark circuits emit cleanly");
    let parsed = parse_netlist(&text).expect("emitted text parses back");
    (text, parsed)
}

/// The offline ground truth: `synthesize_batch_results` over the
/// parsed designs, rendered to the same deterministic JSON the server
/// splices into responses.
fn offline_results(designs: &[Netlist], constraints: &Constraints) -> Vec<String> {
    let mut milo = Milo::new(ecl_library());
    milo.synthesize_batch_results(designs, constraints)
        .into_iter()
        .map(|r| r.expect("offline synthesis succeeds").to_json())
        .collect()
}

fn get_str<'a>(v: &'a Value, key: &str) -> &'a str {
    v.get(key).and_then(Value::as_str).unwrap_or("<missing>")
}

fn stat_u64(stats: &Value, path: &[&str]) -> u64 {
    let mut v = stats;
    for key in path {
        v = v.get(key).unwrap_or(&Value::Null);
    }
    v.as_u64().unwrap_or(u64::MAX)
}

#[test]
fn concurrent_jobs_byte_match_the_offline_batch() {
    let originals = [
        fig19::circuit3(),
        abadd(),
        random_logic(80, 16, 7),
        pipelined_datapath(2, 4, 3),
        random_control(60, 8, 5),
    ];
    let constraints = Constraints::none().with_max_delay(6.0);
    let pairs: Vec<(String, Netlist)> = originals.iter().map(wire).collect();
    let parsed: Vec<Netlist> = pairs.iter().map(|(_, nl)| nl.clone()).collect();
    let expected = offline_results(&parsed, &constraints);

    let handle = spawn(
        ServerConfig::new(ecl_library())
            .with_workers(3)
            .with_shards(4),
    )
    .expect("server binds");
    let addr = handle.addr();

    // One connection per job, all submitting at once: arrival order and
    // worker interleaving must not leak into the results.
    let responses: Vec<String> = std::thread::scope(|scope| {
        let threads: Vec<_> = pairs
            .iter()
            .map(|(text, _)| {
                let constraints = constraints.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connects");
                    let job = client
                        .submit_with(text, &constraints, &SubmitOptions::new())
                        .expect("submits");
                    client.result_raw(job).expect("gets a result")
                })
            })
            .collect();
        threads
            .into_iter()
            .map(|t| t.join().expect("no panic"))
            .collect()
    });

    for (i, (raw, want)) in responses.iter().zip(&expected).enumerate() {
        let v = milo_serve::parse_json(raw).expect("response parses");
        assert_eq!(get_str(&v, "state"), "done", "job {i}: {raw}");
        assert_eq!(get_str(&v, "cache"), "miss", "job {i} was a first run");
        assert!(
            raw.contains(want.as_str()),
            "job {i} ({}): served result is not byte-identical to the offline batch",
            parsed[i].name
        );
    }

    // Identical resubmission from a fresh connection: exact-tier hit,
    // same bytes.
    let mut client = Client::connect(addr).expect("connects");
    let job = client
        .submit_with(&pairs[0].0, &constraints, &SubmitOptions::new())
        .expect("resubmits");
    let raw = client.result_raw(job).expect("gets cached result");
    let v = milo_serve::parse_json(&raw).expect("response parses");
    assert!(
        raw.contains(expected[0].as_str()),
        "resubmission replays the same bytes"
    );

    let stats = client.stats().expect("stats");
    assert_eq!(stat_u64(&stats, &["jobs", "done"]), 6);
    assert_eq!(stat_u64(&stats, &["jobs", "failed"]), 0);
    if !tiny_budget() {
        assert_eq!(get_str(&v, "cache"), "hit");
        assert_eq!(stat_u64(&stats, &["cache", "hits"]), 1);
        assert_eq!(stat_u64(&stats, &["cache", "misses"]), 5);
    }
}

#[test]
fn near_miss_resumes_from_the_first_dirty_pass() {
    let (text, parsed) = wire(&fig19::circuit3());
    let loose = Constraints::none().with_max_delay(6.0);
    // Same tightest delay, different area budget: structurally the same
    // job up to `fanout-repair`, dirty only from `timing-area` on.
    let with_area = Constraints::none().with_max_delay(6.0).with_max_area(500.0);
    let expected = offline_results(std::slice::from_ref(&parsed), &with_area);

    let handle = spawn(ServerConfig::new(ecl_library()).with_workers(1)).expect("server binds");
    let mut client = Client::connect(handle.addr()).expect("connects");

    let first = client
        .submit_with(&text, &loose, &SubmitOptions::new())
        .expect("submits");
    let raw = client.result_raw(first).expect("first result");
    assert_eq!(
        get_str(&milo_serve::parse_json(&raw).expect("parses"), "cache"),
        "miss"
    );
    let stats = client.stats().expect("stats");
    let compile_runs = stat_u64(&stats, &["passes", "compile", "runs"]);
    assert_eq!(compile_runs, 1, "full run executed the compile pass");

    let second = client
        .submit_with(&text, &with_area, &SubmitOptions::new())
        .expect("resubmits");
    let raw = client.result_raw(second).expect("second result");
    let v = milo_serve::parse_json(&raw).expect("parses");
    assert_eq!(get_str(&v, "state"), "done");
    assert!(
        raw.contains(expected[0].as_str()),
        "resumed run is byte-identical to a full offline run under the new constraints"
    );
    if !tiny_budget() {
        assert_eq!(
            get_str(&v, "cache"),
            "prefix-hit",
            "area-only change must reuse the constraint-blind prefix"
        );
        let stats = client.stats().expect("stats");
        assert_eq!(
            stat_u64(&stats, &["passes", "compile", "runs"]),
            1,
            "prefix resume must not re-run compile"
        );
        assert_eq!(
            stat_u64(&stats, &["passes", "timing-area", "runs"]),
            2,
            "the dirty pass runs again"
        );
        assert_eq!(stat_u64(&stats, &["cache", "prefix_hits"]), 1);
    }
}

#[test]
fn injected_panic_fails_one_job_and_leaves_the_service_healthy() {
    let victim = random_control(40, 8, 11); // named ctrl40_11
    let (victim_text, _) = wire(&victim);
    let siblings = [fig19::circuit3(), abadd()];
    let constraints = Constraints::none().with_max_delay(6.0);
    let pairs: Vec<(String, Netlist)> = siblings.iter().map(wire).collect();
    let parsed: Vec<Netlist> = pairs.iter().map(|(_, nl)| nl.clone()).collect();
    let expected = offline_results(&parsed, &constraints);

    // `repeated(MAX)` defeats the worker's one-retry-on-panic, so the
    // victim genuinely fails instead of recovering.
    let injector = Arc::new(FaultInjector::new(vec![FaultSpec::once(
        FaultKind::Panic,
        "timing-area",
        victim.name.clone(),
    )
    .repeated(u32::MAX)]));
    let handle = spawn(
        ServerConfig::new(ecl_library())
            .with_workers(2)
            .with_fault_injector(injector),
    )
    .expect("server binds");
    let mut client = Client::connect(handle.addr()).expect("connects");

    let victim_job = client
        .submit_with(&victim_text, &constraints, &SubmitOptions::new())
        .expect("submits victim");
    let sibling_jobs: Vec<u64> = pairs
        .iter()
        .map(|(text, _)| {
            client
                .submit_with(text, &constraints, &SubmitOptions::new())
                .expect("submits sibling")
        })
        .collect();

    let raw = client.result_raw(victim_job).expect("victim result");
    let v = milo_serve::parse_json(&raw).expect("parses");
    assert_eq!(get_str(&v, "state"), "failed", "victim fails: {raw}");
    assert!(
        get_str(&v, "error").contains("panicked"),
        "failure surfaces the panic: {raw}"
    );

    for (i, job) in sibling_jobs.iter().enumerate() {
        let raw = client.result_raw(*job).expect("sibling result");
        let v = milo_serve::parse_json(&raw).expect("parses");
        assert_eq!(get_str(&v, "state"), "done", "sibling {i} unharmed");
        assert!(
            raw.contains(expected[i].as_str()),
            "sibling {i} still byte-matches the offline batch"
        );
    }

    // The server keeps serving: stats respond, and a fresh submission
    // of an already-seen design comes straight from the cache.
    let stats = client.stats().expect("stats after failure");
    assert_eq!(stat_u64(&stats, &["jobs", "failed"]), 1);
    assert_eq!(stat_u64(&stats, &["jobs", "done"]), 2);
    let again = client
        .submit_with(&pairs[0].0, &constraints, &SubmitOptions::new())
        .expect("still accepting");
    let raw = client.result_raw(again).expect("still answering");
    if !tiny_budget() {
        assert_eq!(
            get_str(&milo_serve::parse_json(&raw).expect("parses"), "cache"),
            "hit"
        );
    }
}

#[test]
fn cancellation_and_protocol_robustness() {
    let handle = spawn(ServerConfig::new(ecl_library()).with_workers(1)).expect("server binds");
    let mut client = Client::connect(handle.addr()).expect("connects");

    // Garbage and bad requests get error lines, not a dropped
    // connection.
    assert!(client.request("this is not json").is_err());
    assert!(client
        .request("{\"op\": \"status\", \"job\": 999}")
        .is_err());
    assert!(client
        .request("{\"op\": \"submit\", \"design\": \"design x\\nbogus\"}")
        .is_err());
    assert!(
        client.stats().is_ok(),
        "connection survives protocol errors"
    );

    // With one worker, a long first job keeps the second queued long
    // enough to cancel deterministically.
    let (big, _) = wire(&random_control(300, 12, 3));
    let (small, _) = wire(&fig19::circuit3());
    let none = Constraints::none();
    let first = client
        .submit_with(&big, &none, &SubmitOptions::new())
        .expect("submits big job");
    let second = client
        .submit_with(&small, &none, &SubmitOptions::new())
        .expect("submits queued job");
    let cancelled = client.cancel(second).expect("cancel responds");
    if cancelled {
        // The atomic cancel contract: `true` means the job ends
        // cancelled, never done.
        let raw = client.result_raw(second).expect("result after cancel");
        let v = milo_serve::parse_json(&raw).expect("parses");
        assert_eq!(get_str(&v, "state"), "cancelled");
    }
    let raw = client.result_raw(first).expect("big job result");
    let v = milo_serve::parse_json(&raw).expect("parses");
    assert_eq!(
        get_str(&v, "state"),
        "done",
        "running job unaffected by cancel"
    );

    // Cancelling a finished job is a polite no-op.
    assert!(!client.cancel(first).expect("cancel responds"));
}

#[test]
fn streamed_events_narrate_the_flow() {
    let (text, _) = wire(&fig19::circuit3());
    let handle = spawn(ServerConfig::new(ecl_library()).with_workers(1)).expect("server binds");
    let mut client = Client::connect(handle.addr()).expect("connects");

    let job = client
        .submit_with(
            &text,
            &Constraints::none().with_max_delay(6.0),
            &SubmitOptions::new().stream(true),
        )
        .expect("submits streaming job");
    let raw = client.result_raw(job).expect("result");
    assert!(raw.contains("\"state\": \"done\""));

    let events = client.take_events();
    assert!(!events.is_empty(), "streaming job emitted events");
    let kinds: Vec<&str> = events.iter().map(|e| get_str(e, "event")).collect();
    assert!(kinds.contains(&"flow-started"), "events: {kinds:?}");
    assert!(kinds.contains(&"pass-finished"), "events: {kinds:?}");
    let passes: Vec<&str> = events
        .iter()
        .filter(|e| get_str(e, "event") == "pass-finished")
        .map(|e| get_str(e, "pass"))
        .collect();
    assert!(
        passes.contains(&"compile"),
        "saw the paper passes: {passes:?}"
    );
    assert!(
        passes.contains(&"timing-area"),
        "saw the paper passes: {passes:?}"
    );
    for e in &events {
        assert_eq!(
            e.get("job").and_then(Value::as_u64),
            Some(job),
            "events carry the job id"
        );
    }

    // A cache-hit resubmission runs no flow, so it streams nothing.
    // (Under a tiny CI budget the entry may be evicted, so the
    // resubmission legitimately re-runs and streams.)
    if !tiny_budget() {
        let again = client
            .submit_with(
                &text,
                &Constraints::none().with_max_delay(6.0),
                &SubmitOptions::new().stream(true),
            )
            .expect("resubmits");
        let raw = client.result_raw(again).expect("cached result");
        assert!(raw.contains("\"cache\": \"hit\""));
        assert!(client.take_events().is_empty(), "cache hits are silent");
    }
}

/// Satellite (a): the hardened `json_string` escaping round-trips
/// through the service's strict parser — including the characters the
/// old escaper passed through raw (DEL, U+2028/U+2029) that would
/// break JSON-lines framing.
#[test]
fn report_json_round_trips_through_the_service_parser() {
    use milo_core::{json_string, FlowReport, PassReport};
    use std::time::Duration;

    let nasty = "quote\" slash\\ newline\n cr\r tab\t nul\u{0} del\u{7f} ls\u{2028} ps\u{2029} é😀";
    let escaped = json_string(nasty);
    assert!(
        !escaped.contains(['\n', '\r', '\u{2028}', '\u{2029}']),
        "no raw line terminators survive escaping: {escaped:?}"
    );
    let back = milo_serve::parse_json(&escaped).expect("escaped string parses");
    assert_eq!(back.as_str(), Some(nasty), "lossless round-trip");

    let report = FlowReport {
        design: nasty.to_owned(),
        passes: vec![PassReport {
            name: "weird\u{2028}pass".to_owned(),
            error: Some("failed: \"deep\"\nreason\u{7f}".to_owned()),
            note: nasty.to_owned(),
            ..PassReport::default()
        }],
        degraded: true,
        result_hash: Some(0xdead_beef_cafe_f00d),
        total_wall: Duration::from_nanos(1234),
    };
    let json = report.to_json();
    assert_eq!(json.lines().count(), 1, "a report is always one JSON line");
    let v = milo_serve::parse_json(&json).expect("report json parses strictly");
    assert_eq!(v.get("design").and_then(Value::as_str), Some(nasty));
    assert_eq!(
        v.get("structural_hash").and_then(Value::as_str),
        Some("0xdeadbeefcafef00d"),
        "fingerprints travel as hex strings"
    );
    let pass = v
        .get("passes")
        .and_then(Value::as_array)
        .and_then(<[Value]>::first)
        .expect("one pass");
    assert_eq!(
        pass.get("name").and_then(Value::as_str),
        Some("weird\u{2028}pass")
    );
    assert_eq!(pass.get("note").and_then(Value::as_str), Some(nasty));
}

/// Tentpole (bounded memory + disk spill): with a deliberately
/// hopeless byte budget every stored entry is evicted immediately, yet
/// resident bytes stay under budget, eviction/spill counters move, and
/// a resubmission is answered byte-identically from the disk store
/// without re-running any pass.
#[test]
fn eviction_keeps_resident_bytes_under_budget_and_replays_from_disk() {
    let dir = scratch_dir("evict");
    let originals = [fig19::circuit3(), abadd(), random_logic(60, 12, 3)];
    let constraints = Constraints::none().with_max_delay(6.0);
    let pairs: Vec<(String, Netlist)> = originals.iter().map(wire).collect();
    let parsed: Vec<Netlist> = pairs.iter().map(|(_, nl)| nl.clone()).collect();
    let expected = offline_results(&parsed, &constraints);

    let budget = 512; // far below any single result entry
    let handle = spawn(
        ServerConfig::new(ecl_library())
            .with_workers(1)
            .with_cache_bytes(budget)
            .with_cache_dir(&dir),
    )
    .expect("server binds");
    let mut client = Client::connect(handle.addr()).expect("connects");

    for (i, (text, _)) in pairs.iter().enumerate() {
        let job = client
            .submit_with(text, &constraints, &SubmitOptions::new())
            .expect("submits");
        let raw = client.result_raw(job).expect("result");
        assert!(
            raw.contains(expected[i].as_str()),
            "job {i} byte-matches offline despite the tiny budget"
        );
    }

    let stats = client.stats().expect("stats");
    assert!(
        stat_u64(&stats, &["cache", "resident_bytes"]) <= budget as u64,
        "resident bytes respect the budget: {stats}"
    );
    assert!(
        stat_u64(&stats, &["cache", "evictions"]) >= 1,
        "the budget forced evictions: {stats}"
    );
    assert_eq!(
        stat_u64(&stats, &["cache", "spilled"]),
        3,
        "every committed exact entry was spilled to disk: {stats}"
    );
    assert_eq!(stat_u64(&stats, &["cache", "disk_entries"]), 3);
    let compile_before = stat_u64(&stats, &["passes", "compile", "runs"]);

    // The memory tier is empty, so this must come back from disk —
    // same bytes, zero additional passes.
    let job = client
        .submit_with(&pairs[0].0, &constraints, &SubmitOptions::new())
        .expect("resubmits");
    let raw = client.result_raw(job).expect("disk-served result");
    let v = milo_serve::parse_json(&raw).expect("parses");
    assert_eq!(
        get_str(&v, "cache"),
        "disk-hit",
        "answered from disk: {raw}"
    );
    assert!(
        raw.contains(expected[0].as_str()),
        "disk replays same bytes"
    );

    let stats = client.stats().expect("stats");
    assert_eq!(stat_u64(&stats, &["cache", "disk_hits"]), 1);
    assert_eq!(
        stat_u64(&stats, &["passes", "compile", "runs"]),
        compile_before,
        "a disk hit runs no passes"
    );

    drop(handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Tentpole (persistence): a second server generation pointed at the
/// same cache directory answers a previously-served job from disk —
/// byte-identical, zero passes run in the new process.
#[test]
fn disk_cache_warm_starts_across_server_generations() {
    let dir = scratch_dir("warm");
    let (text, parsed) = wire(&pipelined_datapath(2, 3, 5));
    let constraints = Constraints::none().with_max_delay(6.0);
    let expected = offline_results(std::slice::from_ref(&parsed), &constraints);

    // Generation 1: miss, synthesize, spill.
    {
        let handle = spawn(
            ServerConfig::new(ecl_library())
                .with_workers(1)
                .with_cache_dir(&dir),
        )
        .expect("first server binds");
        let mut client = Client::connect(handle.addr()).expect("connects");
        let job = client
            .submit_with(&text, &constraints, &SubmitOptions::new())
            .expect("submits");
        let raw = client.result_raw(job).expect("result");
        assert!(raw.contains(expected[0].as_str()));
        let stats = client.stats().expect("stats");
        assert!(stat_u64(&stats, &["cache", "spilled"]) >= 1, "spilled");
    } // handle drops: clean shutdown

    // Generation 2: fresh process state, warm disk index.
    let handle = spawn(
        ServerConfig::new(ecl_library())
            .with_workers(1)
            .with_cache_dir(&dir),
    )
    .expect("second server binds");
    let mut client = Client::connect(handle.addr()).expect("connects");
    let stats = client.stats().expect("stats");
    assert!(
        stat_u64(&stats, &["cache", "disk_entries"]) >= 1,
        "warm start loaded the index: {stats}"
    );

    let job = client
        .submit_with(&text, &constraints, &SubmitOptions::new())
        .expect("resubmits");
    let raw = client.result_raw(job).expect("warm result");
    let v = milo_serve::parse_json(&raw).expect("parses");
    assert_eq!(get_str(&v, "state"), "done");
    assert_eq!(get_str(&v, "cache"), "disk-hit", "warm start hit: {raw}");
    assert!(
        raw.contains(expected[0].as_str()),
        "restart replays byte-identical output"
    );

    let stats = client.stats().expect("stats");
    assert_eq!(stat_u64(&stats, &["cache", "disk_hits"]), 1);
    // No pass ever ran in this generation, so the per-pass table is
    // still empty (an absent key, not a zero count).
    assert!(
        stats.get("passes").and_then(|p| p.get("compile")).is_none(),
        "zero passes ran in the new generation: {stats}"
    );

    drop(handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Tentpole (fairness): with one worker and a 64-job bulk backlog, a
/// second client's single interactive submit completes while most of
/// the backlog is still queued — per-client round-robin means the
/// interactive job waits for at most a couple of bulk jobs, never the
/// whole backlog.
#[test]
fn interactive_submit_beats_a_bulk_backlog() {
    let handle = spawn(ServerConfig::new(ecl_library()).with_workers(1)).expect("server binds");
    let addr = handle.addr();
    let constraints = Constraints::none();

    // 64 distinct designs (identical ones would collapse into cache
    // hits and drain instantly).
    let mut bulk = Client::connect(addr).expect("bulk connects");
    let bulk_opts = SubmitOptions::new().client("bulk-farm");
    let bulk_jobs: Vec<u64> = (0..64)
        .map(|seed| {
            let (text, _) = wire(&random_logic(40, 8, 1000 + seed));
            bulk.submit_with(&text, &constraints, &bulk_opts)
                .expect("bulk submits")
        })
        .collect();

    // A different client submits one job after the whole backlog.
    let mut interactive = Client::connect(addr).expect("interactive connects");
    let (text, _) = wire(&fig19::circuit3());
    let job = interactive
        .submit_with(
            &text,
            &constraints,
            &SubmitOptions::new().client("ui").priority(Priority::High),
        )
        .expect("interactive submits");
    let raw = interactive.result_raw(job).expect("interactive result");
    assert!(
        raw.contains("\"state\": \"done\""),
        "interactive job finished: {raw}"
    );

    // The moment the interactive result came back, the backlog must
    // still be mostly queued — FIFO would have drained it first.
    let stats = interactive.stats().expect("stats");
    let depth = stat_u64(&stats, &["queue", "depth"]);
    assert!(
        depth >= 16,
        "bulk backlog still queued when the interactive job finished \
         (depth {depth}): {stats}"
    );
    assert_eq!(
        stat_u64(&stats, &["jobs", "queued"]),
        depth,
        "pre-1.1 flat key mirrors queue.depth"
    );
    assert!(
        stat_u64(&stats, &["queue", "bands", "high", "scheduled"]) >= 1,
        "the interactive job went through the high band: {stats}"
    );

    // Let the backlog drain so shutdown doesn't wait on 60+ jobs.
    for job in bulk_jobs {
        let _ = bulk.cancel(job);
    }
}

/// Satellite (b): `submit_batch` serves N designs through the offline
/// batch driver against one shared snapshot; members get their own job
/// ids, are individually addressable, and byte-match
/// `synthesize_batch_results`.
#[test]
fn submit_batch_members_are_individually_addressable() {
    let originals = [fig19::circuit3(), abadd(), random_control(50, 8, 7)];
    let constraints = Constraints::none().with_max_delay(6.0);
    let pairs: Vec<(String, Netlist)> = originals.iter().map(wire).collect();
    let parsed: Vec<Netlist> = pairs.iter().map(|(_, nl)| nl.clone()).collect();
    let expected = offline_results(&parsed, &constraints);

    let handle = spawn(ServerConfig::new(ecl_library()).with_workers(2)).expect("server binds");
    let mut client = Client::connect(handle.addr()).expect("connects");

    let texts: Vec<&str> = pairs.iter().map(|(t, _)| t.as_str()).collect();
    let jobs = client
        .submit_batch(&texts, &constraints, &SubmitOptions::new())
        .expect("batch submits");
    assert_eq!(jobs.len(), 3, "one job id per design");

    for (i, job) in jobs.iter().enumerate() {
        let raw = client.result_raw(*job).expect("member result");
        let v = milo_serve::parse_json(&raw).expect("parses");
        assert_eq!(get_str(&v, "state"), "done", "member {i}: {raw}");
        assert!(
            raw.contains(expected[i].as_str()),
            "member {i} ({}) byte-matches the offline batch driver",
            parsed[i].name
        );
        assert!(
            client.status(*job).is_ok(),
            "members answer status individually"
        );
    }

    // Batch members share the exact tier with single submits: a plain
    // resubmission of a member is answered from cache.
    if !tiny_budget() {
        let again = client
            .submit_with(&pairs[1].0, &constraints, &SubmitOptions::new())
            .expect("resubmits a member");
        let raw = client.result_raw(again).expect("cached result");
        assert!(
            raw.contains("\"cache\": \"hit\""),
            "exact tier shared: {raw}"
        );
    }
}

/// Satellite (b): a queued batch member can be cancelled individually
/// without touching its siblings.
#[test]
fn a_batch_member_cancels_without_harming_siblings() {
    let handle = spawn(ServerConfig::new(ecl_library()).with_workers(1)).expect("server binds");
    let mut client = Client::connect(handle.addr()).expect("connects");
    let none = Constraints::none();

    // Occupy the single worker so the batch stays queued.
    let (big, _) = wire(&random_control(300, 12, 3));
    let blocker = client
        .submit_with(&big, &none, &SubmitOptions::new())
        .expect("submits blocker");

    let pairs: Vec<(String, Netlist)> = [fig19::circuit3(), abadd(), random_logic(30, 8, 2)]
        .iter()
        .map(wire)
        .collect();
    let texts: Vec<&str> = pairs.iter().map(|(t, _)| t.as_str()).collect();
    let jobs = client
        .submit_batch(&texts, &none, &SubmitOptions::new())
        .expect("batch submits");

    let cancelled = client.cancel(jobs[1]).expect("cancel responds");
    if cancelled {
        let raw = client.result_raw(jobs[1]).expect("cancelled result");
        assert!(raw.contains("\"state\": \"cancelled\""), "{raw}");
    }
    let _ = client.result_raw(blocker).expect("blocker finishes");
    for &job in [jobs[0], jobs[2]].iter() {
        let raw = client.result_raw(job).expect("sibling result");
        assert!(
            raw.contains("\"state\": \"done\""),
            "sibling unharmed: {raw}"
        );
    }
}

/// Satellite (a): every response echoes `"v": "1.1"`, pre-`v` requests
/// keep working, unknown top-level fields are tolerated over the wire,
/// and other major versions are refused with a versioned error line.
#[test]
fn v11_envelope_round_trips_and_old_clients_keep_working() {
    let handle = spawn(ServerConfig::new(ecl_library()).with_workers(1)).expect("server binds");
    let mut client = Client::connect(handle.addr()).expect("connects");
    let (text, _) = wire(&fig19::circuit3());

    // A v1.0-era request line: no "v", positional fields only.
    let old_style = format!(
        "{{\"op\": \"submit\", \"design\": {}, \"constraints\": {{}}}}",
        milo_core::json_string(&text)
    );
    let v = client.request(&old_style).expect("old client still served");
    assert_eq!(get_str(&v, "v"), "1.1", "submit response is versioned");
    let job = v.get("job").and_then(Value::as_u64).expect("job id");

    for line in [
        format!("{{\"op\": \"status\", \"job\": {job}}}"),
        format!("{{\"op\": \"result\", \"job\": {job}}}"),
        format!("{{\"op\": \"cancel\", \"job\": {job}}}"),
        "{\"op\": \"stats\"}".to_owned(),
    ] {
        let v = client.request(&line).expect("request succeeds");
        assert_eq!(get_str(&v, "v"), "1.1", "versioned response to {line}");
    }

    // Unknown top-level fields ride along silently.
    let v = client
        .request("{\"op\": \"stats\", \"v\": \"1.3\", \"future_knob\": {\"x\": 1}}")
        .expect("future client served");
    assert_eq!(get_str(&v, "v"), "1.1");

    // A different major is refused — with a versioned error line.
    let raw = client
        .request_raw("{\"op\": \"stats\", \"v\": \"2.0\"}")
        .expect("error line, not a dropped connection");
    let v = milo_serve::parse_json(&raw).expect("error parses");
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(get_str(&v, "v"), "1.1");
    assert!(
        get_str(&v, "error").contains("unsupported protocol version"),
        "{raw}"
    );
}

/// Satellite (c): the deprecated positional `submit` still works and
/// behaves exactly like `submit_with` — it's a thin shim, kept one
/// release.
#[test]
fn deprecated_positional_submit_still_works() {
    let (text, parsed) = wire(&fig19::circuit3());
    let constraints = Constraints::none().with_max_delay(6.0);
    let expected = offline_results(std::slice::from_ref(&parsed), &constraints);

    let handle = spawn(ServerConfig::new(ecl_library()).with_workers(1)).expect("server binds");
    let mut client = Client::connect(handle.addr()).expect("connects");
    #[allow(deprecated)]
    let job = client
        .submit(&text, &constraints, false)
        .expect("old signature submits");
    let raw = client.result_raw(job).expect("result");
    assert!(raw.contains("\"state\": \"done\""));
    assert!(
        raw.contains(expected[0].as_str()),
        "shim serves the same bytes"
    );
}
