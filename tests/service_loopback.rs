//! Loopback integration tests for the milo-serve daemon: the service's
//! determinism contract (per-job results byte-identical to the offline
//! batch driver), both cache tiers, fault isolation, cancellation, and
//! protocol robustness — all over real TCP connections.

use milo_circuits::{abadd, fig19, pipelined_datapath, random_control, random_logic};
use milo_core::netlist::Netlist;
use milo_core::{
    emit_netlist, parse_netlist, Constraints, FaultInjector, FaultKind, FaultSpec, Milo,
};
use milo_serve::{spawn, Client, ServerConfig, Value};
use milo_techmap::ecl_library;
use std::sync::Arc;

/// A design's wire text, plus the same design as the offline driver
/// will see it (the wire round-trip renames nets, so offline runs must
/// consume the parsed form, not the original).
fn wire(nl: &Netlist) -> (String, Netlist) {
    let text = emit_netlist(nl).expect("benchmark circuits emit cleanly");
    let parsed = parse_netlist(&text).expect("emitted text parses back");
    (text, parsed)
}

/// The offline ground truth: `synthesize_batch_results` over the
/// parsed designs, rendered to the same deterministic JSON the server
/// splices into responses.
fn offline_results(designs: &[Netlist], constraints: &Constraints) -> Vec<String> {
    let mut milo = Milo::new(ecl_library());
    milo.synthesize_batch_results(designs, constraints)
        .into_iter()
        .map(|r| r.expect("offline synthesis succeeds").to_json())
        .collect()
}

fn get_str<'a>(v: &'a Value, key: &str) -> &'a str {
    v.get(key).and_then(Value::as_str).unwrap_or("<missing>")
}

fn stat_u64(stats: &Value, path: &[&str]) -> u64 {
    let mut v = stats;
    for key in path {
        v = v.get(key).unwrap_or(&Value::Null);
    }
    v.as_u64().unwrap_or(u64::MAX)
}

#[test]
fn concurrent_jobs_byte_match_the_offline_batch() {
    let originals = [
        fig19::circuit3(),
        abadd(),
        random_logic(80, 16, 7),
        pipelined_datapath(2, 4, 3),
        random_control(60, 8, 5),
    ];
    let constraints = Constraints::none().with_max_delay(6.0);
    let pairs: Vec<(String, Netlist)> = originals.iter().map(wire).collect();
    let parsed: Vec<Netlist> = pairs.iter().map(|(_, nl)| nl.clone()).collect();
    let expected = offline_results(&parsed, &constraints);

    let handle = spawn(
        ServerConfig::new(ecl_library())
            .with_workers(3)
            .with_shards(4),
    )
    .expect("server binds");
    let addr = handle.addr();

    // One connection per job, all submitting at once: arrival order and
    // worker interleaving must not leak into the results.
    let responses: Vec<String> = std::thread::scope(|scope| {
        let threads: Vec<_> = pairs
            .iter()
            .map(|(text, _)| {
                let constraints = constraints.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connects");
                    let job = client.submit(text, &constraints, false).expect("submits");
                    client.result_raw(job).expect("gets a result")
                })
            })
            .collect();
        threads
            .into_iter()
            .map(|t| t.join().expect("no panic"))
            .collect()
    });

    for (i, (raw, want)) in responses.iter().zip(&expected).enumerate() {
        let v = milo_serve::parse_json(raw).expect("response parses");
        assert_eq!(get_str(&v, "state"), "done", "job {i}: {raw}");
        assert_eq!(get_str(&v, "cache"), "miss", "job {i} was a first run");
        assert!(
            raw.contains(want.as_str()),
            "job {i} ({}): served result is not byte-identical to the offline batch",
            parsed[i].name
        );
    }

    // Identical resubmission from a fresh connection: exact-tier hit,
    // same bytes.
    let mut client = Client::connect(addr).expect("connects");
    let job = client
        .submit(&pairs[0].0, &constraints, false)
        .expect("resubmits");
    let raw = client.result_raw(job).expect("gets cached result");
    let v = milo_serve::parse_json(&raw).expect("response parses");
    assert_eq!(get_str(&v, "cache"), "hit");
    assert!(
        raw.contains(expected[0].as_str()),
        "cache replays the same bytes"
    );

    let stats = client.stats().expect("stats");
    assert_eq!(stat_u64(&stats, &["jobs", "done"]), 6);
    assert_eq!(stat_u64(&stats, &["cache", "hits"]), 1);
    assert_eq!(stat_u64(&stats, &["cache", "misses"]), 5);
    assert_eq!(stat_u64(&stats, &["jobs", "failed"]), 0);
}

#[test]
fn near_miss_resumes_from_the_first_dirty_pass() {
    let (text, parsed) = wire(&fig19::circuit3());
    let loose = Constraints::none().with_max_delay(6.0);
    // Same tightest delay, different area budget: structurally the same
    // job up to `fanout-repair`, dirty only from `timing-area` on.
    let with_area = Constraints::none().with_max_delay(6.0).with_max_area(500.0);
    let expected = offline_results(std::slice::from_ref(&parsed), &with_area);

    let handle = spawn(ServerConfig::new(ecl_library()).with_workers(1)).expect("server binds");
    let mut client = Client::connect(handle.addr()).expect("connects");

    let first = client.submit(&text, &loose, false).expect("submits");
    let raw = client.result_raw(first).expect("first result");
    assert_eq!(
        get_str(&milo_serve::parse_json(&raw).expect("parses"), "cache"),
        "miss"
    );
    let stats = client.stats().expect("stats");
    let compile_runs = stat_u64(&stats, &["passes", "compile", "runs"]);
    assert_eq!(compile_runs, 1, "full run executed the compile pass");

    let second = client.submit(&text, &with_area, false).expect("resubmits");
    let raw = client.result_raw(second).expect("second result");
    let v = milo_serve::parse_json(&raw).expect("parses");
    assert_eq!(get_str(&v, "state"), "done");
    assert_eq!(
        get_str(&v, "cache"),
        "prefix-hit",
        "area-only change must reuse the constraint-blind prefix"
    );
    assert!(
        raw.contains(expected[0].as_str()),
        "resumed run is byte-identical to a full offline run under the new constraints"
    );

    let stats = client.stats().expect("stats");
    assert_eq!(
        stat_u64(&stats, &["passes", "compile", "runs"]),
        1,
        "prefix resume must not re-run compile"
    );
    assert_eq!(
        stat_u64(&stats, &["passes", "timing-area", "runs"]),
        2,
        "the dirty pass runs again"
    );
    assert_eq!(stat_u64(&stats, &["cache", "prefix_hits"]), 1);
}

#[test]
fn injected_panic_fails_one_job_and_leaves_the_service_healthy() {
    let victim = random_control(40, 8, 11); // named ctrl40_11
    let (victim_text, _) = wire(&victim);
    let siblings = [fig19::circuit3(), abadd()];
    let constraints = Constraints::none().with_max_delay(6.0);
    let pairs: Vec<(String, Netlist)> = siblings.iter().map(wire).collect();
    let parsed: Vec<Netlist> = pairs.iter().map(|(_, nl)| nl.clone()).collect();
    let expected = offline_results(&parsed, &constraints);

    // `repeated(MAX)` defeats the worker's one-retry-on-panic, so the
    // victim genuinely fails instead of recovering.
    let injector = Arc::new(FaultInjector::new(vec![FaultSpec::once(
        FaultKind::Panic,
        "timing-area",
        victim.name.clone(),
    )
    .repeated(u32::MAX)]));
    let handle = spawn(
        ServerConfig::new(ecl_library())
            .with_workers(2)
            .with_fault_injector(injector),
    )
    .expect("server binds");
    let mut client = Client::connect(handle.addr()).expect("connects");

    let victim_job = client
        .submit(&victim_text, &constraints, false)
        .expect("submits victim");
    let sibling_jobs: Vec<u64> = pairs
        .iter()
        .map(|(text, _)| {
            client
                .submit(text, &constraints, false)
                .expect("submits sibling")
        })
        .collect();

    let raw = client.result_raw(victim_job).expect("victim result");
    let v = milo_serve::parse_json(&raw).expect("parses");
    assert_eq!(get_str(&v, "state"), "failed", "victim fails: {raw}");
    assert!(
        get_str(&v, "error").contains("panicked"),
        "failure surfaces the panic: {raw}"
    );

    for (i, job) in sibling_jobs.iter().enumerate() {
        let raw = client.result_raw(*job).expect("sibling result");
        let v = milo_serve::parse_json(&raw).expect("parses");
        assert_eq!(get_str(&v, "state"), "done", "sibling {i} unharmed");
        assert!(
            raw.contains(expected[i].as_str()),
            "sibling {i} still byte-matches the offline batch"
        );
    }

    // The server keeps serving: stats respond, and a fresh submission
    // of an already-seen design comes straight from the cache.
    let stats = client.stats().expect("stats after failure");
    assert_eq!(stat_u64(&stats, &["jobs", "failed"]), 1);
    assert_eq!(stat_u64(&stats, &["jobs", "done"]), 2);
    let again = client
        .submit(&pairs[0].0, &constraints, false)
        .expect("still accepting");
    let raw = client.result_raw(again).expect("still answering");
    assert_eq!(
        get_str(&milo_serve::parse_json(&raw).expect("parses"), "cache"),
        "hit"
    );
}

#[test]
fn cancellation_and_protocol_robustness() {
    let handle = spawn(ServerConfig::new(ecl_library()).with_workers(1)).expect("server binds");
    let mut client = Client::connect(handle.addr()).expect("connects");

    // Garbage and bad requests get error lines, not a dropped
    // connection.
    assert!(client.request("this is not json").is_err());
    assert!(client
        .request("{\"op\": \"status\", \"job\": 999}")
        .is_err());
    assert!(client
        .request("{\"op\": \"submit\", \"design\": \"design x\\nbogus\"}")
        .is_err());
    assert!(
        client.stats().is_ok(),
        "connection survives protocol errors"
    );

    // With one worker, a long first job keeps the second queued long
    // enough to cancel deterministically.
    let (big, _) = wire(&random_control(300, 12, 3));
    let (small, _) = wire(&fig19::circuit3());
    let none = Constraints::none();
    let first = client.submit(&big, &none, false).expect("submits big job");
    let second = client
        .submit(&small, &none, false)
        .expect("submits queued job");
    let cancelled = client.cancel(second).expect("cancel responds");
    if cancelled {
        // The atomic cancel contract: `true` means the job ends
        // cancelled, never done.
        let raw = client.result_raw(second).expect("result after cancel");
        let v = milo_serve::parse_json(&raw).expect("parses");
        assert_eq!(get_str(&v, "state"), "cancelled");
    }
    let raw = client.result_raw(first).expect("big job result");
    let v = milo_serve::parse_json(&raw).expect("parses");
    assert_eq!(
        get_str(&v, "state"),
        "done",
        "running job unaffected by cancel"
    );

    // Cancelling a finished job is a polite no-op.
    assert!(!client.cancel(first).expect("cancel responds"));
}

#[test]
fn streamed_events_narrate_the_flow() {
    let (text, _) = wire(&fig19::circuit3());
    let handle = spawn(ServerConfig::new(ecl_library()).with_workers(1)).expect("server binds");
    let mut client = Client::connect(handle.addr()).expect("connects");

    let job = client
        .submit(&text, &Constraints::none().with_max_delay(6.0), true)
        .expect("submits streaming job");
    let raw = client.result_raw(job).expect("result");
    assert!(raw.contains("\"state\": \"done\""));

    let events = client.take_events();
    assert!(!events.is_empty(), "streaming job emitted events");
    let kinds: Vec<&str> = events.iter().map(|e| get_str(e, "event")).collect();
    assert!(kinds.contains(&"flow-started"), "events: {kinds:?}");
    assert!(kinds.contains(&"pass-finished"), "events: {kinds:?}");
    let passes: Vec<&str> = events
        .iter()
        .filter(|e| get_str(e, "event") == "pass-finished")
        .map(|e| get_str(e, "pass"))
        .collect();
    assert!(
        passes.contains(&"compile"),
        "saw the paper passes: {passes:?}"
    );
    assert!(
        passes.contains(&"timing-area"),
        "saw the paper passes: {passes:?}"
    );
    for e in &events {
        assert_eq!(
            e.get("job").and_then(Value::as_u64),
            Some(job),
            "events carry the job id"
        );
    }

    // A cache-hit resubmission runs no flow, so it streams nothing.
    let again = client
        .submit(&text, &Constraints::none().with_max_delay(6.0), true)
        .expect("resubmits");
    let raw = client.result_raw(again).expect("cached result");
    assert!(raw.contains("\"cache\": \"hit\""));
    assert!(client.take_events().is_empty(), "cache hits are silent");
}

/// Satellite (a): the hardened `json_string` escaping round-trips
/// through the service's strict parser — including the characters the
/// old escaper passed through raw (DEL, U+2028/U+2029) that would
/// break JSON-lines framing.
#[test]
fn report_json_round_trips_through_the_service_parser() {
    use milo_core::{json_string, FlowReport, PassReport};
    use std::time::Duration;

    let nasty = "quote\" slash\\ newline\n cr\r tab\t nul\u{0} del\u{7f} ls\u{2028} ps\u{2029} é😀";
    let escaped = json_string(nasty);
    assert!(
        !escaped.contains(['\n', '\r', '\u{2028}', '\u{2029}']),
        "no raw line terminators survive escaping: {escaped:?}"
    );
    let back = milo_serve::parse_json(&escaped).expect("escaped string parses");
    assert_eq!(back.as_str(), Some(nasty), "lossless round-trip");

    let report = FlowReport {
        design: nasty.to_owned(),
        passes: vec![PassReport {
            name: "weird\u{2028}pass".to_owned(),
            error: Some("failed: \"deep\"\nreason\u{7f}".to_owned()),
            note: nasty.to_owned(),
            ..PassReport::default()
        }],
        degraded: true,
        result_hash: Some(0xdead_beef_cafe_f00d),
        total_wall: Duration::from_nanos(1234),
    };
    let json = report.to_json();
    assert_eq!(json.lines().count(), 1, "a report is always one JSON line");
    let v = milo_serve::parse_json(&json).expect("report json parses strictly");
    assert_eq!(v.get("design").and_then(Value::as_str), Some(nasty));
    assert_eq!(
        v.get("structural_hash").and_then(Value::as_str),
        Some("0xdeadbeefcafef00d"),
        "fingerprints travel as hex strings"
    );
    let pass = v
        .get("passes")
        .and_then(Value::as_array)
        .and_then(<[Value]>::first)
        .expect("one pass");
    assert_eq!(
        pass.get("name").and_then(Value::as_str),
        Some("weird\u{2028}pass")
    );
    assert_eq!(pass.get("note").and_then(Value::as_str), Some(nasty));
}
