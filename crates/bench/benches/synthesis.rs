//! Criterion benchmarks over the core algorithms and the per-figure
//! experiments (micro-level companions to the printable bins).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use milo_bench::metarule_rules::metarule_rule_set;
use milo_circuits::{fig19::circuit3, random_logic};
use milo_core::{Constraints, Milo};
use milo_logic::{espresso, Cover, TruthTable};
use milo_rules::{Engine, HashRuleTable, LibraryRef};
use milo_techmap::{cmos_library, dagon_map, ecl_library, map_netlist, Objective};
use milo_timing::analyze;

fn bench_espresso(c: &mut Criterion) {
    let mut group = c.benchmark_group("espresso");
    for vars in [4u8, 5, 6] {
        // Parity-ish dense function: worst-case-ish two-level form.
        let tt = TruthTable::from_fn(vars, |r| (r.count_ones() % 3) != 0);
        let cover = Cover::from_truth(&tt);
        group.bench_with_input(BenchmarkId::new("minimize", vars), &cover, |b, cover| {
            b.iter(|| espresso::minimize(cover, None));
        });
    }
    group.finish();
}

fn bench_mapping(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping");
    let nl = random_logic(200, 12, 3);
    let cmos = cmos_library();
    group.bench_function("lookup_table_200", |b| {
        b.iter(|| map_netlist(&nl, &cmos).expect("maps"));
    });
    group.bench_function("dagon_200", |b| {
        b.iter(|| dagon_map(&nl, &cmos, Objective::Area).expect("maps"));
    });
    group.finish();
}

fn bench_sta(c: &mut Criterion) {
    let mut group = c.benchmark_group("sta");
    for gates in [200usize, 800] {
        let nl = map_netlist(&random_logic(gates, 12, 5), &cmos_library()).expect("maps");
        group.bench_with_input(BenchmarkId::new("analyze", gates), &nl, |b, nl| {
            b.iter(|| analyze(nl).expect("analyzes"));
        });
    }
    group.finish();
}

fn bench_hash_lookup(c: &mut Criterion) {
    let lib = cmos_library();
    let table = HashRuleTable::from_library(&LibraryRef { cells: lib.cells() });
    let tt = TruthTable::from_fn(3, |r| !((r & 1 == 1 && r >> 1 & 1 == 1) || r >> 2 & 1 == 1));
    c.bench_function("hash_lookup_aoi21", |b| {
        b.iter(|| table.lookup(&tt).len());
    });
}

fn bench_fig19_pipeline(c: &mut Criterion) {
    c.bench_function("fig19_circuit3_pipeline", |b| {
        b.iter(|| {
            let mut milo = Milo::new(ecl_library());
            milo.synthesize(&circuit3(), &Constraints::none())
                .expect("synthesizes")
        });
    });
}

fn bench_sweep_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_scaling");
    group.sample_size(10);
    let lib = cmos_library();
    for gates in [200usize, 800] {
        let mapped = map_netlist(&random_logic(gates, 16, 9), &lib).expect("maps");
        group.bench_with_input(BenchmarkId::new("logic_sweeps", gates), &mapped, |b, nl| {
            b.iter(|| {
                let mut work = nl.clone();
                let mut engine = Engine::new(metarule_rule_set(&lib));
                engine.run_sweeps(&mut work, None, 20)
            });
        });
        // Incremental conflict-set maintenance in isolation: repair the
        // match index from a one-component touch set.
        let engine = Engine::new(metarule_rule_set(&lib));
        let mut index = engine.build_index(&mapped, None, None);
        let victim = mapped.component_ids().nth(gates / 2).expect("components");
        let ts = {
            let mut t = milo_netlist::TouchSet::new();
            t.component(victim);
            t
        };
        group.bench_with_input(BenchmarkId::new("match_repair", gates), &(), |b, ()| {
            b.iter(|| {
                index.repair(
                    engine.rules(),
                    &milo_rules::RuleCtx {
                        nl: &mapped,
                        sta: None,
                    },
                    &ts,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_espresso,
    bench_mapping,
    bench_sta,
    bench_hash_lookup,
    bench_fig19_pipeline,
    bench_sweep_scaling
);
criterion_main!(benches);
