//! The §2.2.2 metarules ablation (CoBa85 numbers the paper quotes):
//! greedy vs full lookahead vs lookahead+metarules.
//!
//! ```text
//! cargo run -p milo-bench --bin metarules --release
//! ```

use milo_bench::metarules_experiment;
use milo_core::{f2, Table};

fn main() {
    println!("§2.2.2 metarules ablation (de-Morgan opportunity circuit, CMOS library)\n");
    let rows = metarules_experiment(10);
    let mut table = Table::new(&[
        "Configuration",
        "Time (ms)",
        "Final area",
        "Area reduction %",
        "States",
    ]);
    for r in &rows {
        table.row_owned(vec![
            r.config.to_owned(),
            f2(r.millis),
            f2(r.area),
            f2(r.area_reduction),
            r.states.to_string(),
        ]);
    }
    println!("{}", table.render());
    let greedy = &rows[0];
    let look = &rows[1];
    let meta = &rows[2];
    println!(
        "Time ratios vs greedy: lookahead {:.1}x, lookahead+metarules {:.1}x",
        look.millis / greedy.millis.max(1e-9),
        meta.millis / greedy.millis.max(1e-9),
    );
    println!(
        "Area advantage of lookahead over greedy: {:.0} % (metarules keep it: {:.0} %)",
        (greedy.area - look.area) / greedy.area * 100.0,
        (greedy.area - meta.area) / greedy.area * 100.0,
    );
    println!("Paper (quoting CoBa85): lookahead ≈4x slower, 12% less area; adding metarules");
    println!("only doubled run time and preserved the area win.");
}
