//! Ad-hoc profiling of one `run_sweeps` call (not part of the perf
//! snapshot): prints per-pass firing counts and phase timings.

use milo_bench::metarule_rules::metarule_rule_set;
use milo_circuits::random_logic;
use milo_rules::Engine;
use milo_techmap::{cmos_library, map_netlist};
use std::time::Instant;

fn main() {
    let lib = cmos_library();
    let mapped = map_netlist(&random_logic(800, 16, 9), &lib).expect("maps");

    // Pass-by-pass via the public sweep API (fresh index each pass —
    // the old behavior) to see the pass structure.
    let mut work = mapped.clone();
    let mut engine = Engine::new(metarule_rule_set(&lib));
    let mut pass = 0;
    loop {
        let t = Instant::now();
        let fired = engine.sweep(&mut work, None);
        println!(
            "pass {pass}: fired {fired}  ({:.1} us)  comps {}",
            t.elapsed().as_secs_f64() * 1e6,
            work.component_count()
        );
        pass += 1;
        if fired == 0 || pass > 20 {
            break;
        }
    }

    // Whole run with the maintained index.
    let t = Instant::now();
    let mut work = mapped.clone();
    let mut engine = Engine::new(metarule_rule_set(&lib));
    let fired = engine.run_sweeps(&mut work, None, 20);
    println!(
        "run_sweeps(maintained index): fired {fired} in {:.1} us",
        t.elapsed().as_secs_f64() * 1e6
    );

    // Manual maintained-index pass loop with per-phase timing.
    {
        use milo_netlist::{ComponentId, TouchSet};
        use milo_rules::{RuleCtx, Tx};
        use std::collections::HashSet;
        let mut work = mapped.clone();
        let engine = Engine::new(metarule_rule_set(&lib));
        let t = Instant::now();
        let mut index = engine.build_index(&work, None, None);
        println!("build: {:.1} us", t.elapsed().as_secs_f64() * 1e6);
        for pass in 0..20 {
            let t = Instant::now();
            let conflict = engine.conflict_set_indexed(&index);
            let t_read = t.elapsed();
            let mut touched: HashSet<ComponentId> = HashSet::new();
            let mut merged = TouchSet::new();
            let mut fired = 0usize;
            let t = Instant::now();
            for (idx, m) in conflict {
                if touched.contains(&m.site) || m.aux.iter().any(|a| touched.contains(a)) {
                    continue;
                }
                let mut tx = Tx::new(&mut work);
                let result = engine.rules()[idx].apply(&mut tx, &m);
                let log = tx.commit();
                match result {
                    Ok(()) => {
                        touched.insert(m.site);
                        touched.extend(m.aux.iter().copied());
                        merged.merge(&log.touch_set());
                        fired += 1;
                    }
                    Err(_) => log.undo(&mut work),
                }
            }
            let t_fire = t.elapsed();
            let t = Instant::now();
            if fired > 0 {
                index.repair(
                    engine.rules(),
                    &RuleCtx {
                        nl: &work,
                        sta: None,
                    },
                    &merged,
                );
            }
            println!(
                "pass {pass}: fired {fired}  read {:.1} us  fire {:.1} us  repair {:.1} us  (anchors {} globals {})",
                t_read.as_secs_f64() * 1e6,
                t_fire.as_secs_f64() * 1e6,
                t.elapsed().as_secs_f64() * 1e6,
                index.stats().anchors_rematched,
                index.stats().global_rematches,
            );
            if fired == 0 {
                break;
            }
        }
    }

    // Cost of one full index build alone.
    let work = mapped.clone();
    let engine = Engine::new(metarule_rule_set(&lib));
    let t = Instant::now();
    for _ in 0..10 {
        std::hint::black_box(engine.build_index(&work, None, None));
    }
    println!(
        "index build: {:.1} us",
        t.elapsed().as_secs_f64() * 1e6 / 10.0
    );

    // Cost of the netlist clone the bench loop includes.
    let t = Instant::now();
    for _ in 0..10 {
        std::hint::black_box(mapped.clone());
    }
    println!("clone: {:.1} us", t.elapsed().as_secs_f64() * 1e6 / 10.0);
}
