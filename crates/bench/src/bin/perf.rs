//! The core performance snapshot: times the synthesis hot paths and
//! writes `BENCH_core.json` so the perf trajectory is tracked across PRs.
//!
//! Run with `cargo run --release -p milo-bench --bin perf`. Environment:
//!
//! * `MILO_PERF_MS` — per-benchmark measurement window in milliseconds
//!   (default 300; the CI smoke run uses a smaller value);
//! * `MILO_PERF_OUT` — output path (default `BENCH_core.json`).
//!
//! Output format (`schema: milo-bench-core-v1`): a JSON object with the
//! snapshot metadata and one entry per benchmark carrying the mean
//! nanoseconds per iteration and the iteration count. See
//! `docs/PERFORMANCE.md` for the format contract.
//!
//! With `--json`, the benchmarks are skipped; instead the golden designs
//! run once through the Flow API and the structured per-design
//! `{"result", "flow"}` reports (pass wall times, deltas, applied-rule
//! counts) are printed to stdout as a JSON array — the service-embedding
//! output shape.
//!
//! Tracing: `MILO_TRACE=1` (or `--trace-out <file>`, which also forces
//! tracing on) arms the `milo-trace` spans; at exit the buffered
//! events are written to `<file>` as Chrome trace-event JSON — load it
//! in Perfetto or `chrome://tracing`. Works in both the benchmark and
//! `--json` modes. See `docs/OBSERVABILITY.md`.

use milo_circuits::{abadd, fig19::circuit3, random_control, random_logic};
use milo_core::{Constraints, Milo};
use milo_logic::{espresso, Cover, TruthTable};
use milo_rules::{Engine, HashRuleTable, LibraryRef};
use milo_techmap::{cmos_library, ecl_library, map_netlist};
use milo_timing::{analyze, IncrementalSta};
use std::time::{Duration, Instant};

struct Snapshot {
    entries: Vec<(String, f64, u64)>,
    window: Duration,
}

impl Snapshot {
    fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        // Warmup + estimate.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.window / 4 || warm_iters == 0 {
            std::hint::black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let est = warm_start.elapsed() / warm_iters.max(1) as u32;
        let iters = if est.is_zero() {
            1_000_000
        } else {
            (self.window.as_nanos() / est.as_nanos().max(1)).clamp(1, 5_000_000) as u64
        };
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
        println!("{name:<32} {:>12.1} ns/iter  ({iters} iterations)", mean_ns);
        self.entries.push((name.to_owned(), mean_ns, iters));
    }

    fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"milo-bench-core-v1\",\n");
        out.push_str(&format!(
            "  \"window_ms\": {},\n  \"benches\": [\n",
            self.window.as_millis()
        ));
        for (i, (name, mean_ns, iters)) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"name\": \"{name}\", \"mean_ns\": {mean_ns:.1}, \"iters\": {iters} }}{}\n",
                if i + 1 == self.entries.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// `--json` mode: the golden designs through the default flow, each
/// emitting its synthesis summary plus the structured flow report.
fn emit_flow_json() {
    let designs = [circuit3(), abadd(), random_logic(80, 10, 7)];
    let mut out = String::from("[\n");
    for (i, nl) in designs.iter().enumerate() {
        let mut milo = Milo::new(ecl_library());
        let mut flow = milo.flow();
        let run = flow
            .run(&mut milo, nl, &Constraints::none())
            .expect("golden design synthesizes");
        out.push_str("  ");
        out.push_str(&run.to_json());
        out.push_str(if i + 1 == designs.len() { "\n" } else { ",\n" });
    }
    out.push_str("]\n");
    print!("{out}");
}

/// The value following `flag` on the command line, if present.
fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

/// Drains the buffered trace events into `path` (no-op without
/// `--trace-out`).
fn write_trace(path: Option<&str>) {
    let Some(path) = path else { return };
    std::fs::write(path, milo_trace::drain_chrome_json()).expect("writes trace");
    println!("wrote trace {path}");
}

fn main() {
    milo_trace::init_from_env();
    let trace_out = arg_value("--trace-out");
    if trace_out.is_some() {
        milo_trace::set_enabled(true);
    }
    if std::env::args().any(|a| a == "--json") {
        emit_flow_json();
        write_trace(trace_out.as_deref());
        return;
    }
    let window_ms = std::env::var("MILO_PERF_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    let out_path = std::env::var("MILO_PERF_OUT").unwrap_or_else(|_| "BENCH_core.json".to_owned());
    let mut snap = Snapshot {
        entries: Vec::new(),
        window: Duration::from_millis(window_ms),
    };

    // Two-level minimization (strategy 7 / SOCRATES core).
    for vars in [4u8, 5, 6] {
        let tt = TruthTable::from_fn(vars, |r| (r.count_ones() % 3) != 0);
        let cover = Cover::from_truth(&tt);
        snap.bench(&format!("espresso/minimize/{vars}"), || {
            espresso::minimize(&cover, None)
        });
    }

    // Per-output parallel minimization over a batch of dense covers.
    let batch: Vec<Cover> = (0..16u32)
        .map(|k| {
            Cover::from_truth(&TruthTable::from_fn(6, move |r| {
                (r.count_ones() + k) % 3 != 0
            }))
        })
        .collect();
    snap.bench("espresso/minimize_many/16x6", || {
        espresso::minimize_many(&batch)
    });

    // Static timing analysis, from scratch.
    for gates in [200usize, 800] {
        let nl = map_netlist(&random_logic(gates, 12, 5), &cmos_library()).expect("maps");
        snap.bench(&format!("sta/analyze/{gates}"), || {
            analyze(&nl).expect("analyzes")
        });
    }

    // Incremental STA: one local rewrite (kind change) + cone refresh,
    // versus the full re-analysis above.
    {
        let nl = map_netlist(&random_logic(800, 12, 5), &cmos_library()).expect("maps");
        let mut inc = IncrementalSta::new(&nl).expect("analyzes");
        let victim = nl.component_ids().nth(400).expect("has components");
        let ts = {
            let mut t = milo_netlist::TouchSet::new();
            t.component(victim);
            t
        };
        snap.bench("sta/incremental_refresh/800", || {
            inc.refresh(&nl, &ts).expect("refreshes");
        });
    }

    // The end-to-end Fig. 19 pipeline (through the synthesize shim —
    // the default flow with statistics sampling off).
    snap.bench("fig19_circuit3_pipeline", || {
        let mut milo = Milo::new(ecl_library());
        milo.synthesize(&circuit3(), &Constraints::none())
            .expect("synthesizes")
    });

    // The same pipeline through the observable Flow API, per-pass
    // statistics sampling on: the report-carrying service path.
    snap.bench("flow/report/fig19_c3", || {
        let mut milo = Milo::new(ecl_library());
        let mut flow = milo.flow();
        flow.run(&mut milo, &circuit3(), &Constraints::none())
            .expect("synthesizes")
    });

    // Batched multi-design synthesis fanned across cores, Arc-shared
    // library / design database (input-order deterministic).
    {
        let designs: Vec<_> = (0..8u64).map(|k| random_logic(60, 10, 1000 + k)).collect();
        snap.bench("flow/batch_synthesize/8x60", || {
            let mut milo = Milo::new(ecl_library());
            milo.synthesize_batch(&designs, &Constraints::none())
                .expect("batch synthesizes")
        });
    }

    // Rule-engine sweeps at scale (served from the incremental
    // conflict-set index since the Rete-matcher PR).
    {
        let lib = cmos_library();
        let mapped = map_netlist(&random_logic(800, 16, 9), &lib).expect("maps");
        snap.bench("engine/logic_sweeps/800", || {
            let mut work = mapped.clone();
            let mut engine = Engine::new(milo_opt::logic_rules(&lib));
            engine.run_sweeps(&mut work, None, 20)
        });

        // Conflict-set index: the one-time full matching pass...
        let engine = Engine::new(milo_opt::logic_rules(&lib));
        snap.bench("engine/index_build/800", || {
            engine.build_index(&mapped, None, None).len()
        });
        // ...versus repairing it after one local rewrite — the cost
        // every accepted firing pays instead of a rescan.
        let mut index = engine.build_index(&mapped, None, None);
        let victim = mapped.component_ids().nth(400).expect("has components");
        let ts = {
            let mut t = milo_netlist::TouchSet::new();
            t.component(victim);
            t
        };
        snap.bench("engine/match_repair/800", || {
            index.repair(
                engine.rules(),
                &milo_rules::RuleCtx {
                    nl: &mapped,
                    sta: None,
                },
                &ts,
            );
        });
    }

    // Hash-rule table construction (cached) and lookup.
    {
        let lib = cmos_library();
        snap.bench("hashrules/cached_build", || {
            HashRuleTable::cached(&LibraryRef { cells: lib.cells() }).len()
        });
    }

    // Tracing overhead: the same bounded rule-engine sweep with
    // tracing off versus enabled-but-undrained (events buffered in the
    // per-thread rings, nobody draining). The pair is the observability
    // contract: `on` must stay within a few percent of `off`, because
    // span bookkeeping amortizes over real matching work.
    {
        let lib = cmos_library();
        let mapped = map_netlist(&random_logic(400, 12, 5), &lib).expect("maps");
        let was_enabled = milo_trace::enabled();
        let mut sweep = || {
            let mut work = mapped.clone();
            let mut engine = Engine::new(milo_opt::logic_rules(&lib));
            engine.run_sweeps(&mut work, None, 4)
        };
        milo_trace::set_enabled(false);
        snap.bench("trace/overhead/off", &mut sweep);
        milo_trace::set_enabled(true);
        snap.bench("trace/overhead/on", &mut sweep);
        milo_trace::set_enabled(was_enabled);
        if !was_enabled {
            // Discard the bench's own span flood so a later
            // `--trace-out`-less run leaves nothing behind.
            let _ = milo_trace::drain_chrome_json();
        }
    }

    // Scale family: the 10k-gate layered control design from the
    // scenario zoo (`milo_circuits::zoo`), exercising generation,
    // technology mapping, from-scratch and incremental STA, and one
    // bounded rule-engine sweep at a size two orders of magnitude above
    // the golden designs.
    {
        let lib = cmos_library();
        snap.bench("scale/generate/10k", || random_control(10_000, 24, 7));
        let big = random_control(10_000, 24, 7);
        snap.bench("scale/map_netlist/10k", || {
            map_netlist(&big, &lib).expect("maps")
        });
        let mapped = map_netlist(&big, &lib).expect("maps");
        snap.bench("scale/sta_analyze/10k", || {
            analyze(&mapped).expect("analyzes")
        });
        {
            let mut inc = IncrementalSta::new(&mapped).expect("analyzes");
            let victim = mapped.component_ids().nth(5_000).expect("has components");
            let ts = {
                let mut t = milo_netlist::TouchSet::new();
                t.component(victim);
                t
            };
            snap.bench("scale/sta_refresh/10k", || {
                inc.refresh(&mapped, &ts).expect("refreshes");
            });
        }
        snap.bench("scale/sweep/10k", || {
            let mut work = mapped.clone();
            let mut engine = Engine::new(milo_opt::logic_rules(&lib));
            engine.run_sweeps(&mut work, None, 1)
        });
    }

    // Service family: full client-observed round-trips through the
    // milo-serve loopback — TCP, JSON-lines protocol, job queue, and
    // worker dispatch included. `submit_roundtrip` gives every
    // iteration a unique design name (the structural fingerprint
    // covers the name), so each trip is a genuine cache-miss
    // synthesis; `cache_hit` resubmits one identical job forever, so
    // after the first trip every answer replays from the exact tier —
    // the pair brackets what the cache is worth end to end.
    {
        let mut handle = milo_serve::spawn(
            milo_serve::ServerConfig::new(ecl_library())
                .with_addr("127.0.0.1:0")
                .with_workers(2),
        )
        .expect("service binds");
        let mut client = milo_serve::Client::connect(handle.addr()).expect("connects");
        let constraints = Constraints::none().with_max_delay(6.0);
        let opts = milo_serve::SubmitOptions::new();
        let mut unique = 0u64;
        snap.bench("service/submit_roundtrip", || {
            unique += 1;
            let design = format!(
                "design rt{unique}\ninput a b c\noutput y\n\
                 comp and2 g1 A0=a A1=b Y=t\ncomp or2 g2 A0=t A1=c Y=y\n"
            );
            let job = client
                .submit_with(&design, &constraints, &opts)
                .expect("submits");
            client.result_raw(job).expect("round-trips").len()
        });
        let cached = "design cached\ninput a b c\noutput y\n\
                      comp and2 g1 A0=a A1=b Y=t\ncomp or2 g2 A0=t A1=c Y=y\n";
        snap.bench("service/cache_hit", || {
            let job = client
                .submit_with(cached, &constraints, &opts)
                .expect("submits");
            client.result_raw(job).expect("round-trips").len()
        });
        client.shutdown().expect("shuts down");
        handle.shutdown();
    }

    // Cache-pressure family: the same loopback round-trips, but under
    // a byte budget small enough that every store evicts something
    // (`evict_churn` — the worst case for the LRU bookkeeping), and
    // with a disk store serving entries the memory tier has already
    // dropped (`disk_hit` — the spill path's read cost, synthesis
    // excluded after the first trip per design).
    {
        let dir = std::env::temp_dir().join(format!("milo-serve-bench-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut handle = milo_serve::spawn(
            milo_serve::ServerConfig::new(ecl_library())
                .with_addr("127.0.0.1:0")
                .with_workers(2)
                .with_cache_bytes(512)
                .with_cache_dir(&dir),
        )
        .expect("budgeted service binds");
        let mut client = milo_serve::Client::connect(handle.addr()).expect("connects");
        let constraints = Constraints::none().with_max_delay(6.0);
        let opts = milo_serve::SubmitOptions::new();
        let mut unique = 0u64;
        snap.bench("service/evict_churn", || {
            unique += 1;
            let design = format!(
                "design ec{unique}\ninput a b c\noutput y\n\
                 comp and2 g1 A0=a A1=b Y=t\ncomp or2 g2 A0=t A1=c Y=y\n"
            );
            let job = client
                .submit_with(&design, &constraints, &opts)
                .expect("submits");
            client.result_raw(job).expect("round-trips").len()
        });
        // With a 512-byte budget nothing stays resident, so each
        // resubmission of this design is answered from the disk store.
        let spilled = "design spilled\ninput a b c\noutput y\n\
                       comp and2 g1 A0=a A1=b Y=t\ncomp or2 g2 A0=t A1=c Y=y\n";
        snap.bench("service/disk_hit", || {
            let job = client
                .submit_with(spilled, &constraints, &opts)
                .expect("submits");
            client.result_raw(job).expect("round-trips").len()
        });
        client.shutdown().expect("shuts down");
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    let json = snap.to_json();
    std::fs::write(&out_path, &json).expect("writes snapshot");
    println!("wrote {out_path}");
    write_trace(trace_out.as_deref());
}
