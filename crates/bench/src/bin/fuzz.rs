//! Differential-fuzz driver over the scenario zoo, plus the 10k-gate
//! scale smoke.
//!
//! Run with `cargo run --release -p milo-bench --bin fuzz [-- options]`:
//!
//! * `--seeds N` — number of seeds to run (default 100);
//! * `--start S` — first seed (default 1);
//! * `--scale-smoke` — instead of fuzzing, push one 10k-gate control
//!   design through `Flow::standard()` and print the per-pass report
//!   (the CI scale gate).
//!
//! `MILO_FUZZ_SEED=<seed>` replays exactly one seed, overriding
//! `--seeds`/`--start`. Every failure line embeds the seed to replay.
//! Exit status is non-zero if any seed diverges — seeds are echoed on
//! failure so CI logs are directly replayable.
//!
//! `MILO_TRACE=1` (or `--trace-out <file>`, which forces tracing on)
//! arms the `milo-trace` spans; with `--trace-out` the buffered events
//! are written to `<file>` as Chrome trace-event JSON at exit — see
//! `docs/OBSERVABILITY.md`.

use milo_bench::fuzz::{fuzz_case, seeds_from_env};
use milo_circuits::random_control;
use milo_core::{Constraints, Milo};
use milo_netlist::{validate, Violation};
use milo_techmap::ecl_library;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

fn arg_value(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// One 10k-gate design through the default flow: the CI scale smoke.
/// Prints the per-pass wall times and validates the result.
fn scale_smoke() -> Result<(), String> {
    let gates = 10_000;
    let nl = random_control(gates, 24, 7);
    println!(
        "scale-smoke: {} ({} components, {} ports)",
        nl.name,
        nl.component_count(),
        nl.ports().len()
    );
    let start = Instant::now();
    let mut milo = Milo::new(ecl_library());
    let mut flow = milo.flow();
    let out = flow
        .run(&mut milo, &nl, &Constraints::none())
        .map_err(|e| format!("scale-smoke flow failed: {e}"))?;
    let total = start.elapsed();
    for p in &out.report.passes {
        println!(
            "  {:<18} {:>12.3?} applied={}{}",
            p.name,
            p.wall,
            p.rules_applied,
            if p.skipped { " (skipped)" } else { "" }
        );
    }
    println!(
        "scale-smoke: {} -> {} cells, area {:.1}, delay {:.3} in {total:.3?}",
        gates, out.result.stats.cells, out.result.stats.area, out.result.stats.delay
    );
    let v: Vec<Violation> = validate(&out.result.netlist, true)
        .into_iter()
        .filter(|v| !matches!(v, Violation::DanglingOutput { .. }))
        .collect();
    if !v.is_empty() {
        return Err(format!("scale-smoke result fails validation: {v:?}"));
    }
    Ok(())
}

/// Drains the buffered trace events into `path` (no-op without
/// `--trace-out`).
fn write_trace(path: Option<&str>) {
    let Some(path) = path else { return };
    std::fs::write(path, milo_trace::drain_chrome_json()).expect("writes trace");
    println!("wrote trace {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    milo_trace::init_from_env();
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    if trace_out.is_some() {
        milo_trace::set_enabled(true);
    }
    if args.iter().any(|a| a == "--scale-smoke") {
        if let Err(e) = scale_smoke() {
            eprintln!("FAIL {e}");
            std::process::exit(1);
        }
        write_trace(trace_out.as_deref());
        return;
    }

    let count = arg_value(&args, "--seeds").unwrap_or(100);
    let start = arg_value(&args, "--start").unwrap_or(1);
    let seeds = seeds_from_env(start, count);
    println!(
        "differential fuzz: {} seed(s) starting at {}",
        seeds.len(),
        seeds.first().copied().unwrap_or(0)
    );

    let began = Instant::now();
    let mut failures = 0usize;
    for &seed in &seeds {
        // Tag even panics (simulator asserts, port-list mismatches)
        // with the seed, so every failure mode is replayable.
        match catch_unwind(AssertUnwindSafe(|| fuzz_case(seed))) {
            Ok(Ok(report)) => {
                println!(
                    "  ok seed {:<6} {:<20} {:>5} -> {:>5} components",
                    report.seed, report.family, report.source_components, report.result_components
                );
            }
            Ok(Err(msg)) => {
                failures += 1;
                eprintln!("FAIL {msg}");
            }
            Err(payload) => {
                failures += 1;
                let msg = milo_par::Panic(payload).message();
                eprintln!("FAIL seed {seed}: panicked: {msg}; replay with MILO_FUZZ_SEED={seed}");
            }
        }
    }
    println!(
        "differential fuzz: {}/{} seeds passed in {:.3?}",
        seeds.len() - failures,
        seeds.len(),
        began.elapsed()
    );
    write_trace(trace_out.as_deref());
    if failures > 0 {
        eprintln!("{failures} seed(s) diverged — rerun each with MILO_FUZZ_SEED=<seed>");
        std::process::exit(1);
    }
}
