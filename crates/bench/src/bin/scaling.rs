//! The §2.2.2 LSS claim: local-transformation synthesis time stays
//! near-linear in design size.
//!
//! ```text
//! cargo run -p milo-bench --bin scaling --release
//! ```

use milo_bench::scaling_experiment;
use milo_core::{f2, Table};

fn main() {
    println!("§2.2.2 LSS scaling: local-transformation optimization time vs design size\n");
    let rows = scaling_experiment(&[100, 200, 400, 800, 1600]);
    let mut table = Table::new(&["Gates", "Time (ms)", "Gates/sec", "Rules fired"]);
    for r in &rows {
        table.row_owned(vec![
            r.gates.to_string(),
            f2(r.millis),
            format!("{:.0}", r.gates_per_sec),
            r.fired.to_string(),
        ]);
    }
    println!("{}", table.render());
    let first = rows.first().expect("rows");
    let last = rows.last().expect("rows");
    let size_ratio = last.gates as f64 / first.gates as f64;
    let time_ratio = last.millis / first.millis.max(1e-9);
    println!(
        "Size grew {size_ratio:.0}x; time grew {time_ratio:.1}x (linear would be {size_ratio:.0}x)."
    );
    println!("Paper (quoting LSS): \"the use of local transformations … tends to keep");
    println!(
        "synthesis times linear for increasing design sizes\" (~9 gates/s on a 1988 IBM 3081)."
    );
}
