//! Ablation: what each pipeline stage contributes on the Fig. 19 micro
//! circuits. Configurations: direct mapping (baseline), logic optimizer
//! only, + microarchitecture critic, full MILO (+ timing strategies).
//!
//! ```text
//! cargo run -p milo-bench --release --bin ablation
//! ```

use milo_circuits::fig19;
use milo_core::{f2, Constraints, Milo, Table};
use milo_opt::optimize_bottom_up;
use milo_techmap::ecl_library;
use milo_timing::statistics;

fn main() {
    println!("Ablation: per-stage contribution on circuit 8 (the Fig. 14 timer block)\n");
    let case = fig19::circuit8();
    let mut table = Table::new(&["Configuration", "Delay (ns)", "Area (cells)", "Power (mA)"]);

    // (a) direct mapping.
    let mut milo = Milo::new(ecl_library());
    let direct = milo.elaborate_unoptimized(&case).expect("elaborates");
    let direct_stats = statistics(&direct).expect("stats");
    table.row_owned(vec![
        "direct mapping (human proxy)".into(),
        f2(direct_stats.delay),
        f2(direct_stats.area),
        f2(direct_stats.power),
    ]);

    // (b) logic optimizer only (no microarchitecture critic): compile the
    // raw entry, bottom-up optimize, area pass.
    let mut db = milo_netlist::DesignDb::new();
    let lib = ecl_library();
    let mut compiled = case.clone();
    compiled.name = "abl_logic_only".into();
    milo_compilers::expand_micro_components(&mut compiled, &mut db).expect("compiles");
    let name = db.insert(compiled);
    let (mut logic_only, _) = optimize_bottom_up(&name, &mut db, &lib).expect("optimizes");
    milo_opt::optimize_area(&mut logic_only, &lib, f64::INFINITY, 200);
    let logic_stats = statistics(&logic_only).expect("stats");
    table.row_owned(vec![
        "logic optimizer only".into(),
        f2(logic_stats.delay),
        f2(logic_stats.area),
        f2(logic_stats.power),
    ]);

    // (c) + microarchitecture critic (no timing constraint).
    let mut milo2 = Milo::new(ecl_library());
    let unconstrained = milo2
        .synthesize(&case, &Constraints::none())
        .expect("synthesizes");
    table.row_owned(vec![
        "+ microarchitecture critic".into(),
        f2(unconstrained.stats.delay),
        f2(unconstrained.stats.area),
        f2(unconstrained.stats.power),
    ]);

    // (d) full MILO with a timing constraint (strategies + CLA tradeoffs).
    let target = direct_stats.delay * 0.92;
    let mut milo3 = Milo::new(ecl_library());
    let full = milo3
        .synthesize(&case, &Constraints::none().with_max_delay(target))
        .expect("synthesizes");
    table.row_owned(vec![
        format!("full MILO (delay <= {:.2} ns)", target),
        f2(full.stats.delay),
        f2(full.stats.area),
        f2(full.stats.power),
    ]);

    println!("{}", table.render());
    println!("Reading: the logic optimizer alone cleans seams between compiled macros;");
    println!("the microarchitecture critic's counter rewrite removes whole components");
    println!("(the paper's core claim: gate-level tools cannot recover this structure);");
    println!("the timing run then spends area only where the constraint demands it.");
    println!("(Note: after the counter rewrite there is no adder left to CLA-swap, so very");
    println!("tight constraints on this circuit become infeasible — the flip side of the");
    println!("microarchitecture restructuring the paper advocates.)");
    assert!(
        unconstrained.stats.area < logic_stats.area,
        "critic must add area savings"
    );
    assert!(full.stats.delay <= target + 1e-9, "constraint met");
}
