//! Characterizes the eight delay-reduction strategies of Fig. 9.
//!
//! ```text
//! cargo run -p milo-bench --bin strategies --release
//! ```

use milo_bench::strategies_experiment;
use milo_core::{f2, Table};

fn main() {
    println!("Figure 9 / §4.1.2: measured gain/cost profile per strategy (ECL library)\n");
    let rows = strategies_experiment();
    let mut table = Table::new(&[
        "Strategy",
        "Δdelay (ns)",
        "Δarea (cells)",
        "Δpower (mA)",
        "CPU (µs)",
    ]);
    for r in &rows {
        table.row_owned(vec![
            r.strategy.label().to_owned(),
            f2(r.delay_gain),
            f2(r.area_cost),
            f2(r.power_cost),
            r.micros.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("Expected shape (paper): S1/S2 small gain (S1 zero cost); S3 small gain;");
    println!("S4 moderate gain zero cost; S5 small gain with area cost; S6 moderate gain");
    println!("with cost; S7 large gain, most CPU; S8 large gain, large area/power cost.");
}
