//! Fig. 10: one truth-table hash entry replaces many structural rules,
//! and lookup is a single probe instead of a rule scan.
//!
//! ```text
//! cargo run -p milo-bench --bin hash_vs_rules --release
//! ```

use milo_bench::hash_vs_rules_experiment;

fn main() {
    println!("Figure 10: hash-table lookup vs rule scanning (CMOS library)\n");
    let r = hash_vs_rules_experiment(20_000);
    println!("hash-table keys:            {}", r.table_entries);
    println!(
        "hash lookup:                {:.0} ns/query (single probe)",
        r.hash_ns
    );
    println!("rule scan with permutations:{:.0} ns/query", r.scan_ns);
    println!("speedup:                    {:.1}x", r.speedup);
    println!();
    println!("Paper: \"a hash table has an advantage over the rule-based approach in that");
    println!("fewer transformations need to be entered … another advantage of hash table");
    println!("lookup is speed. It requires only one table lookup per function.\"");
    assert!(r.speedup > 1.0, "hash lookup must beat scanning");
}
