//! Regenerates Figure 19 — the paper's main results table.
//!
//! ```text
//! cargo run -p milo-bench --bin fig19 --release
//! ```

use milo_bench::fig19_experiment;
use milo_core::{f2, pct, Table};

fn main() {
    println!("Figure 19: MILO test cases (synthetic circuits, ECL gate-array library)");
    println!("Baseline = direct technology mapping of the same entry (\"human\" proxy).\n");
    let rows = fig19_experiment();
    let mut table = Table::new(&[
        "Design",
        "Complexity",
        "Delay (ns)",
        "",
        "Percent",
        "Area (cells)",
        "",
        "Percent",
        "Entry",
    ]);
    table.row(&[
        "", "(gates)", "Human", "MILO", "Improv", "Human", "MILO", "Improv", "level",
    ]);
    let mut delay_improvements = Vec::new();
    let mut area_improvements = Vec::new();
    for r in &rows {
        table.row_owned(vec![
            r.index.to_string(),
            format!("{:.0}", r.complexity),
            f2(r.human_delay),
            f2(r.milo_delay),
            pct(r.delay_improvement),
            format!("{:.1}", r.human_area),
            format!("{:.1}", r.milo_area),
            pct(r.area_improvement),
            if r.micro_level {
                format!("micro ({} comps)", r.compiler_components)
            } else {
                "gate".to_owned()
            },
        ]);
        delay_improvements.push(r.delay_improvement);
        area_improvements.push(r.area_improvement);
    }
    println!("{}", table.render());
    let span = |v: &[f64]| {
        (
            v.iter().copied().fold(f64::MAX, f64::min),
            v.iter().copied().fold(f64::MIN, f64::max),
        )
    };
    let (dmin, dmax) = span(&delay_improvements);
    let (amin, amax) = span(&area_improvements);
    println!("Improvement ranges: delay {dmin:.0}..{dmax:.0} %, area {amin:.0}..{amax:.0} %");
    println!("Paper reports: \"generally MILO was able to improve designs 2 to 40 percent\";");
    println!(
        "microarchitecture-level improvements are the less dramatic ones (regular structures)."
    );
}
