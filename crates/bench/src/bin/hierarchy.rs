//! Figs. 16/18: the ABADD walkthrough — hierarchical compilation and
//! bottom-up logic optimization with mux+FF macro merging.
//!
//! ```text
//! cargo run -p milo-bench --bin hierarchy --release
//! ```

use milo_bench::hierarchy_experiment;
use milo_core::{f2, Table};

fn main() {
    println!("Figures 16/18: ABADD (ADD4 -> MUX2:1:4 -> REG4) bottom-up optimization\n");
    let r = hierarchy_experiment();
    let mut table = Table::new(&["Design level", "Area before", "Area after", "Rules fired"]);
    for l in &r.levels {
        table.row_owned(vec![
            l.design.clone(),
            f2(l.before.area),
            f2(l.after.area),
            l.fired.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("direct-mapped area:   {:.2}", r.direct_area);
    println!("bottom-up optimized:  {:.2}", r.optimized_area);
    println!("merged MXFF macros:   {}", r.mxff_count);
    println!(
        "two-stage MXFF4s (load-register variant): {}",
        r.two_stage_mxff4
    );
    println!();
    println!("Paper: \"each multiplexor and flip-flop set can be combined into a single");
    println!("technology-specific element, providing a decrease in area … making use of");
    println!("high-level macros that have 4-1 multiplexors combined with a flip-flop.\"");
    assert!(r.optimized_area < r.direct_area);
    assert!(r.mxff_count >= 4);
    assert!(
        r.two_stage_mxff4 >= 4,
        "the Fig. 18 two-stage merge must produce MXFF4s"
    );
}
