//! Rule set for the metarules experiment (§2.2.2 / CoBa85 numbers the
//! paper quotes).
//!
//! The experiment needs rules where one-step greedy selection is
//! provably weaker than lookahead: [`NandToInvOr`] rewrites a NAND into
//! inverters plus an OR (an immediate area *loss*) which, when the NAND's
//! inputs are already inverted, lets [`milo_opt::critics`]'s inverter-pair
//! elimination collapse the whole structure (a two-step net win the
//! greedy optimizer never sees).

use milo_netlist::{
    CellFunction, ComponentKind, GateFn, Netlist, NetlistError, PinDir, PowerLevel,
};
use milo_rules::{Locality, Rule, RuleClass, RuleCtx, RuleMatch, Tx};
use milo_techmap::TechLibrary;

/// De Morgan rewrite: `NAND2(a,b) → OR2(INV a, INV b)`.
pub struct NandToInvOr {
    lib: TechLibrary,
}

impl NandToInvOr {
    /// Creates the rule bound to a library.
    pub fn new(lib: TechLibrary) -> Self {
        Self { lib }
    }
}

impl Rule for NandToInvOr {
    fn name(&self) -> &'static str {
        "nand-to-inv-or"
    }
    fn class(&self) -> RuleClass {
        RuleClass::Area
    }
    fn matches(&self, ctx: &RuleCtx) -> Vec<RuleMatch> {
        milo_rules::scan_all_components(self, ctx)
    }
    // Support: only the anchor's own kind.
    fn locality(&self) -> Locality {
        Locality::Local
    }
    fn matches_at(&self, ctx: &RuleCtx, id: milo_netlist::ComponentId) -> Vec<RuleMatch> {
        let Ok(c) = ctx.nl.component(id) else {
            return Vec::new();
        };
        let ComponentKind::Tech(cell) = &c.kind else {
            return Vec::new();
        };
        if matches!(cell.function, CellFunction::Gate(GateFn::Nand, 2)) {
            vec![RuleMatch::at(id).with_note("NAND2 -> INV+INV+OR2")]
        } else {
            Vec::new()
        }
    }
    fn apply(&self, tx: &mut Tx, m: &RuleMatch) -> Result<(), NetlistError> {
        let or2 = self
            .lib
            .cell_at_level(&CellFunction::Gate(GateFn::Or, 2), PowerLevel::Standard)
            .ok_or(NetlistError::NoSuchPort("OR2".into()))?
            .clone();
        let inv = self
            .lib
            .cell_at_level(&CellFunction::Gate(GateFn::Inv, 1), PowerLevel::Standard)
            .ok_or(NetlistError::NoSuchPort("INV".into()))?
            .clone();
        let nl = tx.netlist();
        let a = nl
            .pin_net(m.site, "A0")
            .ok_or(NetlistError::NoSuchComponent(m.site))?;
        let b = nl
            .pin_net(m.site, "A1")
            .ok_or(NetlistError::NoSuchComponent(m.site))?;
        let y = nl
            .pin_net(m.site, "Y")
            .ok_or(NetlistError::NoSuchComponent(m.site))?;
        tx.remove_component(m.site)?;
        let ia = tx.add_component(
            format!("dm{}a", m.site.index()),
            ComponentKind::Tech(inv.clone()),
        );
        let ib = tx.add_component(format!("dm{}b", m.site.index()), ComponentKind::Tech(inv));
        let na = tx.add_net(format!("dm{}na", m.site.index()));
        let nb = tx.add_net(format!("dm{}nb", m.site.index()));
        tx.connect_named(ia, "A0", a)?;
        tx.connect_named(ia, "Y", na)?;
        tx.connect_named(ib, "A0", b)?;
        tx.connect_named(ib, "Y", nb)?;
        let g = tx.add_component(format!("dm{}o", m.site.index()), ComponentKind::Tech(or2));
        tx.connect_named(g, "A0", na)?;
        tx.connect_named(g, "A1", nb)?;
        tx.connect_named(g, "Y", y)?;
        Ok(())
    }
}

/// The rule set for the metarules experiment: the enabler plus the logic
/// critic's cleanups.
pub fn metarule_rule_set(lib: &TechLibrary) -> Vec<Box<dyn Rule>> {
    let mut rules = milo_opt::logic_rules(lib);
    rules.push(Box::new(NandToInvOr::new(lib.clone())));
    rules
}

/// A circuit where lookahead wins: inverter-driven NAND pairs
/// (`NAND(!a, !b)` ≡ `OR... actually AND(a,b) after double-negation`).
pub fn lookahead_opportunity_circuit(copies: usize) -> Netlist {
    use milo_netlist::{GenericMacro, Netlist};
    let mut nl = Netlist::new("meta");
    for k in 0..copies {
        let a = nl.add_net(format!("a{k}"));
        let b = nl.add_net(format!("b{k}"));
        nl.add_port(format!("a{k}"), PinDir::In, a);
        nl.add_port(format!("b{k}"), PinDir::In, b);
        let ia = nl.add_component(
            format!("ia{k}"),
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)),
        );
        let ib = nl.add_component(
            format!("ib{k}"),
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)),
        );
        let na = nl.add_net(format!("na{k}"));
        let nb = nl.add_net(format!("nb{k}"));
        nl.connect_named(ia, "A0", a).unwrap();
        nl.connect_named(ia, "Y", na).unwrap();
        nl.connect_named(ib, "A0", b).unwrap();
        nl.connect_named(ib, "Y", nb).unwrap();
        let g = nl.add_component(
            format!("g{k}"),
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Nand, 2)),
        );
        nl.connect_named(g, "A0", na).unwrap();
        nl.connect_named(g, "A1", nb).unwrap();
        let y = nl.add_net(format!("y{k}"));
        nl.connect_named(g, "Y", y).unwrap();
        // Greedy-visible work: a four-inverter chain on the output (two
        // removable pairs), so the no-lookahead baseline also spends time.
        let mut prev = y;
        for j in 0..4 {
            let iv = nl.add_component(
                format!("nz{k}_{j}"),
                ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)),
            );
            nl.connect_named(iv, "A0", prev).unwrap();
            let ny = nl.add_net(format!("nzn{k}_{j}"));
            nl.connect_named(iv, "Y", ny).unwrap();
            prev = ny;
        }
        nl.add_port(format!("y{k}"), PinDir::Out, prev);
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_compilers::verify::check_comb_equivalence;
    use milo_rules::{greedy_optimize, lookahead_optimize, Engine, MetaParams};
    use milo_techmap::{cmos_library, map_netlist};
    use milo_timing::statistics;

    #[test]
    fn lookahead_beats_greedy_on_area() {
        let lib = cmos_library();
        let entry = lookahead_opportunity_circuit(3);
        let mapped = map_netlist(&entry, &lib).unwrap();

        let mut greedy_nl = mapped.clone();
        let mut engine = Engine::new(metarule_rule_set(&lib));
        greedy_optimize(&mut greedy_nl, &mut engine, MetaParams::default(), 100);
        let greedy_area = statistics(&greedy_nl).unwrap().area;

        let mut look_nl = mapped.clone();
        let mut engine2 = Engine::new(metarule_rule_set(&lib));
        let params = MetaParams {
            depth: 4,
            breadth: 4,
            apply_depth: 3,
            ..MetaParams::default()
        };
        lookahead_optimize(&mut look_nl, &mut engine2, params, false, 100);
        let look_area = statistics(&look_nl).unwrap().area;

        assert!(
            look_area < greedy_area,
            "lookahead {look_area} < greedy {greedy_area}"
        );
        check_comb_equivalence(&mapped, &look_nl, 64).unwrap();
    }
}
