//! The experiment implementations (one per reproduced table/figure).

use crate::metarule_rules::{lookahead_opportunity_circuit, metarule_rule_set};
use milo_circuits::{abadd, fig19_all, random_logic};
use milo_compilers::expand_micro_components;
use milo_core::{Constraints, Milo};
use milo_netlist::{ComponentKind, DesignDb, Netlist, PinDir};
use milo_opt::{optimize_bottom_up, LevelReport, StrategyCtx, StrategyId};
use milo_rules::{
    cell_truth_table, greedy_optimize, lookahead_optimize, Engine, HashRuleTable, LibraryRef,
    MetaParams,
};
use milo_techmap::{ecl_library, map_netlist, TechLibrary};
use milo_timing::{analyze, gate_equivalents, statistics};
use std::time::Instant;

// ---------------------------------------------------------------------
// Fig. 19 — the main results table.
// ---------------------------------------------------------------------

/// One row of the Fig. 19 table.
#[derive(Clone, Debug)]
pub struct Fig19Row {
    /// Design number (1–8).
    pub index: usize,
    /// Complexity in two-input-equivalent gates.
    pub complexity: f64,
    /// Baseline ("human" direct-mapped) delay, ns.
    pub human_delay: f64,
    /// MILO-optimized delay, ns.
    pub milo_delay: f64,
    /// Delay improvement, percent.
    pub delay_improvement: f64,
    /// Baseline area, cells.
    pub human_area: f64,
    /// MILO-optimized area, cells.
    pub milo_area: f64,
    /// Area improvement, percent.
    pub area_improvement: f64,
    /// Entered at the microarchitecture level?
    pub micro_level: bool,
    /// Number of logic-compiler-generated components for micro entries.
    pub compiler_components: usize,
}

/// Runs the Fig. 19 experiment: every test case through the full MILO
/// pipeline against the unoptimized direct mapping, in the ECL library
/// (as §7 does).
pub fn fig19_experiment() -> Vec<Fig19Row> {
    let mut rows = Vec::new();
    for case in fig19_all() {
        let mut milo = Milo::new(ecl_library());
        let baseline_nl = milo
            .elaborate_unoptimized(&case.netlist)
            .expect("baseline elaborates");
        let baseline = statistics(&baseline_nl).expect("baseline stats");
        let constraint = Constraints::none().with_max_delay(baseline.delay * case.delay_factor);
        let result = milo
            .synthesize(&case.netlist, &constraint)
            .expect("synthesis succeeds");
        let compiler_components = case
            .netlist
            .component_ids()
            .filter(|&id| {
                matches!(
                    case.netlist.component(id).map(|c| &c.kind),
                    Ok(ComponentKind::Micro(_))
                )
            })
            .count();
        rows.push(Fig19Row {
            index: case.index,
            complexity: gate_equivalents(&baseline_nl),
            human_delay: baseline.delay,
            milo_delay: result.stats.delay,
            delay_improvement: result.delay_improvement_pct(),
            human_area: baseline.area,
            milo_area: result.stats.area,
            area_improvement: result.area_improvement_pct(),
            micro_level: case.micro_level,
            compiler_components,
        });
    }
    rows
}

// ---------------------------------------------------------------------
// Fig. 9 — per-strategy gain/cost characterization.
// ---------------------------------------------------------------------

/// Measured profile of one strategy.
#[derive(Clone, Debug)]
pub struct StrategyRow {
    /// The strategy.
    pub strategy: StrategyId,
    /// Delay reduction achieved, ns (positive = faster).
    pub delay_gain: f64,
    /// Area change, cells (positive = grew).
    pub area_cost: f64,
    /// Power change, mA.
    pub power_cost: f64,
    /// Application time, microseconds.
    pub micros: u128,
}

/// Builds the characterization circuit for a strategy and returns the
/// netlist plus the application site.
fn strategy_case(strategy: StrategyId, lib: &TechLibrary) -> (Netlist, milo_netlist::ComponentId) {
    let mut nl = Netlist::new(format!("case_{}", strategy.label()));
    let add = |nl: &mut Netlist, name: &str, cell: &str| {
        let c = lib.get(cell).expect("cell exists").clone();
        nl.add_component(name, ComponentKind::Tech(c))
    };
    match strategy {
        StrategyId::S1PinSwap | StrategyId::S2PowerUp | StrategyId::S3Factor => {
            // Skewed-arrival AND3.
            let a = nl.add_net("a");
            let b = nl.add_net("b");
            let c0 = nl.add_net("c");
            for (n, net) in [("a", a), ("b", b), ("c", c0)] {
                nl.add_port(n, PinDir::In, net);
            }
            let mut late = c0;
            for i in 0..3 {
                let g = add(&mut nl, &format!("d{i}"), "BUF");
                nl.connect_named(g, "A0", late).unwrap();
                let y = nl.add_net(format!("dl{i}"));
                nl.connect_named(g, "Y", y).unwrap();
                late = y;
            }
            let and3 = add(&mut nl, "and3", "AND3");
            nl.connect_named(and3, "A0", a).unwrap();
            nl.connect_named(and3, "A1", b).unwrap();
            nl.connect_named(and3, "A2", late).unwrap();
            let y = nl.add_net("y");
            nl.connect_named(and3, "Y", y).unwrap();
            nl.add_port("y", PinDir::Out, y);
            (nl, and3)
        }
        StrategyId::S4BetterMacro | StrategyId::S6BetterMacroCost => {
            // AND2 -> NOR2 cone (AOI21 shape).
            let a = nl.add_net("a");
            let b = nl.add_net("b");
            let c0 = nl.add_net("c");
            for (n, net) in [("a", a), ("b", b), ("c", c0)] {
                nl.add_port(n, PinDir::In, net);
            }
            let g1 = add(&mut nl, "g1", "AND2");
            nl.connect_named(g1, "A0", a).unwrap();
            nl.connect_named(g1, "A1", b).unwrap();
            let ab = nl.add_net("ab");
            nl.connect_named(g1, "Y", ab).unwrap();
            let g2 = add(&mut nl, "g2", "NOR2");
            nl.connect_named(g2, "A0", ab).unwrap();
            nl.connect_named(g2, "A1", c0).unwrap();
            let y = nl.add_net("y");
            nl.connect_named(g2, "Y", y).unwrap();
            nl.add_port("y", PinDir::Out, y);
            (nl, g2)
        }
        StrategyId::S8ShannonMux => {
            // Three-level cone whose late input enters at the first level:
            // y = ((c & a) | b) & d, with c behind a tapped delay chain.
            let a = nl.add_net("a");
            let b = nl.add_net("b");
            let c0 = nl.add_net("c");
            let d = nl.add_net("d");
            for (n, net) in [("a", a), ("b", b), ("c", c0), ("d", d)] {
                nl.add_port(n, PinDir::In, net);
            }
            let mut cin = c0;
            for i in 0..4 {
                let g = add(&mut nl, &format!("ch{i}"), "BUF");
                nl.connect_named(g, "A0", cin).unwrap();
                let y = nl.add_net(format!("chn{i}"));
                nl.connect_named(g, "Y", y).unwrap();
                cin = y;
            }
            // Tap the chain output so the cone extraction stops at the
            // late signal instead of absorbing the chain.
            nl.add_port("tap", PinDir::Out, cin);
            let g1 = add(&mut nl, "g1", "AND2");
            nl.connect_named(g1, "A0", cin).unwrap();
            nl.connect_named(g1, "A1", a).unwrap();
            let ca = nl.add_net("ca");
            nl.connect_named(g1, "Y", ca).unwrap();
            let g2 = add(&mut nl, "g2", "OR2");
            nl.connect_named(g2, "A0", ca).unwrap();
            nl.connect_named(g2, "A1", b).unwrap();
            let cab = nl.add_net("cab");
            nl.connect_named(g2, "Y", cab).unwrap();
            let g3 = add(&mut nl, "g3", "AND2");
            nl.connect_named(g3, "A0", cab).unwrap();
            nl.connect_named(g3, "A1", d).unwrap();
            let y = nl.add_net("y");
            nl.connect_named(g3, "Y", y).unwrap();
            nl.add_port("y", PinDir::Out, y);
            (nl, g3)
        }
        StrategyId::S5Duplicate => {
            let a = nl.add_net("a");
            nl.add_port("a", PinDir::In, a);
            let g = add(&mut nl, "g", "INV");
            nl.connect_named(g, "A0", a).unwrap();
            let mid = nl.add_net("mid");
            nl.connect_named(g, "Y", mid).unwrap();
            for i in 0..6 {
                let b = add(&mut nl, &format!("b{i}"), "BUF");
                nl.connect_named(b, "A0", mid).unwrap();
                let y = nl.add_net(format!("y{i}"));
                nl.connect_named(b, "Y", y).unwrap();
                nl.add_port(format!("y{i}"), PinDir::Out, y);
            }
            (nl, g)
        }
        StrategyId::S7Minimize => {
            // Redundant (a&b)|(a&!b) cone.
            let a = nl.add_net("a");
            let b = nl.add_net("b");
            nl.add_port("a", PinDir::In, a);
            nl.add_port("b", PinDir::In, b);
            let i1 = add(&mut nl, "i1", "INV");
            nl.connect_named(i1, "A0", b).unwrap();
            let nb = nl.add_net("nb");
            nl.connect_named(i1, "Y", nb).unwrap();
            let g1 = add(&mut nl, "g1", "AND2");
            nl.connect_named(g1, "A0", a).unwrap();
            nl.connect_named(g1, "A1", b).unwrap();
            let t1 = nl.add_net("t1");
            nl.connect_named(g1, "Y", t1).unwrap();
            let g2 = add(&mut nl, "g2", "AND2");
            nl.connect_named(g2, "A0", a).unwrap();
            nl.connect_named(g2, "A1", nb).unwrap();
            let t2 = nl.add_net("t2");
            nl.connect_named(g2, "Y", t2).unwrap();
            let g3 = add(&mut nl, "g3", "OR2");
            nl.connect_named(g3, "A0", t1).unwrap();
            nl.connect_named(g3, "A1", t2).unwrap();
            let y = nl.add_net("y");
            nl.connect_named(g3, "Y", y).unwrap();
            nl.add_port("y", PinDir::Out, y);
            (nl, g3)
        }
    }
}

/// Characterizes every strategy: the measured gain/cost profile of
/// Fig. 9's catalog.
pub fn strategies_experiment() -> Vec<StrategyRow> {
    let lib = ecl_library();
    let hash = HashRuleTable::from_library(&LibraryRef { cells: lib.cells() });
    let ctx = StrategyCtx {
        lib: &lib,
        hash: &hash,
    };
    let mut rows = Vec::new();
    for strategy in StrategyId::ALL {
        let (mut nl, site) = strategy_case(strategy, &lib);
        let before = statistics(&nl).expect("stats");
        let sta = analyze(&nl).expect("sta");
        let t0 = Instant::now();
        let applied = milo_opt::apply_strategy(strategy, &mut nl, site, &sta, &ctx);
        let micros = t0.elapsed().as_micros();
        let after = statistics(&nl).expect("stats");
        assert!(
            applied.is_some(),
            "{} must apply on its case",
            strategy.label()
        );
        rows.push(StrategyRow {
            strategy,
            delay_gain: before.delay - after.delay,
            area_cost: after.area - before.area,
            power_cost: after.power - before.power,
            micros,
        });
    }
    rows
}

// ---------------------------------------------------------------------
// §2.2.2 — metarules ablation (the CoBa85 numbers the paper quotes).
// ---------------------------------------------------------------------

/// One configuration's result.
#[derive(Clone, Debug)]
pub struct MetarulesRow {
    /// Configuration name.
    pub config: &'static str,
    /// Wall time, milliseconds.
    pub millis: f64,
    /// Final area.
    pub area: f64,
    /// Area reduction vs entry, percent.
    pub area_reduction: f64,
    /// Search states explored (0 for greedy).
    pub states: usize,
}

/// Runs greedy vs lookahead vs lookahead+metarules on a circuit with
/// two-step optimization opportunities.
pub fn metarules_experiment(copies: usize) -> Vec<MetarulesRow> {
    let lib = milo_techmap::cmos_library();
    let entry = lookahead_opportunity_circuit(copies);
    let mapped = map_netlist(&entry, &lib).expect("maps");
    let entry_area = statistics(&mapped).expect("stats").area;
    let params = MetaParams {
        depth: 4,
        breadth: 4,
        apply_depth: 3,
        ..MetaParams::default()
    };
    let mut rows = Vec::new();

    let mut nl = mapped.clone();
    let mut engine = Engine::new(metarule_rule_set(&lib));
    let t0 = Instant::now();
    greedy_optimize(&mut nl, &mut engine, params, 500);
    let greedy_ms = t0.elapsed().as_secs_f64() * 1e3;
    let area = statistics(&nl).expect("stats").area;
    rows.push(MetarulesRow {
        config: "greedy (no lookahead)",
        millis: greedy_ms,
        area,
        area_reduction: (entry_area - area) / entry_area * 100.0,
        states: 0,
    });

    for (config, dynamic) in [("lookahead", false), ("lookahead + metarules", true)] {
        let mut nl = mapped.clone();
        let mut engine = Engine::new(metarule_rule_set(&lib));
        let t0 = Instant::now();
        let stats = lookahead_optimize(&mut nl, &mut engine, params, dynamic, 500);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let area = statistics(&nl).expect("stats").area;
        rows.push(MetarulesRow {
            config,
            millis: ms,
            area,
            area_reduction: (entry_area - area) / entry_area * 100.0,
            states: stats.states_explored,
        });
    }
    rows
}

// ---------------------------------------------------------------------
// §2.2.2 — LSS linear-scaling claim.
// ---------------------------------------------------------------------

/// One design size's synthesis-time measurement.
#[derive(Clone, Debug)]
pub struct ScalingRow {
    /// Two-input-equivalent gate count of the entry.
    pub gates: usize,
    /// Local-transformation optimization time, milliseconds.
    pub millis: f64,
    /// Throughput, gates per second.
    pub gates_per_sec: f64,
    /// Rules fired.
    pub fired: usize,
}

/// Measures local-transformation synthesis time across design sizes
/// (sweep-mode rule application, as Rete-style incremental matching
/// makes practical).
pub fn scaling_experiment(sizes: &[usize]) -> Vec<ScalingRow> {
    let lib = milo_techmap::cmos_library();
    let mut rows = Vec::new();
    for &gates in sizes {
        let entry = random_logic(gates, 16, 0xF00D + gates as u64);
        let mapped = map_netlist(&entry, &lib).expect("maps");
        let mut nl = mapped;
        let mut engine = Engine::new(milo_opt::logic_rules(&lib));
        let t0 = Instant::now();
        let fired = engine.run_sweeps(&mut nl, None, 50);
        let secs = t0.elapsed().as_secs_f64();
        rows.push(ScalingRow {
            gates,
            millis: secs * 1e3,
            gates_per_sec: gates as f64 / secs.max(1e-9),
            fired,
        });
    }
    rows
}

// ---------------------------------------------------------------------
// Fig. 10 — hash table vs rule scanning.
// ---------------------------------------------------------------------

/// Result of the hash-vs-rules comparison.
#[derive(Clone, Debug)]
pub struct HashVsRulesResult {
    /// Distinct truth-table keys in the hash table.
    pub table_entries: usize,
    /// Average nanoseconds per hash lookup.
    pub hash_ns: f64,
    /// Average nanoseconds per naive rule-scan lookup.
    pub scan_ns: f64,
    /// Scan / hash time ratio.
    pub speedup: f64,
}

/// Measures single-probe hash lookup against scanning the cell "rules"
/// with permutation matching — the paper's Fig. 10 argument.
pub fn hash_vs_rules_experiment(queries: u32) -> HashVsRulesResult {
    let lib = milo_techmap::cmos_library();
    let table = HashRuleTable::from_library(&LibraryRef { cells: lib.cells() });
    // Query functions: all 3-variable truth tables cycled.
    let functions: Vec<milo_logic::TruthTable> = (0..=255u32)
        .map(|bits| milo_logic::TruthTable::new(3, u64::from(bits)))
        .collect();

    let t0 = Instant::now();
    let mut hits = 0usize;
    for q in 0..queries {
        let tt = &functions[(q as usize) % functions.len()];
        hits += usize::from(!table.lookup(tt).is_empty());
    }
    let hash_ns = t0.elapsed().as_nanos() as f64 / f64::from(queries);

    // Naive "rule base": for each query, scan all cells, trying every
    // input permutation of each cell's function.
    let cells: Vec<(milo_logic::TruthTable, String)> = lib
        .cells()
        .iter()
        .filter_map(|c| cell_truth_table(c).map(|t| (t, c.name.clone())))
        .collect();
    let t0 = Instant::now();
    let mut scan_hits = 0usize;
    for q in 0..queries {
        let tt = &functions[(q as usize) % functions.len()];
        'cells: for (ct, _) in &cells {
            if ct.vars() != tt.vars() {
                continue;
            }
            // All permutations of the cell inputs.
            let n = ct.vars();
            let mut perm: Vec<u8> = (0..n).collect();
            loop {
                if &ct.permute(&perm) == tt {
                    scan_hits += 1;
                    break 'cells;
                }
                if !next_permutation(&mut perm) {
                    break;
                }
            }
        }
    }
    let scan_ns = t0.elapsed().as_nanos() as f64 / f64::from(queries);
    let _ = (hits, scan_hits);
    HashVsRulesResult {
        table_entries: table.len(),
        hash_ns,
        scan_ns,
        speedup: scan_ns / hash_ns.max(1e-9),
    }
}

fn next_permutation(p: &mut [u8]) -> bool {
    if p.len() < 2 {
        return false;
    }
    let mut i = p.len() - 1;
    while i > 0 && p[i - 1] >= p[i] {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    let mut j = p.len() - 1;
    while p[j] <= p[i - 1] {
        j -= 1;
    }
    p.swap(i - 1, j);
    p[i..].reverse();
    true
}

// ---------------------------------------------------------------------
// Fig. 18 — hierarchical bottom-up optimization on ABADD.
// ---------------------------------------------------------------------

/// Result of the Fig. 18 experiment.
#[derive(Debug)]
pub struct HierarchyResult {
    /// Direct-mapped (unoptimized) area.
    pub direct_area: f64,
    /// Bottom-up optimized area.
    pub optimized_area: f64,
    /// Merged mux-FF macros in the final netlist.
    pub mxff_count: usize,
    /// Per-level reports.
    pub levels: Vec<LevelReport>,
    /// MXFF4 macros produced by the two-stage merge on the load-register
    /// variant (2:1 mux + MXFF2 → MXFF4 at the top level).
    pub two_stage_mxff4: usize,
}

/// Runs the ABADD walkthrough of Figs. 16 and 18.
pub fn hierarchy_experiment() -> HierarchyResult {
    let lib = ecl_library();
    let mut db = DesignDb::new();
    let mut top = abadd();
    expand_micro_components(&mut top, &mut db).expect("compiles");
    let top_name = db.insert(top);
    let direct = map_netlist(&db.flatten(&top_name).expect("flattens"), &lib).expect("maps");
    let direct_area = statistics(&direct).expect("stats").area;
    let (optimized, levels) = optimize_bottom_up(&top_name, &mut db, &lib).expect("optimizes");
    let optimized_area = statistics(&optimized).expect("stats").area;
    let mxff_count = optimized
        .component_ids()
        .filter(|&id| {
            matches!(
                optimized.component(id).map(|c| &c.kind),
                Ok(ComponentKind::Tech(c)) if c.name.starts_with("MXFF")
            )
        })
        .count();
    // Two-stage variant: load-only register, where the outer 2:1 mux
    // merges into the register's MXFF2 at the top level.
    let mut db2 = DesignDb::new();
    let mut top2 = milo_circuits::abadd_load_register(4);
    expand_micro_components(&mut top2, &mut db2).expect("compiles");
    let top2_name = db2.insert(top2);
    let (optimized2, _) = optimize_bottom_up(&top2_name, &mut db2, &lib).expect("optimizes");
    let two_stage_mxff4 = optimized2
        .component_ids()
        .filter(|&id| {
            matches!(
                optimized2.component(id).map(|c| &c.kind),
                Ok(ComponentKind::Tech(c)) if c.name == "MXFF4"
            )
        })
        .count();
    HierarchyResult {
        direct_area,
        optimized_area,
        mxff_count,
        levels,
        two_stage_mxff4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategies_experiment_profiles_all_eight() {
        let rows = strategies_experiment();
        assert_eq!(rows.len(), 8);
        // Paper shape spot-checks.
        let get = |id: StrategyId| rows.iter().find(|r| r.strategy == id).expect("row");
        let s1 = get(StrategyId::S1PinSwap);
        assert!(
            s1.delay_gain > 0.0 && s1.area_cost.abs() < 1e-9,
            "S1 zero cost: {s1:?}"
        );
        let s7 = get(StrategyId::S7Minimize);
        assert!(
            rows.iter().all(|r| r.delay_gain <= s7.delay_gain + 1e-9),
            "S7 largest gain: {rows:?}"
        );
        let s8 = get(StrategyId::S8ShannonMux);
        assert!(
            s8.delay_gain > 0.0 && s8.area_cost > 0.0,
            "S8 gain at cost: {s8:?}"
        );
    }

    #[test]
    fn hash_vs_rules_hash_wins() {
        let r = hash_vs_rules_experiment(500);
        assert!(r.table_entries > 10);
        assert!(r.speedup > 1.0, "{r:?}");
    }

    #[test]
    fn scaling_rows_fire_rules() {
        let rows = scaling_experiment(&[60, 120]);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.fired > 0));
    }

    #[test]
    fn metarules_shape_small() {
        let rows = metarules_experiment(3);
        assert_eq!(rows.len(), 3);
        let greedy = &rows[0];
        let look = &rows[1];
        let meta = &rows[2];
        assert!(look.area < greedy.area, "lookahead finds more area");
        assert!(meta.area <= look.area + 1e-9, "metarules keep the result");
        assert!(meta.states <= look.states, "metarules shrink the search");
    }
}
