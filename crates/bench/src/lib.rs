//! # milo-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (see DESIGN.md's per-experiment index). The binaries print
//! the tables; the shared logic here is also reused by the Criterion
//! benches.

#![warn(missing_docs)]

pub mod experiments;
pub mod fuzz;
pub mod metarule_rules;

pub use experiments::{
    fig19_experiment, hash_vs_rules_experiment, hierarchy_experiment, metarules_experiment,
    scaling_experiment, strategies_experiment, Fig19Row, HashVsRulesResult, HierarchyResult,
    MetarulesRow, ScalingRow, StrategyRow,
};
