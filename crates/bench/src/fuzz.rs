//! The differential-fuzz harness: one seed → one zoo design → three
//! synthesis arms that must agree.
//!
//! Each seed deterministically picks a generator family and parameters
//! from the scenario zoo (`milo-circuits`), then runs the design through
//!
//! 1. the observable [`Flow::standard`] API,
//! 2. the [`Milo::synthesize`] shim, and
//! 3. a one-element [`Milo::synthesize_batch`],
//!
//! each from a fresh [`Milo`] instance, and checks that all three arms
//! produce the same structural fingerprint, statistics, and baseline;
//! that the result validates cleanly; and that the result is
//! functionally equivalent to the unoptimized elaboration of the same
//! design (exhaustive for small combinational cones, randomized vectors
//! otherwise, clocked vectors for sequential designs).
//!
//! Every failure message embeds the replayable seed; rerun a single
//! seed with `MILO_FUZZ_SEED=<seed>` (both `tests/differential_fuzz.rs`
//! and the `fuzz` bin honor it). See `docs/TESTING.md`.

use milo_circuits::{
    fsm_bank, high_fanout, pipelined_datapath, random_control, random_logic, reconvergent_ladder,
};
use milo_compilers::verify::{check_comb_equivalence, check_seq_equivalence};
use milo_core::{Constraints, Milo};
use milo_netlist::{structural_hash, structural_summary, validate, Netlist, Violation};
use milo_techmap::ecl_library;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One generated fuzz case: the design plus the provenance needed to
/// report and replay it.
pub struct FuzzCase {
    /// The replayable seed.
    pub seed: u64,
    /// Generator family name (the zoo function that built the design).
    pub family: &'static str,
    /// Whether the design holds state (selects the equivalence checker).
    pub sequential: bool,
    /// The generated design.
    pub design: Netlist,
}

/// What a passing seed ran, for harness-side accounting.
pub struct FuzzReport {
    /// The seed that passed.
    pub seed: u64,
    /// Generator family of the design.
    pub family: &'static str,
    /// Source design component count.
    pub source_components: usize,
    /// Mapped result component count (identical across arms).
    pub result_components: usize,
}

/// Deterministically derives a zoo design from a seed. Sizes are kept
/// small enough that a hundred seeds run in seconds in release mode
/// while still crossing every generator family and both sequential and
/// combinational shapes.
pub fn case_for_seed(seed: u64) -> FuzzCase {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_f0dd);
    let (family, sequential, design): (&'static str, bool, Netlist) = match rng.gen_range(0..6u32) {
        0 => (
            "random_control",
            false,
            random_control(
                rng.gen_range(40..=220usize),
                rng.gen_range(6..=10usize),
                seed,
            ),
        ),
        1 => (
            "random_logic",
            false,
            random_logic(
                rng.gen_range(40..=160usize),
                rng.gen_range(6..=10usize),
                seed,
            ),
        ),
        2 => (
            "pipelined_datapath",
            true,
            pipelined_datapath(
                rng.gen_range(1..=3usize),
                rng.gen_range(2..=4u32) as u8,
                seed,
            ),
        ),
        3 => (
            "fsm_bank",
            true,
            fsm_bank(rng.gen_range(1..=4usize), rng.gen_range(1..=3usize), seed),
        ),
        4 => (
            "high_fanout",
            false,
            high_fanout(rng.gen_range(16..=48usize), seed),
        ),
        _ => (
            "reconvergent_ladder",
            false,
            reconvergent_ladder(rng.gen_range(6..=24usize), seed),
        ),
    };
    FuzzCase {
        seed,
        family,
        sequential,
        design,
    }
}

/// The hint appended to every failure so a human (or CI log reader) can
/// replay exactly this case.
fn replay(seed: u64) -> String {
    format!("replay with MILO_FUZZ_SEED={seed} (see docs/TESTING.md)")
}

fn violations_beyond_dangling(nl: &Netlist) -> Vec<Violation> {
    validate(nl, true)
        .into_iter()
        .filter(|v| !matches!(v, Violation::DanglingOutput { .. }))
        .collect()
}

/// Runs one seed through all three arms and every check. `Ok` carries
/// the accounting report; `Err` is a human-readable divergence
/// description that embeds the replayable seed.
pub fn fuzz_case(seed: u64) -> Result<FuzzReport, String> {
    let case = case_for_seed(seed);
    let tag = format!("seed {} ({})", case.seed, case.family);

    // Reference: the unoptimized "human designer" elaboration.
    let baseline = Milo::new(ecl_library())
        .elaborate_unoptimized(&case.design)
        .map_err(|e| format!("{tag}: baseline elaboration failed: {e}; {}", replay(seed)))?;

    // Arm 1: the observable Flow API.
    let mut flow_milo = Milo::new(ecl_library());
    let mut flow = flow_milo.flow();
    let flow_out = flow
        .run(&mut flow_milo, &case.design, &Constraints::none())
        .map_err(|e| format!("{tag}: flow arm failed: {e}; {}", replay(seed)))?;
    let flow_result = flow_out.result;

    // Arm 2: the synthesize shim.
    let shim_result = Milo::new(ecl_library())
        .synthesize(&case.design, &Constraints::none())
        .map_err(|e| format!("{tag}: shim arm failed: {e}; {}", replay(seed)))?;

    // Arm 3: a one-element batch.
    let batch_result = Milo::new(ecl_library())
        .synthesize_batch(std::slice::from_ref(&case.design), &Constraints::none())
        .map_err(|e| format!("{tag}: batch arm failed: {e}; {}", replay(seed)))?
        .pop()
        .ok_or_else(|| format!("{tag}: batch arm returned no result; {}", replay(seed)))?;

    // Identical fingerprints across arms.
    let flow_fp = structural_summary(&flow_result.netlist);
    for (arm, result) in [("shim", &shim_result), ("batch", &batch_result)] {
        let fp = structural_summary(&result.netlist);
        if fp != flow_fp {
            return Err(format!(
                "{tag}: {arm} arm fingerprint diverges from flow arm \
                 (flow hash {:#018x}, {arm} hash {:#018x}); {}",
                structural_hash(&flow_result.netlist),
                structural_hash(&result.netlist),
                replay(seed)
            ));
        }
        if result.stats != flow_result.stats {
            return Err(format!(
                "{tag}: {arm} arm stats diverge: {:?} vs {:?}; {}",
                result.stats,
                flow_result.stats,
                replay(seed)
            ));
        }
        if result.baseline != flow_result.baseline {
            return Err(format!(
                "{tag}: {arm} arm baseline diverges: {:?} vs {:?}; {}",
                result.baseline,
                flow_result.baseline,
                replay(seed)
            ));
        }
    }

    // Clean validation (dangling outputs are legitimate in generated
    // designs whose unused cones were optimized away).
    let v = violations_beyond_dangling(&flow_result.netlist);
    if !v.is_empty() {
        return Err(format!(
            "{tag}: result fails validation: {v:?}; {}",
            replay(seed)
        ));
    }

    // Cheap functional equivalence against the unoptimized elaboration.
    let equivalence = if case.sequential {
        check_seq_equivalence(&baseline, &flow_result.netlist, 12, seed ^ 0x9e37_79b9)
    } else {
        check_comb_equivalence(&baseline, &flow_result.netlist, 64)
    };
    if let Err(e) = equivalence {
        return Err(format!(
            "{tag}: optimized result not equivalent to baseline: {e}; {}",
            replay(seed)
        ));
    }

    Ok(FuzzReport {
        seed,
        family: case.family,
        source_components: case.design.component_count(),
        result_components: flow_result.netlist.component_count(),
    })
}

/// The seed list a harness run should cover: `MILO_FUZZ_SEED` (a single
/// replay) when set, otherwise `start..start + count`.
pub fn seeds_from_env(start: u64, count: u64) -> Vec<u64> {
    if let Some(seed) = std::env::var("MILO_FUZZ_SEED")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
    {
        return vec![seed];
    }
    (start..start.saturating_add(count)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic_and_cover_families() {
        let mut families = std::collections::BTreeSet::new();
        for seed in 0..24u64 {
            let a = case_for_seed(seed);
            let b = case_for_seed(seed);
            assert_eq!(
                structural_summary(&a.design),
                structural_summary(&b.design),
                "seed {seed} not deterministic"
            );
            families.insert(a.family);
        }
        assert!(
            families.len() >= 5,
            "24 seeds should cross most families, got {families:?}"
        );
    }

    #[test]
    fn seeds_from_env_defaults_to_range() {
        // Runs without MILO_FUZZ_SEED in the environment under normal
        // `cargo test`; the replay path is covered by the fuzz bin's CI
        // invocation.
        if std::env::var("MILO_FUZZ_SEED").is_err() {
            assert_eq!(seeds_from_env(5, 3), vec![5, 6, 7]);
        }
    }

    #[test]
    fn one_seed_passes_end_to_end() {
        let report = fuzz_case(3).expect("seed 3 passes");
        assert!(report.result_components > 0);
    }
}
