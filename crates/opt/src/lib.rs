//! # milo-opt
//!
//! MILO's logic optimizer (§6.4): three optimizers (time, area, power)
//! built on five critics (logic, timing, area, power, electric — Fig. 17)
//! and the eight delay-reduction strategies of §4.1.2 (Fig. 9), driven by
//! the Fig. 8 control flow, plus the bottom-up hierarchical optimization
//! of Fig. 18.
//!
//! * [`critics`] — the critics' local transformation rules;
//! * [`strategies`] — strategies 1–8 ([`apply_strategy`]);
//! * [`selector`] — the time-optimizer loop ([`optimize_timing`]), the
//!   area pass ([`optimize_area`]) and the combined [`optimize`];
//! * [`hierarchy`] — [`optimize_bottom_up`] over a design database.

#![warn(missing_docs)]

pub mod critics;
pub mod hierarchy;
pub mod selector;
pub mod strategies;

pub use critics::{all_rules, logic_rules};
pub use hierarchy::{optimize_bottom_up, HierarchyError, LevelReport};
pub use selector::{
    optimize, optimize_area, optimize_area_paths, optimize_timing, optimize_timing_paths,
    strategy_order, StrategyFiring, TimingReport,
};
pub use strategies::{apply_strategy, StrategyCtx, StrategyId};
