//! Hierarchical bottom-up optimization (§6.4, Fig. 18): "the logic
//! optimizer … optimizes the design for each microarchitectural component
//! before the designs are combined to form one large design … then the
//! design at the next highest level can be expanded in terms of its
//! lower-level designs and that design can be optimized."

use crate::critics::logic_rules;
use milo_netlist::{ComponentKind, DesignDb, Netlist, NetlistError};
use milo_rules::{Engine, Selection};
use milo_techmap::{map_netlist, MapError, TechLibrary};
use milo_timing::{statistics, DesignStats};

/// Per-design record of the bottom-up pass.
#[derive(Clone, Debug)]
pub struct LevelReport {
    /// Design name.
    pub design: String,
    /// Statistics when first mapped.
    pub before: DesignStats,
    /// Statistics after local optimization.
    pub after: DesignStats,
    /// Rules fired at this level.
    pub fired: usize,
}

/// Errors from the hierarchy pass.
#[derive(Debug)]
pub enum HierarchyError {
    /// Mapping failed.
    Map(MapError),
    /// Netlist manipulation failed.
    Netlist(NetlistError),
}

impl std::fmt::Display for HierarchyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HierarchyError::Map(e) => write!(f, "map: {e}"),
            HierarchyError::Netlist(e) => write!(f, "netlist: {e}"),
        }
    }
}

impl std::error::Error for HierarchyError {}

impl From<MapError> for HierarchyError {
    fn from(e: MapError) -> Self {
        HierarchyError::Map(e)
    }
}

impl From<NetlistError> for HierarchyError {
    fn from(e: NetlistError) -> Self {
        HierarchyError::Netlist(e)
    }
}

/// Names of designs instantiated by `nl`.
fn instance_deps(nl: &Netlist) -> Vec<String> {
    let mut out = Vec::new();
    for id in nl.component_ids() {
        if let Ok(c) = nl.component(id) {
            if let ComponentKind::Instance { design, .. } = &c.kind {
                if !out.contains(design) {
                    out.push(design.clone());
                }
            }
        }
    }
    out
}

/// Leaf-first ordering of the designs reachable from `top`.
fn dependency_order(top: &str, db: &DesignDb) -> Vec<String> {
    let mut order = Vec::new();
    let mut visiting = Vec::new();
    fn visit(name: &str, db: &DesignDb, order: &mut Vec<String>, visiting: &mut Vec<String>) {
        if order.iter().any(|n| n == name) || visiting.iter().any(|n| n == name) {
            return;
        }
        visiting.push(name.to_owned());
        if let Some(design) = db.get(name) {
            for dep in instance_deps(design) {
                visit(&dep, db, order, visiting);
            }
        }
        visiting.pop();
        order.push(name.to_owned());
    }
    visit(top, db, &mut order, &mut visiting);
    order
}

/// Bottom-up optimization of a hierarchical design.
///
/// For every design reachable from `top`, leaf-first: flatten its own
/// one-level hierarchy, technology-map it, run the logic critic to
/// quiescence (mux+FF merges, inverter cleanup, …), and store the
/// optimized technology netlist back in the database under the same name
/// and ports. The top design, once every sub-design has been optimized
/// and substituted, gets a final pass — where the Fig. 18 second-level
/// merges (2:1 mux + MXFF2 → MXFF4) become visible.
///
/// Returns the fully optimized flat top netlist and per-level reports.
///
/// # Errors
///
/// Propagates flatten and mapping errors.
pub fn optimize_bottom_up(
    top: &str,
    db: &mut DesignDb,
    lib: &TechLibrary,
) -> Result<(Netlist, Vec<LevelReport>), HierarchyError> {
    let order = dependency_order(top, db);
    let mut reports = Vec::new();
    for name in &order {
        // Flatten this design (sub-designs are already optimized tech
        // netlists by induction).
        let flat = db.flatten(name)?;
        let mut mapped = map_netlist(&flat, lib)?;
        let before = statistics(&mapped).unwrap_or_default();
        let mut engine = Engine::new(logic_rules(lib));
        let fired = engine.run(&mut mapped, Selection::OpsOrder, None, 10_000);
        let after = statistics(&mapped).unwrap_or_default();
        reports.push(LevelReport {
            design: name.clone(),
            before,
            after,
            fired,
        });
        mapped.name = name.clone();
        db.insert(mapped);
    }
    let final_top = db.flatten(top)?;
    Ok((final_top, reports))
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_compilers::{compile, expand_micro_components};
    use milo_netlist::{
        ArithOps, CarryMode, ControlSet, MicroComponent, PinDir, RegFunctions, Trigger,
    };
    use milo_techmap::ecl_library;

    /// The ABADD design of Fig. 16: ADD4 → MUX2:1:4 → REG4 (shift right).
    pub(crate) fn abadd(db: &mut DesignDb) -> Netlist {
        let mut nl = Netlist::new("ABADD");
        let au = MicroComponent::ArithmeticUnit {
            bits: 4,
            ops: ArithOps::ADD,
            mode: CarryMode::Ripple,
        };
        let mux = MicroComponent::Multiplexor {
            bits: 4,
            inputs: 2,
            enable: false,
        };
        let reg = MicroComponent::Register {
            bits: 4,
            trigger: Trigger::EdgeTriggered,
            funcs: RegFunctions {
                load: true,
                shift_left: false,
                shift_right: true,
            },
            ctrl: ControlSet::NONE,
        };
        let a_c = nl.add_component("add", ComponentKind::Micro(au));
        let m_c = nl.add_component("mux", ComponentKind::Micro(mux));
        let r_c = nl.add_component("reg", ComponentKind::Micro(reg));
        // A, B buses into the adder.
        for i in 0..4 {
            for (bus, comp, pin) in [("A", a_c, format!("A{i}")), ("B", a_c, format!("B{i}"))] {
                let net = nl.add_net(format!("{bus}{i}"));
                nl.connect_named(comp, &pin, net).unwrap();
                nl.add_port(format!("{bus}{i}"), PinDir::In, net);
            }
        }
        let cin = nl.add_net("CIN");
        nl.connect_named(a_c, "CIN", cin).unwrap();
        nl.add_port("CIN", PinDir::In, cin);
        let cout = nl.add_net("COUT");
        nl.connect_named(a_c, "COUT", cout).unwrap();
        nl.add_port("COUT", PinDir::Out, cout);
        // Sum → mux D0; external bus IN1 → mux D1.
        for i in 0..4 {
            let s = nl.add_net(format!("S{i}"));
            nl.connect_named(a_c, &format!("S{i}"), s).unwrap();
            nl.connect_named(m_c, &format!("D0_{i}"), s).unwrap();
            let d1 = nl.add_net(format!("IN1_{i}"));
            nl.connect_named(m_c, &format!("D1_{i}"), d1).unwrap();
            nl.add_port(format!("IN1_{i}"), PinDir::In, d1);
        }
        let sel = nl.add_net("SEL");
        nl.connect_named(m_c, "S0", sel).unwrap();
        nl.add_port("SEL", PinDir::In, sel);
        // Mux → register D; register outputs C.
        for i in 0..4 {
            let y = nl.add_net(format!("MY{i}"));
            nl.connect_named(m_c, &format!("Y{i}"), y).unwrap();
            nl.connect_named(r_c, &format!("D{i}"), y).unwrap();
            let q = nl.add_net(format!("C{i}"));
            nl.connect_named(r_c, &format!("Q{i}"), q).unwrap();
            nl.add_port(format!("C{i}"), PinDir::Out, q);
        }
        let sir = nl.add_net("SHIFTIN");
        nl.connect_named(r_c, "SIR", sir).unwrap();
        nl.add_port("SHIFTIN", PinDir::In, sir);
        // Register function select (hold/load/shift-right) and clock.
        for i in 0..2 {
            let f = nl.add_net(format!("F{i}"));
            nl.connect_named(r_c, &format!("F{i}"), f).unwrap();
            nl.add_port(format!("F{i}"), PinDir::In, f);
        }
        let clk = nl.add_net("CLK");
        nl.connect_named(r_c, "CLK", clk).unwrap();
        nl.add_port("CLK", PinDir::In, clk);

        // Compile the micro components into the database (Fig. 16's
        // compiler calls, including the nested MUX4:1:1 inside REG4).
        let mut work = nl.clone();
        expand_micro_components(&mut work, db).unwrap();
        db.insert(work.clone());
        // Also ensure the designs named in the paper exist.
        compile(
            &MicroComponent::ArithmeticUnit {
                bits: 4,
                ops: ArithOps::ADD,
                mode: CarryMode::Ripple,
            },
            db,
        )
        .unwrap();
        work
    }

    #[test]
    fn fig18_bottom_up_merges_mux_ff() {
        let mut db = DesignDb::new();
        let lib = ecl_library();
        let top = abadd(&mut db);
        let top_name = top.name.clone();

        // Reference: plain flatten + map, no optimization.
        let reference = map_netlist(&db.flatten(&top_name).unwrap(), &lib).unwrap();
        let ref_stats = statistics(&reference).unwrap();

        let (optimized, reports) = optimize_bottom_up(&top_name, &mut db, &lib).unwrap();
        let opt_stats = statistics(&optimized).unwrap();
        assert!(
            opt_stats.area < ref_stats.area,
            "bottom-up merge shrinks area: {opt_stats:?} vs {ref_stats:?}"
        );
        // Merged mux-FF macros must appear.
        let mxff = optimized
            .component_ids()
            .filter(|&id| {
                matches!(
                    optimized.component(id).map(|c| &c.kind),
                    Ok(ComponentKind::Tech(c)) if c.name.starts_with("MXFF")
                )
            })
            .count();
        assert!(mxff >= 4, "one merged mux-FF per register bit, got {mxff}");
        // Reports cover multiple hierarchy levels.
        assert!(reports.len() >= 2, "{reports:?}");

        // Behaviour preserved vs the unoptimized reference.
        milo_compilers::verify::check_seq_equivalence(&reference, &optimized, 60, 9).unwrap();
    }

    #[test]
    fn dependency_order_is_leaf_first() {
        let mut db = DesignDb::new();
        let top = abadd(&mut db);
        let order = dependency_order(&top.name, &db);
        let pos = |n: &str| order.iter().position(|x| x == n);
        // REG4-variant depends on MUX4:1:1; top depends on both.
        let reg_pos = order
            .iter()
            .position(|n| n.starts_with("REG4"))
            .expect("register design present");
        let mux_pos = order
            .iter()
            .position(|n| n.starts_with("MUX4:1:1"))
            .expect("nested mux compiled");
        assert!(mux_pos < reg_pos);
        assert_eq!(pos(&top.name), Some(order.len() - 1));
    }
}
