//! The eight delay-reduction strategies of §4.1.2 (Fig. 9).
//!
//! Each strategy attempts one local transformation at a *point of
//! optimization* on a critical path and returns the undo log on success,
//! so the selector (Fig. 8) can measure the result and back out of
//! unprofitable applications.

use milo_logic::{espresso, good_factor, timing_decompose, Cover, DecompTree, Expr, Phase};
use milo_netlist::{
    CellFunction, ComponentId, ComponentKind, GateFn, NetId, Netlist, NetlistError, PinDir,
    PowerLevel,
};
use milo_rules::{extract_cone_min, HashRuleTable, Tx, UndoLog};
use milo_techmap::TechLibrary;
use milo_timing::Sta;

/// Identifies one of the eight strategies.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StrategyId {
    /// Swap equivalent signals on the same component (Fig. 9a).
    S1PinSwap,
    /// Replace macro with a higher-power, faster one (Fig. 9b; ECL only).
    S2PowerUp,
    /// Factor to shorten the critical input's path (Fig. 9c / Fig. 4).
    S3Factor,
    /// Better macro selection at no area/power cost (Fig. 9d; hash table).
    S4BetterMacro,
    /// Duplicate logic to split fanout (Fig. 9e).
    S5Duplicate,
    /// Better macro selection at area/power cost (Fig. 9f).
    S6BetterMacroCost,
    /// Collapse to two-level, minimize, re-factor (Fig. 9g; strategy 7).
    S7Minimize,
    /// Duplicate the cone with the critical input Shannon-expanded into a
    /// multiplexor select (Fig. 9h).
    S8ShannonMux,
}

impl StrategyId {
    /// All strategies in numeric order.
    pub const ALL: [StrategyId; 8] = [
        StrategyId::S1PinSwap,
        StrategyId::S2PowerUp,
        StrategyId::S3Factor,
        StrategyId::S4BetterMacro,
        StrategyId::S5Duplicate,
        StrategyId::S6BetterMacroCost,
        StrategyId::S7Minimize,
        StrategyId::S8ShannonMux,
    ];

    /// Short display name.
    pub fn label(&self) -> &'static str {
        match self {
            StrategyId::S1PinSwap => "S1 pin-swap",
            StrategyId::S2PowerUp => "S2 power-up",
            StrategyId::S3Factor => "S3 factor",
            StrategyId::S4BetterMacro => "S4 better-macro",
            StrategyId::S5Duplicate => "S5 duplicate",
            StrategyId::S6BetterMacroCost => "S6 better-macro-cost",
            StrategyId::S7Minimize => "S7 minimize",
            StrategyId::S8ShannonMux => "S8 shannon-mux",
        }
    }
}

/// Shared context for strategy application.
pub struct StrategyCtx<'a> {
    /// Target technology library.
    pub lib: &'a TechLibrary,
    /// Hash-rule table built from the library (strategies 4 and 6).
    pub hash: &'a HashRuleTable,
}

/// Applies `strategy` at `site`. Returns the undo log on success.
pub fn apply_strategy(
    strategy: StrategyId,
    nl: &mut Netlist,
    site: ComponentId,
    sta: &Sta,
    ctx: &StrategyCtx<'_>,
) -> Option<UndoLog> {
    match strategy {
        StrategyId::S1PinSwap => s1_pin_swap(nl, site, sta),
        StrategyId::S2PowerUp => s2_power_up(nl, site, ctx.lib),
        StrategyId::S3Factor => s3_factor(nl, site, sta, ctx.lib),
        StrategyId::S4BetterMacro => s4_s6_better_macro(nl, site, ctx, true),
        StrategyId::S5Duplicate => s5_duplicate(nl, site, sta),
        StrategyId::S6BetterMacroCost => s4_s6_better_macro(nl, site, ctx, false),
        StrategyId::S7Minimize => s7_minimize(nl, site, ctx.lib),
        StrategyId::S8ShannonMux => s8_shannon_mux(nl, site, sta, ctx.lib),
    }
}

fn tech_cell_of(nl: &Netlist, id: ComponentId) -> Option<milo_netlist::TechCell> {
    match &nl.component(id).ok()?.kind {
        ComponentKind::Tech(c) => Some(c.clone()),
        _ => None,
    }
}

fn symmetric_gate(f: GateFn) -> bool {
    !matches!(f, GateFn::Inv | GateFn::Buf)
}

/// Strategy 1: connect the latest-arriving signal to the fastest input
/// pin. Zero cost, small gain.
fn s1_pin_swap(nl: &mut Netlist, site: ComponentId, sta: &Sta) -> Option<UndoLog> {
    let cell = tech_cell_of(nl, site)?;
    let CellFunction::Gate(f, n) = cell.function else {
        return None;
    };
    if !symmetric_gate(f) || n < 2 || cell.pin_delay.is_empty() {
        return None;
    }
    let comp = nl.component(site).ok()?;
    // (pin index, net, arrival, pin delay)
    let mut pins: Vec<(u16, NetId, f64, f64)> = Vec::new();
    let mut input_index = 0usize;
    for (i, p) in comp.pins.iter().enumerate() {
        if p.dir != PinDir::In {
            continue;
        }
        let net = p.net?;
        pins.push((
            i as u16,
            net,
            sta.arrival(net),
            cell.input_delay(input_index),
        ));
        input_index += 1;
    }
    // Current worst (arrival + pin delay); optimal assignment pairs the
    // latest arrival with the smallest pin delay.
    let current: f64 = pins
        .iter()
        .map(|(_, _, a, d)| a + d)
        .fold(f64::MIN, f64::max);
    let mut by_arrival = pins.clone();
    by_arrival.sort_by(|x, y| y.2.partial_cmp(&x.2).expect("not NaN")); // latest first
    let mut by_delay = pins.clone();
    by_delay.sort_by(|x, y| x.3.partial_cmp(&y.3).expect("not NaN")); // fastest first
    let optimal: f64 = by_arrival
        .iter()
        .zip(&by_delay)
        .map(|((_, _, a, _), (_, _, _, d))| a + d)
        .fold(f64::MIN, f64::max);
    if optimal >= current - 1e-9 {
        return None;
    }
    // Rewire: pin with k-th smallest delay gets the k-th latest net.
    let mut tx = Tx::new(nl);
    for ((_, net, _, _), (pin_idx, old_net, _, _)) in by_arrival.iter().zip(&by_delay) {
        if old_net != net {
            tx.disconnect(milo_netlist::PinRef::new(site, *pin_idx))
                .ok()?;
        }
    }
    for ((_, net, _, _), (pin_idx, old_net, _, _)) in by_arrival.iter().zip(&by_delay) {
        if old_net != net {
            tx.connect(milo_netlist::PinRef::new(site, *pin_idx), *net)
                .ok()?;
        }
    }
    Some(tx.commit())
}

/// Strategy 2: high-power macro substitution (ECL only — the library must
/// carry power variants).
fn s2_power_up(nl: &mut Netlist, site: ComponentId, lib: &TechLibrary) -> Option<UndoLog> {
    let cell = tech_cell_of(nl, site)?;
    let faster = lib.faster_variant(&cell)?.clone();
    let mut tx = Tx::new(nl);
    tx.change_kind(site, ComponentKind::Tech(faster)).ok()?;
    Some(tx.commit())
}

/// Strategy 3: decompose a wide associative gate so the latest input
/// passes through the fewest levels (Fig. 4 / Fig. 9c).
fn s3_factor(nl: &mut Netlist, site: ComponentId, sta: &Sta, lib: &TechLibrary) -> Option<UndoLog> {
    let cell = tech_cell_of(nl, site)?;
    let CellFunction::Gate(f, n) = cell.function else {
        return None;
    };
    if n < 3 || !matches!(f, GateFn::And | GateFn::Or | GateFn::Xor) {
        return None;
    }
    let two_in = lib
        .cell_at_level(&CellFunction::Gate(f, 2), PowerLevel::Standard)?
        .clone();
    let comp = nl.component(site).ok()?;
    let inputs: Vec<NetId> = comp
        .pins
        .iter()
        .filter(|p| p.dir == PinDir::In)
        .map(|p| p.net)
        .collect::<Option<_>>()?;
    let y = comp
        .pins
        .iter()
        .find(|p| p.dir == PinDir::Out)
        .and_then(|p| p.net)?;
    let arrivals: Vec<f64> = inputs.iter().map(|&net| sta.arrival(net)).collect();
    // Only profitable when arrivals are skewed.
    let spread = arrivals.iter().fold(f64::MIN, |a, &b| a.max(b))
        - arrivals.iter().fold(f64::MAX, |a, &b| a.min(b));
    if spread < 1e-9 {
        return None;
    }
    let tree = timing_decompose(&arrivals, 2);
    let mut tx = Tx::new(nl);
    tx.remove_component(site).ok()?;
    let root = emit_decomp(&mut tx, &tree, &inputs, &two_in, site, &mut 0).ok()?;
    // The tree root drives the original output net: re-drive it.
    // `emit_decomp` returns the root gate output net; move it onto y.
    let root_driver = tx.netlist().driver(root)?;
    tx.disconnect(root_driver).ok()?;
    tx.connect(root_driver, y).ok()?;
    Some(tx.commit())
}

fn emit_decomp(
    tx: &mut Tx,
    tree: &DecompTree,
    inputs: &[NetId],
    cell: &milo_netlist::TechCell,
    site: ComponentId,
    counter: &mut usize,
) -> Result<NetId, NetlistError> {
    match tree {
        DecompTree::Leaf(i) => Ok(inputs[*i]),
        DecompTree::Node(children) => {
            let mut nets = Vec::with_capacity(children.len());
            for c in children {
                nets.push(emit_decomp(tx, c, inputs, cell, site, counter)?);
            }
            // Combine pairwise with 2-input cells (children.len() == 2 for
            // max_fanin 2, but be general).
            let mut acc = nets[0];
            for (k, &n) in nets.iter().enumerate().skip(1) {
                *counter += 1;
                let g = tx.add_component(
                    format!("s3_{}_{}_{k}", site.index(), counter),
                    ComponentKind::Tech(cell.clone()),
                );
                tx.connect_named(g, "A0", acc)?;
                tx.connect_named(g, "A1", n)?;
                let y = tx.add_net(format!("s3n_{}_{}", site.index(), counter));
                tx.connect_named(g, "Y", y)?;
                acc = y;
            }
            Ok(acc)
        }
    }
}

/// Strategies 4 and 6: replace a small cone with a single better macro
/// found by truth-table hash lookup. Strategy 4 requires no area/power
/// increase; strategy 6 tolerates cost.
fn s4_s6_better_macro(
    nl: &mut Netlist,
    site: ComponentId,
    ctx: &StrategyCtx<'_>,
    zero_cost: bool,
) -> Option<UndoLog> {
    let (tt, inputs, interior) = extract_cone_min(nl, site, 5, 2)?;
    if interior.len() < 2 {
        return None; // single cell: nothing to merge
    }
    let (mut cone_area, mut cone_power) = (0.0f64, 0.0f64);
    for &c in &interior {
        let cell = tech_cell_of(nl, c)?;
        cone_area += cell.area;
        cone_power += cell.power;
    }
    let entry = if zero_cost {
        ctx.hash
            .best_for_delay(&tt, Some(cone_area), Some(cone_power))?
    } else {
        ctx.hash.best_for_delay(&tt, None, None)?
    };
    let cell = entry.cell.clone();
    let perm = entry.perm.clone();
    let y = nl
        .component(site)
        .ok()?
        .pins
        .iter()
        .find(|p| p.dir == PinDir::Out)
        .and_then(|p| p.net)?;
    let mut tx = Tx::new(nl);
    for &c in &interior {
        tx.remove_component(c).ok()?;
    }
    let g = tx.add_component(format!("s4_{}", site.index()), ComponentKind::Tech(cell));
    // Cell pin A{perm[i]} reads cone input i.
    for (i, net) in inputs.iter().enumerate() {
        tx.connect_named(g, &format!("A{}", perm[i]), *net).ok()?;
    }
    tx.connect_named(g, "Y", y).ok()?;
    Some(tx.commit())
}

/// Area-objective variant of the hash-table macro merge: replace a cone
/// with the *smallest* implementing cell. Used by the area optimizer on
/// slack paths (the area critic of Fig. 17c).
pub(crate) fn area_macro_merge(
    nl: &mut Netlist,
    site: ComponentId,
    ctx: &StrategyCtx<'_>,
) -> Option<UndoLog> {
    let (tt, inputs, interior) = extract_cone_min(nl, site, 5, 2)?;
    if interior.len() < 2 {
        return None;
    }
    let mut cone_area = 0.0f64;
    for &c in &interior {
        cone_area += tech_cell_of(nl, c)?.area;
    }
    let entry = ctx.hash.best_for_area(&tt)?;
    if entry.cell.area >= cone_area - 1e-9 {
        return None;
    }
    let cell = entry.cell.clone();
    let perm = entry.perm.clone();
    let y = nl
        .component(site)
        .ok()?
        .pins
        .iter()
        .find(|p| p.dir == PinDir::Out)
        .and_then(|p| p.net)?;
    let mut tx = Tx::new(nl);
    for &c in &interior {
        tx.remove_component(c).ok()?;
    }
    let g = tx.add_component(format!("am_{}", site.index()), ComponentKind::Tech(cell));
    for (i, net) in inputs.iter().enumerate() {
        tx.connect_named(g, &format!("A{}", perm[i]), *net).ok()?;
    }
    tx.connect_named(g, "Y", y).ok()?;
    Some(tx.commit())
}

/// Strategy 5: duplicate a multi-fanout cell and split its loads,
/// reducing the load-dependent delay on the critical branch (Fig. 9e).
fn s5_duplicate(nl: &mut Netlist, site: ComponentId, _sta: &Sta) -> Option<UndoLog> {
    let cell = tech_cell_of(nl, site)?;
    if cell.function.is_sequential() {
        return None;
    }
    let comp = nl.component(site).ok()?;
    let y = comp
        .pins
        .iter()
        .find(|p| p.dir == PinDir::Out)
        .and_then(|p| p.net)?;
    let loads = nl.loads(y);
    if loads.len() < 2 {
        return None;
    }
    let input_nets: Vec<(String, NetId)> = comp
        .pins
        .iter()
        .filter(|p| p.dir == PinDir::In)
        .map(|p| (p.name.clone(), p.net))
        .map(|(n, net)| net.map(|x| (n, x)))
        .collect::<Option<_>>()?;
    let moved: Vec<_> = loads.into_iter().skip(1).collect(); // keep the first (critical) load alone
    let mut tx = Tx::new(nl);
    let dup = tx.add_component(format!("s5_{}", site.index()), ComponentKind::Tech(cell));
    for (pin, net) in &input_nets {
        tx.connect_named(dup, pin, *net).ok()?;
    }
    let y2 = tx.add_net(format!("s5n_{}", site.index()));
    tx.connect_named(dup, "Y", y2).ok()?;
    for pin in moved {
        tx.disconnect(pin).ok()?;
        tx.connect(pin, y2).ok()?;
    }
    Some(tx.commit())
}

/// Strategy 7: collapse the cone to two-level SOP, minimize with the
/// ESPRESSO loop, re-factor through weak division, and re-emit gates.
fn s7_minimize(nl: &mut Netlist, site: ComponentId, lib: &TechLibrary) -> Option<UndoLog> {
    let (tt, inputs, interior) = extract_cone_min(nl, site, 6, 2)?;
    if interior.len() < 2 {
        return None;
    }
    let flat = Cover::from_truth(&tt);
    let min = espresso::minimize(&flat, None).cover;
    let expr = good_factor(&min);
    let y = nl
        .component(site)
        .ok()?
        .pins
        .iter()
        .find(|p| p.dir == PinDir::Out)
        .and_then(|p| p.net)?;
    let mut tx = Tx::new(nl);
    for &c in &interior {
        tx.remove_component(c).ok()?;
    }
    let out = emit_expr(
        &mut tx,
        &expr,
        &inputs,
        lib,
        &format!("s7_{}", site.index()),
        &mut 0,
    )
    .ok()?;
    redrive(&mut tx, out, y, &inputs, lib, site)?;
    Some(tx.commit())
}

/// Strategy 8: Shannon-expand the critical input C of a cone —
/// "the logic network may be duplicated with the C input connected to GND
/// in one, and VDD in the other. The real C input is then hooked up to the
/// select input of a multiplexor" (Fig. 9h).
fn s8_shannon_mux(
    nl: &mut Netlist,
    site: ComponentId,
    sta: &Sta,
    lib: &TechLibrary,
) -> Option<UndoLog> {
    let (tt, inputs, interior) = extract_cone_min(nl, site, 5, 2)?;
    if interior.len() < 2 || inputs.len() < 2 {
        return None;
    }
    let mux = lib
        .cell_at_level(&CellFunction::Mux { selects: 1 }, PowerLevel::Standard)?
        .clone();
    // Critical input = latest arrival.
    let (crit_idx, crit_net) = inputs
        .iter()
        .enumerate()
        .max_by(|a, b| {
            sta.arrival(*a.1)
                .partial_cmp(&sta.arrival(*b.1))
                .expect("not NaN")
        })
        .map(|(i, &n)| (i, n))?;
    let f0 = tt.cofactor(crit_idx as u8, false);
    let f1 = tt.cofactor(crit_idx as u8, true);
    let e0 = good_factor(&espresso::minimize(&Cover::from_truth(&f0), None).cover);
    let e1 = good_factor(&espresso::minimize(&Cover::from_truth(&f1), None).cover);
    let y = nl
        .component(site)
        .ok()?
        .pins
        .iter()
        .find(|p| p.dir == PinDir::Out)
        .and_then(|p| p.net)?;
    let mut tx = Tx::new(nl);
    for &c in &interior {
        tx.remove_component(c).ok()?;
    }
    let n0 = emit_expr(
        &mut tx,
        &e0,
        &inputs,
        lib,
        &format!("s8a_{}", site.index()),
        &mut 0,
    )
    .ok()?;
    let n1 = emit_expr(
        &mut tx,
        &e1,
        &inputs,
        lib,
        &format!("s8b_{}", site.index()),
        &mut 0,
    )
    .ok()?;
    let m = tx.add_component(format!("s8m_{}", site.index()), ComponentKind::Tech(mux));
    tx.connect_named(m, "D0", n0).ok()?;
    tx.connect_named(m, "D1", n1).ok()?;
    tx.connect_named(m, "S0", crit_net).ok()?;
    tx.connect_named(m, "Y", y).ok()?;
    Some(tx.commit())
}

/// Re-drives `y` from the logic currently driving `out`. When `out` is a
/// cone input (the function collapsed to a literal), a buffer bridges the
/// two nets instead.
fn redrive(
    tx: &mut Tx,
    out: NetId,
    y: NetId,
    inputs: &[NetId],
    lib: &TechLibrary,
    site: ComponentId,
) -> Option<()> {
    if inputs.contains(&out) || tx.netlist().driver(out).is_none() {
        let buf = lib.cell_at_level(&CellFunction::Gate(GateFn::Buf, 1), PowerLevel::Standard)?;
        let g = tx.add_component(
            format!("rd_{}", site.index()),
            ComponentKind::Tech(buf.clone()),
        );
        tx.connect_named(g, "A0", out).ok()?;
        tx.connect_named(g, "Y", y).ok()?;
    } else {
        let drv = tx.netlist().driver(out)?;
        tx.disconnect(drv).ok()?;
        tx.connect(drv, y).ok()?;
    }
    Some(())
}

/// Emits a factored expression as technology cells; returns the output
/// net. Inputs are `inputs[var]`.
pub(crate) fn emit_expr(
    tx: &mut Tx,
    expr: &Expr,
    inputs: &[NetId],
    lib: &TechLibrary,
    prefix: &str,
    counter: &mut usize,
) -> Result<NetId, NetlistError> {
    let fresh = |tx: &mut Tx, counter: &mut usize| -> NetId {
        *counter += 1;
        tx.add_net(format!("{prefix}_n{counter}"))
    };
    let cell = |f: GateFn, n: u8| -> Result<milo_netlist::TechCell, NetlistError> {
        lib.cell_at_level(&CellFunction::Gate(f, n), PowerLevel::Standard)
            .cloned()
            .ok_or(NetlistError::NoSuchPort(format!("cell {f}{n}")))
    };
    match expr {
        Expr::Const(b) => {
            let tie = lib
                .cell_at_level(&CellFunction::Const(*b), PowerLevel::Standard)
                .cloned()
                .ok_or(NetlistError::NoSuchPort("tie cell".into()))?;
            *counter += 1;
            let g = tx.add_component(format!("{prefix}_c{counter}"), ComponentKind::Tech(tie));
            let y = fresh(tx, counter);
            tx.connect_named(g, "Y", y)?;
            Ok(y)
        }
        Expr::Lit(v, Phase::Pos) => Ok(inputs[*v as usize]),
        Expr::Lit(v, Phase::Neg) => {
            let inv = cell(GateFn::Inv, 1)?;
            *counter += 1;
            let g = tx.add_component(format!("{prefix}_i{counter}"), ComponentKind::Tech(inv));
            tx.connect_named(g, "A0", inputs[*v as usize])?;
            let y = fresh(tx, counter);
            tx.connect_named(g, "Y", y)?;
            Ok(y)
        }
        Expr::And(xs) | Expr::Or(xs) => {
            let f = if matches!(expr, Expr::And(_)) {
                GateFn::And
            } else {
                GateFn::Or
            };
            let mut nets = Vec::with_capacity(xs.len());
            for x in xs {
                nets.push(emit_expr(tx, x, inputs, lib, prefix, counter)?);
            }
            // Pack into gates of at most 4 inputs, tree-wise.
            while nets.len() > 1 {
                let mut next = Vec::new();
                let mut i = 0;
                while i < nets.len() {
                    let remaining = nets.len() - i;
                    if remaining == 1 {
                        next.push(nets[i]);
                        break;
                    }
                    let take = remaining.min(4);
                    let g_cell = cell(f, take as u8)?;
                    *counter += 1;
                    let g = tx
                        .add_component(format!("{prefix}_g{counter}"), ComponentKind::Tech(g_cell));
                    for (k, &n) in nets[i..i + take].iter().enumerate() {
                        tx.connect_named(g, &format!("A{k}"), n)?;
                    }
                    let y = fresh(tx, counter);
                    tx.connect_named(g, "Y", y)?;
                    next.push(y);
                    i += take;
                }
                nets = next;
            }
            Ok(nets[0])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_compilers::verify::check_comb_equivalence;
    use milo_rules::LibraryRef;
    use milo_techmap::{cmos_library, ecl_library};
    use milo_timing::analyze;

    fn hash_for(lib: &TechLibrary) -> HashRuleTable {
        HashRuleTable::from_library(&LibraryRef { cells: lib.cells() })
    }

    /// AND3 with one late input (through a chain), mapped to ECL.
    fn skewed_and3(lib: &TechLibrary) -> (Netlist, ComponentId) {
        let mut nl = Netlist::new("t");
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        let c = nl.add_net("c");
        for (n, net) in [("a", a), ("b", b), ("c", c)] {
            nl.add_port(n, PinDir::In, net);
        }
        // Delay chain on c.
        let mut late = c;
        for i in 0..3 {
            let g = nl.add_component(
                format!("d{i}"),
                ComponentKind::Tech(lib.get("BUF").unwrap().clone()),
            );
            nl.connect_named(g, "A0", late).unwrap();
            let y = nl.add_net(format!("dl{i}"));
            nl.connect_named(g, "Y", y).unwrap();
            late = y;
        }
        let and3 = nl.add_component(
            "and3",
            ComponentKind::Tech(lib.get("AND3").unwrap().clone()),
        );
        // Late signal on the SLOWEST pin (A2) — pessimal assignment.
        nl.connect_named(and3, "A0", a).unwrap();
        nl.connect_named(and3, "A1", b).unwrap();
        nl.connect_named(and3, "A2", late).unwrap();
        let y = nl.add_net("y");
        nl.connect_named(and3, "Y", y).unwrap();
        nl.add_port("y", PinDir::Out, y);
        (nl, and3)
    }

    #[test]
    fn s1_swaps_late_signal_to_fast_pin() {
        let lib = ecl_library();
        let (mut nl, and3) = skewed_and3(&lib);
        let golden = nl.clone();
        let before = analyze(&nl).unwrap().worst_delay();
        // pessimal: fast pin A0 has the early signal. Wait: late on A2
        // (slowest pin) IS pessimal? pin_delay grows with index, so the
        // late signal is on the slowest pin: S1 should improve this.
        let sta = analyze(&nl).unwrap();
        let log = s1_pin_swap(&mut nl, and3, &sta);
        assert!(log.is_some(), "pin swap applies");
        let after = analyze(&nl).unwrap().worst_delay();
        assert!(after < before, "{after} < {before}");
        check_comb_equivalence(&golden, &nl, 0).unwrap();
    }

    #[test]
    fn s1_undo_restores() {
        let lib = ecl_library();
        let (mut nl, and3) = skewed_and3(&lib);
        let before = format!("{nl:?}");
        let sta = analyze(&nl).unwrap();
        let log = s1_pin_swap(&mut nl, and3, &sta).unwrap();
        log.undo(&mut nl);
        assert_eq!(format!("{nl:?}"), before);
    }

    #[test]
    fn s2_upgrades_cell() {
        let lib = ecl_library();
        let (mut nl, and3) = skewed_and3(&lib);
        let golden = nl.clone();
        let before = analyze(&nl).unwrap().worst_delay();
        let log = s2_power_up(&mut nl, and3, &lib);
        assert!(log.is_some());
        let after = analyze(&nl).unwrap().worst_delay();
        assert!(after < before);
        check_comb_equivalence(&golden, &nl, 0).unwrap();
    }

    #[test]
    fn s2_fails_in_cmos() {
        let lib = cmos_library();
        let mut nl = Netlist::new("t");
        let a = nl.add_net("a");
        let g = nl.add_component("g", ComponentKind::Tech(lib.get("NAND2").unwrap().clone()));
        nl.connect_named(g, "A0", a).unwrap();
        assert!(
            s2_power_up(&mut nl, g, &lib).is_none(),
            "strategy 2 is ECL-only"
        );
    }

    #[test]
    fn s3_rebalances_for_late_input() {
        let lib = ecl_library();
        let (mut nl, and3) = skewed_and3(&lib);
        let golden = nl.clone();
        let before = analyze(&nl).unwrap().worst_delay();
        let sta = analyze(&nl).unwrap();
        let log = s3_factor(&mut nl, and3, &sta, &lib);
        assert!(log.is_some(), "factorization applies");
        let after = analyze(&nl).unwrap().worst_delay();
        assert!(after <= before + 1e-9, "{after} vs {before}");
        check_comb_equivalence(&golden, &nl, 0).unwrap();
    }

    /// AND2 feeding NOR2 — collapses to AOI21 via the hash table.
    fn aoi_cone(lib: &TechLibrary) -> (Netlist, ComponentId) {
        let mut nl = Netlist::new("t");
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        let c = nl.add_net("c");
        let ab = nl.add_net("ab");
        let y = nl.add_net("y");
        let g1 = nl.add_component("g1", ComponentKind::Tech(lib.get("AND2").unwrap().clone()));
        let g2 = nl.add_component("g2", ComponentKind::Tech(lib.get("NOR2").unwrap().clone()));
        nl.connect_named(g1, "A0", a).unwrap();
        nl.connect_named(g1, "A1", b).unwrap();
        nl.connect_named(g1, "Y", ab).unwrap();
        nl.connect_named(g2, "A0", ab).unwrap();
        nl.connect_named(g2, "A1", c).unwrap();
        nl.connect_named(g2, "Y", y).unwrap();
        for (n, net) in [("a", a), ("b", b), ("c", c)] {
            nl.add_port(n, PinDir::In, net);
        }
        nl.add_port("y", PinDir::Out, y);
        (nl, g2)
    }

    #[test]
    fn s4_replaces_cone_with_aoi() {
        let lib = cmos_library();
        let hash = hash_for(&lib);
        let (mut nl, root) = aoi_cone(&lib);
        let golden = nl.clone();
        let before = milo_timing::statistics(&nl).unwrap();
        let ctx = StrategyCtx {
            lib: &lib,
            hash: &hash,
        };
        let log = s4_s6_better_macro(&mut nl, root, &ctx, true);
        assert!(log.is_some(), "hash lookup finds AOI21");
        let after = milo_timing::statistics(&nl).unwrap();
        assert!(after.delay < before.delay);
        assert!(after.area <= before.area + 1e-9, "strategy 4 is zero-cost");
        check_comb_equivalence(&golden, &nl, 0).unwrap();
    }

    #[test]
    fn s5_splits_fanout() {
        let lib = cmos_library();
        let mut nl = Netlist::new("t");
        let a = nl.add_net("a");
        nl.add_port("a", PinDir::In, a);
        let g = nl.add_component("g", ComponentKind::Tech(lib.get("INV").unwrap().clone()));
        nl.connect_named(g, "A0", a).unwrap();
        let mid = nl.add_net("mid");
        nl.connect_named(g, "Y", mid).unwrap();
        for i in 0..6 {
            let b = nl.add_component(
                format!("b{i}"),
                ComponentKind::Tech(lib.get("BUF").unwrap().clone()),
            );
            nl.connect_named(b, "A0", mid).unwrap();
            let y = nl.add_net(format!("y{i}"));
            nl.connect_named(b, "Y", y).unwrap();
            nl.add_port(format!("y{i}"), PinDir::Out, y);
        }
        let golden = nl.clone();
        let before = analyze(&nl).unwrap().worst_delay();
        let sta = analyze(&nl).unwrap();
        let log = s5_duplicate(&mut nl, g, &sta);
        assert!(log.is_some());
        let after = analyze(&nl).unwrap().worst_delay();
        assert!(
            after < before,
            "load split reduces delay: {after} vs {before}"
        );
        check_comb_equivalence(&golden, &nl, 0).unwrap();
    }

    #[test]
    fn s7_minimizes_redundant_cone() {
        let lib = cmos_library();
        // Redundant logic: y = (a & b) | (a & !b) == a, built from gates.
        let mut nl = Netlist::new("t");
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        let nb = nl.add_net("nb");
        let t1 = nl.add_net("t1");
        let t2 = nl.add_net("t2");
        let y = nl.add_net("y");
        let i1 = nl.add_component("i1", ComponentKind::Tech(lib.get("INV").unwrap().clone()));
        nl.connect_named(i1, "A0", b).unwrap();
        nl.connect_named(i1, "Y", nb).unwrap();
        let g1 = nl.add_component("g1", ComponentKind::Tech(lib.get("AND2").unwrap().clone()));
        nl.connect_named(g1, "A0", a).unwrap();
        nl.connect_named(g1, "A1", b).unwrap();
        nl.connect_named(g1, "Y", t1).unwrap();
        let g2 = nl.add_component("g2", ComponentKind::Tech(lib.get("AND2").unwrap().clone()));
        nl.connect_named(g2, "A0", a).unwrap();
        nl.connect_named(g2, "A1", nb).unwrap();
        nl.connect_named(g2, "Y", t2).unwrap();
        let g3 = nl.add_component("g3", ComponentKind::Tech(lib.get("OR2").unwrap().clone()));
        nl.connect_named(g3, "A0", t1).unwrap();
        nl.connect_named(g3, "A1", t2).unwrap();
        nl.connect_named(g3, "Y", y).unwrap();
        nl.add_port("a", PinDir::In, a);
        nl.add_port("b", PinDir::In, b);
        nl.add_port("y", PinDir::Out, y);

        let golden = nl.clone();
        let before = milo_timing::statistics(&nl).unwrap();
        let log = s7_minimize(&mut nl, g3, &lib);
        assert!(log.is_some());
        let after = milo_timing::statistics(&nl).unwrap();
        assert!(after.delay < before.delay, "y == a after minimization");
        assert!(after.cells < before.cells);
        check_comb_equivalence(&golden, &nl, 0).unwrap();
    }

    #[test]
    fn s8_shannon_moves_critical_input_to_mux() {
        let lib = cmos_library();
        let (mut nl, root) = aoi_cone(&lib);
        // Make `c` very late by inserting buffers.
        let c_port = nl.port("c").unwrap().net;
        // (re-route: c -> chain -> NOR input) — rebuild small circuit with
        // chain between port and gate input.
        let loads = nl.loads(c_port);
        let pin = loads[0];
        nl.disconnect(pin).unwrap();
        let mut late = c_port;
        for i in 0..4 {
            let g = nl.add_component(
                format!("ch{i}"),
                ComponentKind::Tech(lib.get("BUF").unwrap().clone()),
            );
            nl.connect_named(g, "A0", late).unwrap();
            let y = nl.add_net(format!("chn{i}"));
            nl.connect_named(g, "Y", y).unwrap();
            late = y;
        }
        nl.connect(pin, late).unwrap();

        let golden = nl.clone();
        let sta = analyze(&nl).unwrap();
        let before = sta.worst_delay();
        let log = s8_shannon_mux(&mut nl, root, &sta, &lib);
        assert!(log.is_some(), "Shannon expansion applies");
        let after = analyze(&nl).unwrap().worst_delay();
        assert!(
            after < before,
            "late input now only drives a mux select: {after} vs {before}"
        );
        check_comb_equivalence(&golden, &nl, 0).unwrap();
    }
}
