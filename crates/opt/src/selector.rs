//! The time-optimizer control flow of Fig. 8, and the overall
//! time → area → power optimization order that SOCRATES popularized
//! (§2.2.2: "rules are applied that optimize time … until all timing
//! constraints are satisfied. Finally, area optimizations are made on
//! noncritical paths").

use crate::critics::{logic_rules, PowerDownSlack};
use crate::strategies::{apply_strategy, StrategyCtx, StrategyId};
use milo_netlist::{ComponentId, Netlist};
use milo_rules::{
    refresh_or_rebuild, Engine, HashRuleTable, LibraryRef, Rule, RuleCtx, Selection, Tx,
};
use milo_techmap::TechLibrary;
use milo_timing::{analyze, statistics, DesignStats, IncrementalSta};
use std::collections::HashSet;

/// One successful strategy application, for traces.
#[derive(Clone, Debug)]
pub struct StrategyFiring {
    /// Which strategy fired.
    pub strategy: StrategyId,
    /// Where.
    pub site: ComponentId,
    /// Worst constraint violation (ns) before the application.
    pub before: f64,
    /// Worst constraint violation (ns) after.
    pub after: f64,
}

/// Result of a timing-optimization run.
#[derive(Clone, Debug)]
pub struct TimingReport {
    /// Whether the constraint was met.
    pub met: bool,
    /// Worst delay at entry.
    pub initial_delay: f64,
    /// Worst delay at exit.
    pub final_delay: f64,
    /// Applied strategies in order.
    pub applied: Vec<StrategyFiring>,
}

/// Chooses the strategy ordering from the slack magnitude (§4.1.3:
/// "the control strategy can be changed depending on how far the critical
/// path is from the timing constraints").
pub fn strategy_order(deficit_ratio: f64) -> Vec<StrategyId> {
    use StrategyId::*;
    if deficit_ratio < 0.08 {
        // "When the time difference is small, a local optimization can be
        // attempted using some combination of strategies 1 - 4" — no-cost
        // rules before tradeoff rules.
        vec![S1PinSwap, S4BetterMacro, S2PowerUp, S3Factor, S5Duplicate]
    } else if deficit_ratio < 0.25 {
        // Moderate slack: strategy 4 "will be the first strategy examined
        // for moderate gain", then 6.
        vec![
            S4BetterMacro,
            S6BetterMacroCost,
            S3Factor,
            S2PowerUp,
            S5Duplicate,
            S1PinSwap,
        ]
    } else {
        // "When the time difference is great … the circuit can be
        // minimized into a two level circuit using strategy 7"; strategy 8
        // "will be examined for a large slack but … after less costly
        // strategies".
        vec![
            S4BetterMacro,
            S7Minimize,
            S6BetterMacroCost,
            S8ShannonMux,
            S3Factor,
            S2PowerUp,
            S5Duplicate,
            S1PinSwap,
        ]
    }
}

/// The Fig. 8 loop with a single global required time. See
/// [`optimize_timing_paths`] for per-path constraints.
pub fn optimize_timing(
    nl: &mut Netlist,
    lib: &TechLibrary,
    hash: &HashRuleTable,
    required: f64,
    max_iters: usize,
) -> TimingReport {
    optimize_timing_paths(nl, lib, hash, &|_| Some(required), max_iters)
}

/// Worst violation (arrival − required) over constrained endpoints, and
/// the nets of the endpoints within `margin` of that violation.
fn violations(
    sta: &milo_timing::Sta,
    required_at: &dyn Fn(&milo_timing::Endpoint) -> Option<f64>,
    margin: f64,
) -> (f64, Vec<milo_netlist::NetId>) {
    let mut worst = f64::MIN;
    let mut per_endpoint: Vec<(f64, milo_netlist::NetId)> = Vec::new();
    for (e, arrival, net) in sta.endpoints() {
        let Some(r) = required_at(e) else { continue };
        let v = arrival - r;
        per_endpoint.push((v, *net));
        worst = worst.max(v);
    }
    if per_endpoint.is_empty() {
        return (f64::MIN, Vec::new());
    }
    let nets = per_endpoint
        .into_iter()
        .filter(|(v, _)| *v >= worst - margin)
        .map(|(_, n)| n)
        .collect();
    (worst, nets)
}

/// The Fig. 8 loop: analyze → select critical path → select point of
/// optimization → select strategy → select rule → evaluate → iterate.
///
/// `required_at` returns the required time per timing endpoint
/// (per-path constraints, §6's "parameters for path delays"); `None`
/// leaves an endpoint unconstrained. Criticality is measured by
/// violation (arrival − required), so the "critical path … whose delay
/// is furthest from the user's specifications" is selected first, exactly
/// as §4 describes. Strategies whose measured result does not reduce the
/// worst violation are undone via the change log.
pub fn optimize_timing_paths(
    nl: &mut Netlist,
    lib: &TechLibrary,
    hash: &HashRuleTable,
    required_at: &dyn Fn(&milo_timing::Endpoint) -> Option<f64>,
    max_iters: usize,
) -> TimingReport {
    let ctx = StrategyCtx { lib, hash };
    // The feedback cycle maintains one incremental STA: every strategy
    // application (and every undo) refreshes only the touched fan-out
    // cone instead of re-analyzing the whole netlist.
    let mut inc = IncrementalSta::new(nl).ok();
    let initial_delay = inc.as_ref().map(|i| i.sta().worst_delay()).unwrap_or(0.0);
    let mut applied = Vec::new();
    let mut exhausted: HashSet<(ComponentId, StrategyId)> = HashSet::new();
    let mut blacklist: HashSet<ComponentId> = HashSet::new();

    for _ in 0..max_iters {
        let Some(tracker) = inc.as_ref() else { break };
        let sta = tracker.sta();
        let worst_delay = sta.worst_delay();
        let (violation, critical_nets) = violations(sta, required_at, worst_delay * 0.02);
        if violation <= 0.0 || critical_nets.is_empty() {
            return TimingReport {
                met: true,
                initial_delay,
                final_delay: worst_delay,
                applied,
            };
        }
        let deficit_ratio = violation / worst_delay.max(1e-9);
        // Point of optimization (§4 criteria) over the violating paths,
        // skipping blacklisted components.
        let mut counts: std::collections::HashMap<ComponentId, usize> =
            std::collections::HashMap::new();
        for net in &critical_nets {
            for c in sta.critical_path_components(nl, *net) {
                if nl.component(c).is_ok_and(|x| !x.kind.is_sequential()) && !blacklist.contains(&c)
                {
                    *counts.entry(c).or_insert(0) += 1;
                }
            }
        }
        let point = counts
            .into_iter()
            .map(|(id, count)| {
                let out_arrival = nl
                    .component(id)
                    .ok()
                    .and_then(|c| {
                        c.pins
                            .iter()
                            .find(|p| p.dir == milo_netlist::PinDir::Out)
                            .and_then(|p| p.net)
                            .map(|n| sta.arrival(n))
                    })
                    .unwrap_or(f64::MAX);
                (id, count, out_arrival)
            })
            .max_by(|a, b| {
                a.1.cmp(&b.1)
                    .then(b.2.partial_cmp(&a.2).expect("arrivals are not NaN"))
            })
            .map(|(id, _, _)| id);
        let Some(site) = point else { break };
        let mut progressed = false;
        for strategy in strategy_order(deficit_ratio) {
            if exhausted.contains(&(site, strategy)) {
                continue;
            }
            exhausted.insert((site, strategy));
            let log = match inc.as_ref() {
                Some(i) => apply_strategy(strategy, nl, site, i.sta(), &ctx),
                None => None,
            };
            let Some(log) = log else { continue };
            let ts = log.touch_set();
            refresh_or_rebuild(&mut inc, nl, &ts);
            let new_violation = inc
                .as_ref()
                .map(|i| violations(i.sta(), required_at, 0.0).0)
                .unwrap_or(f64::MAX);
            if new_violation < violation - 1e-9 {
                applied.push(StrategyFiring {
                    strategy,
                    site,
                    before: violation,
                    after: new_violation,
                });
                progressed = true;
                break;
            }
            // "If the cost of applying the rule is too great or the rule
            // fails to achieve a sizeable gain, a new rule will be
            // selected" — undo and try the next strategy.
            log.undo(nl);
            refresh_or_rebuild(&mut inc, nl, &ts);
        }
        if !progressed {
            // "If the strategy has exhausted all possible rules without
            // solving the critical path, a new strategy will be selected"
            // — and ultimately a new point.
            blacklist.insert(site);
        }
    }
    let final_delay = inc.as_ref().map(|i| i.sta().worst_delay()).unwrap_or(0.0);
    let met = inc
        .as_ref()
        .map(|i| violations(i.sta(), required_at, 0.0).0 <= 0.0)
        .unwrap_or(false);
    TimingReport {
        met,
        initial_delay,
        final_delay,
        applied,
    }
}

/// Area pass: logic-critic cleanups plus power-down on slack paths, never
/// letting the worst delay exceed `required`.
pub fn optimize_area(
    nl: &mut Netlist,
    lib: &TechLibrary,
    required: f64,
    max_steps: usize,
) -> usize {
    optimize_area_paths(nl, lib, &|_| Some(required), max_steps)
}

/// Per-path variant of the area pass: applies area/power transformations
/// everywhere they do not create or worsen a constraint violation
/// ("area optimizations are made on noncritical paths, possibly at the
/// expense of time").
pub fn optimize_area_paths(
    nl: &mut Netlist,
    lib: &TechLibrary,
    required_at: &dyn Fn(&milo_timing::Endpoint) -> Option<f64>,
    max_steps: usize,
) -> usize {
    let allowed = |inc: &Option<IncrementalSta>, baseline: f64| -> bool {
        inc.as_ref()
            .map(|i| violations(i.sta(), required_at, 0.0).0 <= baseline.max(0.0) + 1e-9)
            .unwrap_or(false)
    };
    let mut inc = IncrementalSta::new(nl).ok();
    let baseline_violation = inc
        .as_ref()
        .map(|i| violations(i.sta(), required_at, 0.0).0)
        .unwrap_or(f64::MIN);
    let mut fired_total = 0usize;
    // Logic critic first: always-beneficial cleanups.
    let mut engine = Engine::new(logic_rules(lib));
    fired_total += engine.run(nl, Selection::OpsOrder, None, max_steps);
    if fired_total > 0 {
        inc = IncrementalSta::new(nl).ok();
    }
    // Area critic: cone merges into smaller macros, guarded by the timing
    // constraints.
    let hash = HashRuleTable::cached(&LibraryRef { cells: lib.cells() });
    let ctx = crate::strategies::StrategyCtx { lib, hash: &hash };
    // Each pass keeps scanning after a successful merge (every merge
    // decision re-reads the current netlist, so this only changes visit
    // order); passes repeat until a full scan fires nothing. This bounds
    // the quadratic restart-scan-per-fire of the naive loop.
    let mut merges = 0usize;
    while merges < max_steps {
        let sites: Vec<_> = nl.component_ids().collect();
        let mut fired_this_pass = false;
        for site in sites {
            if merges >= max_steps {
                break;
            }
            let Some(log) = crate::strategies::area_macro_merge(nl, site, &ctx) else {
                continue;
            };
            let ts = log.touch_set();
            refresh_or_rebuild(&mut inc, nl, &ts);
            if allowed(&inc, baseline_violation) {
                fired_this_pass = true;
                merges += 1;
                fired_total += 1;
            } else {
                log.undo(nl);
                refresh_or_rebuild(&mut inc, nl, &ts);
            }
        }
        if !fired_this_pass {
            break;
        }
    }
    // Re-run the cleanups the merges may have enabled (skip when no
    // merge fired — the first cleanup run already reached quiescence).
    if merges > 0 {
        let cleanup_fired = engine.run(nl, Selection::OpsOrder, None, max_steps);
        fired_total += cleanup_fired;
        if cleanup_fired > 0 {
            inc = IncrementalSta::new(nl).ok();
        }
    }
    // Power/area downsizing under the timing guard. Every candidate of a
    // pass is tried (guarded individually); a fresh match pass only runs
    // after a pass that changed something.
    let rule = PowerDownSlack::new(lib.clone());
    let mut downsized = 0usize;
    while downsized < max_steps {
        let candidates = match inc.as_ref() {
            Some(i) => rule.matches(&RuleCtx {
                nl,
                sta: Some(i.sta()),
            }),
            None => break,
        };
        let mut fired_this_pass = false;
        for m in candidates {
            if downsized >= max_steps {
                break;
            }
            let mut tx = Tx::new(nl);
            if rule.apply(&mut tx, &m).is_err() {
                continue;
            }
            let log = tx.commit();
            let ts = log.touch_set();
            refresh_or_rebuild(&mut inc, nl, &ts);
            if allowed(&inc, baseline_violation) {
                fired_this_pass = true;
                downsized += 1;
                fired_total += 1;
            } else {
                log.undo(nl);
                refresh_or_rebuild(&mut inc, nl, &ts);
            }
        }
        if !fired_this_pass {
            break;
        }
    }
    fired_total
}

/// Full optimization: timing until the constraint is met (or no progress),
/// then area/power on the slack that remains — the SOCRATES phase order.
pub fn optimize(
    nl: &mut Netlist,
    lib: &TechLibrary,
    required: Option<f64>,
    max_iters: usize,
) -> (TimingReport, DesignStats) {
    let hash = HashRuleTable::cached(&LibraryRef { cells: lib.cells() });
    // With no explicit constraint, optimize area only (every path is
    // "non-critical").
    let required_time = required.unwrap_or(f64::INFINITY);
    let report = if required.is_some() {
        optimize_timing(nl, lib, &hash, required_time, max_iters)
    } else {
        let d = analyze(nl).map(|s| s.worst_delay()).unwrap_or(0.0);
        TimingReport {
            met: true,
            initial_delay: d,
            final_delay: d,
            applied: Vec::new(),
        }
    };
    optimize_area(nl, lib, required_time, max_iters);
    let stats = statistics(nl).unwrap_or_default();
    (report, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_compilers::verify::check_comb_equivalence;
    use milo_netlist::{ComponentKind, PinDir};
    use milo_techmap::{cmos_library, ecl_library};

    /// A deliberately bad circuit: redundant cone + pessimal pin use.
    fn sloppy_circuit(lib: &TechLibrary) -> Netlist {
        let mut nl = Netlist::new("sloppy");
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        let c = nl.add_net("c");
        for (n, net) in [("a", a), ("b", b), ("c", c)] {
            nl.add_port(n, PinDir::In, net);
        }
        // (a & b) | (a & !b) | c  — reduces to a | c.
        let nb = nl.add_net("nb");
        let i1 = nl.add_component("i1", ComponentKind::Tech(lib.get("INV").unwrap().clone()));
        nl.connect_named(i1, "A0", b).unwrap();
        nl.connect_named(i1, "Y", nb).unwrap();
        let t1 = nl.add_net("t1");
        let g1 = nl.add_component("g1", ComponentKind::Tech(lib.get("AND2").unwrap().clone()));
        nl.connect_named(g1, "A0", a).unwrap();
        nl.connect_named(g1, "A1", b).unwrap();
        nl.connect_named(g1, "Y", t1).unwrap();
        let t2 = nl.add_net("t2");
        let g2 = nl.add_component("g2", ComponentKind::Tech(lib.get("AND2").unwrap().clone()));
        nl.connect_named(g2, "A0", a).unwrap();
        nl.connect_named(g2, "A1", nb).unwrap();
        nl.connect_named(g2, "Y", t2).unwrap();
        let y = nl.add_net("y");
        let g3 = nl.add_component("g3", ComponentKind::Tech(lib.get("OR3").unwrap().clone()));
        nl.connect_named(g3, "A0", t1).unwrap();
        nl.connect_named(g3, "A1", t2).unwrap();
        nl.connect_named(g3, "A2", c).unwrap();
        nl.connect_named(g3, "Y", y).unwrap();
        nl.add_port("y", PinDir::Out, y);
        nl
    }

    #[test]
    fn timing_optimizer_improves_and_preserves() {
        for lib in [cmos_library(), ecl_library()] {
            let mut nl = sloppy_circuit(&lib);
            let golden = nl.clone();
            let before = analyze(&nl).unwrap().worst_delay();
            let hash = HashRuleTable::cached(&LibraryRef { cells: lib.cells() });
            let report = optimize_timing(&mut nl, &lib, &hash, before * 0.5, 40);
            assert!(report.final_delay < before, "{}: {report:?}", lib.name);
            assert!(!report.applied.is_empty());
            check_comb_equivalence(&golden, &nl, 0).unwrap_or_else(|e| panic!("{}: {e}", lib.name));
        }
    }

    #[test]
    fn already_met_constraint_is_a_noop() {
        let lib = cmos_library();
        let mut nl = sloppy_circuit(&lib);
        let hash = HashRuleTable::cached(&LibraryRef { cells: lib.cells() });
        let report = optimize_timing(&mut nl, &lib, &hash, 1e9, 40);
        assert!(report.met);
        assert!(report.applied.is_empty());
    }

    #[test]
    fn full_optimize_reduces_area_without_breaking_timing() {
        let lib = ecl_library();
        let mut nl = sloppy_circuit(&lib);
        let golden = nl.clone();
        let before = statistics(&nl).unwrap();
        let (report, after) = optimize(&mut nl, &lib, Some(before.delay * 0.8), 60);
        assert!(report.final_delay <= before.delay);
        assert!(after.delay <= before.delay * 0.8 + 1e-9 || !report.met);
        check_comb_equivalence(&golden, &nl, 0).unwrap();
    }

    #[test]
    fn strategy_order_changes_with_deficit() {
        let small = strategy_order(0.02);
        let large = strategy_order(0.5);
        assert_eq!(small[0], StrategyId::S1PinSwap);
        assert!(small.len() < large.len());
        assert!(large.contains(&StrategyId::S7Minimize));
        assert!(large.contains(&StrategyId::S8ShannonMux));
        assert!(!small.contains(&StrategyId::S7Minimize));
    }
}
