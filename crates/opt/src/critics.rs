//! The five critics of the logic optimizer (§6.4, Fig. 17) as rule sets:
//! logic (always improves), timing (speed for area/power), area, power,
//! and electric (rule checking / repair).

use milo_netlist::{
    CellFunction, ComponentId, ComponentKind, GateFn, NetId, Netlist, NetlistError, PinDir,
    PowerLevel, TechCell,
};
use milo_rules::{Rule, RuleClass, RuleCtx, RuleMatch, Tx};
use milo_techmap::TechLibrary;
use milo_timing::on_critical_path;

fn tech_cell_of(nl: &Netlist, id: ComponentId) -> Option<TechCell> {
    match &nl.component(id).ok()?.kind {
        ComponentKind::Tech(c) => Some(c.clone()),
        _ => None,
    }
}

fn is_inv(nl: &Netlist, id: ComponentId) -> bool {
    matches!(
        tech_cell_of(nl, id).map(|c| c.function),
        Some(CellFunction::Gate(GateFn::Inv, 1))
    )
}

fn single_output_net(nl: &Netlist, id: ComponentId) -> Option<NetId> {
    let comp = nl.component(id).ok()?;
    let outs: Vec<_> = comp.output_pins().collect();
    if outs.len() == 1 {
        comp.pins[outs[0] as usize].net
    } else {
        None
    }
}

/// Logic critic: inverter-pair elimination (Fig. 17a is a double-negation
/// cleanup of exactly this shape).
pub struct InvPairElimination;

impl Rule for InvPairElimination {
    fn name(&self) -> &'static str {
        "inverter-pair-elimination"
    }
    fn class(&self) -> RuleClass {
        RuleClass::Logic
    }
    fn matches(&self, ctx: &RuleCtx) -> Vec<RuleMatch> {
        let nl = ctx.nl;
        let mut out = Vec::new();
        for id in nl.component_ids() {
            if !is_inv(nl, id) {
                continue;
            }
            let Some(y) = single_output_net(nl, id) else {
                continue;
            };
            if nl.fanout(y) != 1 || nl.ports().iter().any(|p| p.net == y) {
                continue;
            }
            let Some(load) = nl.loads(y).first().copied() else {
                continue;
            };
            if is_inv(nl, load.component) {
                // Second inverter's output must not be a port either when
                // the first's input is port-driven... moving loads is safe
                // regardless; only skip if the PAIR shares a component.
                if load.component != id {
                    out.push(
                        RuleMatch::at(id)
                            .with_aux(vec![load.component])
                            .with_note("INV-INV pair removed"),
                    );
                }
            }
        }
        out
    }
    fn apply(&self, tx: &mut Tx, m: &RuleMatch) -> Result<(), NetlistError> {
        let nl = tx.netlist();
        let input = nl
            .pin_net(m.site, "A0")
            .ok_or(NetlistError::NoSuchComponent(m.site))?;
        let second = m.aux[0];
        let out = nl
            .pin_net(second, "Y")
            .ok_or(NetlistError::NoSuchComponent(second))?;
        // If the second inverter's output is a port net, keep the net and
        // fail the rule (a buffer would be needed — no gain).
        if nl.ports().iter().any(|p| p.net == out) {
            return Err(NetlistError::NetInUse(out));
        }
        tx.remove_component(m.site)?;
        tx.remove_component(second)?;
        tx.move_loads(out, input)?;
        Ok(())
    }
}

/// Logic critic: drop buffers (their drive role is re-established by the
/// electric critic where needed).
pub struct BufferElimination;

impl Rule for BufferElimination {
    fn name(&self) -> &'static str {
        "buffer-elimination"
    }
    fn class(&self) -> RuleClass {
        RuleClass::Logic
    }
    fn matches(&self, ctx: &RuleCtx) -> Vec<RuleMatch> {
        let nl = ctx.nl;
        let mut out = Vec::new();
        for id in nl.component_ids() {
            let Some(cell) = tech_cell_of(nl, id) else {
                continue;
            };
            if !matches!(cell.function, CellFunction::Gate(GateFn::Buf, 1)) {
                continue;
            }
            let Some(y) = single_output_net(nl, id) else {
                continue;
            };
            if nl.ports().iter().any(|p| p.net == y) {
                continue;
            }
            out.push(RuleMatch::at(id).with_note("buffer removed"));
        }
        out
    }
    fn apply(&self, tx: &mut Tx, m: &RuleMatch) -> Result<(), NetlistError> {
        let nl = tx.netlist();
        let input = nl
            .pin_net(m.site, "A0")
            .ok_or(NetlistError::NoSuchComponent(m.site))?;
        let y = nl
            .pin_net(m.site, "Y")
            .ok_or(NetlistError::NoSuchComponent(m.site))?;
        tx.remove_component(m.site)?;
        tx.move_loads(y, input)?;
        Ok(())
    }
}

/// Logic critic: merge structurally identical gates driving separate nets
/// (common-subexpression elimination at cell level).
pub struct DuplicateGateMerge;

impl Rule for DuplicateGateMerge {
    fn name(&self) -> &'static str {
        "duplicate-gate-merge"
    }
    fn class(&self) -> RuleClass {
        RuleClass::Logic
    }
    fn matches(&self, ctx: &RuleCtx) -> Vec<RuleMatch> {
        let nl = ctx.nl;
        let signature = |id: ComponentId| -> Option<(String, Vec<NetId>)> {
            let comp = nl.component(id).ok()?;
            let cell = tech_cell_of(nl, id)?;
            if !matches!(
                cell.function,
                CellFunction::Gate(..) | CellFunction::Table(_)
            ) {
                return None;
            }
            let ins: Option<Vec<NetId>> = comp
                .pins
                .iter()
                .filter(|p| p.dir == PinDir::In)
                .map(|p| p.net)
                .collect();
            Some((cell.name, ins?))
        };
        // Hash by signature so matching stays linear in design size.
        let mut by_sig: std::collections::HashMap<(String, Vec<NetId>), ComponentId> =
            std::collections::HashMap::new();
        let mut out = Vec::new();
        for id in nl.component_ids() {
            let Some(sig) = signature(id) else { continue };
            match by_sig.get(&sig) {
                None => {
                    by_sig.insert(sig, id);
                }
                Some(&keep) => {
                    // Do not merge when the duplicate's output is a port
                    // net (the port binding cannot be moved).
                    if let Some(y) = single_output_net(nl, id) {
                        if !nl.ports().iter().any(|p| p.net == y) {
                            out.push(
                                RuleMatch::at(keep)
                                    .with_aux(vec![id])
                                    .with_note("identical gates merged"),
                            );
                        }
                    }
                }
            }
        }
        out
    }
    fn apply(&self, tx: &mut Tx, m: &RuleMatch) -> Result<(), NetlistError> {
        let nl = tx.netlist();
        let keep_y = nl
            .pin_net(m.site, "Y")
            .ok_or(NetlistError::NoSuchComponent(m.site))?;
        let dup = m.aux[0];
        let dup_y = nl
            .pin_net(dup, "Y")
            .ok_or(NetlistError::NoSuchComponent(dup))?;
        tx.remove_component(dup)?;
        tx.move_loads(dup_y, keep_y)?;
        Ok(())
    }
}

/// Logic/area critic: merge a mux cell that exclusively feeds a plain DFF's
/// D input into the library's merged mux-FF macro — the optimization of
/// Fig. 18 ("each multiplexor and flip-flop set can be combined into a
/// single technology-specific element, providing a decrease in area").
pub struct MuxDffMerge {
    lib: TechLibrary,
}

impl MuxDffMerge {
    /// Creates the rule bound to a library (it needs the MXFF cells).
    pub fn new(lib: TechLibrary) -> Self {
        Self { lib }
    }
}

impl Rule for MuxDffMerge {
    fn name(&self) -> &'static str {
        "mux-dff-merge"
    }
    fn class(&self) -> RuleClass {
        RuleClass::Logic
    }
    fn matches(&self, ctx: &RuleCtx) -> Vec<RuleMatch> {
        let nl = ctx.nl;
        let mut out = Vec::new();
        for id in nl.component_ids() {
            let Some(cell) = tech_cell_of(nl, id) else {
                continue;
            };
            let CellFunction::Mux { selects } = cell.function else {
                continue;
            };
            if self
                .lib
                .cell_at_level(&CellFunction::MuxDff { selects }, PowerLevel::Standard)
                .is_none()
            {
                continue;
            }
            let Some(y) = single_output_net(nl, id) else {
                continue;
            };
            if nl.fanout(y) != 1 || nl.ports().iter().any(|p| p.net == y) {
                continue;
            }
            let Some(load) = nl.loads(y).first().copied() else {
                continue;
            };
            let Some(ff) = tech_cell_of(nl, load.component) else {
                continue;
            };
            if !matches!(
                ff.function,
                CellFunction::Dff {
                    set: false,
                    reset: false,
                    enable: false
                }
            ) {
                continue;
            }
            let Ok(ff_comp) = nl.component(load.component) else {
                continue;
            };
            if ff_comp.pins[load.pin as usize].name != "D" {
                continue;
            }
            out.push(
                RuleMatch::at(id)
                    .with_aux(vec![load.component])
                    .with_choice(selects as usize)
                    .with_note(format!("mux{}+DFF -> MXFF", 1 << selects)),
            );
        }
        out
    }
    fn apply(&self, tx: &mut Tx, m: &RuleMatch) -> Result<(), NetlistError> {
        let selects = m.choice as u8;
        let merged = self
            .lib
            .cell_at_level(&CellFunction::MuxDff { selects }, PowerLevel::Standard)
            .ok_or(NetlistError::NoSuchComponent(m.site))?
            .clone();
        let nl = tx.netlist();
        let data = 1usize << selects;
        let d_nets: Vec<NetId> = (0..data)
            .map(|i| nl.pin_net(m.site, &format!("D{i}")).expect("matched mux"))
            .collect();
        let s_nets: Vec<NetId> = (0..selects)
            .map(|i| nl.pin_net(m.site, &format!("S{i}")).expect("matched mux"))
            .collect();
        let ff = m.aux[0];
        let clk = nl
            .pin_net(ff, "CLK")
            .ok_or(NetlistError::NoSuchComponent(ff))?;
        let q = nl
            .pin_net(ff, "Q")
            .ok_or(NetlistError::NoSuchComponent(ff))?;
        tx.remove_component(m.site)?;
        tx.remove_component(ff)?;
        let c = tx.add_component(
            format!("mxff{}", m.site.index()),
            ComponentKind::Tech(merged),
        );
        for (i, n) in d_nets.iter().enumerate() {
            tx.connect_named(c, &format!("D{i}"), *n)?;
        }
        for (i, n) in s_nets.iter().enumerate() {
            tx.connect_named(c, &format!("S{i}"), *n)?;
        }
        tx.connect_named(c, "CLK", clk)?;
        tx.connect_named(c, "Q", q)?;
        Ok(())
    }
}

/// Second-level Fig. 18 merge: a 2:1 mux feeding a data input of an MXFF2
/// becomes an MXFF4 ("making use of high-level macros that have 4-1
/// multiplexors combined with a flip-flop").
pub struct MuxIntoMuxDff {
    lib: TechLibrary,
}

impl MuxIntoMuxDff {
    /// Creates the rule bound to a library.
    pub fn new(lib: TechLibrary) -> Self {
        Self { lib }
    }
}

impl Rule for MuxIntoMuxDff {
    fn name(&self) -> &'static str {
        "mux-into-muxdff"
    }
    fn class(&self) -> RuleClass {
        RuleClass::Logic
    }
    fn matches(&self, ctx: &RuleCtx) -> Vec<RuleMatch> {
        let nl = ctx.nl;
        let mut out = Vec::new();
        for id in nl.component_ids() {
            let Some(cell) = tech_cell_of(nl, id) else {
                continue;
            };
            if !matches!(cell.function, CellFunction::Mux { selects: 1 }) {
                continue;
            }
            if self
                .lib
                .cell_at_level(&CellFunction::MuxDff { selects: 2 }, PowerLevel::Standard)
                .is_none()
            {
                continue;
            }
            let Some(y) = single_output_net(nl, id) else {
                continue;
            };
            if nl.fanout(y) != 1 || nl.ports().iter().any(|p| p.net == y) {
                continue;
            }
            let Some(load) = nl.loads(y).first().copied() else {
                continue;
            };
            let Some(mxff) = tech_cell_of(nl, load.component) else {
                continue;
            };
            if !matches!(mxff.function, CellFunction::MuxDff { selects: 1 }) {
                continue;
            }
            let Ok(mx_comp) = nl.component(load.component) else {
                continue;
            };
            let pin_name = mx_comp.pins[load.pin as usize].name.clone();
            let word = match pin_name.as_str() {
                "D0" => 0usize,
                "D1" => 1,
                _ => continue,
            };
            out.push(
                RuleMatch::at(id)
                    .with_aux(vec![load.component])
                    .with_choice(word)
                    .with_note("2:1 mux + MXFF2 -> MXFF4"),
            );
        }
        out
    }
    fn apply(&self, tx: &mut Tx, m: &RuleMatch) -> Result<(), NetlistError> {
        let merged = self
            .lib
            .cell_at_level(&CellFunction::MuxDff { selects: 2 }, PowerLevel::Standard)
            .ok_or(NetlistError::NoSuchComponent(m.site))?
            .clone();
        let nl = tx.netlist();
        let word = m.choice; // which MXFF2 data pin the mux feeds
        let a = nl
            .pin_net(m.site, "D0")
            .ok_or(NetlistError::NoSuchComponent(m.site))?;
        let b = nl
            .pin_net(m.site, "D1")
            .ok_or(NetlistError::NoSuchComponent(m.site))?;
        let t = nl
            .pin_net(m.site, "S0")
            .ok_or(NetlistError::NoSuchComponent(m.site))?;
        let mxff = m.aux[0];
        let other = nl
            .pin_net(mxff, &format!("D{}", 1 - word))
            .ok_or(NetlistError::NoSuchComponent(mxff))?;
        let s = nl
            .pin_net(mxff, "S0")
            .ok_or(NetlistError::NoSuchComponent(mxff))?;
        let clk = nl
            .pin_net(mxff, "CLK")
            .ok_or(NetlistError::NoSuchComponent(mxff))?;
        let q = nl
            .pin_net(mxff, "Q")
            .ok_or(NetlistError::NoSuchComponent(mxff))?;
        tx.remove_component(m.site)?;
        tx.remove_component(mxff)?;
        let c = tx.add_component(
            format!("mxff4_{}", m.site.index()),
            ComponentKind::Tech(merged),
        );
        // Result: S ? D1' : D0' where D{word}' = (T ? b : a), D{other}' = other.
        // Encode as 4:1 with S0=T, S1=S.
        let words: [NetId; 4] = if word == 0 {
            [a, b, other, other] // S=0 -> T?b:a ; S=1 -> other
        } else {
            [other, other, a, b]
        };
        for (i, n) in words.iter().enumerate() {
            tx.connect_named(c, &format!("D{i}"), *n)?;
        }
        tx.connect_named(c, "S0", t)?;
        tx.connect_named(c, "S1", s)?;
        tx.connect_named(c, "CLK", clk)?;
        tx.connect_named(c, "Q", q)?;
        Ok(())
    }
}

/// Timing critic: replace a standard/low-power macro with its high-power,
/// faster variant when the cell is on the critical path — strategy 2,
/// "only applicable to ECL logic" (Fig. 9b, Fig. 17b analog).
pub struct PowerUpCritical {
    lib: TechLibrary,
}

impl PowerUpCritical {
    /// Creates the rule bound to a library.
    pub fn new(lib: TechLibrary) -> Self {
        Self { lib }
    }
}

impl Rule for PowerUpCritical {
    fn name(&self) -> &'static str {
        "power-up-critical-macro"
    }
    fn class(&self) -> RuleClass {
        RuleClass::Timing
    }
    fn matches(&self, ctx: &RuleCtx) -> Vec<RuleMatch> {
        let Some(sta) = ctx.sta else {
            return Vec::new();
        };
        let nl = ctx.nl;
        let mut out = Vec::new();
        for id in nl.component_ids() {
            let Some(cell) = tech_cell_of(nl, id) else {
                continue;
            };
            if self.lib.faster_variant(&cell).is_none() {
                continue;
            }
            if on_critical_path(nl, sta, id) {
                out.push(RuleMatch::at(id).with_note(format!("{} -> high power", cell.name)));
            }
        }
        out
    }
    fn apply(&self, tx: &mut Tx, m: &RuleMatch) -> Result<(), NetlistError> {
        let cell =
            tech_cell_of(tx.netlist(), m.site).ok_or(NetlistError::NoSuchComponent(m.site))?;
        let faster = self
            .lib
            .faster_variant(&cell)
            .ok_or(NetlistError::NoSuchComponent(m.site))?
            .clone();
        tx.change_kind(m.site, ComponentKind::Tech(faster))
    }
}

/// Power critic: replace macros off the critical path with lower-power,
/// slower variants (Fig. 17d analog).
pub struct PowerDownSlack {
    lib: TechLibrary,
}

impl PowerDownSlack {
    /// Creates the rule bound to a library.
    pub fn new(lib: TechLibrary) -> Self {
        Self { lib }
    }
}

impl Rule for PowerDownSlack {
    fn name(&self) -> &'static str {
        "power-down-slack-macro"
    }
    fn class(&self) -> RuleClass {
        RuleClass::Power
    }
    fn matches(&self, ctx: &RuleCtx) -> Vec<RuleMatch> {
        let Some(sta) = ctx.sta else {
            return Vec::new();
        };
        let nl = ctx.nl;
        let mut out = Vec::new();
        for id in nl.component_ids() {
            let Some(cell) = tech_cell_of(nl, id) else {
                continue;
            };
            if self.lib.slower_variant(&cell).is_none() {
                continue;
            }
            if !on_critical_path(nl, sta, id) {
                out.push(RuleMatch::at(id).with_note(format!("{} -> low power", cell.name)));
            }
        }
        out
    }
    fn apply(&self, tx: &mut Tx, m: &RuleMatch) -> Result<(), NetlistError> {
        let cell =
            tech_cell_of(tx.netlist(), m.site).ok_or(NetlistError::NoSuchComponent(m.site))?;
        let slower = self
            .lib
            .slower_variant(&cell)
            .ok_or(NetlistError::NoSuchComponent(m.site))?
            .clone();
        tx.change_kind(m.site, ComponentKind::Tech(slower))
    }
}

/// Electric critic: insert a buffer on a net whose fanout exceeds the
/// driving cell's limit (Fig. 17e analog; detection shared with
/// [`milo_netlist::validate`]).
pub struct FanoutRepair {
    lib: TechLibrary,
}

impl FanoutRepair {
    /// Creates the rule bound to a library.
    pub fn new(lib: TechLibrary) -> Self {
        Self { lib }
    }
}

impl Rule for FanoutRepair {
    fn name(&self) -> &'static str {
        "fanout-repair"
    }
    fn class(&self) -> RuleClass {
        RuleClass::Electric
    }
    fn matches(&self, ctx: &RuleCtx) -> Vec<RuleMatch> {
        let nl = ctx.nl;
        let mut out = Vec::new();
        for net in nl.net_ids() {
            let Some(drv) = nl.driver(net) else { continue };
            let Some(cell) = tech_cell_of(nl, drv.component) else {
                continue;
            };
            if nl.fanout(net) > cell.max_fanout as usize {
                out.push(
                    RuleMatch::at(drv.component)
                        .with_pins(vec![drv])
                        .with_note(format!("fanout {} > {}", nl.fanout(net), cell.max_fanout)),
                );
            }
        }
        out
    }
    fn apply(&self, tx: &mut Tx, m: &RuleMatch) -> Result<(), NetlistError> {
        let buf = self
            .lib
            .buffer()
            .ok_or(NetlistError::NoSuchComponent(m.site))?
            .clone();
        let nl = tx.netlist();
        let drv = m.pins[0];
        let net = nl
            .component(drv.component)?
            .pins
            .get(drv.pin as usize)
            .and_then(|p| p.net)
            .ok_or(NetlistError::NoSuchPin(drv))?;
        let cell = tech_cell_of(nl, drv.component).ok_or(NetlistError::NoSuchComponent(m.site))?;
        let limit = cell.max_fanout as usize;
        let loads = nl.loads(net);
        let moved: Vec<_> = loads.into_iter().skip(limit.saturating_sub(1)).collect();
        let b = tx.add_component(format!("fo{}", m.site.index()), ComponentKind::Tech(buf));
        tx.connect_named(b, "A0", net)?;
        let out = tx.add_net(format!("fo{}_y", m.site.index()));
        tx.connect_named(b, "Y", out)?;
        for pin in moved {
            tx.disconnect(pin)?;
            tx.connect(pin, out)?;
        }
        Ok(())
    }
}

/// Cleanup: dead combinational logic at the technology level.
pub struct DeadCellRemoval;

impl Rule for DeadCellRemoval {
    fn name(&self) -> &'static str {
        "dead-cell-removal"
    }
    fn class(&self) -> RuleClass {
        RuleClass::Cleanup
    }
    fn matches(&self, ctx: &RuleCtx) -> Vec<RuleMatch> {
        let nl = ctx.nl;
        let mut out = Vec::new();
        for id in nl.component_ids() {
            let Ok(comp) = nl.component(id) else { continue };
            if comp.kind.is_sequential() {
                continue;
            }
            let mut has_out = false;
            let mut dead = true;
            for p in &comp.pins {
                if p.dir == PinDir::Out {
                    has_out = true;
                    if let Some(net) = p.net {
                        if nl.fanout(net) > 0 || nl.ports().iter().any(|port| port.net == net) {
                            dead = false;
                            break;
                        }
                    }
                }
            }
            if has_out && dead {
                out.push(RuleMatch::at(id).with_note("dead cell"));
            }
        }
        out
    }
    fn apply(&self, tx: &mut Tx, m: &RuleMatch) -> Result<(), NetlistError> {
        tx.remove_component(m.site)
    }
}

/// The logic-critic rule set (always-beneficial cleanups).
pub fn logic_rules(lib: &TechLibrary) -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(InvPairElimination),
        Box::new(BufferElimination),
        Box::new(DuplicateGateMerge),
        Box::new(MuxDffMerge::new(lib.clone())),
        Box::new(MuxIntoMuxDff::new(lib.clone())),
        Box::new(DeadCellRemoval),
    ]
}

/// The full five-critic rule set.
pub fn all_rules(lib: &TechLibrary) -> Vec<Box<dyn Rule>> {
    let mut rules = logic_rules(lib);
    rules.push(Box::new(PowerUpCritical::new(lib.clone())));
    rules.push(Box::new(PowerDownSlack::new(lib.clone())));
    rules.push(Box::new(FanoutRepair::new(lib.clone())));
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_compilers::verify::check_comb_equivalence;
    use milo_netlist::GenericMacro;
    use milo_rules::{Engine, Selection};
    use milo_techmap::{cmos_library, ecl_library, map_netlist};

    fn tech(nl: &Netlist, lib: &TechLibrary) -> Netlist {
        map_netlist(nl, lib).unwrap()
    }

    #[test]
    fn inv_pair_removed_and_equivalent() {
        let mut nl = Netlist::new("t");
        let a = nl.add_net("a");
        let m1 = nl.add_net("m1");
        let m2 = nl.add_net("m2");
        let y = nl.add_net("y");
        for (name, i, o) in [("i1", a, m1), ("i2", m1, m2), ("i3", m2, y)] {
            let g = nl.add_component(
                name,
                ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)),
            );
            nl.connect_named(g, "A0", i).unwrap();
            nl.connect_named(g, "Y", o).unwrap();
        }
        nl.add_port("a", PinDir::In, a);
        nl.add_port("y", PinDir::Out, y);
        let lib = cmos_library();
        let mut mapped = tech(&nl, &lib);
        let golden = mapped.clone();
        let mut engine = Engine::new(logic_rules(&lib));
        let fired = engine.run(&mut mapped, Selection::OpsOrder, None, 50);
        assert!(fired >= 1);
        assert_eq!(mapped.component_count(), 1);
        check_comb_equivalence(&golden, &mapped, 0).unwrap();
    }

    #[test]
    fn duplicate_gates_merge() {
        let mut nl = Netlist::new("t");
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        let y1 = nl.add_net("y1");
        let y2 = nl.add_net("y2");
        let o1 = nl.add_net("o1");
        for (name, out) in [("g1", y1), ("g2", y2)] {
            let g = nl.add_component(
                name,
                ComponentKind::Generic(GenericMacro::Gate(GateFn::And, 2)),
            );
            nl.connect_named(g, "A0", a).unwrap();
            nl.connect_named(g, "A1", b).unwrap();
            nl.connect_named(g, "Y", out).unwrap();
        }
        // y2 feeds an inverter so it is not port-bound.
        let inv = nl.add_component(
            "i",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)),
        );
        nl.connect_named(inv, "A0", y2).unwrap();
        nl.connect_named(inv, "Y", o1).unwrap();
        nl.add_port("a", PinDir::In, a);
        nl.add_port("b", PinDir::In, b);
        nl.add_port("y1", PinDir::Out, y1);
        nl.add_port("o1", PinDir::Out, o1);
        let lib = cmos_library();
        let mut mapped = tech(&nl, &lib);
        let golden = mapped.clone();
        let mut engine = Engine::new(logic_rules(&lib));
        engine.run(&mut mapped, Selection::OpsOrder, None, 50);
        assert_eq!(mapped.component_count(), 2, "{mapped:?}");
        check_comb_equivalence(&golden, &mapped, 0).unwrap();
    }

    #[test]
    fn mux_dff_merges_fig18() {
        let lib = ecl_library();
        let mut nl = Netlist::new("t");
        let mux_cell = lib.get("MUX2TO1").unwrap().clone();
        let dff_cell = lib.get("DFF").unwrap().clone();
        let m = nl.add_component("m", ComponentKind::Tech(mux_cell));
        let f = nl.add_component("f", ComponentKind::Tech(dff_cell));
        let d0 = nl.add_net("d0");
        let d1 = nl.add_net("d1");
        let s = nl.add_net("s");
        let md = nl.add_net("md");
        let clk = nl.add_net("clk");
        let q = nl.add_net("q");
        nl.connect_named(m, "D0", d0).unwrap();
        nl.connect_named(m, "D1", d1).unwrap();
        nl.connect_named(m, "S0", s).unwrap();
        nl.connect_named(m, "Y", md).unwrap();
        nl.connect_named(f, "D", md).unwrap();
        nl.connect_named(f, "CLK", clk).unwrap();
        nl.connect_named(f, "Q", q).unwrap();
        for (n, net) in [("d0", d0), ("d1", d1), ("s", s), ("clk", clk)] {
            nl.add_port(n, PinDir::In, net);
        }
        nl.add_port("q", PinDir::Out, q);

        let golden = nl.clone();
        let before = milo_timing::statistics(&nl).unwrap();
        let mut engine = Engine::new(logic_rules(&lib));
        let fired = engine.run(&mut nl, Selection::OpsOrder, None, 10);
        assert!(fired >= 1);
        assert_eq!(nl.component_count(), 1);
        let after = milo_timing::statistics(&nl).unwrap();
        assert!(after.area < before.area, "Fig. 18: merged macro is smaller");
        milo_compilers::verify::check_seq_equivalence(&golden, &nl, 50, 5).unwrap();
    }

    #[test]
    fn power_up_only_on_critical_path() {
        let lib = ecl_library();
        // Chain of 3 NOR2 (critical), plus one INV on a short path.
        let mut nl = Netlist::new("t");
        let a = nl.add_net("a");
        nl.add_port("a", PinDir::In, a);
        let mut prev = a;
        for i in 0..3 {
            let g = nl.add_component(
                format!("n{i}"),
                ComponentKind::Tech(lib.get("NOR2").unwrap().clone()),
            );
            nl.connect_named(g, "A0", prev).unwrap();
            nl.connect_named(g, "A1", a).unwrap();
            let y = nl.add_net(format!("y{i}"));
            nl.connect_named(g, "Y", y).unwrap();
            prev = y;
        }
        nl.add_port("y", PinDir::Out, prev);
        let short = nl.add_component("s", ComponentKind::Tech(lib.get("INV").unwrap().clone()));
        nl.connect_named(short, "A0", a).unwrap();
        let z = nl.add_net("z");
        nl.connect_named(short, "Y", z).unwrap();
        nl.add_port("z", PinDir::Out, z);

        let mut engine = Engine::new(vec![
            Box::new(PowerUpCritical::new(lib.clone())) as Box<dyn Rule>
        ]);
        let before = milo_timing::statistics(&nl).unwrap();
        let fired = engine.run(
            &mut nl,
            Selection::MaxGain {
                delay: 1.0,
                area: 0.0,
                power: 0.01,
            },
            None,
            10,
        );
        assert!(fired >= 1);
        let after = milo_timing::statistics(&nl).unwrap();
        assert!(after.delay < before.delay);
        assert!(after.power > before.power, "speed bought with power");
        // The short-path inverter must still be standard power.
        let ComponentKind::Tech(c) = &nl.component(short).unwrap().kind else {
            panic!()
        };
        assert_eq!(c.level, PowerLevel::Standard);
    }

    #[test]
    fn fanout_repair_via_engine() {
        let lib = cmos_library();
        let mut nl = Netlist::new("t");
        let a = nl.add_net("a");
        nl.add_port("a", PinDir::In, a);
        let drv = nl.add_component("d", ComponentKind::Tech(lib.get("INV").unwrap().clone()));
        nl.connect_named(drv, "A0", a).unwrap();
        let mid = nl.add_net("mid");
        nl.connect_named(drv, "Y", mid).unwrap();
        for i in 0..14 {
            let g = nl.add_component(
                format!("l{i}"),
                ComponentKind::Tech(lib.get("BUF").unwrap().clone()),
            );
            nl.connect_named(g, "A0", mid).unwrap();
            let y = nl.add_net(format!("o{i}"));
            nl.connect_named(g, "Y", y).unwrap();
            nl.add_port(format!("o{i}"), PinDir::Out, y);
        }
        let golden = nl.clone();
        let mut engine = Engine::new(vec![
            Box::new(FanoutRepair::new(lib.clone())) as Box<dyn Rule>
        ]);
        let fired = engine.run(&mut nl, Selection::OpsOrder, None, 10);
        assert!(fired >= 1);
        let violations = milo_netlist::validate(&nl, true);
        assert!(!violations
            .iter()
            .any(|v| matches!(v, milo_netlist::Violation::FanoutExceeded { .. })));
        check_comb_equivalence(&golden, &nl, 64).unwrap();
    }
}
