//! The five critics of the logic optimizer (§6.4, Fig. 17) as rule sets:
//! logic (always improves), timing (speed for area/power), area, power,
//! and electric (rule checking / repair).

use milo_netlist::{
    CellFunction, ComponentId, ComponentKind, GateFn, NetId, Netlist, NetlistError, PinDir,
    PowerLevel, TechCell,
};
use milo_rules::{Locality, Rule, RuleClass, RuleCtx, RuleMatch, Tx};
use milo_techmap::TechLibrary;
use milo_timing::on_critical_path;

fn tech_cell_of(nl: &Netlist, id: ComponentId) -> Option<TechCell> {
    tech_cell_ref(nl, id).cloned()
}

/// Borrowing variant for match predicates — re-run thousands of times
/// per index repair, so they must not clone the cell.
fn tech_cell_ref(nl: &Netlist, id: ComponentId) -> Option<&TechCell> {
    match &nl.component(id).ok()?.kind {
        ComponentKind::Tech(c) => Some(c),
        _ => None,
    }
}

fn is_inv(nl: &Netlist, id: ComponentId) -> bool {
    matches!(
        tech_cell_ref(nl, id).map(|c| &c.function),
        Some(CellFunction::Gate(GateFn::Inv, 1))
    )
}

fn single_output_net(nl: &Netlist, id: ComponentId) -> Option<NetId> {
    let comp = nl.component(id).ok()?;
    let mut outs = comp.pins.iter().filter(|p| p.dir == PinDir::Out);
    let first = outs.next()?;
    if outs.next().is_some() {
        None
    } else {
        first.net
    }
}

/// Logic critic: inverter-pair elimination (Fig. 17a is a double-negation
/// cleanup of exactly this shape).
pub struct InvPairElimination;

impl Rule for InvPairElimination {
    fn name(&self) -> &'static str {
        "inverter-pair-elimination"
    }
    fn class(&self) -> RuleClass {
        RuleClass::Logic
    }
    fn matches(&self, ctx: &RuleCtx) -> Vec<RuleMatch> {
        milo_rules::scan_all_components(self, ctx)
    }
    // Support: the anchor's kind, its output net's fanout/port-binding,
    // and the load's kind — all inside the 1-hop contract.
    fn locality(&self) -> Locality {
        Locality::Local
    }
    fn matches_at(&self, ctx: &RuleCtx, id: ComponentId) -> Vec<RuleMatch> {
        let nl = ctx.nl;
        if !is_inv(nl, id) {
            return Vec::new();
        }
        let Some(y) = single_output_net(nl, id) else {
            return Vec::new();
        };
        // Port-bound nets are excluded anyway, so `fanout == 1` reduces
        // to the allocation-free load count.
        if nl.net_is_port_bound(y) || nl.load_count(y) != 1 {
            return Vec::new();
        }
        let Some(load) = nl.first_load(y) else {
            return Vec::new();
        };
        // Second inverter's output must not be a port either when
        // the first's input is port-driven... moving loads is safe
        // regardless; only skip if the PAIR shares a component.
        if is_inv(nl, load.component) && load.component != id {
            vec![RuleMatch::at(id)
                .with_aux(vec![load.component])
                .with_note("INV-INV pair removed")]
        } else {
            Vec::new()
        }
    }
    fn apply(&self, tx: &mut Tx, m: &RuleMatch) -> Result<(), NetlistError> {
        let nl = tx.netlist();
        let input = nl
            .pin_net(m.site, "A0")
            .ok_or(NetlistError::NoSuchComponent(m.site))?;
        let second = m.aux[0];
        let out = nl
            .pin_net(second, "Y")
            .ok_or(NetlistError::NoSuchComponent(second))?;
        // If the second inverter's output is a port net, keep the net and
        // fail the rule (a buffer would be needed — no gain).
        if nl.ports().iter().any(|p| p.net == out) {
            return Err(NetlistError::NetInUse(out));
        }
        tx.remove_component(m.site)?;
        tx.remove_component(second)?;
        tx.move_loads(out, input)?;
        Ok(())
    }
}

/// Logic critic: drop buffers (their drive role is re-established by the
/// electric critic where needed).
pub struct BufferElimination;

impl Rule for BufferElimination {
    fn name(&self) -> &'static str {
        "buffer-elimination"
    }
    fn class(&self) -> RuleClass {
        RuleClass::Logic
    }
    fn matches(&self, ctx: &RuleCtx) -> Vec<RuleMatch> {
        milo_rules::scan_all_components(self, ctx)
    }
    // Support: the anchor's kind and its output net's port-binding.
    fn locality(&self) -> Locality {
        Locality::Local
    }
    fn matches_at(&self, ctx: &RuleCtx, id: ComponentId) -> Vec<RuleMatch> {
        let nl = ctx.nl;
        let Some(cell) = tech_cell_ref(nl, id) else {
            return Vec::new();
        };
        if !matches!(cell.function, CellFunction::Gate(GateFn::Buf, 1)) {
            return Vec::new();
        }
        let Some(y) = single_output_net(nl, id) else {
            return Vec::new();
        };
        if nl.net_is_port_bound(y) {
            return Vec::new();
        }
        vec![RuleMatch::at(id).with_note("buffer removed")]
    }
    fn apply(&self, tx: &mut Tx, m: &RuleMatch) -> Result<(), NetlistError> {
        let nl = tx.netlist();
        let input = nl
            .pin_net(m.site, "A0")
            .ok_or(NetlistError::NoSuchComponent(m.site))?;
        let y = nl
            .pin_net(m.site, "Y")
            .ok_or(NetlistError::NoSuchComponent(m.site))?;
        tx.remove_component(m.site)?;
        tx.move_loads(y, input)?;
        Ok(())
    }
}

/// Logic critic: merge structurally identical gates driving separate nets
/// (common-subexpression elimination at cell level).
///
/// Stays [`Locality::Global`] (the default): a match pairs the
/// lowest-id holder of a signature with a later duplicate, so removing
/// or re-kinding one component can move matches anchored arbitrarily
/// far away — there is no 1-hop support bound. The full re-match is a
/// single hashed O(design) pass, no worse than the scan it replaces.
pub struct DuplicateGateMerge;

impl Rule for DuplicateGateMerge {
    fn name(&self) -> &'static str {
        "duplicate-gate-merge"
    }
    fn class(&self) -> RuleClass {
        RuleClass::Logic
    }
    fn matches(&self, ctx: &RuleCtx) -> Vec<RuleMatch> {
        let nl = ctx.nl;
        // This rule re-matches in full on every index repair (it is
        // `Global`), so the scan must not allocate per component: the
        // signature (cell name + ordered input nets) is pre-hashed to a
        // u64 (FNV-1a — SipHash costs ~5x here) and only hash-bucket
        // collisions compare the real thing.
        let signature_hash = |id: ComponentId| -> Option<u64> {
            let comp = nl.component(id).ok()?;
            let ComponentKind::Tech(cell) = &comp.kind else {
                return None;
            };
            if !matches!(
                cell.function,
                CellFunction::Gate(..) | CellFunction::Table(_)
            ) {
                return None;
            }
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            let mut eat = |v: u64| {
                h ^= v;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            };
            for &b in cell.name.as_bytes() {
                eat(u64::from(b));
            }
            for p in comp.pins.iter().filter(|p| p.dir == PinDir::In) {
                eat(p.net?.index() as u64 + 1);
            }
            Some(h)
        };
        let same_signature = |a: ComponentId, b: ComponentId| -> bool {
            let (Ok(ca), Ok(cb)) = (nl.component(a), nl.component(b)) else {
                return false;
            };
            let (ComponentKind::Tech(ta), ComponentKind::Tech(tb)) = (&ca.kind, &cb.kind) else {
                return false;
            };
            ta.name == tb.name
                && ca
                    .pins
                    .iter()
                    .filter(|p| p.dir == PinDir::In)
                    .map(|p| p.net)
                    .eq(cb
                        .pins
                        .iter()
                        .filter(|p| p.dir == PinDir::In)
                        .map(|p| p.net))
        };
        // Bucket by hash; each bucket holds the first-seen component of
        // every distinct signature landing there (collisions are rare).
        let mut by_sig: std::collections::HashMap<u64, Vec<ComponentId>> =
            std::collections::HashMap::new();
        let mut out = Vec::new();
        for id in nl.component_ids() {
            let Some(h) = signature_hash(id) else {
                continue;
            };
            let bucket = by_sig.entry(h).or_default();
            match bucket.iter().find(|&&keep| same_signature(keep, id)) {
                None => bucket.push(id),
                Some(&keep) => {
                    // Do not merge when the duplicate's output is a port
                    // net (the port binding cannot be moved).
                    if let Some(y) = single_output_net(nl, id) {
                        if !nl.net_is_port_bound(y) {
                            out.push(
                                RuleMatch::at(keep)
                                    .with_aux(vec![id])
                                    .with_note("identical gates merged"),
                            );
                        }
                    }
                }
            }
        }
        out
    }
    // `Global` for support (a match pairs the lowest-id signature
    // holder with a later duplicate — no local bound), but the match
    // scan never reads timing.
    fn uses_sta(&self) -> bool {
        false
    }
    fn apply(&self, tx: &mut Tx, m: &RuleMatch) -> Result<(), NetlistError> {
        let nl = tx.netlist();
        let keep_y = nl
            .pin_net(m.site, "Y")
            .ok_or(NetlistError::NoSuchComponent(m.site))?;
        let dup = m.aux[0];
        let dup_y = nl
            .pin_net(dup, "Y")
            .ok_or(NetlistError::NoSuchComponent(dup))?;
        tx.remove_component(dup)?;
        tx.move_loads(dup_y, keep_y)?;
        Ok(())
    }
}

/// Logic/area critic: merge a mux cell that exclusively feeds a plain DFF's
/// D input into the library's merged mux-FF macro — the optimization of
/// Fig. 18 ("each multiplexor and flip-flop set can be combined into a
/// single technology-specific element, providing a decrease in area").
pub struct MuxDffMerge {
    lib: TechLibrary,
}

impl MuxDffMerge {
    /// Creates the rule bound to a library (it needs the MXFF cells).
    pub fn new(lib: TechLibrary) -> Self {
        Self { lib }
    }
}

impl Rule for MuxDffMerge {
    fn name(&self) -> &'static str {
        "mux-dff-merge"
    }
    fn class(&self) -> RuleClass {
        RuleClass::Logic
    }
    fn matches(&self, ctx: &RuleCtx) -> Vec<RuleMatch> {
        milo_rules::scan_all_components(self, ctx)
    }
    // Support: the anchor mux's kind, its output net, and the kind and
    // entry pin of the single load — 1-hop.
    fn locality(&self) -> Locality {
        Locality::Local
    }
    fn matches_at(&self, ctx: &RuleCtx, id: ComponentId) -> Vec<RuleMatch> {
        let nl = ctx.nl;
        let Some(cell) = tech_cell_ref(nl, id) else {
            return Vec::new();
        };
        let CellFunction::Mux { selects } = cell.function else {
            return Vec::new();
        };
        if self
            .lib
            .cell_at_level(&CellFunction::MuxDff { selects }, PowerLevel::Standard)
            .is_none()
        {
            return Vec::new();
        }
        let Some(y) = single_output_net(nl, id) else {
            return Vec::new();
        };
        if nl.net_is_port_bound(y) || nl.load_count(y) != 1 {
            return Vec::new();
        }
        let Some(load) = nl.first_load(y) else {
            return Vec::new();
        };
        let Some(ff) = tech_cell_ref(nl, load.component) else {
            return Vec::new();
        };
        if !matches!(
            ff.function,
            CellFunction::Dff {
                set: false,
                reset: false,
                enable: false
            }
        ) {
            return Vec::new();
        }
        let Ok(ff_comp) = nl.component(load.component) else {
            return Vec::new();
        };
        if ff_comp.pins[load.pin as usize].name != "D" {
            return Vec::new();
        }
        vec![RuleMatch::at(id)
            .with_aux(vec![load.component])
            .with_choice(selects as usize)
            .with_note(format!("mux{}+DFF -> MXFF", 1 << selects))]
    }
    fn apply(&self, tx: &mut Tx, m: &RuleMatch) -> Result<(), NetlistError> {
        let selects = m.choice as u8;
        let merged = self
            .lib
            .cell_at_level(&CellFunction::MuxDff { selects }, PowerLevel::Standard)
            .ok_or(NetlistError::NoSuchComponent(m.site))?
            .clone();
        let nl = tx.netlist();
        let data = 1usize << selects;
        let d_nets: Vec<NetId> = (0..data)
            .map(|i| nl.pin_net(m.site, &format!("D{i}")).expect("matched mux"))
            .collect();
        let s_nets: Vec<NetId> = (0..selects)
            .map(|i| nl.pin_net(m.site, &format!("S{i}")).expect("matched mux"))
            .collect();
        let ff = m.aux[0];
        let clk = nl
            .pin_net(ff, "CLK")
            .ok_or(NetlistError::NoSuchComponent(ff))?;
        let q = nl
            .pin_net(ff, "Q")
            .ok_or(NetlistError::NoSuchComponent(ff))?;
        tx.remove_component(m.site)?;
        tx.remove_component(ff)?;
        let c = tx.add_component(
            format!("mxff{}", m.site.index()),
            ComponentKind::Tech(merged),
        );
        for (i, n) in d_nets.iter().enumerate() {
            tx.connect_named(c, &format!("D{i}"), *n)?;
        }
        for (i, n) in s_nets.iter().enumerate() {
            tx.connect_named(c, &format!("S{i}"), *n)?;
        }
        tx.connect_named(c, "CLK", clk)?;
        tx.connect_named(c, "Q", q)?;
        Ok(())
    }
}

/// Second-level Fig. 18 merge: a 2:1 mux feeding a data input of an MXFF2
/// becomes an MXFF4 ("making use of high-level macros that have 4-1
/// multiplexors combined with a flip-flop").
pub struct MuxIntoMuxDff {
    lib: TechLibrary,
}

impl MuxIntoMuxDff {
    /// Creates the rule bound to a library.
    pub fn new(lib: TechLibrary) -> Self {
        Self { lib }
    }
}

impl Rule for MuxIntoMuxDff {
    fn name(&self) -> &'static str {
        "mux-into-muxdff"
    }
    fn class(&self) -> RuleClass {
        RuleClass::Logic
    }
    fn matches(&self, ctx: &RuleCtx) -> Vec<RuleMatch> {
        milo_rules::scan_all_components(self, ctx)
    }
    // Support: the anchor mux's kind, its output net, and the kind and
    // entry pin of the single load — 1-hop.
    fn locality(&self) -> Locality {
        Locality::Local
    }
    fn matches_at(&self, ctx: &RuleCtx, id: ComponentId) -> Vec<RuleMatch> {
        let nl = ctx.nl;
        let Some(cell) = tech_cell_ref(nl, id) else {
            return Vec::new();
        };
        if !matches!(cell.function, CellFunction::Mux { selects: 1 }) {
            return Vec::new();
        }
        if self
            .lib
            .cell_at_level(&CellFunction::MuxDff { selects: 2 }, PowerLevel::Standard)
            .is_none()
        {
            return Vec::new();
        }
        let Some(y) = single_output_net(nl, id) else {
            return Vec::new();
        };
        if nl.net_is_port_bound(y) || nl.load_count(y) != 1 {
            return Vec::new();
        }
        let Some(load) = nl.first_load(y) else {
            return Vec::new();
        };
        let Some(mxff) = tech_cell_ref(nl, load.component) else {
            return Vec::new();
        };
        if !matches!(mxff.function, CellFunction::MuxDff { selects: 1 }) {
            return Vec::new();
        }
        let Ok(mx_comp) = nl.component(load.component) else {
            return Vec::new();
        };
        let word = match mx_comp.pins[load.pin as usize].name.as_str() {
            "D0" => 0usize,
            "D1" => 1,
            _ => return Vec::new(),
        };
        vec![RuleMatch::at(id)
            .with_aux(vec![load.component])
            .with_choice(word)
            .with_note("2:1 mux + MXFF2 -> MXFF4")]
    }
    fn apply(&self, tx: &mut Tx, m: &RuleMatch) -> Result<(), NetlistError> {
        let merged = self
            .lib
            .cell_at_level(&CellFunction::MuxDff { selects: 2 }, PowerLevel::Standard)
            .ok_or(NetlistError::NoSuchComponent(m.site))?
            .clone();
        let nl = tx.netlist();
        let word = m.choice; // which MXFF2 data pin the mux feeds
        let a = nl
            .pin_net(m.site, "D0")
            .ok_or(NetlistError::NoSuchComponent(m.site))?;
        let b = nl
            .pin_net(m.site, "D1")
            .ok_or(NetlistError::NoSuchComponent(m.site))?;
        let t = nl
            .pin_net(m.site, "S0")
            .ok_or(NetlistError::NoSuchComponent(m.site))?;
        let mxff = m.aux[0];
        let other = nl
            .pin_net(mxff, &format!("D{}", 1 - word))
            .ok_or(NetlistError::NoSuchComponent(mxff))?;
        let s = nl
            .pin_net(mxff, "S0")
            .ok_or(NetlistError::NoSuchComponent(mxff))?;
        let clk = nl
            .pin_net(mxff, "CLK")
            .ok_or(NetlistError::NoSuchComponent(mxff))?;
        let q = nl
            .pin_net(mxff, "Q")
            .ok_or(NetlistError::NoSuchComponent(mxff))?;
        tx.remove_component(m.site)?;
        tx.remove_component(mxff)?;
        let c = tx.add_component(
            format!("mxff4_{}", m.site.index()),
            ComponentKind::Tech(merged),
        );
        // Result: S ? D1' : D0' where D{word}' = (T ? b : a), D{other}' = other.
        // Encode as 4:1 with S0=T, S1=S.
        let words: [NetId; 4] = if word == 0 {
            [a, b, other, other] // S=0 -> T?b:a ; S=1 -> other
        } else {
            [other, other, a, b]
        };
        for (i, n) in words.iter().enumerate() {
            tx.connect_named(c, &format!("D{i}"), *n)?;
        }
        tx.connect_named(c, "S0", t)?;
        tx.connect_named(c, "S1", s)?;
        tx.connect_named(c, "CLK", clk)?;
        tx.connect_named(c, "Q", q)?;
        Ok(())
    }
}

/// Timing critic: replace a standard/low-power macro with its high-power,
/// faster variant when the cell is on the critical path — strategy 2,
/// "only applicable to ECL logic" (Fig. 9b, Fig. 17b analog).
pub struct PowerUpCritical {
    lib: TechLibrary,
}

impl PowerUpCritical {
    /// Creates the rule bound to a library.
    pub fn new(lib: TechLibrary) -> Self {
        Self { lib }
    }
}

impl Rule for PowerUpCritical {
    fn name(&self) -> &'static str {
        "power-up-critical-macro"
    }
    fn class(&self) -> RuleClass {
        RuleClass::Timing
    }
    fn matches(&self, ctx: &RuleCtx) -> Vec<RuleMatch> {
        let Some(sta) = ctx.sta else {
            return Vec::new();
        };
        let nl = ctx.nl;
        let mut out = Vec::new();
        for id in nl.component_ids() {
            let Some(cell) = tech_cell_of(nl, id) else {
                continue;
            };
            if self.lib.faster_variant(&cell).is_none() {
                continue;
            }
            if on_critical_path(nl, sta, id) {
                out.push(RuleMatch::at(id).with_note(format!("{} -> high power", cell.name)));
            }
        }
        out
    }
    fn apply(&self, tx: &mut Tx, m: &RuleMatch) -> Result<(), NetlistError> {
        let cell =
            tech_cell_of(tx.netlist(), m.site).ok_or(NetlistError::NoSuchComponent(m.site))?;
        let faster = self
            .lib
            .faster_variant(&cell)
            .ok_or(NetlistError::NoSuchComponent(m.site))?
            .clone();
        tx.change_kind(m.site, ComponentKind::Tech(faster))
    }
}

/// Power critic: replace macros off the critical path with lower-power,
/// slower variants (Fig. 17d analog).
pub struct PowerDownSlack {
    lib: TechLibrary,
}

impl PowerDownSlack {
    /// Creates the rule bound to a library.
    pub fn new(lib: TechLibrary) -> Self {
        Self { lib }
    }
}

impl Rule for PowerDownSlack {
    fn name(&self) -> &'static str {
        "power-down-slack-macro"
    }
    fn class(&self) -> RuleClass {
        RuleClass::Power
    }
    fn matches(&self, ctx: &RuleCtx) -> Vec<RuleMatch> {
        let Some(sta) = ctx.sta else {
            return Vec::new();
        };
        let nl = ctx.nl;
        let mut out = Vec::new();
        for id in nl.component_ids() {
            let Some(cell) = tech_cell_of(nl, id) else {
                continue;
            };
            if self.lib.slower_variant(&cell).is_none() {
                continue;
            }
            if !on_critical_path(nl, sta, id) {
                out.push(RuleMatch::at(id).with_note(format!("{} -> low power", cell.name)));
            }
        }
        out
    }
    fn apply(&self, tx: &mut Tx, m: &RuleMatch) -> Result<(), NetlistError> {
        let cell =
            tech_cell_of(tx.netlist(), m.site).ok_or(NetlistError::NoSuchComponent(m.site))?;
        let slower = self
            .lib
            .slower_variant(&cell)
            .ok_or(NetlistError::NoSuchComponent(m.site))?
            .clone();
        tx.change_kind(m.site, ComponentKind::Tech(slower))
    }
}

/// Electric critic: insert a buffer on a net whose fanout exceeds the
/// driving cell's limit (Fig. 17e analog; detection shared with
/// [`milo_netlist::validate`]).
pub struct FanoutRepair {
    lib: TechLibrary,
}

impl FanoutRepair {
    /// Creates the rule bound to a library.
    pub fn new(lib: TechLibrary) -> Self {
        Self { lib }
    }
}

impl Rule for FanoutRepair {
    fn name(&self) -> &'static str {
        "fanout-repair"
    }
    fn class(&self) -> RuleClass {
        RuleClass::Electric
    }
    fn matches(&self, ctx: &RuleCtx) -> Vec<RuleMatch> {
        let nl = ctx.nl;
        let mut out = Vec::new();
        for net in nl.net_ids() {
            let Some(drv) = nl.driver(net) else { continue };
            if let Some(m) = fanout_violation(nl, drv, net) {
                out.push(m);
            }
        }
        out
    }
    // Support: the anchor driver's kind and the driven net's load
    // count — 1-hop (anchored at the driver, so a load change touches
    // the net and re-matches the anchor).
    fn locality(&self) -> Locality {
        Locality::Local
    }
    fn matches_at(&self, ctx: &RuleCtx, id: ComponentId) -> Vec<RuleMatch> {
        let nl = ctx.nl;
        let Ok(comp) = nl.component(id) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (i, pin) in comp.pins.iter().enumerate() {
            if pin.dir != PinDir::Out {
                continue;
            }
            let Some(net) = pin.net else { continue };
            let pr = milo_netlist::PinRef::new(id, i as u16);
            // Multi-driven nets anchor at whichever pin `driver`
            // reports, exactly like the full scan.
            if nl.driver(net) != Some(pr) {
                continue;
            }
            if let Some(m) = fanout_violation(nl, pr, net) {
                out.push(m);
            }
        }
        out
    }
    fn apply(&self, tx: &mut Tx, m: &RuleMatch) -> Result<(), NetlistError> {
        let buf = self
            .lib
            .buffer()
            .ok_or(NetlistError::NoSuchComponent(m.site))?
            .clone();
        let nl = tx.netlist();
        let drv = m.pins[0];
        let net = nl
            .component(drv.component)?
            .pins
            .get(drv.pin as usize)
            .and_then(|p| p.net)
            .ok_or(NetlistError::NoSuchPin(drv))?;
        let cell = tech_cell_of(nl, drv.component).ok_or(NetlistError::NoSuchComponent(m.site))?;
        let limit = cell.max_fanout as usize;
        let loads = nl.loads(net);
        let moved: Vec<_> = loads.into_iter().skip(limit.saturating_sub(1)).collect();
        let b = tx.add_component(format!("fo{}", m.site.index()), ComponentKind::Tech(buf));
        tx.connect_named(b, "A0", net)?;
        let out = tx.add_net(format!("fo{}_y", m.site.index()));
        tx.connect_named(b, "Y", out)?;
        for pin in moved {
            tx.disconnect(pin)?;
            tx.connect(pin, out)?;
        }
        Ok(())
    }
}

/// One `FanoutRepair` match when `drv`'s `net` exceeds the cell's
/// fanout limit (shared by the full scan and the per-anchor re-match).
fn fanout_violation(nl: &Netlist, drv: milo_netlist::PinRef, net: NetId) -> Option<RuleMatch> {
    let cell = tech_cell_ref(nl, drv.component)?;
    if nl.fanout(net) > cell.max_fanout as usize {
        Some(
            RuleMatch::at(drv.component)
                .with_pins(vec![drv])
                .with_note(format!("fanout {} > {}", nl.fanout(net), cell.max_fanout)),
        )
    } else {
        None
    }
}

/// Cleanup: dead combinational logic at the technology level.
pub struct DeadCellRemoval;

impl Rule for DeadCellRemoval {
    fn name(&self) -> &'static str {
        "dead-cell-removal"
    }
    fn class(&self) -> RuleClass {
        RuleClass::Cleanup
    }
    fn matches(&self, ctx: &RuleCtx) -> Vec<RuleMatch> {
        milo_rules::scan_all_components(self, ctx)
    }
    // Support: the anchor's kind and its output nets' fanout and
    // port-binding — 1-hop.
    fn locality(&self) -> Locality {
        Locality::Local
    }
    fn matches_at(&self, ctx: &RuleCtx, id: ComponentId) -> Vec<RuleMatch> {
        let nl = ctx.nl;
        let Ok(comp) = nl.component(id) else {
            return Vec::new();
        };
        if comp.kind.is_sequential() {
            return Vec::new();
        }
        let mut has_out = false;
        let mut dead = true;
        for p in &comp.pins {
            if p.dir == PinDir::Out {
                has_out = true;
                if let Some(net) = p.net {
                    if nl.load_count(net) > 0 || nl.net_is_port_bound(net) {
                        dead = false;
                        break;
                    }
                }
            }
        }
        if has_out && dead {
            vec![RuleMatch::at(id).with_note("dead cell")]
        } else {
            Vec::new()
        }
    }
    fn apply(&self, tx: &mut Tx, m: &RuleMatch) -> Result<(), NetlistError> {
        tx.remove_component(m.site)
    }
}

/// The logic-critic rule set (always-beneficial cleanups).
pub fn logic_rules(lib: &TechLibrary) -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(InvPairElimination),
        Box::new(BufferElimination),
        Box::new(DuplicateGateMerge),
        Box::new(MuxDffMerge::new(lib.clone())),
        Box::new(MuxIntoMuxDff::new(lib.clone())),
        Box::new(DeadCellRemoval),
    ]
}

/// The full five-critic rule set.
pub fn all_rules(lib: &TechLibrary) -> Vec<Box<dyn Rule>> {
    let mut rules = logic_rules(lib);
    rules.push(Box::new(PowerUpCritical::new(lib.clone())));
    rules.push(Box::new(PowerDownSlack::new(lib.clone())));
    rules.push(Box::new(FanoutRepair::new(lib.clone())));
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_compilers::verify::check_comb_equivalence;
    use milo_netlist::GenericMacro;
    use milo_rules::{Engine, Selection};
    use milo_techmap::{cmos_library, ecl_library, map_netlist};

    fn tech(nl: &Netlist, lib: &TechLibrary) -> Netlist {
        map_netlist(nl, lib).unwrap()
    }

    #[test]
    fn inv_pair_removed_and_equivalent() {
        let mut nl = Netlist::new("t");
        let a = nl.add_net("a");
        let m1 = nl.add_net("m1");
        let m2 = nl.add_net("m2");
        let y = nl.add_net("y");
        for (name, i, o) in [("i1", a, m1), ("i2", m1, m2), ("i3", m2, y)] {
            let g = nl.add_component(
                name,
                ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)),
            );
            nl.connect_named(g, "A0", i).unwrap();
            nl.connect_named(g, "Y", o).unwrap();
        }
        nl.add_port("a", PinDir::In, a);
        nl.add_port("y", PinDir::Out, y);
        let lib = cmos_library();
        let mut mapped = tech(&nl, &lib);
        let golden = mapped.clone();
        let mut engine = Engine::new(logic_rules(&lib));
        let fired = engine.run(&mut mapped, Selection::OpsOrder, None, 50);
        assert!(fired >= 1);
        assert_eq!(mapped.component_count(), 1);
        check_comb_equivalence(&golden, &mapped, 0).unwrap();
    }

    #[test]
    fn duplicate_gates_merge() {
        let mut nl = Netlist::new("t");
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        let y1 = nl.add_net("y1");
        let y2 = nl.add_net("y2");
        let o1 = nl.add_net("o1");
        for (name, out) in [("g1", y1), ("g2", y2)] {
            let g = nl.add_component(
                name,
                ComponentKind::Generic(GenericMacro::Gate(GateFn::And, 2)),
            );
            nl.connect_named(g, "A0", a).unwrap();
            nl.connect_named(g, "A1", b).unwrap();
            nl.connect_named(g, "Y", out).unwrap();
        }
        // y2 feeds an inverter so it is not port-bound.
        let inv = nl.add_component(
            "i",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)),
        );
        nl.connect_named(inv, "A0", y2).unwrap();
        nl.connect_named(inv, "Y", o1).unwrap();
        nl.add_port("a", PinDir::In, a);
        nl.add_port("b", PinDir::In, b);
        nl.add_port("y1", PinDir::Out, y1);
        nl.add_port("o1", PinDir::Out, o1);
        let lib = cmos_library();
        let mut mapped = tech(&nl, &lib);
        let golden = mapped.clone();
        let mut engine = Engine::new(logic_rules(&lib));
        engine.run(&mut mapped, Selection::OpsOrder, None, 50);
        assert_eq!(mapped.component_count(), 2, "{mapped:?}");
        check_comb_equivalence(&golden, &mapped, 0).unwrap();
    }

    #[test]
    fn mux_dff_merges_fig18() {
        let lib = ecl_library();
        let mut nl = Netlist::new("t");
        let mux_cell = lib.get("MUX2TO1").unwrap().clone();
        let dff_cell = lib.get("DFF").unwrap().clone();
        let m = nl.add_component("m", ComponentKind::Tech(mux_cell));
        let f = nl.add_component("f", ComponentKind::Tech(dff_cell));
        let d0 = nl.add_net("d0");
        let d1 = nl.add_net("d1");
        let s = nl.add_net("s");
        let md = nl.add_net("md");
        let clk = nl.add_net("clk");
        let q = nl.add_net("q");
        nl.connect_named(m, "D0", d0).unwrap();
        nl.connect_named(m, "D1", d1).unwrap();
        nl.connect_named(m, "S0", s).unwrap();
        nl.connect_named(m, "Y", md).unwrap();
        nl.connect_named(f, "D", md).unwrap();
        nl.connect_named(f, "CLK", clk).unwrap();
        nl.connect_named(f, "Q", q).unwrap();
        for (n, net) in [("d0", d0), ("d1", d1), ("s", s), ("clk", clk)] {
            nl.add_port(n, PinDir::In, net);
        }
        nl.add_port("q", PinDir::Out, q);

        let golden = nl.clone();
        let before = milo_timing::statistics(&nl).unwrap();
        let mut engine = Engine::new(logic_rules(&lib));
        let fired = engine.run(&mut nl, Selection::OpsOrder, None, 10);
        assert!(fired >= 1);
        assert_eq!(nl.component_count(), 1);
        let after = milo_timing::statistics(&nl).unwrap();
        assert!(after.area < before.area, "Fig. 18: merged macro is smaller");
        milo_compilers::verify::check_seq_equivalence(&golden, &nl, 50, 5).unwrap();
    }

    #[test]
    fn power_up_only_on_critical_path() {
        let lib = ecl_library();
        // Chain of 3 NOR2 (critical), plus one INV on a short path.
        let mut nl = Netlist::new("t");
        let a = nl.add_net("a");
        nl.add_port("a", PinDir::In, a);
        let mut prev = a;
        for i in 0..3 {
            let g = nl.add_component(
                format!("n{i}"),
                ComponentKind::Tech(lib.get("NOR2").unwrap().clone()),
            );
            nl.connect_named(g, "A0", prev).unwrap();
            nl.connect_named(g, "A1", a).unwrap();
            let y = nl.add_net(format!("y{i}"));
            nl.connect_named(g, "Y", y).unwrap();
            prev = y;
        }
        nl.add_port("y", PinDir::Out, prev);
        let short = nl.add_component("s", ComponentKind::Tech(lib.get("INV").unwrap().clone()));
        nl.connect_named(short, "A0", a).unwrap();
        let z = nl.add_net("z");
        nl.connect_named(short, "Y", z).unwrap();
        nl.add_port("z", PinDir::Out, z);

        let mut engine = Engine::new(vec![
            Box::new(PowerUpCritical::new(lib.clone())) as Box<dyn Rule>
        ]);
        let before = milo_timing::statistics(&nl).unwrap();
        let fired = engine.run(
            &mut nl,
            Selection::MaxGain {
                delay: 1.0,
                area: 0.0,
                power: 0.01,
            },
            None,
            10,
        );
        assert!(fired >= 1);
        let after = milo_timing::statistics(&nl).unwrap();
        assert!(after.delay < before.delay);
        assert!(after.power > before.power, "speed bought with power");
        // The short-path inverter must still be standard power.
        let ComponentKind::Tech(c) = &nl.component(short).unwrap().kind else {
            panic!()
        };
        assert_eq!(c.level, PowerLevel::Standard);
    }

    #[test]
    fn fanout_repair_via_engine() {
        let lib = cmos_library();
        let mut nl = Netlist::new("t");
        let a = nl.add_net("a");
        nl.add_port("a", PinDir::In, a);
        let drv = nl.add_component("d", ComponentKind::Tech(lib.get("INV").unwrap().clone()));
        nl.connect_named(drv, "A0", a).unwrap();
        let mid = nl.add_net("mid");
        nl.connect_named(drv, "Y", mid).unwrap();
        for i in 0..14 {
            let g = nl.add_component(
                format!("l{i}"),
                ComponentKind::Tech(lib.get("BUF").unwrap().clone()),
            );
            nl.connect_named(g, "A0", mid).unwrap();
            let y = nl.add_net(format!("o{i}"));
            nl.connect_named(g, "Y", y).unwrap();
            nl.add_port(format!("o{i}"), PinDir::Out, y);
        }
        let golden = nl.clone();
        let mut engine = Engine::new(vec![
            Box::new(FanoutRepair::new(lib.clone())) as Box<dyn Rule>
        ]);
        let fired = engine.run(&mut nl, Selection::OpsOrder, None, 10);
        assert!(fired >= 1);
        let violations = milo_netlist::validate(&nl, true);
        assert!(!violations
            .iter()
            .any(|v| matches!(v, milo_netlist::Violation::FanoutExceeded { .. })));
        check_comb_equivalence(&golden, &nl, 64).unwrap();
    }
}
