//! The eight Fig.-19 test cases.
//!
//! The paper's own circuits are not published, so these are synthetic
//! designs with the same *complexities* (≈ 48, 52, 13, 47, 18, 288, 442,
//! 149 two-input-equivalent gates), the same entry styles ("a number of
//! small examples were run at both a gate level and a microarchitecture
//! level"), and the same improvement head-room: gate-level circuits are
//! entered in naive two-level / schematic form, microarchitecture-level
//! circuits use 4–15 logic-compiler components and contain the Fig. 14
//! adder+register pattern.

use crate::sop::{gate, gate_tree, input_bus, insert_inv_pair, sop_design};
use milo_netlist::{
    ArithOps, CarryMode, CmpOp, ComponentKind, ControlSet, GateFn, GenericMacro, MicroComponent,
    Netlist, PinDir, RegFunctions, Trigger,
};

/// A Fig.-19 test case.
pub struct TestCase {
    /// Row number in the paper's table (1–8).
    pub index: usize,
    /// The entry netlist (gate or microarchitecture level).
    pub netlist: Netlist,
    /// Whether the design was entered at the microarchitecture level.
    pub micro_level: bool,
    /// Timing-constraint factor applied to the baseline delay (a tight
    /// factor forces the timing strategies to fire).
    pub delay_factor: f64,
}

/// All eight test cases, in table order.
pub fn all() -> Vec<TestCase> {
    vec![
        TestCase {
            index: 1,
            netlist: circuit1(),
            micro_level: false,
            delay_factor: 0.75,
        },
        TestCase {
            index: 2,
            netlist: circuit2(),
            micro_level: false,
            delay_factor: 0.80,
        },
        TestCase {
            index: 3,
            netlist: circuit3(),
            micro_level: false,
            delay_factor: 0.70,
        },
        TestCase {
            index: 4,
            netlist: circuit4(),
            micro_level: false,
            delay_factor: 0.70,
        },
        TestCase {
            index: 5,
            netlist: circuit5(),
            micro_level: false,
            delay_factor: 0.80,
        },
        TestCase {
            index: 6,
            netlist: circuit6(),
            micro_level: true,
            delay_factor: 0.95,
        },
        TestCase {
            index: 7,
            netlist: circuit7(),
            micro_level: true,
            delay_factor: 0.90,
        },
        TestCase {
            index: 8,
            netlist: circuit8(),
            micro_level: true,
            delay_factor: 0.95,
        },
    ]
}

/// Circuit 1 (≈ 48 gates): three control outputs over five inputs,
/// entered as raw two-level minterm logic.
pub fn circuit1() -> Netlist {
    // Functions chosen to minimize well (shared cubes, redundant
    // minterms).
    let f1: Vec<u32> = (0..32)
        .filter(|r| (r & 0b11) == 0b11 || (r >> 2 & 0b111) == 0b101)
        .collect();
    let f2: Vec<u32> = (0..32)
        .filter(|r| (r & 0b101) == 0b101 || (r >> 1 & 0b11) == 0b11)
        .collect();
    let f3: Vec<u32> = (0..32u32).filter(|r| r.count_ones() >= 4).collect();
    sop_design("fig19_1", 5, &[("f1", f1), ("f2", f2), ("f3", f3)])
}

/// Circuit 2 (≈ 52 gates): an 8:1 multiplexor entered as gates, plus a
/// parity tree, with schematic-entry inverter noise.
pub fn circuit2() -> Netlist {
    let mut nl = Netlist::new("fig19_2");
    let data = input_bus(&mut nl, "d", 8);
    let sel = input_bus(&mut nl, "s", 3);
    let nsel: Vec<_> = sel
        .iter()
        .enumerate()
        .map(|(i, &s)| gate(&mut nl, GateFn::Inv, &[s], &format!("ns{i}")))
        .collect();
    let mut terms = Vec::new();
    for (i, &d) in data.iter().enumerate() {
        let lits: Vec<_> = (0..3)
            .map(|b| if i >> b & 1 == 1 { sel[b] } else { nsel[b] })
            .chain([d])
            .collect();
        terms.push(gate(&mut nl, GateFn::And, &lits, &format!("t{i}")));
    }
    let y = gate_tree(&mut nl, GateFn::Or, &terms, "or");
    nl.add_port("y", PinDir::Out, y);
    // Parity of the data byte.
    let parity = gate_tree(&mut nl, GateFn::Xor, &data, "par");
    nl.add_port("p", PinDir::Out, parity);
    // Schematic noise: inverter pairs on two internal nets.
    insert_inv_pair(&mut nl, terms[0], "n0");
    insert_inv_pair(&mut nl, parity, "n1");
    nl
}

/// Circuit 3 (≈ 13 gates): the classic redundant SOP
/// `f = ab + a!b + bc`, `g = a ⊕ c`, entered literally.
pub fn circuit3() -> Netlist {
    let mut nl = Netlist::new("fig19_3");
    let v = input_bus(&mut nl, "x", 3);
    let (a, b, c) = (v[0], v[1], v[2]);
    let nb = gate(&mut nl, GateFn::Inv, &[b], "nb");
    let t1 = gate(&mut nl, GateFn::And, &[a, b], "t1");
    let t2 = gate(&mut nl, GateFn::And, &[a, nb], "t2");
    let t3 = gate(&mut nl, GateFn::And, &[b, c], "t3");
    let f = gate(&mut nl, GateFn::Or, &[t1, t2, t3], "f");
    nl.add_port("f", PinDir::Out, f);
    let g = gate(&mut nl, GateFn::Xor, &[a, c], "g");
    let g2 = insert_inv_pair(&mut nl, g, "n");
    nl.add_port("g", PinDir::Out, g2);
    nl
}

/// Circuit 4 (≈ 47 gates): a 4-bit magnitude comparator entered as naive
/// gate logic (per-bit XNOR equality, cascaded less-than chain) with
/// duplicated subterms a schematic-entry designer would produce.
pub fn circuit4() -> Netlist {
    let mut nl = Netlist::new("fig19_4");
    let a = input_bus(&mut nl, "a", 4);
    let b = input_bus(&mut nl, "b", 4);
    let na: Vec<_> = a
        .iter()
        .enumerate()
        .map(|(i, &x)| gate(&mut nl, GateFn::Inv, &[x], &format!("na{i}")))
        .collect();
    let nb: Vec<_> = b
        .iter()
        .enumerate()
        .map(|(i, &x)| gate(&mut nl, GateFn::Inv, &[x], &format!("nb{i}")))
        .collect();
    // Equality per bit — entered twice (once for EQ, once re-derived for
    // the LT chain: the duplication MILO's duplicate-gate merge removes).
    let eq: Vec<_> = (0..4)
        .map(|i| gate(&mut nl, GateFn::Xnor, &[a[i], b[i]], &format!("eq{i}")))
        .collect();
    let eq_dup: Vec<_> = (0..4)
        .map(|i| gate(&mut nl, GateFn::Xnor, &[a[i], b[i]], &format!("eqd{i}")))
        .collect();
    let eq_all = gate(
        &mut nl,
        GateFn::And,
        &[eq[0], eq[1], eq[2], eq[3]],
        "eq_all",
    );
    nl.add_port("eq", PinDir::Out, eq_all);
    // lt = !a3 b3 | eq3 (!a2 b2) | eq3 eq2 (!a1 b1) | eq3 eq2 eq1 (!a0 b0)
    let lt3 = gate(&mut nl, GateFn::And, &[na[3], b[3]], "lt3");
    let lt2i = gate(&mut nl, GateFn::And, &[na[2], b[2]], "lt2i");
    let lt2 = gate(&mut nl, GateFn::And, &[eq_dup[3], lt2i], "lt2");
    let lt1i = gate(&mut nl, GateFn::And, &[na[1], b[1]], "lt1i");
    let lt1 = gate(&mut nl, GateFn::And, &[eq_dup[3], eq_dup[2], lt1i], "lt1");
    let lt0i = gate(&mut nl, GateFn::And, &[na[0], b[0]], "lt0i");
    let lt0 = gate(
        &mut nl,
        GateFn::And,
        &[eq_dup[3], eq_dup[2], eq_dup[1], lt0i],
        "lt0",
    );
    let lt = gate(&mut nl, GateFn::Or, &[lt3, lt2, lt1, lt0], "lt");
    nl.add_port("lt", PinDir::Out, lt);
    // gt similarly (duplicating the AND terms once more).
    let gt3 = gate(&mut nl, GateFn::And, &[a[3], nb[3]], "gt3");
    let gt2i = gate(&mut nl, GateFn::And, &[a[2], nb[2]], "gt2i");
    let gt2 = gate(&mut nl, GateFn::And, &[eq_dup[3], gt2i], "gt2");
    let gt1i = gate(&mut nl, GateFn::And, &[a[1], nb[1]], "gt1i");
    let gt1 = gate(&mut nl, GateFn::And, &[eq_dup[3], eq_dup[2], gt1i], "gt1");
    let gt0i = gate(&mut nl, GateFn::And, &[a[0], nb[0]], "gt0i");
    let gt0 = gate(
        &mut nl,
        GateFn::And,
        &[eq_dup[3], eq_dup[2], eq_dup[1], gt0i],
        "gt0",
    );
    let gt = gate(&mut nl, GateFn::Or, &[gt3, gt2, gt1, gt0], "gt");
    nl.add_port("gt", PinDir::Out, gt);
    nl
}

/// Circuit 5 (≈ 18 gates): address-decode logic — a 2-bit decoder with
/// OR-combined outputs (the LSS Fig. 7a pattern) and a small SOP.
pub fn circuit5() -> Netlist {
    let mut nl = Netlist::new("fig19_5");
    let addr = input_bus(&mut nl, "a", 2);
    let dec = nl.add_component(
        "dec",
        ComponentKind::Micro(MicroComponent::Decoder {
            bits: 2,
            enable: false,
        }),
    );
    nl.connect_named(dec, "A0", addr[0]).unwrap();
    nl.connect_named(dec, "A1", addr[1]).unwrap();
    let mut ys = Vec::new();
    for i in 0..4 {
        let y = nl.add_net(format!("dy{i}"));
        nl.connect_named(dec, &format!("Y{i}"), y).unwrap();
        ys.push(y);
    }
    // OR of the odd outputs = a0 (decoder-OR simplification target).
    let odd = gate(&mut nl, GateFn::Or, &[ys[1], ys[3]], "odd");
    nl.add_port("odd", PinDir::Out, odd);
    // Keep remaining outputs used.
    let other = gate(&mut nl, GateFn::Or, &[ys[0], ys[2]], "even");
    let extra = input_bus(&mut nl, "e", 3);
    let nb = gate(&mut nl, GateFn::Inv, &[extra[1]], "ne1");
    let t1 = gate(&mut nl, GateFn::And, &[extra[0], extra[1]], "t1");
    let t2 = gate(&mut nl, GateFn::And, &[extra[0], nb], "t2");
    let t3 = gate(&mut nl, GateFn::And, &[other, extra[2]], "t3");
    let f = gate(&mut nl, GateFn::Or, &[t1, t2, t3], "f");
    nl.add_port("f", PinDir::Out, f);
    nl
}

fn wire_all_ports(nl: &mut Netlist, id: milo_netlist::ComponentId, skip: &[&str]) {
    let pins: Vec<(String, PinDir)> = nl
        .component(id)
        .unwrap()
        .pins
        .iter()
        .filter(|p| p.net.is_none())
        .map(|p| (p.name.clone(), p.dir))
        .collect();
    let cname = nl.component(id).unwrap().name.clone();
    for (pin, dir) in pins {
        if skip.contains(&pin.as_str()) {
            continue;
        }
        let net = nl.add_net(format!("{cname}_{pin}"));
        nl.connect_named(id, &pin, net).unwrap();
        nl.add_port(format!("{cname}_{pin}"), dir, net);
    }
}

/// Circuit 6 (≈ 288 gates): an 8-bit microarchitecture datapath —
/// add/sub ALU, operand register, result register, operand-select mux,
/// bus comparator (6 compiler-generated components).
pub fn circuit6() -> Netlist {
    let mut nl = Netlist::new("fig19_6");
    let bits = 8u8;
    let au = nl.add_component(
        "alu",
        ComponentKind::Micro(MicroComponent::ArithmeticUnit {
            bits,
            ops: ArithOps::ADD_SUB,
            mode: CarryMode::Ripple,
        }),
    );
    let mux = nl.add_component(
        "opmux",
        ComponentKind::Micro(MicroComponent::Multiplexor {
            bits,
            inputs: 2,
            enable: false,
        }),
    );
    let rega = nl.add_component(
        "rega",
        ComponentKind::Micro(MicroComponent::Register {
            bits,
            trigger: Trigger::EdgeTriggered,
            funcs: RegFunctions::LOAD,
            ctrl: ControlSet::NONE,
        }),
    );
    let regr = nl.add_component(
        "regr",
        ComponentKind::Micro(MicroComponent::Register {
            bits,
            trigger: Trigger::EdgeTriggered,
            funcs: RegFunctions::LOAD,
            ctrl: ControlSet::NONE,
        }),
    );
    let cmp = nl.add_component(
        "cmp",
        ComponentKind::Micro(MicroComponent::Comparator {
            bits,
            function: CmpOp::Eq,
        }),
    );
    // rega.Q -> alu.A and cmp.A ; mux.Y -> alu.B ; alu.S -> regr.D ;
    // regr.Q -> cmp.B and output.
    for i in 0..bits {
        let qa = nl.add_net(format!("qa{i}"));
        nl.connect_named(rega, &format!("Q{i}"), qa).unwrap();
        nl.connect_named(au, &format!("A{i}"), qa).unwrap();
        nl.connect_named(cmp, &format!("A{i}"), qa).unwrap();
        let my = nl.add_net(format!("my{i}"));
        nl.connect_named(mux, &format!("Y{i}"), my).unwrap();
        nl.connect_named(au, &format!("B{i}"), my).unwrap();
        let s = nl.add_net(format!("alus{i}"));
        nl.connect_named(au, &format!("S{i}"), s).unwrap();
        nl.connect_named(regr, &format!("D{i}"), s).unwrap();
        let qr = nl.add_net(format!("qr{i}"));
        nl.connect_named(regr, &format!("Q{i}"), qr).unwrap();
        nl.connect_named(cmp, &format!("B{i}"), qr).unwrap();
        nl.add_port(format!("r{i}"), PinDir::Out, qr);
    }
    let eq = nl.add_net("eqf");
    nl.connect_named(cmp, "F", eq).unwrap();
    nl.add_port("zero", PinDir::Out, eq);
    wire_all_ports(&mut nl, au, &[]);
    wire_all_ports(&mut nl, mux, &[]);
    wire_all_ports(&mut nl, rega, &[]);
    wire_all_ports(&mut nl, regr, &[]);
    nl
}

/// Circuit 7 (≈ 442 gates): a 16-bit datapath with two registers, an
/// add/sub ALU, a 4:1 result mux, a logic unit and a comparator
/// (8 compiler-generated components; the largest design).
pub fn circuit7() -> Netlist {
    let mut nl = Netlist::new("fig19_7");
    let bits = 16u8;
    let au = nl.add_component(
        "alu",
        ComponentKind::Micro(MicroComponent::ArithmeticUnit {
            bits,
            ops: ArithOps::ADD_SUB,
            mode: CarryMode::Ripple,
        }),
    );
    let lu = nl.add_component(
        "lu",
        ComponentKind::Micro(MicroComponent::LogicUnit {
            function: GateFn::Xor,
            inputs: 2,
            bits,
        }),
    );
    let mux = nl.add_component(
        "resmux",
        ComponentKind::Micro(MicroComponent::Multiplexor {
            bits,
            inputs: 4,
            enable: false,
        }),
    );
    let rega = nl.add_component(
        "rega",
        ComponentKind::Micro(MicroComponent::Register {
            bits,
            trigger: Trigger::EdgeTriggered,
            funcs: RegFunctions::LOAD,
            ctrl: ControlSet::NONE,
        }),
    );
    let regb = nl.add_component(
        "regb",
        ComponentKind::Micro(MicroComponent::Register {
            bits,
            trigger: Trigger::EdgeTriggered,
            funcs: RegFunctions {
                load: true,
                shift_left: false,
                shift_right: true,
            },
            ctrl: ControlSet::NONE,
        }),
    );
    let cmp = nl.add_component(
        "cmp",
        ComponentKind::Micro(MicroComponent::Comparator {
            bits: 8,
            function: CmpOp::Lt,
        }),
    );
    for i in 0..bits {
        let qa = nl.add_net(format!("qa{i}"));
        nl.connect_named(rega, &format!("Q{i}"), qa).unwrap();
        nl.connect_named(au, &format!("A{i}"), qa).unwrap();
        nl.connect_named(lu, &format!("A0_{i}"), qa).unwrap();
        let qb = nl.add_net(format!("qb{i}"));
        nl.connect_named(regb, &format!("Q{i}"), qb).unwrap();
        nl.connect_named(au, &format!("B{i}"), qb).unwrap();
        nl.connect_named(lu, &format!("A1_{i}"), qb).unwrap();
        if i < 8 {
            nl.connect_named(cmp, &format!("A{i}"), qa).unwrap();
            nl.connect_named(cmp, &format!("B{i}"), qb).unwrap();
        }
        let s = nl.add_net(format!("s{i}"));
        nl.connect_named(au, &format!("S{i}"), s).unwrap();
        nl.connect_named(mux, &format!("D0_{i}"), s).unwrap();
        let l = nl.add_net(format!("l{i}"));
        nl.connect_named(lu, &format!("Y{i}"), l).unwrap();
        nl.connect_named(mux, &format!("D1_{i}"), l).unwrap();
        // D2: pass-through of A; D3: pass-through of B.
        nl.connect_named(mux, &format!("D2_{i}"), qa).unwrap();
        nl.connect_named(mux, &format!("D3_{i}"), qb).unwrap();
        let y = nl.add_net(format!("y{i}"));
        nl.connect_named(mux, &format!("Y{i}"), y).unwrap();
        nl.connect_named(rega, &format!("D{i}"), y).unwrap();
        nl.add_port(format!("out{i}"), PinDir::Out, y);
    }
    let f = nl.add_net("ltf");
    nl.connect_named(cmp, "F", f).unwrap();
    nl.add_port("lt", PinDir::Out, f);
    wire_all_ports(&mut nl, au, &[]);
    wire_all_ports(&mut nl, mux, &[]);
    wire_all_ports(&mut nl, rega, &[]);
    wire_all_ports(&mut nl, regb, &[]);
    nl
}

/// Circuit 8 (≈ 149 gates): a timer block — an 8-bit adder+register
/// increment loop (the Fig. 14 pattern, left for the microarchitecture
/// critic to find), a terminal-count comparator and an output decoder
/// (5 compiler-generated components).
pub fn circuit8() -> Netlist {
    let mut nl = Netlist::new("fig19_8");
    let bits = 8u8;
    let au = nl.add_component(
        "inc",
        ComponentKind::Micro(MicroComponent::ArithmeticUnit {
            bits,
            ops: ArithOps::ADD,
            mode: CarryMode::Ripple,
        }),
    );
    let reg = nl.add_component(
        "treg",
        ComponentKind::Micro(MicroComponent::Register {
            bits,
            trigger: Trigger::EdgeTriggered,
            funcs: RegFunctions::LOAD,
            ctrl: ControlSet::RESET,
        }),
    );
    let vdd = nl.add_component("vdd", ComponentKind::Generic(GenericMacro::Vdd));
    let vss = nl.add_component("vss", ComponentKind::Generic(GenericMacro::Vss));
    let one = nl.add_net("one");
    let zero = nl.add_net("zero");
    nl.connect_named(vdd, "Y", one).unwrap();
    nl.connect_named(vss, "Y", zero).unwrap();
    let cmp = nl.add_component(
        "tc",
        ComponentKind::Micro(MicroComponent::Comparator {
            bits,
            function: CmpOp::Eq,
        }),
    );
    for i in 0..bits {
        let q = nl.add_net(format!("q{i}"));
        nl.connect_named(reg, &format!("Q{i}"), q).unwrap();
        nl.connect_named(au, &format!("A{i}"), q).unwrap();
        nl.connect_named(cmp, &format!("A{i}"), q).unwrap();
        nl.add_port(format!("count{i}"), PinDir::Out, q);
        let s = nl.add_net(format!("s{i}"));
        nl.connect_named(au, &format!("S{i}"), s).unwrap();
        nl.connect_named(reg, &format!("D{i}"), s).unwrap();
        nl.connect_named(au, &format!("B{i}"), if i == 0 { one } else { zero })
            .unwrap();
        // Match value from ports.
        let m = nl.add_net(format!("match{i}"));
        nl.connect_named(cmp, &format!("B{i}"), m).unwrap();
        nl.add_port(format!("match{i}"), PinDir::In, m);
    }
    nl.connect_named(au, "CIN", zero).unwrap();
    nl.connect_named(reg, "F0", one).unwrap();
    let rst = nl.add_net("rst");
    let clk = nl.add_net("clk");
    nl.connect_named(reg, "RST", rst).unwrap();
    nl.connect_named(reg, "CLK", clk).unwrap();
    nl.add_port("rst", PinDir::In, rst);
    nl.add_port("clk", PinDir::In, clk);
    let tc = nl.add_net("tcf");
    nl.connect_named(cmp, "F", tc).unwrap();
    // Decode the low count bits for phase outputs.
    let dec = nl.add_component(
        "phase",
        ComponentKind::Micro(MicroComponent::Decoder {
            bits: 2,
            enable: true,
        }),
    );
    let q0 = nl.port("count0").unwrap().net;
    let q1 = nl.port("count1").unwrap().net;
    nl.connect_named(dec, "A0", q0).unwrap();
    nl.connect_named(dec, "A1", q1).unwrap();
    nl.connect_named(dec, "EN", tc).unwrap();
    for i in 0..4 {
        let y = nl.add_net(format!("ph{i}"));
        nl.connect_named(dec, &format!("Y{i}"), y).unwrap();
        nl.add_port(format!("phase{i}"), PinDir::Out, y);
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_netlist::validate;

    #[test]
    fn all_eight_build_cleanly() {
        let cases = all();
        assert_eq!(cases.len(), 8);
        for case in &cases {
            let violations: Vec<_> = validate(&case.netlist, false)
                .into_iter()
                .filter(|v| !matches!(v, milo_netlist::Violation::DanglingOutput { .. }))
                .collect();
            assert!(
                violations.is_empty(),
                "circuit {}: {violations:?}",
                case.index
            );
        }
    }

    #[test]
    fn micro_flags_match_entry_style() {
        for case in all() {
            let has_micro = case.netlist.component_ids().any(|id| {
                matches!(
                    case.netlist.component(id).map(|c| &c.kind),
                    Ok(ComponentKind::Micro(_))
                )
            });
            if case.micro_level {
                assert!(has_micro, "circuit {} should be micro-level", case.index);
            }
        }
    }

    #[test]
    fn gate_level_circuits_simulate() {
        use milo_netlist::Simulator;
        for case in all().into_iter().filter(|c| !c.micro_level && c.index != 5) {
            let mut sim = Simulator::new(&case.netlist)
                .unwrap_or_else(|e| panic!("circuit {}: {e}", case.index));
            sim.settle();
        }
    }

    #[test]
    fn circuit3_function() {
        use milo_netlist::Simulator;
        let nl = circuit3();
        let mut sim = Simulator::new(&nl).unwrap();
        for row in 0..8u32 {
            let (a, b, c) = (row & 1 == 1, row >> 1 & 1 == 1, row >> 2 & 1 == 1);
            sim.set_input("x0", a).unwrap();
            sim.set_input("x1", b).unwrap();
            sim.set_input("x2", c).unwrap();
            sim.settle();
            assert_eq!(sim.output("f").unwrap(), a || (b && c));
            assert_eq!(sim.output("g").unwrap(), a ^ c);
        }
    }
}
