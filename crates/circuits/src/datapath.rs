//! The ABADD design of Fig. 16 and a parameterized datapath generator.

use milo_netlist::{
    ArithOps, CarryMode, ComponentKind, ControlSet, MicroComponent, Netlist, PinDir, RegFunctions,
    Trigger,
};

/// Builds the ABADD design of Fig. 16 at the microarchitecture level:
/// a 4-bit ripple adder, a 2:1 4-bit multiplexor, and a 4-bit register
/// with shift-right capability, chained A/B → ADD4 → MUX2:1:4 → REG4 → C.
pub fn abadd() -> Netlist {
    datapath(4)
}

/// ABADD variant with a plain load register (two data sources per bit:
/// hold and load, i.e. a 2:1 mux in front of each flip-flop). This is the
/// configuration where the Fig. 18 *two-stage* merge is visible: the
/// register's 2:1 mux merges with its flip-flop into an MXFF2 at the REG
/// level, then the datapath's outer 2:1 mux merges into that MXFF2 at the
/// top level, yielding the "4-1 multiplexors combined with a flip-flop".
pub fn abadd_load_register(bits: u8) -> Netlist {
    let mut nl = datapath(bits);
    nl.name = format!("ABADDL{bits}");
    // Rebuild: replace the shift register with a load-only one.
    let reg_id = nl
        .component_ids()
        .find(|&id| {
            matches!(
                nl.component(id).map(|c| &c.kind),
                Ok(ComponentKind::Micro(MicroComponent::Register { .. }))
            )
        })
        .expect("datapath has a register");
    // Capture D/Q/F0/CLK connections.
    let d: Vec<_> = (0..bits)
        .map(|i| nl.pin_net(reg_id, &format!("D{i}")).expect("wired"))
        .collect();
    let q: Vec<_> = (0..bits)
        .map(|i| nl.pin_net(reg_id, &format!("Q{i}")).expect("wired"))
        .collect();
    let f0 = nl.pin_net(reg_id, "F0").expect("wired");
    let clk = nl.pin_net(reg_id, "CLK").expect("wired");
    nl.remove_component(reg_id).expect("removable");
    let new_reg = nl.add_component(
        "reg",
        ComponentKind::Micro(MicroComponent::Register {
            bits,
            trigger: Trigger::EdgeTriggered,
            funcs: RegFunctions::LOAD,
            ctrl: ControlSet::NONE,
        }),
    );
    for i in 0..bits as usize {
        nl.connect_named(new_reg, &format!("D{i}"), d[i])
            .expect("fresh pin");
        nl.connect_named(new_reg, &format!("Q{i}"), q[i])
            .expect("fresh pin");
    }
    nl.connect_named(new_reg, "F0", f0).expect("fresh pin");
    nl.connect_named(new_reg, "CLK", clk).expect("fresh pin");
    nl
}

/// Parameterized ABADD-style datapath: `bits`-wide adder → 2:1 mux →
/// shift-right register. The A→C path is the timing-constrained path of
/// the paper's walkthrough.
pub fn datapath(bits: u8) -> Netlist {
    let mut nl = Netlist::new(if bits == 4 {
        "ABADD".into()
    } else {
        format!("ABADD{bits}")
    });
    let au = MicroComponent::ArithmeticUnit {
        bits,
        ops: ArithOps::ADD,
        mode: CarryMode::Ripple,
    };
    let mux = MicroComponent::Multiplexor {
        bits,
        inputs: 2,
        enable: false,
    };
    let reg = MicroComponent::Register {
        bits,
        trigger: Trigger::EdgeTriggered,
        funcs: RegFunctions {
            load: true,
            shift_left: false,
            shift_right: true,
        },
        ctrl: ControlSet::NONE,
    };
    let a_c = nl.add_component("add", ComponentKind::Micro(au));
    let m_c = nl.add_component("mux", ComponentKind::Micro(mux));
    let r_c = nl.add_component("reg", ComponentKind::Micro(reg));
    for i in 0..bits {
        for (bus, pin) in [("A", format!("A{i}")), ("B", format!("B{i}"))] {
            let net = nl.add_net(format!("{bus}{i}"));
            nl.connect_named(a_c, &pin, net).unwrap();
            nl.add_port(format!("{bus}{i}"), PinDir::In, net);
        }
        let s = nl.add_net(format!("S{i}"));
        nl.connect_named(a_c, &format!("S{i}"), s).unwrap();
        nl.connect_named(m_c, &format!("D0_{i}"), s).unwrap();
        let d1 = nl.add_net(format!("IN1_{i}"));
        nl.connect_named(m_c, &format!("D1_{i}"), d1).unwrap();
        nl.add_port(format!("IN1_{i}"), PinDir::In, d1);
        let y = nl.add_net(format!("MY{i}"));
        nl.connect_named(m_c, &format!("Y{i}"), y).unwrap();
        nl.connect_named(r_c, &format!("D{i}"), y).unwrap();
        let q = nl.add_net(format!("C{i}"));
        nl.connect_named(r_c, &format!("Q{i}"), q).unwrap();
        nl.add_port(format!("C{i}"), PinDir::Out, q);
    }
    let cin = nl.add_net("CIN");
    nl.connect_named(a_c, "CIN", cin).unwrap();
    nl.add_port("CIN", PinDir::In, cin);
    let cout = nl.add_net("COUT");
    nl.connect_named(a_c, "COUT", cout).unwrap();
    nl.add_port("COUT", PinDir::Out, cout);
    let sel = nl.add_net("SEL");
    nl.connect_named(m_c, "S0", sel).unwrap();
    nl.add_port("SEL", PinDir::In, sel);
    let sir = nl.add_net("SHIFTIN");
    nl.connect_named(r_c, "SIR", sir).unwrap();
    nl.add_port("SHIFTIN", PinDir::In, sir);
    for i in 0..2 {
        let f = nl.add_net(format!("F{i}"));
        nl.connect_named(r_c, &format!("F{i}"), f).unwrap();
        nl.add_port(format!("F{i}"), PinDir::In, f);
    }
    let clk = nl.add_net("CLK");
    nl.connect_named(r_c, "CLK", clk).unwrap();
    nl.add_port("CLK", PinDir::In, clk);
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_netlist::{validate, Violation};

    #[test]
    fn abadd_builds_cleanly() {
        let nl = abadd();
        assert_eq!(nl.component_count(), 3);
        let v: Vec<_> = validate(&nl, false)
            .into_iter()
            .filter(|x| !matches!(x, Violation::DanglingOutput { .. }))
            .collect();
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn datapath_scales() {
        for bits in [4u8, 8, 16] {
            let nl = datapath(bits);
            assert_eq!(nl.component_count(), 3);
            assert!(nl.ports().len() > 4 * bits as usize);
        }
    }
}
