//! # milo-circuits
//!
//! Benchmark circuits for the MILO reproduction:
//!
//! * [`fig19`] — the eight test cases of the paper's results table
//!   (synthetic designs with the published complexities and entry styles);
//! * [`random_logic`] — seeded random logic for the scaling and metarule
//!   experiments;
//! * [`zoo`] — the large-workload scenario zoo (pipelined datapaths,
//!   ISCAS-style control logic at 10k–100k gates, FSM banks, and
//!   pathological fanout shapes) behind the differential-fuzz harness;
//! * [`sop`]-style construction helpers are internal to the circuits.

#![warn(missing_docs)]

pub mod datapath;
pub mod fig19;
mod random;
mod sop;
pub mod zoo;

pub use datapath::{abadd, abadd_load_register, datapath};
pub use fig19::{all as fig19_all, TestCase};
pub use random::random_logic;
pub use zoo::{fsm_bank, high_fanout, pipelined_datapath, random_control, reconvergent_ladder};
