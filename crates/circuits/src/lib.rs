//! # milo-circuits
//!
//! Benchmark circuits for the MILO reproduction:
//!
//! * [`fig19`] — the eight test cases of the paper's results table
//!   (synthetic designs with the published complexities and entry styles);
//! * [`random_logic`] — seeded random logic for the scaling and metarule
//!   experiments;
//! * [`sop`]-style construction helpers are internal to the circuits.

#![warn(missing_docs)]

pub mod datapath;
pub mod fig19;
mod random;
mod sop;

pub use datapath::{abadd, abadd_load_register, datapath};
pub use fig19::{all as fig19_all, TestCase};
pub use random::random_logic;
