//! The scenario zoo: deterministic seeded generators for large and
//! pathological workloads, 10–100× beyond the paper's demonstration
//! circuits.
//!
//! Every generator is a pure function of its parameters and seed — the
//! differential-fuzz harness (`milo-bench`'s `fuzz` bin) relies on this
//! to replay any failure from its printed seed, and `tests/zoo_golden.rs`
//! pins a structural hash per family so refactors cannot silently change
//! the zoo. Families:
//!
//! * [`pipelined_datapath`] — deep chains of the ABADD stage shape
//!   (adder → bypass mux → register) at the microarchitecture level;
//! * [`random_control`] — ISCAS-style layered random control logic,
//!   NAND/NOR-heavy, engineered to generate 10k–100k gates in linear
//!   time;
//! * [`fsm_bank`] — many small independent state machines sharing a
//!   clock and a few inputs (multi-output sequential logic);
//! * [`high_fanout`] — one net loaded far beyond any library cell's
//!   drive limit (stresses `FanoutRepair`'s buffer trees);
//! * [`reconvergent_ladder`] — chained reconvergent fanout diamonds
//!   (stresses incremental STA cone refresh and the matcher).

use milo_netlist::{
    ArithOps, CarryMode, ComponentKind, ControlSet, GateFn, GenericMacro, MicroComponent, NetId,
    Netlist, PinDir, RegFunctions, Trigger,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn gate_kind(f: GateFn, n: u8) -> ComponentKind {
    ComponentKind::Generic(GenericMacro::Gate(f, n))
}

/// A deep pipelined datapath: `stages` copies of the ABADD stage shape
/// (ripple adder → 2:1 bypass multiplexor → load register) chained
/// register-to-adder, with per-stage operand rotation drawn from the
/// seed. Stage 0 reads the `A*`/`B*` input ports; stage `s` adds the
/// previous stage's register outputs to a rotation of themselves, and
/// its mux can bypass the adder with the stage's own A operand (a
/// forwarding path). Carries chain stage to stage.
///
/// Ports: `A*`/`B*`/`CIN`/`SEL`/`LOAD`/`CLK` in, `OUT*`/`COUT` out.
///
/// # Panics
///
/// Panics if `stages` is zero or `bits` is zero.
pub fn pipelined_datapath(stages: usize, bits: u8, seed: u64) -> Netlist {
    assert!(stages > 0, "pipelined_datapath needs at least one stage");
    assert!(bits > 0, "pipelined_datapath needs at least one bit");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nl = Netlist::new(format!("pipe{stages}x{bits}_{seed}"));
    let width = bits as usize;

    let sel = nl.add_net("SEL");
    nl.add_port("SEL", PinDir::In, sel);
    let load = nl.add_net("LOAD");
    nl.add_port("LOAD", PinDir::In, load);
    let clk = nl.add_net("CLK");
    nl.add_port("CLK", PinDir::In, clk);
    let mut carry = nl.add_net("CIN");
    nl.add_port("CIN", PinDir::In, carry);

    // Stage 0 operands come from ports; later stages from the previous
    // stage's register outputs.
    let mut q: Vec<NetId> = Vec::new();
    for s in 0..stages {
        let au = nl.add_component(
            format!("s{s}_add"),
            ComponentKind::Micro(MicroComponent::ArithmeticUnit {
                bits,
                ops: ArithOps::ADD,
                mode: CarryMode::Ripple,
            }),
        );
        let mux = nl.add_component(
            format!("s{s}_mux"),
            ComponentKind::Micro(MicroComponent::Multiplexor {
                bits,
                inputs: 2,
                enable: false,
            }),
        );
        let reg = nl.add_component(
            format!("s{s}_reg"),
            ComponentKind::Micro(MicroComponent::Register {
                bits,
                trigger: Trigger::EdgeTriggered,
                funcs: RegFunctions::LOAD,
                ctrl: ControlSet::NONE,
            }),
        );

        // Per-stage operand rotation keeps deep pipelines from being
        // `stages` identical slices (and exercises crossing routes).
        let rot = if width > 1 {
            rng.gen_range(1..width)
        } else {
            0
        };
        let (a_nets, b_nets): (Vec<NetId>, Vec<NetId>) = if s == 0 {
            let mut a = Vec::with_capacity(width);
            let mut b = Vec::with_capacity(width);
            for i in 0..width {
                let an = nl.add_net(format!("A{i}"));
                nl.add_port(format!("A{i}"), PinDir::In, an);
                a.push(an);
                let bn = nl.add_net(format!("B{i}"));
                nl.add_port(format!("B{i}"), PinDir::In, bn);
                b.push(bn);
            }
            (a, b)
        } else {
            let a = q.clone();
            let b: Vec<NetId> = (0..width).map(|i| q[(i + rot) % width]).collect();
            (a, b)
        };

        nl.connect_named(au, "CIN", carry).expect("fresh pin");
        carry = nl.add_net(format!("s{s}_cout"));
        nl.connect_named(au, "COUT", carry).expect("fresh pin");
        nl.connect_named(mux, "S0", sel).expect("fresh pin");
        nl.connect_named(reg, "F0", load).expect("fresh pin");
        nl.connect_named(reg, "CLK", clk).expect("fresh pin");

        let mut next_q = Vec::with_capacity(width);
        for i in 0..width {
            nl.connect_named(au, &format!("A{i}"), a_nets[i])
                .expect("fresh pin");
            nl.connect_named(au, &format!("B{i}"), b_nets[i])
                .expect("fresh pin");
            let sum = nl.add_net(format!("s{s}_sum{i}"));
            nl.connect_named(au, &format!("S{i}"), sum)
                .expect("fresh pin");
            nl.connect_named(mux, &format!("D0_{i}"), sum)
                .expect("fresh pin");
            // Bypass: the mux can forward the stage's A operand.
            nl.connect_named(mux, &format!("D1_{i}"), a_nets[i])
                .expect("fresh pin");
            let my = nl.add_net(format!("s{s}_my{i}"));
            nl.connect_named(mux, &format!("Y{i}"), my)
                .expect("fresh pin");
            nl.connect_named(reg, &format!("D{i}"), my)
                .expect("fresh pin");
            let qn = nl.add_net(format!("s{s}_q{i}"));
            nl.connect_named(reg, &format!("Q{i}"), qn)
                .expect("fresh pin");
            next_q.push(qn);
        }
        q = next_q;
    }

    for (i, qn) in q.iter().enumerate() {
        nl.add_port(format!("OUT{i}"), PinDir::Out, *qn);
    }
    nl.add_port("COUT", PinDir::Out, carry);
    nl
}

/// ISCAS-style layered random control logic: roughly `gates` gates over
/// `inputs` primary inputs, organized into layers whose gates read mostly
/// from the one or two layers directly above (with occasional long taps
/// back to the primary inputs). The function mix is NAND/NOR-heavy like
/// real control logic, and a fixed rate of duplicated gates and inverter
/// pairs gives the optimizers realistic work.
///
/// Every step is O(1), so generation stays linear at 100k gates — the
/// dangling-output scan tracks load counts itself instead of calling
/// `Netlist::fanout` (which rescans the port list per call and turns
/// quadratic exactly at the sizes this generator exists for).
pub fn random_control(gates: usize, inputs: usize, seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nl = Netlist::new(format!("ctrl{gates}_{seed}"));
    let primary: Vec<NetId> = (0..inputs)
        .map(|i| {
            let net = nl.add_net(format!("in{i}"));
            nl.add_port(format!("in{i}"), PinDir::In, net);
            net
        })
        .collect();
    // NAND/NOR-heavy control mix.
    let functions = [
        GateFn::Nand,
        GateFn::Nand,
        GateFn::Nand,
        GateFn::Nor,
        GateFn::Nor,
        GateFn::And,
        GateFn::Or,
        GateFn::Xor,
        GateFn::Inv,
    ];
    // Layer width sized for control-like depth (a few dozen levels).
    let width = (gates / 32).max(inputs.max(4));

    // loads[net.index()] counts input-pin loads placed by this
    // generator; nets that end with zero become output ports.
    let mut loads: Vec<u32> = vec![0; primary.len()];
    let mut prev: Vec<NetId> = primary.clone();
    let mut above: Vec<NetId> = Vec::new();
    let mut made = 0usize;
    let mut last: Option<(GateFn, Vec<NetId>)> = None;
    while made < gates {
        let layer_len = width.min(gates - made);
        let mut current = Vec::with_capacity(layer_len);
        for k in 0..layer_len {
            // 1-in-24: duplicate the previous gate verbatim (fresh
            // output) — food for the duplicate-merge rule.
            let (f, chosen) =
                if let Some((lf, lc)) = last.as_ref().filter(|_| rng.gen_range(0..24u32) == 0) {
                    (*lf, lc.clone())
                } else {
                    let f = functions[rng.gen_range(0..functions.len())];
                    let n: usize = match f {
                        GateFn::Inv => 1,
                        _ => rng.gen_range(2..=3),
                    };
                    let chosen: Vec<NetId> = (0..n)
                        .map(|_| {
                            // Mostly the previous layer, sometimes the one
                            // above it, occasionally a primary input.
                            let bucket = rng.gen_range(0..10u32);
                            let pool: &[NetId] = if bucket < 7 || above.is_empty() {
                                &prev
                            } else if bucket < 9 {
                                &above
                            } else {
                                &primary
                            };
                            pool[rng.gen_range(0..pool.len())]
                        })
                        .collect();
                    (f, chosen)
                };
            let g = nl.add_component(format!("g{made}"), gate_kind(f, chosen.len() as u8));
            for (i, net) in chosen.iter().enumerate() {
                nl.connect_named(g, &format!("A{i}"), *net)
                    .expect("fresh pin");
                loads[net.index()] += 1;
            }
            let mut y = nl.add_net(format!("l{made}"));
            nl.connect_named(g, "Y", y).expect("fresh pin");
            loads.push(0);
            last = Some((f, chosen));
            made += 1;
            // 1-in-12: follow with an inverter pair (removable
            // redundancy), budget permitting.
            if rng.gen_range(0..12u32) == 0 && made + 2 <= gates && k + 2 < layer_len {
                for _ in 0..2 {
                    let iv = nl.add_component(format!("g{made}"), gate_kind(GateFn::Inv, 1));
                    nl.connect_named(iv, "A0", y).expect("fresh pin");
                    loads[y.index()] += 1;
                    y = nl.add_net(format!("l{made}"));
                    nl.connect_named(iv, "Y", y).expect("fresh pin");
                    loads.push(0);
                    made += 1;
                }
            }
            current.push(y);
            if made >= gates {
                break;
            }
        }
        above = std::mem::replace(&mut prev, current);
    }
    // Expose every undriven-load net as an output port, in net order.
    let mut out_count = 0usize;
    for net in nl.net_ids().collect::<Vec<_>>() {
        if net.index() >= primary.len() && loads[net.index()] == 0 {
            nl.add_port(format!("out{out_count}"), PinDir::Out, net);
            out_count += 1;
        }
    }
    nl
}

/// A bank of `machines` independent little Moore machines sharing one
/// clock and four inputs: per machine, `state_bits` D flip-flops with
/// two-level random next-state logic over the machine's own state and
/// the shared inputs, plus one gate-level output per machine. Stresses
/// sequential paths, multi-output designs, and per-register endpoint
/// bookkeeping.
///
/// # Panics
///
/// Panics if `machines` or `state_bits` is zero.
pub fn fsm_bank(machines: usize, state_bits: usize, seed: u64) -> Netlist {
    assert!(machines > 0, "fsm_bank needs at least one machine");
    assert!(state_bits > 0, "fsm_bank needs at least one state bit");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nl = Netlist::new(format!("fsm{machines}x{state_bits}_{seed}"));
    let clk = nl.add_net("CLK");
    nl.add_port("CLK", PinDir::In, clk);
    let ins: Vec<NetId> = (0..4)
        .map(|i| {
            let net = nl.add_net(format!("IN{i}"));
            nl.add_port(format!("IN{i}"), PinDir::In, net);
            net
        })
        .collect();
    let comb = [
        GateFn::Nand,
        GateFn::Nor,
        GateFn::Xor,
        GateFn::And,
        GateFn::Or,
    ];
    for m in 0..machines {
        // State registers first; their Q nets feed the next-state logic.
        let q: Vec<NetId> = (0..state_bits)
            .map(|j| {
                let qn = nl.add_net(format!("m{m}_q{j}"));
                let ff = nl.add_component(
                    format!("m{m}_ff{j}"),
                    ComponentKind::Generic(GenericMacro::Dff {
                        set: false,
                        reset: false,
                        enable: false,
                    }),
                );
                nl.connect_named(ff, "CLK", clk).expect("fresh pin");
                nl.connect_named(ff, "Q", qn).expect("fresh pin");
                qn
            })
            .collect();
        let pick = |rng: &mut StdRng, q: &[NetId], ins: &[NetId]| -> NetId {
            if rng.gen_bool(0.6) {
                q[rng.gen_range(0..q.len())]
            } else {
                ins[rng.gen_range(0..ins.len())]
            }
        };
        for j in 0..state_bits {
            // Two-level next-state: t = f(s, x); d = g(t, s or x).
            let f = comb[rng.gen_range(0..comb.len())];
            let t1 = nl.add_component(format!("m{m}_t{j}"), gate_kind(f, 2));
            nl.connect_named(t1, "A0", pick(&mut rng, &q, &ins))
                .expect("fresh pin");
            nl.connect_named(t1, "A1", pick(&mut rng, &q, &ins))
                .expect("fresh pin");
            let tn = nl.add_net(format!("m{m}_tn{j}"));
            nl.connect_named(t1, "Y", tn).expect("fresh pin");
            let g = comb[rng.gen_range(0..comb.len())];
            let d = nl.add_component(format!("m{m}_d{j}"), gate_kind(g, 2));
            nl.connect_named(d, "A0", tn).expect("fresh pin");
            nl.connect_named(d, "A1", pick(&mut rng, &q, &ins))
                .expect("fresh pin");
            let dn = nl.add_net(format!("m{m}_dn{j}"));
            nl.connect_named(d, "Y", dn).expect("fresh pin");
            let ff = nl
                .component_ids()
                .find(|&id| {
                    nl.component(id)
                        .is_ok_and(|c| c.name == format!("m{m}_ff{j}"))
                })
                .expect("register exists");
            nl.connect_named(ff, "D", dn).expect("fresh pin");
        }
        // Moore output: a gate over the first two state bits (or an
        // inverter for one-bit machines).
        let on = nl.add_net(format!("m{m}_out"));
        if state_bits >= 2 {
            let f = comb[rng.gen_range(0..comb.len())];
            let og = nl.add_component(format!("m{m}_og"), gate_kind(f, 2));
            nl.connect_named(og, "A0", q[0]).expect("fresh pin");
            nl.connect_named(og, "A1", q[1]).expect("fresh pin");
            nl.connect_named(og, "Y", on).expect("fresh pin");
        } else {
            let og = nl.add_component(format!("m{m}_og"), gate_kind(GateFn::Inv, 1));
            nl.connect_named(og, "A0", q[0]).expect("fresh pin");
            nl.connect_named(og, "Y", on).expect("fresh pin");
        }
        nl.add_port(format!("OUT{m}"), PinDir::Out, on);
    }
    nl
}

/// One net driven far beyond any cell's drive limit: an inverter whose
/// output feeds `width` load gates (each with its own output port) plus
/// a short inverter chain. `FanoutRepair` must split this into a buffer
/// tree; incremental STA must refresh the whole wide cone when the
/// driver changes.
///
/// # Panics
///
/// Panics if `width` is zero.
pub fn high_fanout(width: usize, seed: u64) -> Netlist {
    assert!(width > 0, "high_fanout needs at least one load");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nl = Netlist::new(format!("fan{width}_{seed}"));
    let a = nl.add_net("a");
    nl.add_port("a", PinDir::In, a);
    let b = nl.add_net("b");
    nl.add_port("b", PinDir::In, b);
    let root = nl.add_component("root", gate_kind(GateFn::Inv, 1));
    nl.connect_named(root, "A0", a).expect("fresh pin");
    let h = nl.add_net("h");
    nl.connect_named(root, "Y", h).expect("fresh pin");
    for k in 0..width {
        let f = [GateFn::Inv, GateFn::Nand, GateFn::Nor][rng.gen_range(0..3usize)];
        let n: u8 = if f == GateFn::Inv { 1 } else { 2 };
        let g = nl.add_component(format!("load{k}"), gate_kind(f, n));
        nl.connect_named(g, "A0", h).expect("fresh pin");
        if n == 2 {
            nl.connect_named(g, "A1", b).expect("fresh pin");
        }
        let y = nl.add_net(format!("y{k}"));
        nl.connect_named(g, "Y", y).expect("fresh pin");
        nl.add_port(format!("out{k}"), PinDir::Out, y);
    }
    // A little depth behind the wide net, so the repaired tree sits on
    // a real path rather than directly at the ports.
    let mut cur = h;
    for k in 0..8 {
        let iv = nl.add_component(format!("chain{k}"), gate_kind(GateFn::Inv, 1));
        nl.connect_named(iv, "A0", cur).expect("fresh pin");
        cur = nl.add_net(format!("c{k}"));
        nl.connect_named(iv, "Y", cur).expect("fresh pin");
    }
    nl.add_port("tail", PinDir::Out, cur);
    nl
}

/// Chained reconvergent-fanout diamonds: each rung splits the running
/// net into a short and a long inverter branch and reconverges them
/// through a seeded two-input gate. Every fourth rung is tapped as an
/// output. The dense reconvergence makes single-component touches fan
/// out into wide STA cones and overlapping rule matches.
///
/// # Panics
///
/// Panics if `rungs` is zero.
pub fn reconvergent_ladder(rungs: usize, seed: u64) -> Netlist {
    assert!(rungs > 0, "reconvergent_ladder needs at least one rung");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nl = Netlist::new(format!("ladder{rungs}_{seed}"));
    let x = nl.add_net("x");
    nl.add_port("x", PinDir::In, x);
    let merge_fns = [GateFn::Xor, GateFn::Nand, GateFn::Nor];
    let mut cur = x;
    let mut taps = 0usize;
    for r in 0..rungs {
        let branch = |nl: &mut Netlist, from: NetId, depth: usize, tag: &str| -> NetId {
            let mut net = from;
            for d in 0..depth {
                let iv = nl.add_component(format!("r{r}_{tag}{d}"), gate_kind(GateFn::Inv, 1));
                nl.connect_named(iv, "A0", net).expect("fresh pin");
                net = nl.add_net(format!("r{r}_{tag}n{d}"));
                nl.connect_named(iv, "Y", net).expect("fresh pin");
            }
            net
        };
        let short = branch(&mut nl, cur, 1, "s");
        let long_depth = rng.gen_range(2..=3usize);
        let long = branch(&mut nl, cur, long_depth, "l");
        let f = merge_fns[rng.gen_range(0..merge_fns.len())];
        let m = nl.add_component(format!("r{r}_m"), gate_kind(f, 2));
        nl.connect_named(m, "A0", short).expect("fresh pin");
        nl.connect_named(m, "A1", long).expect("fresh pin");
        let out = nl.add_net(format!("r{r}_out"));
        nl.connect_named(m, "Y", out).expect("fresh pin");
        if r % 4 == 3 {
            nl.add_port(format!("tap{taps}"), PinDir::Out, out);
            taps += 1;
        }
        cur = out;
    }
    nl.add_port("y", PinDir::Out, cur);
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_netlist::{validate, Simulator, Violation};

    fn clean(nl: &Netlist) -> Vec<Violation> {
        validate(nl, false)
            .into_iter()
            .filter(|x| !matches!(x, Violation::DanglingOutput { .. }))
            .collect()
    }

    #[test]
    fn every_family_is_deterministic_per_seed() {
        type Family<'a> = (&'a str, Box<dyn Fn(u64) -> Netlist>);
        let families: Vec<Family> = vec![
            ("pipe", Box::new(|s| pipelined_datapath(4, 4, s))),
            ("ctrl", Box::new(|s| random_control(300, 12, s))),
            ("fsm", Box::new(|s| fsm_bank(5, 3, s))),
            ("fan", Box::new(|s| high_fanout(40, s))),
            ("ladder", Box::new(|s| reconvergent_ladder(20, s))),
        ];
        for (name, make) in &families {
            let a = make(42);
            let b = make(42);
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "{name} not deterministic"
            );
            let c = make(43);
            assert_ne!(
                format!("{a:?}"),
                format!("{c:?}"),
                "{name} ignores its seed"
            );
        }
    }

    #[test]
    fn every_family_is_structurally_clean() {
        let cases = [
            pipelined_datapath(6, 4, 7),
            random_control(1000, 16, 7),
            fsm_bank(8, 4, 7),
            high_fanout(64, 7),
            reconvergent_ladder(32, 7),
        ];
        for nl in &cases {
            let v = clean(nl);
            assert!(v.is_empty(), "{}: {v:?}", nl.name);
        }
    }

    #[test]
    fn comb_families_elaborate_and_settle() {
        for nl in [
            random_control(400, 10, 3),
            high_fanout(48, 3),
            reconvergent_ladder(24, 3),
        ] {
            let mut sim = Simulator::new(&nl).expect("elaborates");
            sim.settle();
        }
    }

    #[test]
    fn pipelined_datapath_shape() {
        let nl = pipelined_datapath(8, 4, 1);
        assert_eq!(nl.component_count(), 3 * 8);
        // A*, B*, CIN, SEL, LOAD, CLK in; OUT*, COUT out.
        assert_eq!(nl.ports().len(), 2 * 4 + 4 + 4 + 1);
        assert!(clean(&nl).is_empty());
    }

    #[test]
    fn random_control_hits_its_size_at_scale() {
        for gates in [1000usize, 10_000, 100_000] {
            let nl = random_control(gates, 24, 5);
            assert_eq!(nl.component_count(), gates, "asked {gates}");
        }
    }

    #[test]
    fn high_fanout_concentrates_load() {
        let nl = high_fanout(100, 9);
        let h = nl
            .net_ids()
            .find(|&n| nl.net(n).unwrap().name == "h")
            .unwrap();
        assert_eq!(nl.fanout(h), 101, "width loads plus the chain head");
    }

    #[test]
    fn fsm_bank_is_sequential_and_multi_output() {
        let nl = fsm_bank(6, 3, 11);
        let ffs = nl
            .component_ids()
            .filter(|&id| nl.component(id).unwrap().kind.is_sequential())
            .count();
        assert_eq!(ffs, 18);
        let outs = nl.ports().iter().filter(|p| p.dir == PinDir::Out).count();
        assert_eq!(outs, 6);
        assert!(clean(&nl).is_empty());
    }
}
