//! "Human schematic entry" helpers: naive two-level (SOP) gate
//! construction from minterm specifications, the way Fig. 19's reference
//! circuits would have been entered by a designer working from truth
//! tables. The deliberate two-level redundancy is what MILO's optimizers
//! then remove.

use milo_netlist::{ComponentKind, GateFn, GenericMacro, NetId, Netlist, PinDir};

/// Adds an n-input generic gate over `inputs`, returning the output net.
pub(crate) fn gate(nl: &mut Netlist, f: GateFn, inputs: &[NetId], name: &str) -> NetId {
    let n = inputs.len() as u8;
    let g = nl.add_component(name, ComponentKind::Generic(GenericMacro::Gate(f, n)));
    for (i, net) in inputs.iter().enumerate() {
        nl.connect_named(g, &format!("A{i}"), *net)
            .expect("fresh pin");
    }
    let y = nl.add_net(format!("{name}_y"));
    nl.connect_named(g, "Y", y).expect("fresh pin");
    y
}

/// Tree of gates with fanin ≤ 4.
pub(crate) fn gate_tree(nl: &mut Netlist, f: GateFn, inputs: &[NetId], prefix: &str) -> NetId {
    let mut level: Vec<NetId> = inputs.to_vec();
    let mut l = 0;
    while level.len() > 1 {
        let mut next = Vec::new();
        for (g, chunk) in level.chunks(4).enumerate() {
            if chunk.len() == 1 {
                next.push(chunk[0]);
            } else {
                next.push(gate(nl, f, chunk, &format!("{prefix}_l{l}g{g}")));
            }
        }
        level = next;
        l += 1;
    }
    level[0]
}

/// Declares `n` input ports named `prefix0..`, returning their nets.
pub(crate) fn input_bus(nl: &mut Netlist, prefix: &str, n: usize) -> Vec<NetId> {
    (0..n)
        .map(|i| {
            let net = nl.add_net(format!("{prefix}{i}"));
            nl.add_port(format!("{prefix}{i}"), PinDir::In, net);
            net
        })
        .collect()
}

/// Builds a single-output SOP circuit: inverters for the complemented
/// literals, one AND per minterm, an OR tree. Returns the output net.
///
/// `minterms` are rows of the truth table over `vars` (bit `i` of a row is
/// variable `i`); `vars[i]` are the input nets.
pub(crate) fn sop_output(
    nl: &mut Netlist,
    vars: &[NetId],
    inverted: &[NetId],
    minterms: &[u32],
    prefix: &str,
) -> NetId {
    assert!(!minterms.is_empty(), "constant outputs not supported here");
    let mut terms = Vec::new();
    for (t, &m) in minterms.iter().enumerate() {
        let literals: Vec<NetId> = (0..vars.len())
            .map(|v| {
                if m >> v & 1 == 1 {
                    vars[v]
                } else {
                    inverted[v]
                }
            })
            .collect();
        terms.push(gate_tree(
            nl,
            GateFn::And,
            &literals,
            &format!("{prefix}_t{t}"),
        ));
    }
    gate_tree(nl, GateFn::Or, &terms, &format!("{prefix}_or"))
}

/// Builds a complete multi-output SOP design over shared input inverters.
pub(crate) fn sop_design(name: &str, nvars: usize, outputs: &[(&str, Vec<u32>)]) -> Netlist {
    let mut nl = Netlist::new(name);
    let vars = input_bus(&mut nl, "x", nvars);
    let inverted: Vec<NetId> = vars
        .iter()
        .enumerate()
        .map(|(i, &v)| gate(&mut nl, GateFn::Inv, &[v], &format!("nx{i}")))
        .collect();
    for (oname, minterms) in outputs {
        let y = sop_output(&mut nl, &vars, &inverted, minterms, oname);
        nl.add_port((*oname).to_owned(), PinDir::Out, y);
    }
    nl
}

/// Inserts a pair of inverters in series on a net's loads ("schematic
/// entry noise" found in real hand-entered designs).
pub(crate) fn insert_inv_pair(nl: &mut Netlist, net: NetId, tag: &str) -> NetId {
    let a = gate(nl, GateFn::Inv, &[net], &format!("{tag}_p1"));
    let b = gate(nl, GateFn::Inv, &[a], &format!("{tag}_p2"));
    // Move original loads (except the first inverter) behind the pair.
    let loads: Vec<_> = nl
        .loads(net)
        .into_iter()
        .filter(|p| {
            nl.component(p.component)
                .map(|c| !c.name.starts_with(&format!("{tag}_p1")))
                .unwrap_or(true)
        })
        .collect();
    for pin in loads {
        nl.disconnect(pin).expect("connected load");
        nl.connect(pin, b).expect("fresh net");
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_netlist::Simulator;

    #[test]
    fn sop_design_computes_minterms() {
        // f = minterms {3} over 2 vars = a & b.
        let nl = sop_design("t", 2, &[("f", vec![3])]);
        let mut sim = Simulator::new(&nl).unwrap();
        for row in 0..4u32 {
            sim.set_input("x0", row & 1 == 1).unwrap();
            sim.set_input("x1", row >> 1 & 1 == 1).unwrap();
            sim.settle();
            assert_eq!(sim.output("f").unwrap(), row == 3, "row {row}");
        }
    }

    #[test]
    fn inv_pair_preserves_function() {
        let mut nl = sop_design("t", 2, &[("f", vec![1, 2])]);
        let before = nl.component_count();
        let x0 = nl.port("x0").unwrap().net;
        insert_inv_pair(&mut nl, x0, "noise");
        assert_eq!(nl.component_count(), before + 2);
        let mut sim = Simulator::new(&nl).unwrap();
        for row in 0..4u32 {
            sim.set_input("x0", row & 1 == 1).unwrap();
            sim.set_input("x1", row >> 1 & 1 == 1).unwrap();
            sim.settle();
            assert_eq!(sim.output("f").unwrap(), row == 1 || row == 2, "row {row}");
        }
    }
}
