//! Seeded random-logic generation for the scaling and metarule
//! experiments (§2.2.2 claims).

use milo_netlist::{ComponentKind, GateFn, GenericMacro, NetId, Netlist, PinDir};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a layered random-logic netlist of approximately `gates`
/// two-to-three-input gates over `inputs` primary inputs. Deterministic
/// for a given seed.
///
/// The generator sprinkles optimizable structure (inverter chains,
/// duplicate gates) at a fixed rate so optimizers have realistic work.
pub fn random_logic(gates: usize, inputs: usize, seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nl = Netlist::new(format!("rand{gates}_{seed}"));
    let mut nets: Vec<NetId> = (0..inputs)
        .map(|i| {
            let net = nl.add_net(format!("in{i}"));
            nl.add_port(format!("in{i}"), PinDir::In, net);
            net
        })
        .collect();
    let functions = [
        GateFn::And,
        GateFn::Or,
        GateFn::Nand,
        GateFn::Nor,
        GateFn::Xor,
        GateFn::Inv,
    ];
    let mut made = 0usize;
    while made < gates {
        let f = functions[rng.gen_range(0..functions.len())];
        let n: usize = match f {
            GateFn::Inv => 1,
            _ => rng.gen_range(2..=3),
        };
        // Bias input choice toward recent nets for depth.
        let pick = |rng: &mut StdRng, nets: &[NetId]| -> NetId {
            let lo = nets.len().saturating_sub(nets.len() / 2 + 4);
            nets[rng.gen_range(lo..nets.len())]
        };
        let chosen: Vec<NetId> = (0..n).map(|_| pick(&mut rng, &nets)).collect();
        let g = nl.add_component(
            format!("g{made}"),
            ComponentKind::Generic(GenericMacro::Gate(f, n as u8)),
        );
        for (i, net) in chosen.iter().enumerate() {
            nl.connect_named(g, &format!("A{i}"), *net)
                .expect("fresh pin");
        }
        let y = nl.add_net(format!("n{made}"));
        nl.connect_named(g, "Y", y).expect("fresh pin");
        made += 1;
        // 1-in-8: follow with an inverter pair (removable redundancy).
        if rng.gen_range(0..8) == 0 && made + 2 <= gates {
            let mut prev = y;
            for k in 0..2 {
                let iv = nl.add_component(
                    format!("g{made}_{k}"),
                    ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)),
                );
                nl.connect_named(iv, "A0", prev).expect("fresh pin");
                let ny = nl.add_net(format!("n{made}_{k}"));
                nl.connect_named(iv, "Y", ny).expect("fresh pin");
                prev = ny;
                made += 1;
            }
            nets.push(prev);
        } else {
            nets.push(y);
        }
    }
    // Expose dangling nets as outputs.
    let mut out_count = 0usize;
    for net in nets.iter().skip(inputs) {
        if nl.fanout(*net) == 0 {
            nl.add_port(format!("out{out_count}"), PinDir::Out, *net);
            out_count += 1;
        }
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_netlist::{validate, Simulator, Violation};

    #[test]
    fn deterministic_for_seed() {
        let a = random_logic(60, 8, 42);
        let b = random_logic(60, 8, 42);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = random_logic(60, 8, 43);
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }

    #[test]
    fn structurally_clean() {
        let nl = random_logic(120, 10, 7);
        assert!(nl.component_count() >= 120);
        let v: Vec<_> = validate(&nl, false)
            .into_iter()
            .filter(|x| !matches!(x, Violation::DanglingOutput { .. }))
            .collect();
        assert!(v.is_empty(), "{v:?}");
        let mut sim = Simulator::new(&nl).unwrap();
        sim.settle();
    }

    #[test]
    fn scales_roughly_linearly_in_size() {
        for n in [50, 200, 800] {
            let nl = random_logic(n, 12, 1);
            let count = nl.component_count();
            assert!(count >= n && count < n + n / 4, "asked {n}, got {count}");
        }
    }
}
