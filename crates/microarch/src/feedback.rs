//! The statistics feedback loop of §6.3: "the critic calls upon the logic
//! compilers to generate the low-level generic designs … a technology
//! mapper converts these … statistics can then be generated from this
//! design."

use milo_compilers::expand_micro_components;
use milo_netlist::{DesignDb, Netlist};
use milo_techmap::{map_netlist, TechLibrary};
use milo_timing::{statistics, DesignStats};

/// Errors from the feedback measurement.
#[derive(Debug)]
pub enum FeedbackError {
    /// Logic compilation failed.
    Compile(milo_compilers::CompileError),
    /// Technology mapping failed.
    Map(milo_techmap::MapError),
    /// Netlist manipulation failed.
    Netlist(milo_netlist::NetlistError),
    /// Other error.
    Other(String),
}

impl std::fmt::Display for FeedbackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeedbackError::Compile(e) => write!(f, "compile: {e}"),
            FeedbackError::Map(e) => write!(f, "map: {e}"),
            FeedbackError::Netlist(e) => write!(f, "netlist: {e}"),
            FeedbackError::Other(s) => f.write_str(s),
        }
    }
}

impl std::error::Error for FeedbackError {}

impl From<milo_compilers::CompileError> for FeedbackError {
    fn from(e: milo_compilers::CompileError) -> Self {
        FeedbackError::Compile(e)
    }
}

impl From<milo_techmap::MapError> for FeedbackError {
    fn from(e: milo_techmap::MapError) -> Self {
        FeedbackError::Map(e)
    }
}

impl From<milo_netlist::NetlistError> for FeedbackError {
    fn from(e: milo_netlist::NetlistError) -> Self {
        FeedbackError::Netlist(e)
    }
}

/// Compiles, flattens and maps a microarchitecture-level netlist into
/// `lib`, returning the mapped netlist.
///
/// # Errors
///
/// Propagates compiler / flattening / mapping errors.
pub fn elaborate(
    nl: &Netlist,
    db: &mut DesignDb,
    lib: &TechLibrary,
) -> Result<Netlist, FeedbackError> {
    let mut work = nl.clone();
    work.name = format!("{}__elab", nl.name);
    expand_micro_components(&mut work, db).map_err(|e| FeedbackError::Other(e.to_string()))?;
    let tmp = db.insert(work);
    let flat = db.flatten(&tmp)?;
    let mapped = map_netlist(&flat, lib)?;
    Ok(mapped)
}

/// The feedback measurement: true design statistics of a micro-level
/// netlist, obtained through compilation and technology mapping.
///
/// # Errors
///
/// Propagates elaboration errors.
pub fn measure(
    nl: &Netlist,
    db: &mut DesignDb,
    lib: &TechLibrary,
) -> Result<DesignStats, FeedbackError> {
    let mapped = elaborate(nl, db, lib)?;
    Ok(statistics(&mapped)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_netlist::{ArithOps, CarryMode, ComponentKind, MicroComponent, PinDir};
    use milo_techmap::ecl_library;

    #[test]
    fn measure_adder_through_pipeline() {
        let mut nl = Netlist::new("top");
        let micro = MicroComponent::ArithmeticUnit {
            bits: 4,
            ops: ArithOps::ADD,
            mode: CarryMode::Ripple,
        };
        let c = nl.add_component("au", ComponentKind::Micro(micro));
        let pins: Vec<(String, PinDir)> = nl
            .component(c)
            .unwrap()
            .pins
            .iter()
            .map(|p| (p.name.clone(), p.dir))
            .collect();
        for (pin, dir) in pins {
            let net = nl.add_net(pin.clone());
            nl.connect_named(c, &pin, net).unwrap();
            nl.add_port(pin, dir, net);
        }
        let mut db = DesignDb::new();
        let lib = ecl_library();
        let stats = measure(&nl, &mut db, &lib).unwrap();
        assert!(stats.cells >= 1, "expanded to cells");
        assert!(stats.delay > 0.0 && stats.area > 0.0);
        // CLA version should elaborate faster but bigger.
        let mut nl2 = Netlist::new("top2");
        let micro2 = MicroComponent::ArithmeticUnit {
            bits: 4,
            ops: ArithOps::ADD,
            mode: CarryMode::CarryLookahead,
        };
        let c2 = nl2.add_component("au", ComponentKind::Micro(micro2));
        let pins: Vec<(String, PinDir)> = nl2
            .component(c2)
            .unwrap()
            .pins
            .iter()
            .map(|p| (p.name.clone(), p.dir))
            .collect();
        for (pin, dir) in pins {
            let net = nl2.add_net(pin.clone());
            nl2.connect_named(c2, &pin, net).unwrap();
            nl2.add_port(pin, dir, net);
        }
        let stats2 = measure(&nl2, &mut db, &lib).unwrap();
        assert!(
            stats2.delay < stats.delay,
            "CLA faster: {stats2:?} vs {stats:?}"
        );
        assert!(stats2.area > stats.area, "CLA bigger");
    }
}
