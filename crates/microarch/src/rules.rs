//! Microarchitecture-level rewrite rules (§6.3).
//!
//! Rules here match on parameterized [`MicroComponent`]s and their
//! interconnection — "rules at the microarchitectural level are based
//! primarily on the parameters that describe each component as well as
//! their interconnection to other components".

#[cfg(test)]
use milo_netlist::ArithOps;
use milo_netlist::{
    ArithOp, CarryMode, ComponentId, ComponentKind, ControlSet, CounterFunctions, GateFn,
    GenericMacro, MicroComponent, NetId, Netlist, NetlistError, PinDir, RegFunctions, Trigger,
};
use milo_rules::{Rule, RuleClass, RuleCtx, RuleMatch, Tx};

/// Constant value driven onto `net`, if its driver is a constant source.
pub fn const_value(nl: &Netlist, net: NetId) -> Option<bool> {
    let drv = nl.driver(net)?;
    match &nl.component(drv.component).ok()?.kind {
        ComponentKind::Generic(GenericMacro::Vdd) => Some(true),
        ComponentKind::Generic(GenericMacro::Vss) => Some(false),
        ComponentKind::Tech(c) => match c.function {
            milo_netlist::CellFunction::Const(b) => Some(b),
            _ => None,
        },
        _ => None,
    }
}

fn micro_of(nl: &Netlist, id: ComponentId) -> Option<MicroComponent> {
    match nl.component(id).ok()?.kind {
        ComponentKind::Micro(m) => Some(m),
        _ => None,
    }
}

/// Fig. 14/15: an adder that increments a register feeding back into it is
/// a counter. The antecedent follows Fig. 15: adder + register, SUM → D,
/// Q → adder input, the other adder operand is the constant 1, COUT
/// unconnected, and the register has a Reset pin.
pub struct AdderRegToCounter;

impl AdderRegToCounter {
    fn match_at(nl: &Netlist, au_id: ComponentId) -> Option<RuleMatch> {
        let au = micro_of(nl, au_id)?;
        let MicroComponent::ArithmeticUnit { bits, ops, .. } = au else {
            return None;
        };
        let inc_only = ops.ops() == [ArithOp::Inc];
        let add_only = ops.ops() == [ArithOp::Add];
        if !inc_only && !add_only {
            return None;
        }
        // COUT must be unconnected or dead.
        if let Some(co) = nl.pin_net(au_id, "COUT") {
            if nl.fanout(co) > 0 {
                return None;
            }
        }
        // For add-only units, B must be the constant 1 and CIN constant 0.
        if add_only {
            for i in 0..bits {
                let b = nl.pin_net(au_id, &format!("B{i}"))?;
                let want = i == 0;
                if const_value(nl, b) != Some(want) {
                    return None;
                }
            }
            if let Some(cin) = nl.pin_net(au_id, "CIN") {
                if nl.fanout(cin) > 0 || nl.net_is_port_driven(cin) {
                    // CIN is an input pin; check constant-0 drive instead.
                }
                if const_value(nl, cin) != Some(false) && nl.driver(cin).is_some() {
                    return None;
                }
                if nl.net_is_port_driven(cin) {
                    return None; // externally controlled carry-in
                }
            }
        }
        // Every sum bit must feed exactly one register's D input.
        let mut reg_id: Option<ComponentId> = None;
        for i in 0..bits {
            let s = nl.pin_net(au_id, &format!("S{i}"))?;
            let loads = nl.loads(s);
            if loads.len() != 1 || nl.fanout(s) != 1 {
                return None;
            }
            let load = loads[0];
            let comp = nl.component(load.component).ok()?;
            if comp.pins[load.pin as usize].name != format!("D{i}") {
                return None;
            }
            match reg_id {
                None => reg_id = Some(load.component),
                Some(r) if r == load.component => {}
                _ => return None,
            }
        }
        let reg_id = reg_id?;
        let reg = micro_of(nl, reg_id)?;
        let MicroComponent::Register {
            bits: rbits,
            trigger,
            funcs,
            ctrl,
        } = reg
        else {
            return None;
        };
        if rbits != bits
            || trigger != Trigger::EdgeTriggered
            || funcs != RegFunctions::LOAD
            || !ctrl.reset
            || ctrl.set
            || ctrl.enable
        {
            return None;
        }
        // Q must feed back into the adder's A inputs.
        for i in 0..bits {
            let q = nl.pin_net(reg_id, &format!("Q{i}"))?;
            let a = nl.pin_net(au_id, &format!("A{i}"))?;
            if q != a {
                return None;
            }
        }
        Some(
            RuleMatch::at(au_id)
                .with_aux(vec![reg_id])
                .with_note(format!("adder+register -> {bits}-bit counter")),
        )
    }
}

impl Rule for AdderRegToCounter {
    fn name(&self) -> &'static str {
        "adder-register-to-counter"
    }
    fn class(&self) -> RuleClass {
        RuleClass::Micro
    }
    fn matches(&self, ctx: &RuleCtx) -> Vec<RuleMatch> {
        ctx.nl
            .component_ids()
            .filter_map(|id| Self::match_at(ctx.nl, id))
            .collect()
    }
    fn apply(&self, tx: &mut Tx, m: &RuleMatch) -> Result<(), NetlistError> {
        let nl = tx.netlist();
        let au_id = m.site;
        let reg_id = m.aux[0];
        let Some(MicroComponent::ArithmeticUnit { bits, .. }) = micro_of(nl, au_id) else {
            return Err(NetlistError::NoSuchComponent(au_id));
        };
        // Gather the register's nets.
        let rst = nl
            .pin_net(reg_id, "RST")
            .ok_or(NetlistError::NoSuchComponent(reg_id))?;
        let clk = nl
            .pin_net(reg_id, "CLK")
            .ok_or(NetlistError::NoSuchComponent(reg_id))?;
        let f0 = nl.pin_net(reg_id, "F0");
        let q_nets: Vec<NetId> = (0..bits)
            .map(|i| nl.pin_net(reg_id, &format!("Q{i}")).expect("matched"))
            .collect();
        // The load-select line becomes the counter enable, unless it is
        // tied high ("always counting").
        let enable_net = f0.filter(|&n| const_value(nl, n) != Some(true));
        let ctr = MicroComponent::Counter {
            bits,
            funcs: CounterFunctions::UP,
            ctrl: ControlSet {
                set: false,
                reset: true,
                enable: enable_net.is_some(),
            },
        };
        tx.remove_component(au_id)?;
        tx.remove_component(reg_id)?;
        let c = tx.add_component(format!("ctr{}", au_id.index()), ComponentKind::Micro(ctr));
        tx.connect_named(c, "RST", rst)?;
        tx.connect_named(c, "CLK", clk)?;
        if let Some(en) = enable_net {
            tx.connect_named(c, "EN", en)?;
        }
        for (i, q) in q_nets.iter().enumerate() {
            tx.connect_named(c, &format!("Q{i}"), *q)?;
        }
        Ok(())
    }
}

/// Ripple → carry-lookahead swap: "changing the parameters of the adder to
/// instantiate a carry-lookahead model" (§6.3) — a time-for-area tradeoff.
pub struct RippleToCla;

impl Rule for RippleToCla {
    fn name(&self) -> &'static str {
        "ripple-to-carry-lookahead"
    }
    fn class(&self) -> RuleClass {
        RuleClass::Timing
    }
    fn matches(&self, ctx: &RuleCtx) -> Vec<RuleMatch> {
        ctx.nl
            .component_ids()
            .filter(|&id| {
                matches!(
                    micro_of(ctx.nl, id),
                    Some(MicroComponent::ArithmeticUnit { mode: CarryMode::Ripple, bits, .. })
                        if bits >= 2
                )
            })
            .map(|id| RuleMatch::at(id).with_note("ripple -> CLA"))
            .collect()
    }
    fn apply(&self, tx: &mut Tx, m: &RuleMatch) -> Result<(), NetlistError> {
        let Some(MicroComponent::ArithmeticUnit { bits, ops, .. }) = micro_of(tx.netlist(), m.site)
        else {
            return Err(NetlistError::NoSuchComponent(m.site));
        };
        tx.change_kind(
            m.site,
            ComponentKind::Micro(MicroComponent::ArithmeticUnit {
                bits,
                ops,
                mode: CarryMode::CarryLookahead,
            }),
        )
    }
}

/// Carry-lookahead → ripple: recovers area on paths with timing slack.
pub struct ClaToRipple;

impl Rule for ClaToRipple {
    fn name(&self) -> &'static str {
        "carry-lookahead-to-ripple"
    }
    fn class(&self) -> RuleClass {
        RuleClass::Area
    }
    fn matches(&self, ctx: &RuleCtx) -> Vec<RuleMatch> {
        ctx.nl
            .component_ids()
            .filter(|&id| {
                matches!(
                    micro_of(ctx.nl, id),
                    Some(MicroComponent::ArithmeticUnit {
                        mode: CarryMode::CarryLookahead,
                        ..
                    })
                )
            })
            .map(|id| RuleMatch::at(id).with_note("CLA -> ripple"))
            .collect()
    }
    fn apply(&self, tx: &mut Tx, m: &RuleMatch) -> Result<(), NetlistError> {
        let Some(MicroComponent::ArithmeticUnit { bits, ops, .. }) = micro_of(tx.netlist(), m.site)
        else {
            return Err(NetlistError::NoSuchComponent(m.site));
        };
        tx.change_kind(
            m.site,
            ComponentKind::Micro(MicroComponent::ArithmeticUnit {
                bits,
                ops,
                mode: CarryMode::Ripple,
            }),
        )
    }
}

/// Merges two cascaded 2:1 word multiplexors into one 4:1 multiplexor.
pub struct MuxCascadeMerge;

impl MuxCascadeMerge {
    /// Returns (inner, outer, feeds_d1) when `inner`'s outputs exclusively
    /// feed one data word of `outer`.
    fn match_at(nl: &Netlist, inner_id: ComponentId) -> Option<RuleMatch> {
        let Some(MicroComponent::Multiplexor {
            bits,
            inputs: 2,
            enable: false,
        }) = micro_of(nl, inner_id)
        else {
            return None;
        };
        let mut outer: Option<(ComponentId, u8)> = None; // (id, which data word)
        for j in 0..bits {
            let y = nl.pin_net(inner_id, &format!("Y{j}"))?;
            if nl.fanout(y) != 1 {
                return None;
            }
            let load = nl.loads(y).into_iter().next()?;
            let comp = nl.component(load.component).ok()?;
            let pin_name = comp.pins[load.pin as usize].name.clone();
            let word = if pin_name == format!("D0_{j}") {
                0u8
            } else if pin_name == format!("D1_{j}") {
                1u8
            } else {
                return None;
            };
            match outer {
                None => outer = Some((load.component, word)),
                Some((id, w)) if id == load.component && w == word => {}
                _ => return None,
            }
        }
        let (outer_id, word) = outer?;
        let Some(MicroComponent::Multiplexor {
            bits: ob,
            inputs: 2,
            enable: false,
        }) = micro_of(nl, outer_id)
        else {
            return None;
        };
        if ob != bits || outer_id == inner_id {
            return None;
        }
        Some(
            RuleMatch::at(inner_id)
                .with_aux(vec![outer_id])
                .with_choice(word as usize)
                .with_note(format!("2:1 mux cascade -> 4:1 ({bits} bits)")),
        )
    }
}

impl Rule for MuxCascadeMerge {
    fn name(&self) -> &'static str {
        "mux-cascade-merge"
    }
    fn class(&self) -> RuleClass {
        RuleClass::Micro
    }
    fn matches(&self, ctx: &RuleCtx) -> Vec<RuleMatch> {
        ctx.nl
            .component_ids()
            .filter_map(|id| Self::match_at(ctx.nl, id))
            .collect()
    }
    fn apply(&self, tx: &mut Tx, m: &RuleMatch) -> Result<(), NetlistError> {
        let nl = tx.netlist();
        let inner = m.site;
        let outer = m.aux[0];
        let feeds_word = m.choice as u8;
        let Some(MicroComponent::Multiplexor { bits, .. }) = micro_of(nl, inner) else {
            return Err(NetlistError::NoSuchComponent(inner));
        };
        let get = |id: ComponentId, pin: String| nl.pin_net(id, &pin);
        let a: Vec<NetId> = (0..bits)
            .map(|j| get(inner, format!("D0_{j}")).expect("matched"))
            .collect();
        let b: Vec<NetId> = (0..bits)
            .map(|j| get(inner, format!("D1_{j}")).expect("matched"))
            .collect();
        let other_word = 1 - feeds_word;
        let c: Vec<NetId> = (0..bits)
            .map(|j| get(outer, format!("D{other_word}_{j}")).expect("matched"))
            .collect();
        let y: Vec<NetId> = (0..bits)
            .map(|j| get(outer, format!("Y{j}")).expect("matched"))
            .collect();
        let s = get(inner, "S0".into()).expect("matched");
        let t = get(outer, "S0".into()).expect("matched");
        tx.remove_component(inner)?;
        tx.remove_component(outer)?;
        let mux = MicroComponent::Multiplexor {
            bits,
            inputs: 4,
            enable: false,
        };
        let mid = tx.add_component(format!("mx4_{}", inner.index()), ComponentKind::Micro(mux));
        // Y = T ? C : (S?B:A) when inner feeds D0 → order (A,B,C,C);
        // Y = T ? (S?B:A) : C when inner feeds D1 → order (C,C,A,B).
        let words: [&Vec<NetId>; 4] = if feeds_word == 0 {
            [&a, &b, &c, &c]
        } else {
            [&c, &c, &a, &b]
        };
        for (w, nets) in words.iter().enumerate() {
            for (j, net) in nets.iter().enumerate() {
                tx.connect_named(mid, &format!("D{w}_{j}"), *net)?;
            }
        }
        tx.connect_named(mid, "S0", s)?;
        tx.connect_named(mid, "S1", t)?;
        for (j, net) in y.iter().enumerate() {
            tx.connect_named(mid, &format!("Y{j}"), *net)?;
        }
        Ok(())
    }
}

/// LSS-style decoder/OR simplification (Fig. 7a): an OR over one-hot
/// decoder outputs is a simple function of the address; when the covered
/// minterm set is a single address literal, the OR collapses to a
/// buffer/inverter on that address line.
pub struct DecoderOrSimplify;

impl DecoderOrSimplify {
    fn match_at(nl: &Netlist, or_id: ComponentId) -> Option<RuleMatch> {
        let comp = nl.component(or_id).ok()?;
        let ComponentKind::Generic(GenericMacro::Gate(GateFn::Or, _)) = comp.kind else {
            return None;
        };
        // Every input must come from the same decoder, exclusively.
        let mut dec: Option<ComponentId> = None;
        let mut minterms: Vec<u32> = Vec::new();
        for pin_idx in comp.input_pins() {
            let net = comp.pins[pin_idx as usize].net?;
            if nl.fanout(net) != 1 {
                return None;
            }
            let drv = nl.driver(net)?;
            let d = nl.component(drv.component).ok()?;
            let rest = d.pins[drv.pin as usize].name.strip_prefix('Y')?;
            let idx: u32 = rest.parse().ok()?;
            match &d.kind {
                ComponentKind::Micro(MicroComponent::Decoder { enable: false, .. }) => {}
                _ => return None,
            }
            match dec {
                None => dec = Some(drv.component),
                Some(x) if x == drv.component => {}
                _ => return None,
            }
            minterms.push(idx);
        }
        let dec = dec?;
        let Some(MicroComponent::Decoder { bits, .. }) = micro_of(nl, dec) else {
            return None;
        };
        minterms.sort_unstable();
        minterms.dedup();
        // Single-literal check: S == {i : bit k of i == phase}.
        for k in 0..bits {
            for phase in [true, false] {
                let expect: Vec<u32> = (0..(1u32 << bits))
                    .filter(|i| (i >> k & 1 == 1) == phase)
                    .collect();
                if minterms == expect {
                    return Some(
                        RuleMatch::at(or_id)
                            .with_aux(vec![dec])
                            .with_choice((k as usize) << 1 | usize::from(phase))
                            .with_note(format!(
                                "OR of decoder outputs = {}A{k}",
                                if phase { "" } else { "!" }
                            )),
                    );
                }
            }
        }
        None
    }
}

impl Rule for DecoderOrSimplify {
    fn name(&self) -> &'static str {
        "decoder-or-simplify"
    }
    fn class(&self) -> RuleClass {
        RuleClass::Micro
    }
    fn matches(&self, ctx: &RuleCtx) -> Vec<RuleMatch> {
        ctx.nl
            .component_ids()
            .filter_map(|id| Self::match_at(ctx.nl, id))
            .collect()
    }
    fn apply(&self, tx: &mut Tx, m: &RuleMatch) -> Result<(), NetlistError> {
        let or_id = m.site;
        let dec = m.aux[0];
        let k = (m.choice >> 1) as u8;
        let phase = m.choice & 1 == 1;
        let addr = tx
            .netlist()
            .pin_net(dec, &format!("A{k}"))
            .expect("matched");
        let y = tx
            .netlist()
            .component(or_id)?
            .pins
            .iter()
            .find(|p| p.dir == PinDir::Out)
            .and_then(|p| p.net)
            .ok_or(NetlistError::NoSuchComponent(or_id))?;
        tx.remove_component(or_id)?;
        let g = tx.add_component(
            format!("dor{}", or_id.index()),
            ComponentKind::Generic(GenericMacro::Gate(
                if phase { GateFn::Buf } else { GateFn::Inv },
                1,
            )),
        );
        tx.connect_named(g, "A0", addr)?;
        tx.connect_named(g, "Y", y)?;
        Ok(())
    }
}

/// Word-level constant propagation: a multiplexor whose select lines are
/// all constant passes one data word straight through.
pub struct MuxConstSelect;

impl Rule for MuxConstSelect {
    fn name(&self) -> &'static str {
        "mux-constant-select"
    }
    fn class(&self) -> RuleClass {
        RuleClass::Micro
    }
    fn matches(&self, ctx: &RuleCtx) -> Vec<RuleMatch> {
        let nl = ctx.nl;
        let mut out = Vec::new();
        for id in nl.component_ids() {
            let Some(MicroComponent::Multiplexor {
                inputs,
                enable: false,
                ..
            }) = micro_of(nl, id)
            else {
                continue;
            };
            let selects = milo_netlist::sel_bits(inputs);
            let mut sel = 0usize;
            let mut all_const = true;
            for s in 0..selects {
                match nl
                    .pin_net(id, &format!("S{s}"))
                    .and_then(|n| const_value(nl, n))
                {
                    Some(v) => sel |= usize::from(v) << s,
                    None => {
                        all_const = false;
                        break;
                    }
                }
            }
            if all_const {
                out.push(
                    RuleMatch::at(id)
                        .with_choice(sel)
                        .with_note(format!("mux select constant {sel}")),
                );
            }
        }
        out
    }
    fn apply(&self, tx: &mut Tx, m: &RuleMatch) -> Result<(), NetlistError> {
        let nl = tx.netlist();
        let Some(MicroComponent::Multiplexor { bits, .. }) = micro_of(nl, m.site) else {
            return Err(NetlistError::NoSuchComponent(m.site));
        };
        let sel = m.choice;
        let src: Vec<NetId> = (0..bits)
            .map(|j| nl.pin_net(m.site, &format!("D{sel}_{j}")).expect("matched"))
            .collect();
        let y: Vec<NetId> = (0..bits)
            .map(|j| nl.pin_net(m.site, &format!("Y{j}")).expect("matched"))
            .collect();
        let port_bound: Vec<bool> = y
            .iter()
            .map(|n| tx.netlist().ports().iter().any(|p| p.net == *n))
            .collect();
        tx.remove_component(m.site)?;
        for j in 0..bits as usize {
            if port_bound[j] {
                // Keep the output net alive via a buffer.
                let g = tx.add_component(
                    format!("mcs{}_{j}", m.site.index()),
                    ComponentKind::Generic(GenericMacro::Gate(GateFn::Buf, 1)),
                );
                tx.connect_named(g, "A0", src[j])?;
                tx.connect_named(g, "Y", y[j])?;
            } else {
                tx.move_loads(y[j], src[j])?;
            }
        }
        Ok(())
    }
}

/// Dead-logic removal (cleanup): non-sequential components none of whose
/// outputs drive anything.
pub struct DeadLogicRemoval;

impl Rule for DeadLogicRemoval {
    fn name(&self) -> &'static str {
        "dead-logic-removal"
    }
    fn class(&self) -> RuleClass {
        RuleClass::Cleanup
    }
    fn matches(&self, ctx: &RuleCtx) -> Vec<RuleMatch> {
        let nl = ctx.nl;
        let mut out = Vec::new();
        for id in nl.component_ids() {
            let Ok(comp) = nl.component(id) else { continue };
            if comp.kind.is_sequential() {
                continue;
            }
            let mut has_output = false;
            let mut dead = true;
            for p in &comp.pins {
                if p.dir == PinDir::Out {
                    has_output = true;
                    if let Some(net) = p.net {
                        if nl.fanout(net) > 0 || nl.ports().iter().any(|port| port.net == net) {
                            dead = false;
                            break;
                        }
                    }
                }
            }
            if has_output && dead {
                out.push(RuleMatch::at(id).with_note("dead logic"));
            }
        }
        out
    }
    fn apply(&self, tx: &mut Tx, m: &RuleMatch) -> Result<(), NetlistError> {
        tx.remove_component(m.site)
    }
}

/// The standard microarchitecture rule set.
pub fn standard_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(AdderRegToCounter),
        Box::new(MuxCascadeMerge),
        Box::new(DecoderOrSimplify),
        Box::new(MuxConstSelect),
        Box::new(DeadLogicRemoval),
    ]
}

/// The timing-tradeoff rules, driven separately by the critic's
/// constraint feedback.
pub fn tradeoff_rules() -> (RippleToCla, ClaToRipple) {
    (RippleToCla, ClaToRipple)
}

#[allow(unused_imports)]
pub(crate) use milo_netlist::sel_bits as _sel_bits;

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use milo_rules::Engine;

    /// Builds the Fig. 14 structure: N-bit adder + register with feedback.
    pub(crate) fn fig14_netlist(bits: u8) -> Netlist {
        let mut nl = Netlist::new("fig14");
        let au = nl.add_component(
            "add",
            ComponentKind::Micro(MicroComponent::ArithmeticUnit {
                bits,
                ops: ArithOps::ADD,
                mode: CarryMode::Ripple,
            }),
        );
        let reg = nl.add_component(
            "reg",
            ComponentKind::Micro(MicroComponent::Register {
                bits,
                trigger: Trigger::EdgeTriggered,
                funcs: RegFunctions::LOAD,
                ctrl: ControlSet::RESET,
            }),
        );
        let vdd = nl.add_component("vdd", ComponentKind::Generic(GenericMacro::Vdd));
        let vss = nl.add_component("vss", ComponentKind::Generic(GenericMacro::Vss));
        let one = nl.add_net("one");
        let zero = nl.add_net("zero");
        nl.connect_named(vdd, "Y", one).unwrap();
        nl.connect_named(vss, "Y", zero).unwrap();
        for i in 0..bits {
            let q = nl.add_net(format!("q{i}"));
            nl.connect_named(reg, &format!("Q{i}"), q).unwrap();
            nl.connect_named(au, &format!("A{i}"), q).unwrap();
            nl.add_port(format!("q{i}"), PinDir::Out, q);
            let s = nl.add_net(format!("s{i}"));
            nl.connect_named(au, &format!("S{i}"), s).unwrap();
            nl.connect_named(reg, &format!("D{i}"), s).unwrap();
            nl.connect_named(au, &format!("B{i}"), if i == 0 { one } else { zero })
                .unwrap();
        }
        nl.connect_named(au, "CIN", zero).unwrap();
        let rst = nl.add_net("rst");
        let clk = nl.add_net("clk");
        let ld = nl.add_net("one_f"); // always load
        nl.connect_named(reg, "RST", rst).unwrap();
        nl.connect_named(reg, "CLK", clk).unwrap();
        // F0 tied high: the register always loads.
        let vdd2 = nl.driver(one).unwrap();
        let _ = vdd2;
        nl.connect_named(reg, "F0", one).unwrap();
        let _ = ld;
        nl.add_port("rst", PinDir::In, rst);
        nl.add_port("clk", PinDir::In, clk);
        nl
    }

    #[test]
    fn fig14_rule_fires() {
        let mut nl = fig14_netlist(4);
        let mut engine = Engine::new(standard_rules());
        let fired = engine.run(&mut nl, milo_rules::Selection::OpsOrder, None, 20);
        assert!(fired >= 1, "counter recognition fired");
        let counters = nl
            .component_ids()
            .filter(|&id| matches!(micro_of(&nl, id), Some(MicroComponent::Counter { .. })))
            .count();
        assert_eq!(counters, 1);
        let aus = nl
            .component_ids()
            .filter(|&id| {
                matches!(
                    micro_of(&nl, id),
                    Some(MicroComponent::ArithmeticUnit { .. })
                )
            })
            .count();
        assert_eq!(aus, 0);
    }

    #[test]
    fn fig14_counter_behaves_like_original() {
        use milo_compilers::verify::check_seq_equivalence;
        use milo_netlist::DesignDb;
        // Original (adder+register) vs rewritten (counter), both compiled
        // to gates, must behave identically.
        let original = fig14_netlist(3);
        let mut rewritten = original.clone();
        let mut engine = Engine::new(standard_rules());
        engine.run(&mut rewritten, milo_rules::Selection::OpsOrder, None, 20);

        let mut db = DesignDb::new();
        let elaborate = |nl: &Netlist, db: &mut DesignDb, name: &str| -> Netlist {
            let mut w = nl.clone();
            w.name = name.to_owned();
            milo_compilers::expand_micro_components(&mut w, db).unwrap();
            db.insert(w);
            db.flatten(name).unwrap()
        };
        let flat_a = elaborate(&original, &mut db, "A");
        let flat_b = elaborate(&rewritten, &mut db, "B");
        check_seq_equivalence(&flat_a, &flat_b, 40, 3).unwrap();
    }

    #[test]
    fn counter_rule_rejects_external_cin() {
        let mut nl = fig14_netlist(4);
        // Drive CIN from a port instead of a constant.
        let au = nl
            .component_ids()
            .find(|&id| {
                matches!(
                    micro_of(&nl, id),
                    Some(MicroComponent::ArithmeticUnit { .. })
                )
            })
            .unwrap();
        let cin_pin = nl.component(au).unwrap().pin_index("CIN").unwrap();
        nl.disconnect(milo_netlist::PinRef::new(au, cin_pin))
            .unwrap();
        let ext = nl.add_net("ext_cin");
        nl.add_port("ext_cin", PinDir::In, ext);
        nl.connect_named(au, "CIN", ext).unwrap();
        assert!(AdderRegToCounter::match_at(&nl, au).is_none());
    }

    #[test]
    fn cla_swap_roundtrip() {
        let mut nl = Netlist::new("t");
        let au = nl.add_component(
            "a",
            ComponentKind::Micro(MicroComponent::ArithmeticUnit {
                bits: 4,
                ops: ArithOps::ADD,
                mode: CarryMode::Ripple,
            }),
        );
        let ctx_rule = RippleToCla;
        let m = RuleMatch::at(au);
        let mut tx = Tx::new(&mut nl);
        ctx_rule.apply(&mut tx, &m).unwrap();
        tx.commit();
        assert!(matches!(
            micro_of(&nl, au),
            Some(MicroComponent::ArithmeticUnit {
                mode: CarryMode::CarryLookahead,
                ..
            })
        ));
        let back = ClaToRipple;
        let mut tx = Tx::new(&mut nl);
        back.apply(&mut tx, &m).unwrap();
        tx.commit();
        assert!(matches!(
            micro_of(&nl, au),
            Some(MicroComponent::ArithmeticUnit {
                mode: CarryMode::Ripple,
                ..
            })
        ));
    }

    #[test]
    fn mux_cascade_merges() {
        use milo_compilers::verify::check_comb_equivalence;
        let mut nl = Netlist::new("m");
        let bits = 2u8;
        let m1 = nl.add_component(
            "m1",
            ComponentKind::Micro(MicroComponent::Multiplexor {
                bits,
                inputs: 2,
                enable: false,
            }),
        );
        let m2 = nl.add_component(
            "m2",
            ComponentKind::Micro(MicroComponent::Multiplexor {
                bits,
                inputs: 2,
                enable: false,
            }),
        );
        // a, b into m1; m1 -> m2.D0 ; c into m2.D1.
        for w in 0..2 {
            for j in 0..bits {
                let n = nl.add_net(format!("i{w}_{j}"));
                nl.connect_named(m1, &format!("D{w}_{j}"), n).unwrap();
                nl.add_port(format!("i{w}_{j}"), PinDir::In, n);
            }
        }
        for j in 0..bits {
            let mid = nl.add_net(format!("mid{j}"));
            nl.connect_named(m1, &format!("Y{j}"), mid).unwrap();
            nl.connect_named(m2, &format!("D0_{j}"), mid).unwrap();
            let c = nl.add_net(format!("c{j}"));
            nl.connect_named(m2, &format!("D1_{j}"), c).unwrap();
            nl.add_port(format!("c{j}"), PinDir::In, c);
            let y = nl.add_net(format!("y{j}"));
            nl.connect_named(m2, &format!("Y{j}"), y).unwrap();
            nl.add_port(format!("y{j}"), PinDir::Out, y);
        }
        let s = nl.add_net("s");
        let t = nl.add_net("t");
        nl.connect_named(m1, "S0", s).unwrap();
        nl.connect_named(m2, "S0", t).unwrap();
        nl.add_port("s", PinDir::In, s);
        nl.add_port("t", PinDir::In, t);

        let golden = nl.clone();
        let mut engine = Engine::new(standard_rules());
        let fired = engine.run(&mut nl, milo_rules::Selection::OpsOrder, None, 10);
        assert!(fired >= 1);
        let mux4 = nl
            .component_ids()
            .filter(|&id| {
                matches!(
                    micro_of(&nl, id),
                    Some(MicroComponent::Multiplexor { inputs: 4, .. })
                )
            })
            .count();
        assert_eq!(mux4, 1);
        check_comb_equivalence(&golden, &nl, 0).unwrap();
    }

    #[test]
    fn decoder_or_simplifies_to_literal() {
        use milo_compilers::verify::check_comb_equivalence;
        let mut nl = Netlist::new("d");
        let dec = nl.add_component(
            "dec",
            ComponentKind::Micro(MicroComponent::Decoder {
                bits: 2,
                enable: false,
            }),
        );
        let a0 = nl.add_net("a0");
        let a1 = nl.add_net("a1");
        nl.connect_named(dec, "A0", a0).unwrap();
        nl.connect_named(dec, "A1", a1).unwrap();
        nl.add_port("a0", PinDir::In, a0);
        nl.add_port("a1", PinDir::In, a1);
        // OR of Y1 and Y3 = minterms {1,3} = A0.
        let or = nl.add_component(
            "or",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Or, 2)),
        );
        let y1 = nl.add_net("y1");
        let y3 = nl.add_net("y3");
        nl.connect_named(dec, "Y1", y1).unwrap();
        nl.connect_named(dec, "Y3", y3).unwrap();
        nl.connect_named(or, "A0", y1).unwrap();
        nl.connect_named(or, "A1", y3).unwrap();
        let f = nl.add_net("f");
        nl.connect_named(or, "Y", f).unwrap();
        nl.add_port("f", PinDir::Out, f);
        // Keep the other decoder outputs connected to ports so the decoder
        // itself is not dead.
        for i in [0u8, 2] {
            let y = nl.add_net(format!("yo{i}"));
            nl.connect_named(dec, &format!("Y{i}"), y).unwrap();
            nl.add_port(format!("yo{i}"), PinDir::Out, y);
        }
        let golden = nl.clone();
        let mut engine = Engine::new(standard_rules());
        let fired = engine.run(&mut nl, milo_rules::Selection::OpsOrder, None, 10);
        assert!(fired >= 1, "decoder-or rule fired");
        check_comb_equivalence(&golden, &nl, 0).unwrap();
        // The OR is gone.
        let ors = nl
            .component_ids()
            .filter(|&id| {
                matches!(
                    nl.component(id).map(|c| &c.kind),
                    Ok(ComponentKind::Generic(GenericMacro::Gate(GateFn::Or, _)))
                )
            })
            .count();
        assert_eq!(ors, 0);
    }

    #[test]
    fn mux_const_select_passthrough() {
        use milo_compilers::verify::check_comb_equivalence;
        let mut nl = Netlist::new("m");
        let m1 = nl.add_component(
            "m1",
            ComponentKind::Micro(MicroComponent::Multiplexor {
                bits: 1,
                inputs: 2,
                enable: false,
            }),
        );
        let vdd = nl.add_component("vdd", ComponentKind::Generic(GenericMacro::Vdd));
        let one = nl.add_net("one");
        nl.connect_named(vdd, "Y", one).unwrap();
        let d0 = nl.add_net("d0");
        let d1 = nl.add_net("d1");
        let y = nl.add_net("y");
        nl.connect_named(m1, "D0_0", d0).unwrap();
        nl.connect_named(m1, "D1_0", d1).unwrap();
        nl.connect_named(m1, "S0", one).unwrap();
        nl.connect_named(m1, "Y0", y).unwrap();
        nl.add_port("d0", PinDir::In, d0);
        nl.add_port("d1", PinDir::In, d1);
        nl.add_port("y", PinDir::Out, y);
        let golden = nl.clone();
        let mut engine = Engine::new(standard_rules());
        let fired = engine.run(&mut nl, milo_rules::Selection::OpsOrder, None, 10);
        assert!(fired >= 1);
        check_comb_equivalence(&golden, &nl, 0).unwrap();
    }
}
