//! The microarchitecture critic (§6.3): local word-level rewrites, plus
//! constraint-driven time/area tradeoffs informed by the compile→map→
//! measure feedback loop of Fig. 16.

use crate::feedback::{measure, FeedbackError};
use crate::rules::{standard_rules, ClaToRipple, RippleToCla};
use milo_netlist::{DesignDb, Netlist};
use milo_rules::{Engine, Rule, RuleCtx, Selection};
use milo_techmap::TechLibrary;
use milo_timing::DesignStats;

/// Report from one critic run.
#[derive(Clone, Debug)]
pub struct CriticReport {
    /// Names of rules fired during the unconditional rewrite phase.
    pub fired: Vec<&'static str>,
    /// Mapped-design statistics before the critic ran.
    pub before: DesignStats,
    /// Mapped-design statistics after.
    pub after: DesignStats,
    /// Ripple→CLA upgrades made to meet timing.
    pub cla_upgrades: usize,
    /// CLA→ripple downgrades made to recover area under slack.
    pub ripple_downgrades: usize,
    /// Whether the timing constraint was met (None = unconstrained).
    pub met_timing: Option<bool>,
}

/// Runs the microarchitecture critic on a micro-level netlist.
///
/// Phase 1 applies the always-beneficial structural rewrites (counter
/// recognition, mux merging, decoder/OR simplification, constant
/// propagation, dead-logic cleanup). Phase 2, when `max_delay` is given,
/// uses the feedback loop: upgrade ripple adders to carry-lookahead while
/// the measured mapped delay misses the constraint, then downgrade CLA
/// adders back where slack allows, recovering area — exactly the Fig. 16
/// flow ("changing the parameters of the adder to instantiate a
/// carry-lookahead model").
///
/// # Errors
///
/// Propagates feedback-measurement failures.
pub fn optimize(
    nl: &mut Netlist,
    db: &mut DesignDb,
    lib: &TechLibrary,
    max_delay: Option<f64>,
) -> Result<CriticReport, FeedbackError> {
    let before = measure(nl, db, lib)?;

    // Phase 1: unconditional microarchitecture rewrites.
    let mut engine = Engine::new(standard_rules());
    engine.run(nl, Selection::OpsOrder, None, 1000);
    let fired: Vec<&'static str> = engine.firings.iter().map(|f| f.rule).collect();

    // Phase 2: constraint-driven carry-mode tradeoffs via feedback.
    let mut cla_upgrades = 0usize;
    let mut ripple_downgrades = 0usize;
    let mut met_timing = None;
    if let Some(limit) = max_delay {
        let mut stats = measure(nl, db, lib)?;
        // Upgrade while failing.
        while stats.delay > limit {
            let rule = RippleToCla;
            let candidates = rule.matches(&RuleCtx { nl, sta: None });
            // Try each candidate, keep the one with the best measured
            // delay (the critic evaluates through the compilers).
            let mut best: Option<(f64, milo_rules::RuleMatch)> = None;
            for m in candidates {
                let mut trial = nl.clone();
                let mut tx = milo_rules::Tx::new(&mut trial);
                if rule.apply(&mut tx, &m).is_err() {
                    continue;
                }
                tx.commit();
                if let Ok(s) = measure(&trial, db, lib) {
                    if best.as_ref().is_none_or(|(d, _)| s.delay < *d) {
                        best = Some((s.delay, m));
                    }
                }
            }
            match best {
                Some((_, m)) => {
                    let mut tx = milo_rules::Tx::new(nl);
                    rule.apply(&mut tx, &m).map_err(FeedbackError::Netlist)?;
                    tx.commit();
                    cla_upgrades += 1;
                    stats = measure(nl, db, lib)?;
                }
                None => break, // no more adders to upgrade
            }
        }
        // Downgrade where slack allows.
        loop {
            let rule = ClaToRipple;
            let candidates = rule.matches(&RuleCtx { nl, sta: None });
            let mut applied = false;
            for m in candidates {
                let mut trial = nl.clone();
                let mut tx = milo_rules::Tx::new(&mut trial);
                if rule.apply(&mut tx, &m).is_err() {
                    continue;
                }
                tx.commit();
                if let Ok(s) = measure(&trial, db, lib) {
                    if s.delay <= limit {
                        *nl = trial;
                        ripple_downgrades += 1;
                        applied = true;
                        break;
                    }
                }
            }
            if !applied {
                break;
            }
        }
        let final_stats = measure(nl, db, lib)?;
        met_timing = Some(final_stats.delay <= limit);
    }

    let after = measure(nl, db, lib)?;
    Ok(CriticReport {
        fired,
        before,
        after,
        cla_upgrades,
        ripple_downgrades,
        met_timing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_netlist::{ArithOps, CarryMode, ComponentKind, MicroComponent, PinDir};
    use milo_techmap::ecl_library;

    /// A 8-bit ripple adder between ports — timing-constrainable.
    fn adder_netlist(bits: u8) -> Netlist {
        let mut nl = Netlist::new("addtop");
        let au = nl.add_component(
            "au",
            ComponentKind::Micro(MicroComponent::ArithmeticUnit {
                bits,
                ops: ArithOps::ADD,
                mode: CarryMode::Ripple,
            }),
        );
        let pins: Vec<(String, PinDir)> = nl
            .component(au)
            .unwrap()
            .pins
            .iter()
            .map(|p| (p.name.clone(), p.dir))
            .collect();
        for (pin, dir) in pins {
            let net = nl.add_net(pin.clone());
            nl.connect_named(au, &pin, net).unwrap();
            nl.add_port(pin, dir, net);
        }
        nl
    }

    #[test]
    fn critic_upgrades_to_cla_under_tight_constraint() {
        let mut nl = adder_netlist(8);
        let mut db = DesignDb::new();
        let lib = ecl_library();
        let unconstrained = measure(&nl, &mut db, &lib).unwrap();
        // Pick a limit between CLA and ripple delay.
        let report = optimize(&mut nl, &mut db, &lib, Some(unconstrained.delay * 0.7)).unwrap();
        assert!(report.cla_upgrades >= 1, "{report:?}");
        assert_eq!(report.met_timing, Some(true), "{report:?}");
        assert!(report.after.delay < report.before.delay);
        assert!(
            report.after.area > report.before.area,
            "speed was bought with area"
        );
    }

    #[test]
    fn critic_keeps_ripple_under_loose_constraint() {
        let mut nl = adder_netlist(8);
        let mut db = DesignDb::new();
        let lib = ecl_library();
        let report = optimize(&mut nl, &mut db, &lib, Some(1e6)).unwrap();
        assert_eq!(report.cla_upgrades, 0);
        assert_eq!(report.met_timing, Some(true));
    }

    #[test]
    fn critic_recognizes_counter_and_shrinks_design() {
        let mut nl = crate::rules::tests::fig14_netlist(4);
        let mut db = DesignDb::new();
        let lib = ecl_library();
        let report = optimize(&mut nl, &mut db, &lib, None).unwrap();
        assert!(
            report.fired.contains(&"adder-register-to-counter"),
            "{report:?}"
        );
        assert!(
            report.after.area < report.before.area,
            "counter beats adder+register: {report:?}"
        );
    }
}
