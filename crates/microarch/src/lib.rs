//! # milo-microarch
//!
//! The microarchitecture critic of MILO (§6.3, Figs. 14–16): word-level
//! rewrite rules over parameterized components, plus the statistics
//! feedback loop that compiles and technology-maps the design to obtain
//! true delay/area/power numbers before making tradeoffs.
//!
//! * [`rules`] — the rule set: adder+register→counter (Fig. 14/15), mux
//!   cascade merging, decoder/OR simplification (LSS Fig. 7a), word-level
//!   constant propagation, dead-logic cleanup, and the ripple↔CLA
//!   tradeoff pair;
//! * [`feedback`] — compile → flatten → map → measure (Fig. 16);
//! * [`critic::optimize`] — the full critic: unconditional rewrites, then
//!   constraint-driven carry-mode tradeoffs.

#![warn(missing_docs)]

pub mod critic;
pub mod feedback;
pub mod rules;

pub use critic::{optimize, CriticReport};
pub use feedback::{elaborate, measure, FeedbackError};
pub use rules::{standard_rules, AdderRegToCounter, ClaToRipple, RippleToCla};
