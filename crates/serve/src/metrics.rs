//! Service metrics: job counters, cache effectiveness, per-pass wall
//! time, and worker utilization — everything the `stats` request
//! reports.
//!
//! Counters are lock-free atomics; the per-pass table takes a small
//! mutex only when a job finishes. Wall times accumulate in
//! nanoseconds and are reported as totals plus run counts, so clients
//! can derive means without the server smoothing anything away. The
//! pass-run counts double as the cache-effectiveness oracle in tests:
//! a cache-hit job increments job counters but no pass counters.

use crate::cache::CacheStats;
use crate::scheduler::QueueStats;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One pass's accumulated service-lifetime cost.
#[derive(Clone, Copy, Debug, Default)]
pub struct PassCost {
    /// Times the pass ran (skipped slots excluded).
    pub runs: u64,
    /// Total wall nanoseconds across those runs.
    pub total_ns: u64,
}

/// Live service counters.
pub struct Metrics {
    started: Instant,
    workers: u64,
    jobs_submitted: AtomicU64,
    jobs_running: AtomicU64,
    jobs_done: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_cancelled: AtomicU64,
    cache_hits: AtomicU64,
    prefix_hits: AtomicU64,
    disk_hits: AtomicU64,
    cache_misses: AtomicU64,
    busy_ns: AtomicU64,
    per_pass: Mutex<BTreeMap<String, PassCost>>,
}

impl Metrics {
    /// Fresh counters for a server with `workers` worker threads.
    pub fn new(workers: usize) -> Self {
        Self {
            started: Instant::now(),
            workers: workers as u64,
            jobs_submitted: AtomicU64::new(0),
            jobs_running: AtomicU64::new(0),
            jobs_done: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_cancelled: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            prefix_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
            per_pass: Mutex::new(BTreeMap::new()),
        }
    }

    /// A job entered the queue.
    pub fn submitted(&self) {
        self.jobs_submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker picked a job up.
    pub fn running(&self) {
        self.jobs_running.fetch_add(1, Ordering::Relaxed);
    }

    /// A job left the running state, successfully.
    pub fn done(&self) {
        self.jobs_running.fetch_sub(1, Ordering::Relaxed);
        self.jobs_done.fetch_add(1, Ordering::Relaxed);
    }

    /// A job left the running state with an error.
    pub fn failed(&self) {
        self.jobs_running.fetch_sub(1, Ordering::Relaxed);
        self.jobs_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// A job was cancelled before (or instead of) running.
    pub fn cancelled(&self) {
        self.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// Exact-tier cache hit (no passes ran).
    pub fn cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Prefix-tier hit (resume flow ran from the first dirty pass).
    pub fn prefix_hit(&self) {
        self.prefix_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Exact hit served from the disk spill store (no passes ran; the
    /// entry was promoted back into memory).
    pub fn disk_hit(&self) {
        self.disk_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Full synthesis run.
    pub fn cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Worker busy time spent on one job.
    pub fn busy(&self, ns: u64) {
        self.busy_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Folds one finished flow's per-pass wall times in.
    pub fn record_passes<'a>(&self, passes: impl Iterator<Item = (&'a str, bool, u64)>) {
        let mut table = self.per_pass.lock().unwrap_or_else(|e| e.into_inner());
        for (name, skipped, wall_ns) in passes {
            if skipped {
                continue;
            }
            let cost = table.entry(name.to_owned()).or_default();
            cost.runs += 1;
            cost.total_ns += wall_ns;
        }
    }

    /// Lifetime run count of one pass (test oracle).
    pub fn pass_runs(&self, name: &str) -> u64 {
        self.per_pass
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .map_or(0, |c| c.runs)
    }

    /// Renders the full counter set as a JSON object. Cache hit rate is
    /// exact hits (memory or disk) over terminal lookups; utilization
    /// is busy time over `workers × uptime`.
    ///
    /// The v1.1 schema groups cache counters under `"cache"` and
    /// scheduler counters under `"queue"`; the pre-1.1 flat keys
    /// (`jobs.queued`, `cache.hits`, …) are still rendered for one
    /// release so existing dashboards keep working.
    pub fn to_json(&self, queue: &QueueStats, cache: &CacheStats, shard_sizes: &[usize]) -> String {
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let prefix = self.prefix_hits.load(Ordering::Relaxed);
        let disk_hits = self.disk_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        let looked = hits + disk_hits + prefix + misses;
        let hit_rate = if looked == 0 {
            0.0
        } else {
            (hits + disk_hits) as f64 / looked as f64
        };
        let uptime_ns = self.started.elapsed().as_nanos() as u64;
        let capacity = self.workers.saturating_mul(uptime_ns);
        let utilization = if capacity == 0 {
            0.0
        } else {
            (self.busy_ns.load(Ordering::Relaxed) as f64 / capacity as f64).min(1.0)
        };
        let mut passes = String::from("{");
        {
            let table = self.per_pass.lock().unwrap_or_else(|e| e.into_inner());
            for (i, (name, cost)) in table.iter().enumerate() {
                if i > 0 {
                    passes.push_str(", ");
                }
                passes.push_str(&format!(
                    "{}: {{\"runs\": {}, \"total_ns\": {}}}",
                    milo_core::json_string(name),
                    cost.runs,
                    cost.total_ns
                ));
            }
        }
        passes.push('}');
        let shards = shard_sizes
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        let bands = ["high", "normal", "low"]
            .iter()
            .zip(&queue.bands)
            .map(|(name, b)| {
                format!(
                    "\"{name}\": {{\"depth\": {}, \"scheduled\": {}}}",
                    b.depth, b.scheduled
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"workers\": {}, \"uptime_ns\": {}, \"jobs\": {{\"submitted\": {}, \"queued\": {}, \"running\": {}, \"done\": {}, \"failed\": {}, \"cancelled\": {}}}, \
             \"cache\": {{\"hits\": {}, \"prefix_hits\": {}, \"disk_hits\": {}, \"misses\": {}, \"hit_rate\": {}, \"evictions\": {}, \"spilled\": {}, \"resident_bytes\": {}, \"exact_entries\": {}, \"prefix_entries\": {}, \"disk_entries\": {}}}, \
             \"queue\": {{\"depth\": {}, \"clients\": {}, \"bands\": {{{}}}}}, \
             \"worker_utilization\": {}, \"passes\": {}, \"shard_sizes\": [{}]}}",
            self.workers,
            uptime_ns,
            self.jobs_submitted.load(Ordering::Relaxed),
            queue.depth,
            self.jobs_running.load(Ordering::Relaxed),
            self.jobs_done.load(Ordering::Relaxed),
            self.jobs_failed.load(Ordering::Relaxed),
            self.jobs_cancelled.load(Ordering::Relaxed),
            hits,
            prefix,
            disk_hits,
            misses,
            hit_rate,
            cache.evictions,
            cache.spilled,
            cache.resident_bytes,
            cache.exact_entries,
            cache.prefix_entries,
            cache.disk_entries,
            queue.depth,
            queue.clients,
            bands,
            utilization,
            passes,
            shards,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render() {
        let m = Metrics::new(2);
        m.submitted();
        m.submitted();
        m.running();
        m.cache_miss();
        m.done();
        m.running();
        m.cache_hit();
        m.done();
        m.busy(1_000);
        m.record_passes([("compile", false, 500u64), ("timing-area", false, 300)].into_iter());
        m.record_passes([("compile", false, 100u64), ("skipped", true, 9)].into_iter());

        assert_eq!(m.pass_runs("compile"), 2);
        assert_eq!(m.pass_runs("timing-area"), 1);
        assert_eq!(m.pass_runs("skipped"), 0, "skipped slots don't count");

        m.disk_hit();

        let queue = QueueStats {
            depth: 3,
            clients: 2,
            bands: {
                let mut bands = [crate::scheduler::BandStats::default(); 3];
                bands[1].depth = 3;
                bands[1].scheduled = 7;
                bands
            },
        };
        let cache_stats = CacheStats {
            resident_bytes: 4096,
            exact_entries: 1,
            prefix_entries: 0,
            disk_entries: 5,
            evictions: 2,
            spilled: 3,
            disk_hits: 1,
        };
        let json = m.to_json(&queue, &cache_stats, &[1, 0]);
        let v = crate::json::parse(&json).expect("stats json parses");
        let jobs = v.get("jobs").expect("jobs object");
        assert_eq!(jobs.get("done").and_then(|x| x.as_u64()), Some(2));
        assert_eq!(
            jobs.get("queued").and_then(|x| x.as_u64()),
            Some(3),
            "pre-1.1 flat key still rendered"
        );
        let cache = v.get("cache").expect("cache object");
        assert_eq!(cache.get("hits").and_then(|x| x.as_u64()), Some(1));
        assert_eq!(cache.get("disk_hits").and_then(|x| x.as_u64()), Some(1));
        assert_eq!(cache.get("misses").and_then(|x| x.as_u64()), Some(1));
        // 1 memory hit + 1 disk hit over 3 terminal lookups.
        assert_eq!(
            cache.get("hit_rate").and_then(|x| x.as_f64()),
            Some(2.0 / 3.0)
        );
        assert_eq!(cache.get("evictions").and_then(|x| x.as_u64()), Some(2));
        assert_eq!(cache.get("spilled").and_then(|x| x.as_u64()), Some(3));
        assert_eq!(
            cache.get("resident_bytes").and_then(|x| x.as_u64()),
            Some(4096)
        );
        assert_eq!(cache.get("disk_entries").and_then(|x| x.as_u64()), Some(5));
        let q = v.get("queue").expect("queue object");
        assert_eq!(q.get("depth").and_then(|x| x.as_u64()), Some(3));
        assert_eq!(q.get("clients").and_then(|x| x.as_u64()), Some(2));
        let normal = q.get("bands").and_then(|b| b.get("normal")).expect("band");
        assert_eq!(normal.get("depth").and_then(|x| x.as_u64()), Some(3));
        assert_eq!(normal.get("scheduled").and_then(|x| x.as_u64()), Some(7));
        let passes = v.get("passes").expect("passes object");
        assert_eq!(
            passes
                .get("compile")
                .and_then(|c| c.get("runs"))
                .and_then(|x| x.as_u64()),
            Some(2)
        );
    }
}
