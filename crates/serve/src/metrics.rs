//! Service metrics: job counters, cache effectiveness, per-pass wall
//! time, and worker utilization — everything the `stats` request
//! reports.
//!
//! Counters are lock-free atomics. Since v1.1 the per-pass table and
//! the per-band queue-wait distributions live in a private
//! [`milo_trace::Registry`] as log-bucketed histograms
//! (`serve.pass_ns.<pass>`, `serve.queue_wait_ns.<band>`), so `stats`
//! can report p50/p95/p99 without the server smoothing anything away.
//! The registry is per-instance, not [`milo_trace::Registry::global`],
//! so concurrent servers in one test process never see each other's
//! samples. The pass-run counts double as the cache-effectiveness
//! oracle in tests: a cache-hit job increments job counters but no
//! pass counters.

use crate::cache::CacheStats;
use crate::scheduler::QueueStats;
use milo_trace::{Histogram, Registry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Registry prefix for per-pass wall-time histograms.
const PASS_PREFIX: &str = "serve.pass_ns.";
/// Registry prefix for per-band queue-wait histograms.
const WAIT_PREFIX: &str = "serve.queue_wait_ns.";
/// Band names, indexed by [`crate::protocol::Priority::index`].
const BAND_NAMES: [&str; 3] = ["high", "normal", "low"];

/// Live service counters.
pub struct Metrics {
    started: Instant,
    workers: u64,
    jobs_submitted: AtomicU64,
    jobs_running: AtomicU64,
    jobs_done: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_cancelled: AtomicU64,
    cache_hits: AtomicU64,
    prefix_hits: AtomicU64,
    disk_hits: AtomicU64,
    cache_misses: AtomicU64,
    busy_ns: AtomicU64,
    registry: Registry,
    queue_wait: [Arc<Histogram>; 3],
}

impl Metrics {
    /// Fresh counters for a server with `workers` worker threads.
    pub fn new(workers: usize) -> Self {
        let registry = Registry::new();
        let queue_wait =
            std::array::from_fn(|i| registry.histogram(&format!("{WAIT_PREFIX}{}", BAND_NAMES[i])));
        Self {
            started: Instant::now(),
            workers: workers as u64,
            jobs_submitted: AtomicU64::new(0),
            jobs_running: AtomicU64::new(0),
            jobs_done: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_cancelled: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            prefix_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
            registry,
            queue_wait,
        }
    }

    /// This server's private metric registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// A job entered the queue.
    pub fn submitted(&self) {
        self.jobs_submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker picked a job up.
    pub fn running(&self) {
        self.jobs_running.fetch_add(1, Ordering::Relaxed);
    }

    /// A job left the running state, successfully.
    pub fn done(&self) {
        self.jobs_running.fetch_sub(1, Ordering::Relaxed);
        self.jobs_done.fetch_add(1, Ordering::Relaxed);
    }

    /// A job left the running state with an error.
    pub fn failed(&self) {
        self.jobs_running.fetch_sub(1, Ordering::Relaxed);
        self.jobs_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// A job was cancelled before (or instead of) running.
    pub fn cancelled(&self) {
        self.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// Exact-tier cache hit (no passes ran).
    pub fn cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Prefix-tier hit (resume flow ran from the first dirty pass).
    pub fn prefix_hit(&self) {
        self.prefix_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Exact hit served from the disk spill store (no passes ran; the
    /// entry was promoted back into memory).
    pub fn disk_hit(&self) {
        self.disk_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Full synthesis run.
    pub fn cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Worker busy time spent on one job.
    pub fn busy(&self, ns: u64) {
        self.busy_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records how long a work unit sat queued in `band` (a
    /// [`crate::protocol::Priority::index`]) before a worker claimed
    /// it.
    pub fn queue_wait(&self, band: usize, wait_ns: u64) {
        if let Some(h) = self.queue_wait.get(band) {
            h.record(wait_ns);
        }
    }

    /// Folds one finished flow's per-pass wall times in.
    pub fn record_passes<'a>(&self, passes: impl Iterator<Item = (&'a str, bool, u64)>) {
        for (name, skipped, wall_ns) in passes {
            if skipped {
                continue;
            }
            self.registry
                .histogram(&format!("{PASS_PREFIX}{name}"))
                .record(wall_ns);
        }
    }

    /// Lifetime run count of one pass (test oracle).
    pub fn pass_runs(&self, name: &str) -> u64 {
        self.registry
            .histogram(&format!("{PASS_PREFIX}{name}"))
            .count()
    }

    /// Renders the full counter set as a JSON object. Cache hit rate is
    /// exact hits (memory or disk) over terminal lookups; utilization
    /// is busy time over `workers × uptime`.
    ///
    /// The v1.1 schema groups cache counters under `"cache"` and
    /// scheduler counters under `"queue"`, and adds `"histograms"`
    /// (per-band queue wait and per-pass wall time, each summarized as
    /// `{"count", "sum", "mean", "p50", "p95", "p99"}`). The pre-1.1
    /// keys — flat `jobs.queued` and the `"passes"` `{runs, total_ns}`
    /// table, now derived from the histograms — are still rendered for
    /// one release so existing dashboards keep working.
    pub fn to_json(&self, queue: &QueueStats, cache: &CacheStats, shard_sizes: &[usize]) -> String {
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let prefix = self.prefix_hits.load(Ordering::Relaxed);
        let disk_hits = self.disk_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        let looked = hits + disk_hits + prefix + misses;
        let hit_rate = if looked == 0 {
            0.0
        } else {
            (hits + disk_hits) as f64 / looked as f64
        };
        let uptime_ns = self.started.elapsed().as_nanos() as u64;
        let capacity = self.workers.saturating_mul(uptime_ns);
        let utilization = if capacity == 0 {
            0.0
        } else {
            (self.busy_ns.load(Ordering::Relaxed) as f64 / capacity as f64).min(1.0)
        };
        let pass_snaps = self.registry.histograms_with_prefix(PASS_PREFIX);
        let mut passes = String::from("{");
        let mut pass_summaries = String::from("{");
        for (i, (name, snap)) in pass_snaps.iter().enumerate() {
            let short = milo_core::json_string(&name[PASS_PREFIX.len()..]);
            if i > 0 {
                passes.push_str(", ");
                pass_summaries.push_str(", ");
            }
            passes.push_str(&format!(
                "{short}: {{\"runs\": {}, \"total_ns\": {}}}",
                snap.count, snap.sum
            ));
            pass_summaries.push_str(&format!("{short}: {}", snap.summary_json()));
        }
        passes.push('}');
        pass_summaries.push('}');
        let queue_wait = BAND_NAMES
            .iter()
            .zip(&self.queue_wait)
            .map(|(name, h)| format!("\"{name}\": {}", h.snapshot().summary_json()))
            .collect::<Vec<_>>()
            .join(", ");
        let shards = shard_sizes
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        let bands = BAND_NAMES
            .iter()
            .zip(&queue.bands)
            .map(|(name, b)| {
                format!(
                    "\"{name}\": {{\"depth\": {}, \"scheduled\": {}}}",
                    b.depth, b.scheduled
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"workers\": {}, \"uptime_ns\": {}, \"jobs\": {{\"submitted\": {}, \"queued\": {}, \"running\": {}, \"done\": {}, \"failed\": {}, \"cancelled\": {}}}, \
             \"cache\": {{\"hits\": {}, \"prefix_hits\": {}, \"disk_hits\": {}, \"misses\": {}, \"hit_rate\": {}, \"evictions\": {}, \"spilled\": {}, \"resident_bytes\": {}, \"exact_entries\": {}, \"prefix_entries\": {}, \"disk_entries\": {}}}, \
             \"queue\": {{\"depth\": {}, \"clients\": {}, \"bands\": {{{}}}}}, \
             \"histograms\": {{\"queue_wait\": {{{}}}, \"passes\": {}}}, \
             \"worker_utilization\": {}, \"passes\": {}, \"shard_sizes\": [{}]}}",
            self.workers,
            uptime_ns,
            self.jobs_submitted.load(Ordering::Relaxed),
            queue.depth,
            self.jobs_running.load(Ordering::Relaxed),
            self.jobs_done.load(Ordering::Relaxed),
            self.jobs_failed.load(Ordering::Relaxed),
            self.jobs_cancelled.load(Ordering::Relaxed),
            hits,
            prefix,
            disk_hits,
            misses,
            hit_rate,
            cache.evictions,
            cache.spilled,
            cache.resident_bytes,
            cache.exact_entries,
            cache.prefix_entries,
            cache.disk_entries,
            queue.depth,
            queue.clients,
            bands,
            queue_wait,
            pass_summaries,
            utilization,
            passes,
            shards,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render() {
        let m = Metrics::new(2);
        m.submitted();
        m.submitted();
        m.running();
        m.cache_miss();
        m.done();
        m.running();
        m.cache_hit();
        m.done();
        m.busy(1_000);
        m.record_passes([("compile", false, 500u64), ("timing-area", false, 300)].into_iter());
        m.record_passes([("compile", false, 100u64), ("skipped", true, 9)].into_iter());

        assert_eq!(m.pass_runs("compile"), 2);
        assert_eq!(m.pass_runs("timing-area"), 1);
        assert_eq!(m.pass_runs("skipped"), 0, "skipped slots don't count");

        m.disk_hit();
        m.queue_wait(1, 2_000);
        m.queue_wait(1, 4_000);

        let queue = QueueStats {
            depth: 3,
            clients: 2,
            bands: {
                let mut bands = [crate::scheduler::BandStats::default(); 3];
                bands[1].depth = 3;
                bands[1].scheduled = 7;
                bands
            },
        };
        let cache_stats = CacheStats {
            resident_bytes: 4096,
            exact_entries: 1,
            prefix_entries: 0,
            disk_entries: 5,
            evictions: 2,
            spilled: 3,
            disk_hits: 1,
        };
        let json = m.to_json(&queue, &cache_stats, &[1, 0]);
        let v = crate::json::parse(&json).expect("stats json parses");
        let jobs = v.get("jobs").expect("jobs object");
        assert_eq!(jobs.get("done").and_then(|x| x.as_u64()), Some(2));
        assert_eq!(
            jobs.get("queued").and_then(|x| x.as_u64()),
            Some(3),
            "pre-1.1 flat key still rendered"
        );
        let cache = v.get("cache").expect("cache object");
        assert_eq!(cache.get("hits").and_then(|x| x.as_u64()), Some(1));
        assert_eq!(cache.get("disk_hits").and_then(|x| x.as_u64()), Some(1));
        assert_eq!(cache.get("misses").and_then(|x| x.as_u64()), Some(1));
        // 1 memory hit + 1 disk hit over 3 terminal lookups.
        assert_eq!(
            cache.get("hit_rate").and_then(|x| x.as_f64()),
            Some(2.0 / 3.0)
        );
        assert_eq!(cache.get("evictions").and_then(|x| x.as_u64()), Some(2));
        assert_eq!(cache.get("spilled").and_then(|x| x.as_u64()), Some(3));
        assert_eq!(
            cache.get("resident_bytes").and_then(|x| x.as_u64()),
            Some(4096)
        );
        assert_eq!(cache.get("disk_entries").and_then(|x| x.as_u64()), Some(5));
        let q = v.get("queue").expect("queue object");
        assert_eq!(q.get("depth").and_then(|x| x.as_u64()), Some(3));
        assert_eq!(q.get("clients").and_then(|x| x.as_u64()), Some(2));
        let normal = q.get("bands").and_then(|b| b.get("normal")).expect("band");
        assert_eq!(normal.get("depth").and_then(|x| x.as_u64()), Some(3));
        assert_eq!(normal.get("scheduled").and_then(|x| x.as_u64()), Some(7));
        let passes = v.get("passes").expect("passes object");
        assert_eq!(
            passes
                .get("compile")
                .and_then(|c| c.get("runs"))
                .and_then(|x| x.as_u64()),
            Some(2)
        );
        assert_eq!(
            passes
                .get("compile")
                .and_then(|c| c.get("total_ns"))
                .and_then(|x| x.as_u64()),
            Some(600),
            "passes table is derived from the histograms"
        );
        let hists = v.get("histograms").expect("histograms object");
        let wait = hists
            .get("queue_wait")
            .and_then(|w| w.get("normal"))
            .expect("normal-band queue wait");
        assert_eq!(wait.get("count").and_then(|x| x.as_u64()), Some(2));
        assert_eq!(wait.get("sum").and_then(|x| x.as_u64()), Some(6_000));
        assert!(
            wait.get("p95").and_then(|x| x.as_u64()).expect("p95") >= 4_000,
            "p95 bound covers the slowest wait"
        );
        let compile = hists
            .get("passes")
            .and_then(|p| p.get("compile"))
            .expect("pass summary");
        assert_eq!(compile.get("count").and_then(|x| x.as_u64()), Some(2));
        assert!(compile.get("p50").is_some());
    }
}
