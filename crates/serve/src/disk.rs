//! The persistent exact-tier cache: length-prefixed records in an
//! append-only data file plus a sidecar index, keyed by the same
//! `job_key` fingerprints the in-memory tier uses.
//!
//! Layout under `--cache-dir`:
//!
//! * `exact.dat` — append-only records, each self-describing:
//!   `magic(4) | key(8) | flags(1) | result_hash(8) | json_len(4) |
//!   json bytes`. The stored bytes are the job's `FlowOutput` JSON
//!   exactly as the first run rendered it, so a disk replay is
//!   byte-identical to `synthesize_batch_results` output by
//!   construction — nothing is re-encoded on either side of the disk.
//! * `exact.idx` — fixed-width `(key, offset, json_len, flags, hash)`
//!   rows appended in lockstep, so warm start is one small sequential
//!   read instead of a full data scan.
//!
//! Warm start trusts the index only as far as it can be validated
//! against the data file; a missing, misaligned, or truncated index
//! falls back to scanning `exact.dat` record by record (records carry
//! a per-record magic, so a torn tail from a crash mid-append is
//! detected and truncated away rather than poisoning later appends).
//! Duplicate keys keep the *last* record — results are deterministic,
//! so all records for a key hold identical bytes and this only matters
//! for offset bookkeeping.
//!
//! One server per cache directory: appenders track their own write
//! offsets, so two daemons sharing a directory would interleave
//! records and corrupt each other's index offsets.

use crate::cache::CachedResult;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Per-record magic: lets the warm-start scan resynchronize on (in
/// practice: stop at) a torn tail instead of misreading garbage
/// lengths.
const RECORD_MAGIC: [u8; 4] = *b"MRC1";
/// Fixed bytes before the JSON payload in a data record.
const RECORD_HEADER: u64 = 4 + 8 + 1 + 8 + 4;
/// Fixed width of one index row.
const INDEX_ROW: usize = 8 + 8 + 4 + 1 + 8;
/// `flags` bit: the record carries a result fingerprint.
const FLAG_HAS_HASH: u8 = 1;

/// Where one cached payload lives inside `exact.dat`.
#[derive(Clone, Copy, Debug)]
struct DiskSlot {
    /// Offset of the record (magic byte 0).
    offset: u64,
    /// Payload length in bytes.
    json_len: u32,
    /// The stored `result_hash`, if the record carried one.
    hash: Option<u64>,
}

struct DiskInner {
    data: File,
    index_file: File,
    index: HashMap<u64, DiskSlot>,
    /// Logical end of `exact.dat` (all appends go here).
    data_len: u64,
}

/// The on-disk exact tier. All operations are behind one mutex — disk
/// replays are rare enough (memory-tier misses only) that lock
/// contention is not the bottleneck, the seek is.
pub struct DiskCache {
    dir: PathBuf,
    inner: Mutex<DiskInner>,
}

impl DiskCache {
    /// Opens (or creates) the store under `dir` and warm-starts the
    /// index: every key recorded by any previous server generation is
    /// immediately servable.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures (directory creation, open,
    /// unreadable data file).
    pub fn open(dir: &Path) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let data_path = dir.join("exact.dat");
        let mut data = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&data_path)?;
        let data_len = data.metadata()?.len();

        let index_path = dir.join("exact.idx");
        let (index, valid_to) = match load_index(&index_path, data_len) {
            Some(loaded) => loaded,
            None => rebuild_index(&mut data, data_len)?,
        };
        // A torn tail (crash mid-append) would corrupt every later
        // append's framing; cut it off while nothing references it.
        if valid_to < data_len {
            data.set_len(valid_to)?;
        }
        let index_needs_rewrite = std::fs::metadata(&index_path)
            .map(|m| m.len() as usize != index_rows_len(&index))
            .unwrap_or(true);
        // Deliberately not `truncate(true)`: a still-valid index is
        // kept and appended to; stale ones are truncated just below.
        let mut index_file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(&index_path)?;
        if index_needs_rewrite {
            index_file.set_len(0)?;
            index_file.seek(SeekFrom::Start(0))?;
            let mut rows = Vec::with_capacity(index_rows_len(&index));
            for (key, slot) in &index {
                push_index_row(&mut rows, *key, *slot);
            }
            index_file.write_all(&rows)?;
            index_file.flush()?;
        } else {
            index_file.seek(SeekFrom::End(0))?;
        }

        Ok(Self {
            dir: dir.to_path_buf(),
            inner: Mutex::new(DiskInner {
                data,
                index_file,
                index,
                data_len: valid_to,
            }),
        })
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of distinct keys on disk.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .index
            .len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `key` has a record on disk.
    pub fn contains(&self, key: u64) -> bool {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .index
            .contains_key(&key)
    }

    /// Appends one payload. Returns `true` when a record was actually
    /// written — an already-stored key is skipped, because determinism
    /// guarantees the bytes would be identical.
    pub fn append(&self, key: u64, payload: &CachedResult) -> bool {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.index.contains_key(&key) {
            return false;
        }
        let json = payload.json.as_bytes();
        let Ok(json_len) = u32::try_from(json.len()) else {
            return false; // a >4 GiB payload is not a cacheable artifact
        };
        let slot = DiskSlot {
            offset: inner.data_len,
            json_len,
            hash: payload.result_hash,
        };
        let mut record = Vec::with_capacity(RECORD_HEADER as usize + json.len());
        record.extend_from_slice(&RECORD_MAGIC);
        record.extend_from_slice(&key.to_le_bytes());
        record.push(if slot.hash.is_some() {
            FLAG_HAS_HASH
        } else {
            0
        });
        record.extend_from_slice(&slot.hash.unwrap_or(0).to_le_bytes());
        record.extend_from_slice(&json_len.to_le_bytes());
        record.extend_from_slice(json);
        // Data lands before the index row referencing it; a crash
        // between the two writes loses only the index row, which the
        // warm-start scan reconstructs from the data file.
        if inner.data.write_all(&record).is_err() || inner.data.flush().is_err() {
            return false;
        }
        inner.data_len += record.len() as u64;
        let mut row = Vec::with_capacity(INDEX_ROW);
        push_index_row(&mut row, key, slot);
        let _ = inner.index_file.write_all(&row);
        let _ = inner.index_file.flush();
        inner.index.insert(key, slot);
        true
    }

    /// Reads the payload stored for `key`, byte-identical to what
    /// [`DiskCache::append`] was given.
    pub fn get(&self, key: u64) -> Option<CachedResult> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let slot = *inner.index.get(&key)?;
        if inner
            .data
            .seek(SeekFrom::Start(slot.offset + RECORD_HEADER))
            .is_err()
        {
            return None;
        }
        let mut buf = vec![0u8; slot.json_len as usize];
        if inner.data.read_exact(&mut buf).is_err() {
            return None;
        }
        let json = String::from_utf8(buf).ok()?;
        Some(CachedResult {
            json,
            result_hash: slot.hash,
        })
    }
}

fn index_rows_len(index: &HashMap<u64, DiskSlot>) -> usize {
    index.len() * INDEX_ROW
}

fn push_index_row(out: &mut Vec<u8>, key: u64, slot: DiskSlot) {
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&slot.offset.to_le_bytes());
    out.extend_from_slice(&slot.json_len.to_le_bytes());
    out.push(if slot.hash.is_some() {
        FLAG_HAS_HASH
    } else {
        0
    });
    out.extend_from_slice(&slot.hash.unwrap_or(0).to_le_bytes());
}

/// Loads and validates the sidecar index. Returns the key map plus the
/// validated extent of the data file, or `None` when the index is
/// missing, misaligned, or references bytes the data file doesn't
/// have — callers then rebuild from the data file itself.
fn load_index(path: &Path, data_len: u64) -> Option<(HashMap<u64, DiskSlot>, u64)> {
    let bytes = std::fs::read(path).ok()?;
    if bytes.is_empty() || bytes.len() % INDEX_ROW != 0 {
        return None;
    }
    let mut index = HashMap::new();
    let mut valid_to = 0u64;
    for row in bytes.chunks_exact(INDEX_ROW) {
        let key = u64::from_le_bytes(row[0..8].try_into().ok()?);
        let offset = u64::from_le_bytes(row[8..16].try_into().ok()?);
        let json_len = u32::from_le_bytes(row[16..20].try_into().ok()?);
        let flags = row[20];
        let hash = u64::from_le_bytes(row[21..29].try_into().ok()?);
        let end = offset
            .checked_add(RECORD_HEADER)?
            .checked_add(u64::from(json_len))?;
        if end > data_len {
            return None;
        }
        valid_to = valid_to.max(end);
        index.insert(
            key,
            DiskSlot {
                offset,
                json_len,
                hash: (flags & FLAG_HAS_HASH != 0).then_some(hash),
            },
        );
    }
    Some((index, valid_to))
}

/// Rebuilds the index by scanning self-describing records from the
/// data file. Stops at the first torn or unrecognizable record and
/// reports how far the file is trustworthy.
fn rebuild_index(data: &mut File, data_len: u64) -> std::io::Result<(HashMap<u64, DiskSlot>, u64)> {
    let mut index = HashMap::new();
    let mut offset = 0u64;
    data.seek(SeekFrom::Start(0))?;
    let mut header = [0u8; RECORD_HEADER as usize];
    while offset + RECORD_HEADER <= data_len {
        data.seek(SeekFrom::Start(offset))?;
        if data.read_exact(&mut header).is_err() {
            break;
        }
        if header[0..4] != RECORD_MAGIC {
            break;
        }
        let key = u64::from_le_bytes(header[4..12].try_into().unwrap_or_default());
        let flags = header[12];
        let hash = u64::from_le_bytes(header[13..21].try_into().unwrap_or_default());
        let json_len = u32::from_le_bytes(header[21..25].try_into().unwrap_or_default());
        let end = offset + RECORD_HEADER + u64::from(json_len);
        if end > data_len {
            break; // torn tail
        }
        index.insert(
            key,
            DiskSlot {
                offset,
                json_len,
                hash: (flags & FLAG_HAS_HASH != 0).then_some(hash),
            },
        );
        offset = end;
    }
    Ok((index, offset))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "milo-serve-disk-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn payload(json: &str, hash: Option<u64>) -> CachedResult {
        CachedResult {
            json: json.to_owned(),
            result_hash: hash,
        }
    }

    #[test]
    fn round_trips_and_dedups() {
        let dir = temp_dir("roundtrip");
        let disk = DiskCache::open(&dir).expect("opens");
        assert!(disk.is_empty());
        assert!(disk.append(7, &payload("{\"a\": 1}", Some(0xbeef))));
        assert!(
            !disk.append(7, &payload("{\"a\": 1}", Some(0xbeef))),
            "same key appends once"
        );
        assert!(disk.append(9, &payload("{\"b\": [1, 2]}", None)));
        assert_eq!(disk.len(), 2);
        let got = disk.get(7).expect("key 7 replays");
        assert_eq!(got.json, "{\"a\": 1}");
        assert_eq!(got.result_hash, Some(0xbeef));
        let got = disk.get(9).expect("key 9 replays");
        assert_eq!(got.json, "{\"b\": [1, 2]}");
        assert_eq!(got.result_hash, None);
        assert!(disk.get(8).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_start_reloads_via_the_index() {
        let dir = temp_dir("warm");
        {
            let disk = DiskCache::open(&dir).expect("opens");
            for k in 0..20u64 {
                assert!(disk.append(k, &payload(&format!("{{\"k\": {k}}}"), Some(k))));
            }
        }
        let disk = DiskCache::open(&dir).expect("reopens");
        assert_eq!(disk.len(), 20, "index survives restart");
        for k in 0..20u64 {
            let got = disk.get(k).expect("replays after restart");
            assert_eq!(got.json, format!("{{\"k\": {k}}}"));
            assert_eq!(got.result_hash, Some(k));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_index_rebuilds_from_data_scan() {
        let dir = temp_dir("rebuild");
        {
            let disk = DiskCache::open(&dir).expect("opens");
            disk.append(1, &payload("{\"x\": true}", None));
            disk.append(2, &payload("{\"y\": false}", Some(3)));
        }
        std::fs::remove_file(dir.join("exact.idx")).expect("drops index");
        let disk = DiskCache::open(&dir).expect("reopens without index");
        assert_eq!(disk.len(), 2, "data scan recovers every record");
        assert_eq!(disk.get(1).map(|p| p.json), Some("{\"x\": true}".into()));
        assert_eq!(disk.get(2).and_then(|p| p.result_hash), Some(3));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = temp_dir("torn");
        {
            let disk = DiskCache::open(&dir).expect("opens");
            disk.append(1, &payload("{\"keep\": 1}", None));
            disk.append(2, &payload("{\"gone\": 2}", None));
        }
        // Chop the last record mid-payload and drop the index, as a
        // crash between data write and index write would leave things.
        let data_path = dir.join("exact.dat");
        let len = std::fs::metadata(&data_path).expect("metadata").len();
        let data = OpenOptions::new()
            .write(true)
            .open(&data_path)
            .expect("opens data");
        data.set_len(len - 5).expect("tears the tail");
        std::fs::remove_file(dir.join("exact.idx")).expect("drops index");

        let disk = DiskCache::open(&dir).expect("recovers");
        assert_eq!(disk.len(), 1, "only the intact record survives");
        assert_eq!(disk.get(1).map(|p| p.json), Some("{\"keep\": 1}".into()));
        assert!(disk.get(2).is_none());
        // The store keeps working after recovery.
        assert!(disk.append(3, &payload("{\"new\": 3}", None)));
        assert_eq!(disk.get(3).map(|p| p.json), Some("{\"new\": 3}".into()));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
