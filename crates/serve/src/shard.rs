//! The sharded design database: the service-wide compiler cache.
//!
//! A long-lived daemon accumulates compiled designs across every job it
//! runs (the paper's design compilers "see if the requested design
//! already exists in the database" before building). With one global
//! lock, every job's merge-back would serialize; instead the store is
//! split into N shards keyed by the FNV-1a hash of the design name, so
//! concurrent workers merging disjoint name sets mostly touch disjoint
//! locks.

use milo_netlist::{fnv1a, DesignDb, FNV_OFFSET};
use std::sync::Mutex;

/// A design database split across independently locked shards.
pub struct ShardedDb {
    shards: Vec<Mutex<DesignDb>>,
}

impl ShardedDb {
    /// Creates an empty store with `shards` shards (minimum 1).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1);
        Self {
            shards: (0..n).map(|_| Mutex::new(DesignDb::new())).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard a design name lives in.
    pub fn shard_of(&self, name: &str) -> usize {
        (fnv1a(FNV_OFFSET, name.as_bytes()) % self.shards.len() as u64) as usize
    }

    /// Assembles a single [`DesignDb`] snapshot of the whole store.
    /// Designs are `Arc`-shared, so this copies name tables only — it
    /// is how a worker seeds its `Milo` instance before a run.
    pub fn snapshot(&self) -> DesignDb {
        let mut out = DesignDb::new();
        for shard in &self.shards {
            let guard = shard.lock().unwrap_or_else(|e| e.into_inner());
            out.merge_from(&guard);
        }
        out
    }

    /// Distributes every design of `db` into its home shard,
    /// overwriting same-name entries (last write wins, as in
    /// [`DesignDb::merge_from`]). Each shard is locked once, with only
    /// that shard's group of entries in hand.
    pub fn absorb(&self, db: &DesignDb) {
        let n = self.shards.len();
        let mut groups: Vec<Vec<(&str, &std::sync::Arc<milo_netlist::Netlist>)>> =
            (0..n).map(|_| Vec::new()).collect();
        for (name, design) in db.entries() {
            groups[self.shard_of(name)].push((name, design));
        }
        for (idx, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let mut guard = self.shards[idx].lock().unwrap_or_else(|e| e.into_inner());
            for (name, design) in group {
                guard.insert_shared(name, std::sync::Arc::clone(design));
            }
        }
    }

    /// Total number of stored designs across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// Whether the store holds no designs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-shard design counts (ops introspection: spot hot shards).
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_netlist::Netlist;

    #[test]
    fn absorb_routes_by_name_hash_and_snapshot_reassembles() {
        let store = ShardedDb::new(4);
        let mut db = DesignDb::new();
        for i in 0..32 {
            db.insert(Netlist::new(format!("D{i}")));
        }
        store.absorb(&db);
        assert_eq!(store.len(), 32);
        // Every design landed in exactly its home shard.
        let sizes = store.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 32);
        assert!(
            sizes.iter().filter(|&&s| s > 0).count() > 1,
            "spread across shards"
        );

        let snap = store.snapshot();
        assert_eq!(snap.len(), 32);
        for i in 0..32 {
            assert!(snap.contains(&format!("D{i}")), "D{i} survives round-trip");
        }
    }

    #[test]
    fn absorb_overwrites_same_name_entries() {
        let store = ShardedDb::new(2);
        let mut a = DesignDb::new();
        let mut old = Netlist::new("X");
        old.add_net("only_in_old");
        a.insert(old);
        store.absorb(&a);

        let mut b = DesignDb::new();
        let mut new = Netlist::new("X");
        new.add_net("n0");
        new.add_net("n1");
        b.insert(new);
        store.absorb(&b);

        assert_eq!(store.len(), 1);
        let snap = store.snapshot();
        assert_eq!(
            snap.get("X").map(|nl| nl.net_count()),
            Some(2),
            "last write wins"
        );
    }

    #[test]
    fn single_shard_still_works() {
        let store = ShardedDb::new(0); // clamped to 1
        assert_eq!(store.shard_count(), 1);
        let mut db = DesignDb::new();
        db.insert(Netlist::new("A"));
        store.absorb(&db);
        assert_eq!(store.snapshot().len(), 1);
    }
}
