//! The wire protocol: JSON-lines over TCP, one request or response
//! object per `\n`-terminated line.
//!
//! # Versioning (v1.1)
//!
//! Every request may carry an optional `"v"` field; every response
//! echoes `"v": "1.1"` ([`PROTOCOL_VERSION`]). The server accepts any
//! `1.x` version string (additive-change contract within a major
//! version) and rejects other majors with an error line. Unknown
//! *top-level* request fields are tolerated and ignored — a newer
//! client may send fields this server has never heard of and still get
//! served (forward compatibility). Keys inside `"constraints"` remain
//! strict: silently dropping a constraint the client thought it set is
//! the worst possible service behavior, so an unknown constraint key
//! is an error, not a shrug.
//!
//! Requests (`op` selects the operation):
//!
//! ```text
//! {"op": "submit", "design": "<netlist text>", "constraints": {…},
//!  "stream": true?, "priority": "high"|"normal"|"low"?, "client": "tag"?, "v": "1.1"?}
//! {"op": "submit_batch", "designs": ["<netlist text>", …], "constraints": {…},
//!  "priority": …?, "client": …?, "v": …?}
//! {"op": "status", "job": N}
//! {"op": "result", "job": N}          ← blocks until the job is terminal
//! {"op": "cancel", "job": N}
//! {"op": "stats"}
//! {"op": "trace"}                     ← drain buffered trace events
//! {"op": "shutdown"}
//! ```
//!
//! `design` carries the engine's own netlist text format
//! ([`milo_core::parse_netlist`]); `constraints` is an object with
//! optional `max_delay` / `max_area` / `max_power` numbers and a
//! `path_delays` array of `[port, ns]` pairs. A batch's constraints
//! apply to every member (mirroring the offline batch driver's
//! signature). Responses always carry `"ok"` and `"v"`; protocol
//! errors come back as `{"ok": false, …}` on the offending line
//! without killing the connection. Jobs submitted with
//! `"stream": true` additionally emit `{"event": …, "job": N, …}`
//! lines on the submitting connection as the flow progresses — clients
//! distinguish events from responses by the `event` key. (Event lines
//! are not responses and carry no `"v"`.)

use crate::json::{self, Value};
use milo_core::netlist::Netlist;
use milo_core::{parse_netlist, Constraints};

/// The protocol version every response announces. Within major
/// version 1 all changes are additive; requests carrying another major
/// are rejected.
pub const PROTOCOL_VERSION: &str = "1.1";

/// Most designs one `submit_batch` request may carry — a backstop
/// against a single request monopolizing the queue and the parser.
pub const MAX_BATCH: usize = 256;

/// A job's scheduling band. `Normal` is the default; `High` is for
/// interactive latency-sensitive work, `Low` for bulk backfill.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Priority {
    /// Interactive: served first (8 of every 13 scheduler picks).
    High,
    /// The default band (4 of every 13 picks when `High` is busy).
    #[default]
    Normal,
    /// Bulk: never starved, but yields to everyone else.
    Low,
}

impl Priority {
    /// Band index, `High` first — the scheduler's array order.
    pub fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    /// Parses the wire spelling.
    ///
    /// # Errors
    ///
    /// Unknown spellings (a *known* field with a bad value is an
    /// error, unlike unknown fields).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "high" => Ok(Priority::High),
            "normal" => Ok(Priority::Normal),
            "low" => Ok(Priority::Low),
            other => Err(format!(
                "unknown priority {other:?} (expected \"high\", \"normal\", or \"low\")"
            )),
        }
    }
}

/// A parsed request line.
#[derive(Debug)]
pub enum Request {
    /// Enqueue a synthesis job.
    Submit {
        /// The design to synthesize.
        netlist: Box<Netlist>,
        /// Its constraints.
        constraints: Constraints,
        /// Stream flow events back on this connection.
        stream: bool,
        /// Scheduling band.
        priority: Priority,
        /// Optional client identity tag (fairness is per-tag; untagged
        /// submissions are per-connection).
        client: Option<String>,
    },
    /// Enqueue N designs as one batch: arms share one database
    /// snapshot and fan out through the batch driver, but each member
    /// is its own job id for `status`/`result`/`cancel`.
    SubmitBatch {
        /// The member designs, in request order.
        netlists: Vec<Netlist>,
        /// Constraints applied to every member.
        constraints: Constraints,
        /// Scheduling band for the whole batch.
        priority: Priority,
        /// Optional client identity tag.
        client: Option<String>,
    },
    /// Poll a job's state.
    Status(u64),
    /// Block until a job is terminal, then fetch its payload.
    Result(u64),
    /// Cancel a queued job.
    Cancel(u64),
    /// Service counters.
    Stats,
    /// Drain the process's buffered trace events as a Chrome trace
    /// (`{"ok": true, "trace": {"traceEvents": […], …}}`). Empty
    /// unless tracing is enabled (`MILO_TRACE=1` in the server's
    /// environment); see `docs/OBSERVABILITY.md`.
    Trace,
    /// Stop the server.
    Shutdown,
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = json::parse(line).map_err(|e| e.to_string())?;
    check_version(&v)?;
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or("missing \"op\"")?;
    let job = |v: &Value| -> Result<u64, String> {
        v.get("job")
            .and_then(Value::as_u64)
            .ok_or_else(|| "missing or invalid \"job\" id".to_owned())
    };
    match op {
        "submit" => {
            let text = v
                .get("design")
                .and_then(Value::as_str)
                .ok_or("submit needs a \"design\" netlist text")?;
            let netlist = parse_netlist(text).map_err(|e| format!("design does not parse: {e}"))?;
            let stream = v.get("stream").and_then(Value::as_bool).unwrap_or(false);
            Ok(Request::Submit {
                netlist: Box::new(netlist),
                constraints: constraints_field(&v)?,
                stream,
                priority: priority_field(&v)?,
                client: client_field(&v)?,
            })
        }
        "submit_batch" => {
            let items = v
                .get("designs")
                .and_then(Value::as_array)
                .ok_or("submit_batch needs a \"designs\" array of netlist texts")?;
            if items.is_empty() {
                return Err("submit_batch needs at least one design".to_owned());
            }
            if items.len() > MAX_BATCH {
                return Err(format!(
                    "submit_batch carries {} designs; the limit is {MAX_BATCH}",
                    items.len()
                ));
            }
            let mut netlists = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                let text = item
                    .as_str()
                    .ok_or_else(|| format!("\"designs\"[{i}] must be a netlist text string"))?;
                netlists.push(
                    parse_netlist(text)
                        .map_err(|e| format!("\"designs\"[{i}] does not parse: {e}"))?,
                );
            }
            Ok(Request::SubmitBatch {
                netlists,
                constraints: constraints_field(&v)?,
                priority: priority_field(&v)?,
                client: client_field(&v)?,
            })
        }
        "status" => Ok(Request::Status(job(&v)?)),
        "result" => Ok(Request::Result(job(&v)?)),
        "cancel" => Ok(Request::Cancel(job(&v)?)),
        "stats" => Ok(Request::Stats),
        "trace" => Ok(Request::Trace),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Validates the optional `"v"` field: absent (pre-1.1 client) or any
/// `1.x` string is accepted; anything else is rejected.
fn check_version(v: &Value) -> Result<(), String> {
    let Some(field) = v.get("v") else {
        return Ok(());
    };
    let s = field
        .as_str()
        .ok_or("\"v\" must be a version string like \"1.1\"")?;
    if s == "1" || s.starts_with("1.") {
        Ok(())
    } else {
        Err(format!(
            "unsupported protocol version {s:?} (this server speaks {PROTOCOL_VERSION})"
        ))
    }
}

fn constraints_field(v: &Value) -> Result<Constraints, String> {
    match v.get("constraints") {
        None => Ok(Constraints::none()),
        Some(c) => parse_constraints(c),
    }
}

fn priority_field(v: &Value) -> Result<Priority, String> {
    match v.get("priority") {
        None => Ok(Priority::Normal),
        Some(p) => Priority::parse(p.as_str().ok_or("\"priority\" must be a string")?),
    }
}

fn client_field(v: &Value) -> Result<Option<String>, String> {
    match v.get("client") {
        None => Ok(None),
        Some(c) => {
            let tag = c.as_str().ok_or("\"client\" must be a string tag")?;
            if tag.is_empty() || tag.len() > 128 {
                return Err("\"client\" must be 1–128 characters".to_owned());
            }
            Ok(Some(tag.to_owned()))
        }
    }
}

/// Parses a constraints object. Unknown keys are rejected — silently
/// dropping a constraint the client thought it set is the worst
/// possible service behavior.
pub fn parse_constraints(v: &Value) -> Result<Constraints, String> {
    let Value::Obj(members) = v else {
        return Err("\"constraints\" must be an object".to_owned());
    };
    let mut c = Constraints::none();
    let finite = |key: &str, v: &Value| -> Result<f64, String> {
        let n = v
            .as_f64()
            .filter(|n| n.is_finite())
            .ok_or_else(|| format!("\"{key}\" must be a finite number"))?;
        Ok(n)
    };
    for (key, val) in members {
        match key.as_str() {
            "max_delay" => c.max_delay = Some(finite(key, val)?),
            "max_area" => c.max_area = Some(finite(key, val)?),
            "max_power" => c.max_power = Some(finite(key, val)?),
            "path_delays" => {
                let items = val
                    .as_array()
                    .ok_or("\"path_delays\" must be an array of [port, ns] pairs")?;
                for item in items {
                    let pair = item.as_array().unwrap_or(&[]);
                    let (Some(port), Some(ns)) = (
                        pair.first().and_then(Value::as_str),
                        pair.get(1)
                            .and_then(Value::as_f64)
                            .filter(|n| n.is_finite()),
                    ) else {
                        return Err("\"path_delays\" entries must be [port, ns]".to_owned());
                    };
                    if pair.len() != 2 {
                        return Err("\"path_delays\" entries must be [port, ns]".to_owned());
                    }
                    c.path_delays.push((port.to_owned(), ns));
                }
            }
            other => return Err(format!("unknown constraints key {other:?}")),
        }
    }
    Ok(c)
}

/// Renders constraints as a protocol object (the client side of
/// [`parse_constraints`]; `Display` for `f64` prints the shortest
/// round-tripping form, so values survive the wire exactly).
pub fn constraints_to_json(c: &Constraints) -> String {
    let mut parts: Vec<String> = Vec::new();
    if let Some(ns) = c.max_delay {
        parts.push(format!("\"max_delay\": {ns}"));
    }
    if let Some(cells) = c.max_area {
        parts.push(format!("\"max_area\": {cells}"));
    }
    if let Some(ma) = c.max_power {
        parts.push(format!("\"max_power\": {ma}"));
    }
    if !c.path_delays.is_empty() {
        let pairs = c
            .path_delays
            .iter()
            .map(|(p, ns)| format!("[{}, {ns}]", milo_core::json_string(p)))
            .collect::<Vec<_>>()
            .join(", ");
        parts.push(format!("\"path_delays\": [{pairs}]"));
    }
    format!("{{{}}}", parts.join(", "))
}

/// `{"ok": false, "v": "1.1", "error": …}` — the universal failure
/// line.
pub fn error_line(message: &str) -> String {
    format!(
        "{{\"ok\": false, \"v\": \"{PROTOCOL_VERSION}\", \"error\": {}}}",
        milo_core::json_string(message)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const DESIGN: &str = "design demo\ninput a b\noutput y\ncomp and2 g1 A0=a A1=b Y=y\n";

    fn submit_line(constraints: &str) -> String {
        format!(
            "{{\"op\": \"submit\", \"design\": {}, \"constraints\": {constraints}}}",
            milo_core::json_string(DESIGN)
        )
    }

    #[test]
    fn parses_submit_with_constraints() {
        let line =
            submit_line(r#"{"max_delay": 4.5, "max_area": 50, "path_delays": [["y", 3.25]]}"#);
        let Request::Submit {
            netlist,
            constraints,
            stream,
            priority,
            client,
        } = parse_request(&line).expect("parses")
        else {
            panic!("not a submit");
        };
        assert_eq!(netlist.name, "demo");
        assert!(!stream);
        assert_eq!(priority, Priority::Normal, "default band");
        assert_eq!(client, None);
        assert_eq!(constraints.max_delay, Some(4.5));
        assert_eq!(constraints.max_area, Some(50.0));
        assert_eq!(constraints.required_for("y"), Some(3.25));
    }

    #[test]
    fn parses_priority_client_and_version() {
        let line = format!(
            "{{\"op\": \"submit\", \"v\": \"1.1\", \"design\": {}, \
             \"priority\": \"low\", \"client\": \"batch-farm\"}}",
            milo_core::json_string(DESIGN)
        );
        let Request::Submit {
            priority, client, ..
        } = parse_request(&line).expect("parses")
        else {
            panic!("not a submit");
        };
        assert_eq!(priority, Priority::Low);
        assert_eq!(client.as_deref(), Some("batch-farm"));
    }

    #[test]
    fn parses_trace_op() {
        assert!(matches!(
            parse_request("{\"op\": \"trace\"}"),
            Ok(Request::Trace)
        ));
    }

    /// The v1.1 version contract: pre-`v` requests and any `1.x` are
    /// accepted, other majors are refused, and round-tripping a request
    /// through the version check never alters its meaning.
    #[test]
    fn version_field_round_trip() {
        for ok in ["", ", \"v\": \"1\"", ", \"v\": \"1.0\"", ", \"v\": \"1.9\""] {
            let line = format!("{{\"op\": \"stats\"{ok}}}");
            assert!(
                matches!(parse_request(&line), Ok(Request::Stats)),
                "accepted and unchanged: {line}"
            );
        }
        for (bad, why) in [
            (", \"v\": \"2.0\"", "other major"),
            (", \"v\": \"0.9\"", "ancient major"),
            (", \"v\": 1.1", "non-string version"),
        ] {
            let line = format!("{{\"op\": \"stats\"{bad}}}");
            assert!(parse_request(&line).is_err(), "rejected: {why}");
        }
    }

    /// Forward compatibility: unknown top-level fields are ignored, on
    /// every op — a 1.2 client with new bells must still be served.
    #[test]
    fn unknown_top_level_fields_are_tolerated() {
        for line in [
            "{\"op\": \"stats\", \"shiny_new_field\": [1, 2, 3]}".to_owned(),
            "{\"op\": \"status\", \"job\": 4, \"deadline_ms\": 250}".to_owned(),
            format!(
                "{{\"op\": \"submit\", \"design\": {}, \"trace_id\": \"abc\", \
                 \"nested\": {{\"future\": true}}}}",
                milo_core::json_string(DESIGN)
            ),
        ] {
            assert!(
                parse_request(&line).is_ok(),
                "unknown fields must not reject: {line}"
            );
        }
        // …but unknown *constraint* keys still do (strictness is the
        // documented exception to tolerance).
        assert!(parse_request(&submit_line(r#"{"max_frobs": 3}"#)).is_err());
    }

    #[test]
    fn parses_submit_batch() {
        let line = format!(
            "{{\"op\": \"submit_batch\", \"designs\": [{}, {}], \
             \"constraints\": {{\"max_delay\": 6}}, \"priority\": \"high\"}}",
            milo_core::json_string(DESIGN),
            milo_core::json_string(
                "design second\ninput p q\noutput z\ncomp or2 g1 A0=p A1=q Y=z\n"
            )
        );
        let Request::SubmitBatch {
            netlists,
            constraints,
            priority,
            client,
        } = parse_request(&line).expect("parses")
        else {
            panic!("not a batch");
        };
        assert_eq!(netlists.len(), 2);
        assert_eq!(netlists[0].name, "demo");
        assert_eq!(netlists[1].name, "second");
        assert_eq!(constraints.max_delay, Some(6.0));
        assert_eq!(priority, Priority::High);
        assert_eq!(client, None);
    }

    #[test]
    fn rejects_bad_batches() {
        for (line, why) in [
            (
                "{\"op\": \"submit_batch\"}".to_owned(),
                "missing designs array",
            ),
            (
                "{\"op\": \"submit_batch\", \"designs\": []}".to_owned(),
                "empty batch",
            ),
            (
                "{\"op\": \"submit_batch\", \"designs\": [42]}".to_owned(),
                "non-string member",
            ),
            (
                format!(
                    "{{\"op\": \"submit_batch\", \"designs\": [{}, \"design x\\nbogus\"]}}",
                    milo_core::json_string(DESIGN)
                ),
                "unparseable member",
            ),
        ] {
            assert!(parse_request(&line).is_err(), "accepted: {why}");
        }
    }

    #[test]
    fn constraints_round_trip_through_the_wire_format() {
        let c = Constraints::none()
            .with_max_delay(4.5)
            .with_max_power(9.0)
            .with_path_delay("C0", 0.1); // 0.1 is not exact in binary — Display round-trips it
        let v = json::parse(&constraints_to_json(&c)).expect("client json parses");
        let back = parse_constraints(&v).expect("server accepts it");
        assert_eq!(back, c);
        assert_eq!(back.cache_summary(), c.cache_summary(), "bit-exact floats");
    }

    #[test]
    fn rejects_bad_requests() {
        for (line, why) in [
            ("not json", "malformed json"),
            ("{}", "missing op"),
            (r#"{"op": "frobnicate"}"#, "unknown op"),
            (r#"{"op": "status"}"#, "missing job id"),
            (r#"{"op": "status", "job": -1}"#, "negative job id"),
            (r#"{"op": "submit"}"#, "missing design"),
            (
                r#"{"op": "submit", "design": "design x\nbogus line"}"#,
                "unparseable design",
            ),
            (
                r#"{"op": "stats", "priority": "urgent"}"#,
                "bad value for a known field",
            ),
        ] {
            // `stats` ignores priority, so the last case asserts on
            // submit instead.
            if line.contains("urgent") {
                let submit = format!(
                    "{{\"op\": \"submit\", \"design\": {}, \"priority\": \"urgent\"}}",
                    milo_core::json_string(DESIGN)
                );
                assert!(parse_request(&submit).is_err(), "accepted: {why}");
                continue;
            }
            assert!(parse_request(line).is_err(), "accepted: {why}");
        }
        let bad_constraints = [
            r#"{"max_delay": "fast"}"#,
            r#"{"max_delay": 1e999}"#,
            r#"{"tightest": 1}"#,
            r#"{"path_delays": [["y"]]}"#,
            r#"{"path_delays": [["y", 1, 2]]}"#,
        ];
        for c in bad_constraints {
            assert!(
                parse_request(&submit_line(c)).is_err(),
                "accepted constraints: {c}"
            );
        }
    }

    #[test]
    fn error_line_is_json_and_versioned() {
        let line = error_line("bad \"stuff\"\nhere");
        let v = json::parse(&line).expect("error line parses");
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(v.get("v").and_then(Value::as_str), Some(PROTOCOL_VERSION));
        assert_eq!(
            v.get("error").and_then(Value::as_str),
            Some("bad \"stuff\"\nhere")
        );
    }
}
