//! The wire protocol: JSON-lines over TCP, one request or response
//! object per `\n`-terminated line.
//!
//! Requests (`op` selects the operation):
//!
//! ```text
//! {"op": "submit", "design": "<netlist text>", "constraints": {…}, "stream": true?}
//! {"op": "status", "job": N}
//! {"op": "result", "job": N}          ← blocks until the job is terminal
//! {"op": "cancel", "job": N}
//! {"op": "stats"}
//! {"op": "shutdown"}
//! ```
//!
//! `design` carries the engine's own netlist text format
//! ([`milo_core::parse_netlist`]); `constraints` is an object with
//! optional `max_delay` / `max_area` / `max_power` numbers and a
//! `path_delays` array of `[port, ns]` pairs. Responses always carry
//! `"ok"`; protocol errors come back as `{"ok": false, "error": …}`
//! on the offending line without killing the connection. Jobs
//! submitted with `"stream": true` additionally emit
//! `{"event": …, "job": N, …}` lines on the submitting connection as
//! the flow progresses — clients distinguish events from responses by
//! the `event` key.

use crate::json::{self, Value};
use milo_core::netlist::Netlist;
use milo_core::{parse_netlist, Constraints};

/// A parsed request line.
#[derive(Debug)]
pub enum Request {
    /// Enqueue a synthesis job.
    Submit {
        /// The design to synthesize.
        netlist: Box<Netlist>,
        /// Its constraints.
        constraints: Constraints,
        /// Stream flow events back on this connection.
        stream: bool,
    },
    /// Poll a job's state.
    Status(u64),
    /// Block until a job is terminal, then fetch its payload.
    Result(u64),
    /// Cancel a queued job.
    Cancel(u64),
    /// Service counters.
    Stats,
    /// Stop the server.
    Shutdown,
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = json::parse(line).map_err(|e| e.to_string())?;
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or("missing \"op\"")?;
    let job = |v: &Value| -> Result<u64, String> {
        v.get("job")
            .and_then(Value::as_u64)
            .ok_or_else(|| "missing or invalid \"job\" id".to_owned())
    };
    match op {
        "submit" => {
            let text = v
                .get("design")
                .and_then(Value::as_str)
                .ok_or("submit needs a \"design\" netlist text")?;
            let netlist = parse_netlist(text).map_err(|e| format!("design does not parse: {e}"))?;
            let constraints = match v.get("constraints") {
                None => Constraints::none(),
                Some(c) => parse_constraints(c)?,
            };
            let stream = v.get("stream").and_then(Value::as_bool).unwrap_or(false);
            Ok(Request::Submit {
                netlist: Box::new(netlist),
                constraints,
                stream,
            })
        }
        "status" => Ok(Request::Status(job(&v)?)),
        "result" => Ok(Request::Result(job(&v)?)),
        "cancel" => Ok(Request::Cancel(job(&v)?)),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Parses a constraints object. Unknown keys are rejected — silently
/// dropping a constraint the client thought it set is the worst
/// possible service behavior.
pub fn parse_constraints(v: &Value) -> Result<Constraints, String> {
    let Value::Obj(members) = v else {
        return Err("\"constraints\" must be an object".to_owned());
    };
    let mut c = Constraints::none();
    let finite = |key: &str, v: &Value| -> Result<f64, String> {
        let n = v
            .as_f64()
            .filter(|n| n.is_finite())
            .ok_or_else(|| format!("\"{key}\" must be a finite number"))?;
        Ok(n)
    };
    for (key, val) in members {
        match key.as_str() {
            "max_delay" => c.max_delay = Some(finite(key, val)?),
            "max_area" => c.max_area = Some(finite(key, val)?),
            "max_power" => c.max_power = Some(finite(key, val)?),
            "path_delays" => {
                let items = val
                    .as_array()
                    .ok_or("\"path_delays\" must be an array of [port, ns] pairs")?;
                for item in items {
                    let pair = item.as_array().unwrap_or(&[]);
                    let (Some(port), Some(ns)) = (
                        pair.first().and_then(Value::as_str),
                        pair.get(1)
                            .and_then(Value::as_f64)
                            .filter(|n| n.is_finite()),
                    ) else {
                        return Err("\"path_delays\" entries must be [port, ns]".to_owned());
                    };
                    if pair.len() != 2 {
                        return Err("\"path_delays\" entries must be [port, ns]".to_owned());
                    }
                    c.path_delays.push((port.to_owned(), ns));
                }
            }
            other => return Err(format!("unknown constraints key {other:?}")),
        }
    }
    Ok(c)
}

/// Renders constraints as a protocol object (the client side of
/// [`parse_constraints`]; `Display` for `f64` prints the shortest
/// round-tripping form, so values survive the wire exactly).
pub fn constraints_to_json(c: &Constraints) -> String {
    let mut parts: Vec<String> = Vec::new();
    if let Some(ns) = c.max_delay {
        parts.push(format!("\"max_delay\": {ns}"));
    }
    if let Some(cells) = c.max_area {
        parts.push(format!("\"max_area\": {cells}"));
    }
    if let Some(ma) = c.max_power {
        parts.push(format!("\"max_power\": {ma}"));
    }
    if !c.path_delays.is_empty() {
        let pairs = c
            .path_delays
            .iter()
            .map(|(p, ns)| format!("[{}, {ns}]", milo_core::json_string(p)))
            .collect::<Vec<_>>()
            .join(", ");
        parts.push(format!("\"path_delays\": [{pairs}]"));
    }
    format!("{{{}}}", parts.join(", "))
}

/// `{"ok": false, "error": …}` — the universal failure line.
pub fn error_line(message: &str) -> String {
    format!(
        "{{\"ok\": false, \"error\": {}}}",
        milo_core::json_string(message)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const DESIGN: &str = "design demo\ninput a b\noutput y\ncomp and2 g1 A0=a A1=b Y=y\n";

    fn submit_line(constraints: &str) -> String {
        format!(
            "{{\"op\": \"submit\", \"design\": {}, \"constraints\": {constraints}}}",
            milo_core::json_string(DESIGN)
        )
    }

    #[test]
    fn parses_submit_with_constraints() {
        let line =
            submit_line(r#"{"max_delay": 4.5, "max_area": 50, "path_delays": [["y", 3.25]]}"#);
        let Request::Submit {
            netlist,
            constraints,
            stream,
        } = parse_request(&line).expect("parses")
        else {
            panic!("not a submit");
        };
        assert_eq!(netlist.name, "demo");
        assert!(!stream);
        assert_eq!(constraints.max_delay, Some(4.5));
        assert_eq!(constraints.max_area, Some(50.0));
        assert_eq!(constraints.required_for("y"), Some(3.25));
    }

    #[test]
    fn constraints_round_trip_through_the_wire_format() {
        let c = Constraints::none()
            .with_max_delay(4.5)
            .with_max_power(9.0)
            .with_path_delay("C0", 0.1); // 0.1 is not exact in binary — Display round-trips it
        let v = json::parse(&constraints_to_json(&c)).expect("client json parses");
        let back = parse_constraints(&v).expect("server accepts it");
        assert_eq!(back, c);
        assert_eq!(back.cache_summary(), c.cache_summary(), "bit-exact floats");
    }

    #[test]
    fn rejects_bad_requests() {
        for (line, why) in [
            ("not json", "malformed json"),
            ("{}", "missing op"),
            (r#"{"op": "frobnicate"}"#, "unknown op"),
            (r#"{"op": "status"}"#, "missing job id"),
            (r#"{"op": "status", "job": -1}"#, "negative job id"),
            (r#"{"op": "submit"}"#, "missing design"),
            (
                r#"{"op": "submit", "design": "design x\nbogus line"}"#,
                "unparseable design",
            ),
        ] {
            assert!(parse_request(line).is_err(), "accepted: {why}");
        }
        let bad_constraints = [
            r#"{"max_delay": "fast"}"#,
            r#"{"max_delay": 1e999}"#,
            r#"{"tightest": 1}"#,
            r#"{"path_delays": [["y"]]}"#,
            r#"{"path_delays": [["y", 1, 2]]}"#,
        ];
        for c in bad_constraints {
            assert!(
                parse_request(&submit_line(c)).is_err(),
                "accepted constraints: {c}"
            );
        }
    }

    #[test]
    fn error_line_is_json() {
        let line = error_line("bad \"stuff\"\nhere");
        let v = json::parse(&line).expect("error line parses");
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(
            v.get("error").and_then(Value::as_str),
            Some("bad \"stuff\"\nhere")
        );
    }
}
