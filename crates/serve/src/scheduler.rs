//! Priority + per-client fairness scheduling.
//!
//! The v1.0 queue was a strict FIFO: one bulk client submitting a
//! thousand jobs starved every interactive client behind it. The v1.1
//! scheduler replaces it with **weighted round-robin across three
//! priority bands, round-robin across clients within each band**:
//!
//! * Bands (`high` / `normal` / `low`) are drained by credit-weighted
//!   round-robin ([`BAND_CREDITS`]): out of every full credit cycle,
//!   `high` gets 8 picks, `normal` 4, and `low` 1 — so higher bands
//!   dominate but can never fully starve a lower one (bounded wait,
//!   not priority inversion).
//! * Within a band, clients take strict turns: each pick goes to the
//!   next client in rotation, and a client's own jobs run in FIFO
//!   order. A client is whoever shares a `"client"` tag — or, absent a
//!   tag, a single connection — so one client's 64-job backlog costs
//!   another client at most one job's wait, never the whole backlog.
//!
//! The schedulable unit is a [`WorkUnit`]: one job id for `submit`,
//! all member ids for `submit_batch` (a batch is picked as a unit so
//! its arms share one database snapshot and fan out through the batch
//! driver inside a single worker).
//!
//! Cancellation keeps its contract untouched: cancelled jobs stay in
//! their queue until popped, and the worker's queued→running check
//! (under the job's state lock) discards them — the scheduler never
//! needs to reach into job state.

use crate::protocol::Priority;
use std::collections::{HashMap, VecDeque};
use std::time::Instant;

/// Credits per band per refill cycle, indexed by [`Priority::index`]
/// (`high`, `normal`, `low`). The ratios are the fairness contract:
/// a saturated `high` band still cedes 4-of-13 picks to `normal` and
/// 1-of-13 to `low`.
pub const BAND_CREDITS: [u32; 3] = [8, 4, 1];

/// One schedulable unit: the job ids a worker executes together.
#[derive(Clone, Debug)]
pub struct WorkUnit {
    /// Member job ids — one for `submit`, N for `submit_batch`.
    pub jobs: Vec<u64>,
    /// When the unit entered the scheduler. [`Scheduler::push`] stamps
    /// this, so claim time minus `enqueued` is the queue wait the
    /// server feeds its per-band histograms.
    pub enqueued: Instant,
    /// Band index ([`Priority::index`]) the unit was queued at; also
    /// stamped by [`Scheduler::push`].
    pub band: usize,
}

impl WorkUnit {
    /// A single-job unit.
    pub fn single(job: u64) -> Self {
        Self::batch(vec![job])
    }

    /// A multi-job unit (one `submit_batch`).
    pub fn batch(jobs: Vec<u64>) -> Self {
        Self {
            jobs,
            enqueued: Instant::now(),
            band: Priority::Normal.index(),
        }
    }
}

/// Live scheduler counters for one band.
#[derive(Clone, Copy, Debug, Default)]
pub struct BandStats {
    /// Jobs currently queued in this band.
    pub depth: usize,
    /// Jobs handed to workers from this band over the server lifetime.
    pub scheduled: u64,
}

/// Point-in-time scheduler state, reported under `"queue"` in `stats`.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueueStats {
    /// Total jobs queued across all bands.
    pub depth: usize,
    /// Clients with at least one queued job.
    pub clients: usize,
    /// Per-band depth and lifetime scheduled counts, `[high, normal,
    /// low]`.
    pub bands: [BandStats; 3],
}

/// One band: per-client FIFO queues plus the rotation order.
#[derive(Default)]
struct Band {
    queues: HashMap<String, VecDeque<WorkUnit>>,
    /// Clients with queued work, in turn order. Invariant: `rotation`
    /// holds exactly the keys of `queues`, each once.
    rotation: VecDeque<String>,
    /// Jobs (not units) queued in this band.
    depth: usize,
    scheduled: u64,
}

impl Band {
    fn is_empty(&self) -> bool {
        self.rotation.is_empty()
    }

    fn push(&mut self, client: &str, unit: WorkUnit) {
        self.depth += unit.jobs.len();
        match self.queues.get_mut(client) {
            Some(q) => q.push_back(unit),
            None => {
                self.queues
                    .insert(client.to_owned(), VecDeque::from([unit]));
                self.rotation.push_back(client.to_owned());
            }
        }
    }

    fn pop(&mut self) -> Option<WorkUnit> {
        let client = self.rotation.pop_front()?;
        let queue = self.queues.get_mut(&client)?;
        let unit = queue.pop_front()?;
        if queue.is_empty() {
            self.queues.remove(&client);
        } else {
            self.rotation.push_back(client);
        }
        self.depth -= unit.jobs.len();
        self.scheduled += unit.jobs.len() as u64;
        Some(unit)
    }
}

/// The scheduler: three bands and their round-robin credits. Lives
/// behind the server's queue mutex; every method is plain mutable
/// state, no interior locking.
#[derive(Default)]
pub struct Scheduler {
    bands: [Band; 3],
    credits: [u32; 3],
}

impl Scheduler {
    /// An empty scheduler with a fresh credit cycle.
    pub fn new() -> Self {
        Self {
            bands: Default::default(),
            credits: BAND_CREDITS,
        }
    }

    /// Enqueues a unit for `client` at `priority`, (re)stamping its
    /// queue-entry time and band.
    pub fn push(&mut self, priority: Priority, client: &str, mut unit: WorkUnit) {
        unit.enqueued = Instant::now();
        unit.band = priority.index();
        self.bands[priority.index()].push(client, unit);
    }

    /// Takes the next unit to run, or `None` when nothing is queued.
    ///
    /// Band choice is credit-weighted: the highest-priority non-empty
    /// band with remaining credit wins; when every non-empty band is
    /// out of credit, all credits refill and the cycle restarts.
    pub fn pop(&mut self) -> Option<WorkUnit> {
        if self.is_empty() {
            return None;
        }
        loop {
            for i in 0..self.bands.len() {
                if self.credits[i] == 0 || self.bands[i].is_empty() {
                    continue;
                }
                self.credits[i] -= 1;
                // Bands in rotation are never empty (invariant), so
                // this pop always yields.
                if let Some(unit) = self.bands[i].pop() {
                    return Some(unit);
                }
            }
            // Work exists but every non-empty band is out of credit.
            self.credits = BAND_CREDITS;
        }
    }

    /// Whether any job is queued.
    pub fn is_empty(&self) -> bool {
        self.bands.iter().all(Band::is_empty)
    }

    /// Total queued jobs across all bands.
    pub fn depth(&self) -> usize {
        self.bands.iter().map(|b| b.depth).sum()
    }

    /// Counter snapshot for `stats`.
    pub fn stats(&self) -> QueueStats {
        let mut bands = [BandStats::default(); 3];
        for (out, band) in bands.iter_mut().zip(&self.bands) {
            out.depth = band.depth;
            out.scheduled = band.scheduled;
        }
        QueueStats {
            depth: self.depth(),
            clients: self.bands.iter().map(|b| b.queues.len()).sum(),
            bands,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(s: &mut Scheduler, n: usize) -> Vec<u64> {
        (0..n)
            .filter_map(|_| s.pop())
            .flat_map(|u| u.jobs)
            .collect()
    }

    #[test]
    fn clients_in_one_band_take_strict_turns() {
        let mut s = Scheduler::new();
        for i in 0..4 {
            s.push(Priority::Normal, "bulk", WorkUnit::single(i));
        }
        s.push(Priority::Normal, "interactive", WorkUnit::single(100));
        // The interactive job rides the very next rotation turn, not
        // the end of the bulk backlog.
        let order = drain(&mut s, 5);
        assert_eq!(order[1], 100, "second pick is the other client: {order:?}");
        assert_eq!(order.len(), 5);
        assert!(s.is_empty());
    }

    #[test]
    fn higher_band_wins_but_lower_bands_are_never_starved() {
        let mut s = Scheduler::new();
        for i in 0..26 {
            s.push(Priority::High, "h", WorkUnit::single(i));
        }
        s.push(Priority::Low, "l", WorkUnit::single(900));
        s.push(Priority::Normal, "n", WorkUnit::single(500));
        let order = drain(&mut s, 28);
        let high_before_low = order.iter().position(|&j| j == 900).expect("low runs");
        let high_before_normal = order.iter().position(|&j| j == 500).expect("normal runs");
        assert!(order[0] < 26, "high band goes first");
        assert!(
            high_before_normal <= BAND_CREDITS[0] as usize + 1,
            "normal is served within one credit cycle: {order:?}"
        );
        assert!(
            high_before_low <= (BAND_CREDITS[0] + BAND_CREDITS[1]) as usize + 1,
            "low is served within one credit cycle: {order:?}"
        );
    }

    #[test]
    fn batch_units_pop_whole() {
        let mut s = Scheduler::new();
        s.push(Priority::Normal, "a", WorkUnit::batch(vec![1, 2, 3]));
        s.push(Priority::Normal, "b", WorkUnit::single(9));
        assert_eq!(s.depth(), 4);
        let first = s.pop().expect("batch pops");
        assert_eq!(first.jobs, vec![1, 2, 3], "a batch is one unit");
        assert_eq!(s.depth(), 1);
        assert_eq!(s.pop().expect("single pops").jobs, vec![9]);
        assert!(s.pop().is_none());
    }

    #[test]
    fn stats_track_depth_scheduled_and_clients() {
        let mut s = Scheduler::new();
        s.push(Priority::High, "a", WorkUnit::single(1));
        s.push(Priority::Normal, "b", WorkUnit::single(2));
        s.push(Priority::Normal, "c", WorkUnit::single(3));
        let stats = s.stats();
        assert_eq!(stats.depth, 3);
        assert_eq!(stats.clients, 3);
        assert_eq!(stats.bands[0].depth, 1);
        assert_eq!(stats.bands[1].depth, 2);
        let _ = s.pop();
        let _ = s.pop();
        let stats = s.stats();
        assert_eq!(stats.depth, 1);
        assert_eq!(stats.bands[0].scheduled, 1);
        assert_eq!(stats.bands[1].scheduled, 1);
    }

    #[test]
    fn push_stamps_band_and_enqueue_time() {
        let mut s = Scheduler::new();
        s.push(Priority::High, "a", WorkUnit::single(1));
        s.push(Priority::Low, "b", WorkUnit::batch(vec![2, 3]));
        let first = s.pop().expect("high pops first");
        assert_eq!(first.band, Priority::High.index());
        let second = s.pop().expect("low pops");
        assert_eq!(second.band, Priority::Low.index());
        assert!(
            second.enqueued.elapsed().as_secs() < 60,
            "enqueue stamp is recent"
        );
    }

    #[test]
    fn a_client_backlog_cannot_starve_a_late_joiner() {
        let mut s = Scheduler::new();
        for i in 0..64 {
            s.push(Priority::Normal, "bulk", WorkUnit::single(i));
        }
        // Joins after the backlog exists.
        s.push(Priority::Normal, "late", WorkUnit::single(777));
        let order = drain(&mut s, 3);
        assert!(
            order.contains(&777),
            "late joiner runs within two picks: {order:?}"
        );
    }
}
