//! A small first-party JSON parser and value model.
//!
//! The build environment has no serde, and the engine side already
//! hand-rolls its JSON *encoders* (`FlowReport::to_json` and friends).
//! The service needs the other direction — parsing request lines off
//! the wire — so this module provides a strict RFC 8259 parser sized
//! for protocol messages: full escape handling (including `\uXXXX`
//! surrogate pairs), byte-offset errors, and a [`Value`] tree with the
//! few accessors the protocol layer needs.
//!
//! Object members keep their textual order (stored as a `Vec`, not a
//! map), so `Value::to_string` round-trips member order — which is what
//! lets tests reserialize a parsed report and compare bytes.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, members in textual order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer (job ids, counts). `None`
    /// when negative, fractional, or too large for exact `f64`
    /// representation.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n < 0.0 || n.fract() != 0.0 || n > 9_007_199_254_740_992.0 {
            return None;
        }
        Some(n as u64)
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    /// Serializes back to compact JSON (strings escaped through the
    /// engine's hardened [`milo_core::json_string`]).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => {
                if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    f.write_str("null")
                }
            }
            Value::Str(s) => f.write_str(&milo_core::json_string(s)),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{}: {v}", milo_core::json_string(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(src: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

/// Recursion guard: protocol messages are shallow; anything past this
/// depth is hostile or broken input, not a real request.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: a lone 0, or a nonzero digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected digit after '.'"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                        }
                        c => return Err(self.err(format!("invalid escape '\\{}'", c as char))),
                    }
                }
                c if c < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Copy one UTF-8 scalar (multi-byte sequences whole).
                    let start = self.pos;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let Some(c) = rest.chars().next() else {
                        return Err(self.err("unterminated string"));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Num(42.0));
        assert_eq!(parse("-0.5e2").unwrap(), Value::Num(-50.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_structures() {
        let v = parse(r#"{"op": "submit", "ids": [1, 2, 3], "deep": {"x": null}}"#).unwrap();
        assert_eq!(v.get("op").and_then(Value::as_str), Some("submit"));
        assert_eq!(
            v.get("ids").and_then(Value::as_array).map(<[_]>::len),
            Some(3)
        );
        assert!(v
            .get("deep")
            .and_then(|d| d.get("x"))
            .is_some_and(Value::is_null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn resolves_escapes_and_surrogate_pairs() {
        let v = parse(r#""a\"b\\c\/d\n\t\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c/d\n\tAé😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "\"\\ud800\"", // lone high surrogate
            "\"\\udc00\"", // lone low surrogate
            "\"\\q\"",     // bad escape
            "01",          // leading zero then digit = trailing chars
            "{\"a\":1} x", // trailing garbage
            "\u{1}",       // control char at top level
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input: {bad:?}");
        }
    }

    #[test]
    fn rejects_runaway_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn as_u64_guards_range() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("1e300").unwrap().as_u64(), None);
    }

    #[test]
    fn display_round_trips() {
        let src = r#"{"a": [1, true, null, "x\"y"], "b": {"c": -2.5}}"#;
        let v = parse(src).unwrap();
        let re = v.to_string();
        assert_eq!(
            parse(&re).unwrap(),
            v,
            "reserialization parses to the same tree"
        );
    }
}
