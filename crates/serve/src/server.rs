//! The daemon: a std-only TCP server (no async runtime) with a
//! thread-per-connection front end and a fixed pool of synthesis
//! workers behind a condvar-signaled [`Scheduler`].
//!
//! Determinism contract: every job's `SynthesisResult` JSON is
//! byte-identical to what an offline
//! [`milo_core::Milo::synthesize_batch_results`] call produces for the
//! same design and constraints — regardless of arrival order, queue
//! interleaving, scheduling band, worker count, or cache state
//! (memory hit, disk hit, prefix resume, or full run). The pieces
//! that make that true:
//!
//! * workers run the exact arm recipe the batch driver uses
//!   (`Flow::standard()` with statistics sampling off, seeded with an
//!   `Arc`-shared database snapshot), and results are already pinned
//!   to be database-independent by the engine's `batch_matches_
//!   sequential` property test;
//! * `submit_batch` members run through the batch driver itself
//!   ([`Milo::synthesize_batch_outputs`]) against one shared snapshot;
//! * panicked jobs retry once against a fresh snapshot, mirroring the
//!   batch driver's retry (fault-injector charges are server-global,
//!   so a once-only injected fault is spent, not re-fired);
//! * cache hits — memory or disk — replay the first run's bytes
//!   verbatim, and prefix resumes reconstruct the mid-flow context
//!   exactly (see [`crate::cache`] and [`crate::disk`]).

use crate::cache::{
    job_key, prefix_key, CachedResult, CapturePrefix, HitTier, RestorePrefix, ResultCache,
};
use crate::disk::DiskCache;
use crate::metrics::Metrics;
use crate::protocol::{error_line, parse_request, Priority, Request, PROTOCOL_VERSION};
use crate::scheduler::{Scheduler, WorkUnit};
use crate::shard::ShardedDb;
use milo_core::netlist::Netlist;
use milo_core::techmap::TechLibrary;
use milo_core::{Constraints, FaultInjector, Flow, FlowEvent, Milo};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// How a finished job's answer was produced (reported in `status` /
/// `result` responses and counted in the metrics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Full synthesis ran.
    Miss,
    /// Exact-tier memory hit: stored bytes replayed, no passes ran.
    Hit,
    /// Exact-tier disk hit: bytes replayed from the spill store after
    /// a memory miss (entry promoted back into memory), no passes ran.
    DiskHit,
    /// Prefix-tier hit: resumed from the first constraint-dirty pass.
    PrefixHit,
}

impl CacheOutcome {
    fn as_str(self) -> &'static str {
        match self {
            CacheOutcome::Miss => "miss",
            CacheOutcome::Hit => "hit",
            CacheOutcome::DiskHit => "disk-hit",
            CacheOutcome::PrefixHit => "prefix-hit",
        }
    }
}

/// A job's lifecycle state.
enum JobState {
    Queued,
    Running,
    Done {
        payload: Arc<CachedResult>,
        cache: CacheOutcome,
    },
    Failed(String),
    Cancelled,
}

impl JobState {
    fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done { .. } => "done",
            JobState::Failed(_) => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    fn terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done { .. } | JobState::Failed(_) | JobState::Cancelled
        )
    }
}

/// A line-atomic writer shared between a connection handler and the
/// streaming observer of any job submitted on that connection.
#[derive(Clone)]
struct LineWriter {
    stream: Arc<Mutex<TcpStream>>,
}

impl LineWriter {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream: Arc::new(Mutex::new(stream)),
        }
    }

    /// Writes `line` plus the terminating newline under one lock hold,
    /// so concurrent event and response lines never interleave bytes.
    fn send(&self, line: &str) -> std::io::Result<()> {
        let mut guard = self.stream.lock().unwrap_or_else(|e| e.into_inner());
        guard.write_all(line.as_bytes())?;
        guard.write_all(b"\n")?;
        guard.flush()
    }
}

struct Job {
    id: u64,
    netlist: Netlist,
    constraints: Constraints,
    key: u64,
    pkey: u64,
    state: Mutex<JobState>,
    cv: Condvar,
    cancel: AtomicBool,
    /// Event sink for `"stream": true` submissions.
    stream: Option<LineWriter>,
}

impl Job {
    fn set_state(&self, next: JobState) {
        *self.state.lock().unwrap_or_else(|e| e.into_inner()) = next;
        self.cv.notify_all();
    }

    /// Queued→running (or →cancelled) atomically with the cancel
    /// handler's flag check; see `Request::Cancel`. Returns `false`
    /// when the job was cancelled instead of claimed.
    fn claim(&self) -> bool {
        let cancelled = {
            let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
            if self.cancel.load(Ordering::SeqCst) {
                *state = JobState::Cancelled;
                true
            } else {
                *state = JobState::Running;
                false
            }
        };
        self.cv.notify_all();
        !cancelled
    }
}

/// Server construction knobs.
pub struct ServerConfig {
    /// Bind address; `127.0.0.1:0` (any free port) by default, or the
    /// `MILO_SERVE_ADDR` environment variable when set.
    pub addr: String,
    /// Synthesis worker threads (defaults to `MILO_PAR_THREADS`, then
    /// to the machine's parallelism).
    pub workers: usize,
    /// Design-database shards.
    pub shards: usize,
    /// Target technology library.
    pub library: TechLibrary,
    /// Server-global fault injector (test harness; the programmatic
    /// equivalent of `MILO_FAULT_INJECT`).
    pub fault: Option<Arc<FaultInjector>>,
    /// In-memory cache budget in bytes (`None` = unbounded; defaults
    /// to the `MILO_SERVE_CACHE_BYTES` environment variable when set).
    pub cache_bytes: Option<usize>,
    /// Disk spill directory for the exact tier (`None` = memory-only;
    /// defaults to the `MILO_SERVE_CACHE_DIR` environment variable
    /// when set).
    pub cache_dir: Option<PathBuf>,
}

impl ServerConfig {
    /// Defaults: env-configured address, auto worker count, 8 shards,
    /// the given library, no fault injection, env-configured cache
    /// budget and spill directory.
    pub fn new(library: TechLibrary) -> Self {
        let workers = std::env::var("MILO_PAR_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get)
            });
        Self {
            addr: std::env::var("MILO_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:0".to_owned()),
            workers,
            shards: 8,
            library,
            fault: None,
            cache_bytes: std::env::var("MILO_SERVE_CACHE_BYTES")
                .ok()
                .and_then(|v| v.parse::<usize>().ok()),
            cache_dir: std::env::var("MILO_SERVE_CACHE_DIR")
                .ok()
                .map(PathBuf::from),
        }
    }

    /// Overrides the bind address.
    #[must_use]
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Overrides the worker count (minimum 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Overrides the shard count (minimum 1).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Arms a server-global fault injector.
    #[must_use]
    pub fn with_fault_injector(mut self, injector: Arc<FaultInjector>) -> Self {
        self.fault = Some(injector);
        self
    }

    /// Bounds the in-memory cache to `bytes` (both tiers together).
    #[must_use]
    pub fn with_cache_bytes(mut self, bytes: usize) -> Self {
        self.cache_bytes = Some(bytes);
        self
    }

    /// Spills and warm-starts the exact tier from `dir`.
    #[must_use]
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }
}

/// Everything the accept loop, connection handlers, and workers share.
struct Shared {
    addr: SocketAddr,
    lib: TechLibrary,
    fault: Option<Arc<FaultInjector>>,
    queue: Mutex<Scheduler>,
    queue_cv: Condvar,
    jobs: Mutex<HashMap<u64, Arc<Job>>>,
    next_id: AtomicU64,
    next_conn: AtomicU64,
    shards: ShardedDb,
    cache: ResultCache,
    metrics: Metrics,
    shutdown: AtomicBool,
}

impl Shared {
    fn job(&self, id: u64) -> Option<Arc<Job>> {
        self.jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&id)
            .cloned()
    }

    /// Registers `jobs` and queues them as one schedulable unit for
    /// `client` at `priority`.
    fn enqueue(&self, priority: Priority, client: &str, jobs: Vec<Arc<Job>>) {
        let unit = WorkUnit::batch(jobs.iter().map(|j| j.id).collect());
        {
            let mut table = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
            for job in jobs {
                table.insert(job.id, job);
            }
        }
        for &id in &unit.jobs {
            self.metrics.submitted();
            if milo_trace::enabled() {
                milo_trace::instant_with("job.submit", &format!("job {id}"));
            }
        }
        self.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(priority, client, unit);
        self.queue_cv.notify_one();
    }

    /// Blocks for the next schedulable unit; `None` once shutdown is
    /// requested *and* the queue has drained (accepted work finishes).
    fn next_work(&self) -> Option<WorkUnit> {
        let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(unit) = queue.pop() {
                drop(queue);
                // Claim time minus enqueue time, into the band's
                // queue-wait histogram (`stats` → histograms.queue_wait).
                self.metrics
                    .queue_wait(unit.band, unit.enqueued.elapsed().as_nanos() as u64);
                return Some(unit);
            }
            if self.shutdown.load(Ordering::SeqCst) {
                return None;
            }
            queue = self.queue_cv.wait(queue).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// A running server: its bound address plus the handles needed to stop
/// it. Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves `:0` ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until a `shutdown` request arrives over the wire, then
    /// joins every thread — the daemon main's serve-forever call.
    pub fn shutdown_on_request(&mut self) {
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        self.shutdown();
    }

    /// Stops the server: no new connections, queued jobs finish,
    /// workers exit. Idempotent; blocks until all threads join.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds and spawns the daemon: one accept thread, `config.workers`
/// synthesis workers.
///
/// # Errors
///
/// Fails when the address cannot be bound or the cache directory
/// cannot be opened.
pub fn spawn(config: ServerConfig) -> std::io::Result<ServerHandle> {
    // Honor MILO_TRACE for daemon runs; embedders (and tests) that
    // already called `set_enabled` are not overridden.
    if std::env::var_os("MILO_TRACE").is_some() {
        milo_trace::init_from_env();
    }
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let disk = match &config.cache_dir {
        Some(dir) => Some(DiskCache::open(dir)?),
        None => None,
    };
    let shared = Arc::new(Shared {
        addr,
        lib: config.library,
        fault: config.fault,
        queue: Mutex::new(Scheduler::new()),
        queue_cv: Condvar::new(),
        jobs: Mutex::new(HashMap::new()),
        next_id: AtomicU64::new(1),
        next_conn: AtomicU64::new(1),
        shards: ShardedDb::new(config.shards),
        cache: ResultCache::bounded(config.cache_bytes, disk),
        metrics: Metrics::new(config.workers.max(1)),
        shutdown: AtomicBool::new(false),
    });

    let workers = (0..config.workers.max(1))
        .map(|i| {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name(format!("milo-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
        })
        .collect::<std::io::Result<Vec<_>>>()?;

    let accept = {
        let shared = shared.clone();
        std::thread::Builder::new()
            .name("milo-serve-accept".to_owned())
            .spawn(move || accept_loop(&listener, &shared))?
    };

    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
        workers,
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        // JSON-lines means many latency-sensitive small writes; Nagle
        // batching would add delayed-ACK stalls to every round trip.
        let _ = stream.set_nodelay(true);
        let shared = shared.clone();
        // Handlers are detached: they die with their connection (or the
        // process). Join bookkeeping would add nothing — a handler
        // blocked in read() can't be joined without closing the socket
        // anyway.
        let _ = std::thread::Builder::new()
            .name("milo-serve-conn".to_owned())
            .spawn(move || handle_connection(stream, &shared));
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let writer = LineWriter::new(stream);
    // Untagged submissions are fair per-connection: every connection
    // gets a distinct default client identity.
    let conn_client = format!("conn-{}", shared.next_conn.fetch_add(1, Ordering::Relaxed));
    let mut lines = BufReader::new(read_half);
    let mut line = String::new();
    loop {
        line.clear();
        match lines.read_line(&mut line) {
            Ok(0) | Err(_) => return, // EOF or connection gone
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let reply = match parse_request(line.trim_end_matches(['\n', '\r'])) {
            Err(e) => error_line(&e),
            Ok(req) => dispatch(req, &writer, &conn_client, shared),
        };
        if writer.send(&reply).is_err() {
            return;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

fn dispatch(req: Request, writer: &LineWriter, conn_client: &str, shared: &Arc<Shared>) -> String {
    match req {
        Request::Submit {
            netlist,
            constraints,
            stream,
            priority,
            client,
        } => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return error_line("server is shutting down");
            }
            let id = shared.next_id.fetch_add(1, Ordering::SeqCst);
            let job = Arc::new(Job {
                id,
                key: job_key(&netlist, &constraints),
                pkey: prefix_key(&netlist, &constraints),
                netlist: *netlist,
                constraints,
                state: Mutex::new(JobState::Queued),
                cv: Condvar::new(),
                cancel: AtomicBool::new(false),
                stream: stream.then(|| writer.clone()),
            });
            shared.enqueue(
                priority,
                client.as_deref().unwrap_or(conn_client),
                vec![job],
            );
            format!(
                "{{\"ok\": true, \"v\": \"{PROTOCOL_VERSION}\", \"op\": \"submit\", \"job\": {id}}}"
            )
        }
        Request::SubmitBatch {
            netlists,
            constraints,
            priority,
            client,
        } => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return error_line("server is shutting down");
            }
            let jobs: Vec<Arc<Job>> = netlists
                .into_iter()
                .map(|netlist| {
                    let id = shared.next_id.fetch_add(1, Ordering::SeqCst);
                    Arc::new(Job {
                        id,
                        key: job_key(&netlist, &constraints),
                        pkey: prefix_key(&netlist, &constraints),
                        netlist,
                        constraints: constraints.clone(),
                        state: Mutex::new(JobState::Queued),
                        cv: Condvar::new(),
                        cancel: AtomicBool::new(false),
                        stream: None,
                    })
                })
                .collect();
            let ids = jobs
                .iter()
                .map(|j| j.id.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            shared.enqueue(priority, client.as_deref().unwrap_or(conn_client), jobs);
            format!(
                "{{\"ok\": true, \"v\": \"{PROTOCOL_VERSION}\", \"op\": \"submit_batch\", \"jobs\": [{ids}]}}"
            )
        }
        Request::Status(id) => match shared.job(id) {
            None => error_line(&format!("no such job {id}")),
            Some(job) => {
                let state = job.state.lock().unwrap_or_else(|e| e.into_inner());
                let cache = match &*state {
                    JobState::Done { cache, .. } => {
                        format!(", \"cache\": \"{}\"", cache.as_str())
                    }
                    _ => String::new(),
                };
                format!(
                    "{{\"ok\": true, \"v\": \"{PROTOCOL_VERSION}\", \"op\": \"status\", \"job\": {id}, \"state\": \"{}\"{cache}}}",
                    state.label()
                )
            }
        },
        Request::Result(id) => match shared.job(id) {
            None => error_line(&format!("no such job {id}")),
            Some(job) => {
                let mut state = job.state.lock().unwrap_or_else(|e| e.into_inner());
                while !state.terminal() {
                    state = job.cv.wait(state).unwrap_or_else(|e| e.into_inner());
                }
                match &*state {
                    JobState::Done { payload, cache } => format!(
                        "{{\"ok\": true, \"v\": \"{PROTOCOL_VERSION}\", \"op\": \"result\", \"job\": {id}, \"state\": \"done\", \
                         \"cache\": \"{}\", \"output\": {}}}",
                        cache.as_str(),
                        payload.json
                    ),
                    JobState::Failed(message) => format!(
                        "{{\"ok\": true, \"v\": \"{PROTOCOL_VERSION}\", \"op\": \"result\", \"job\": {id}, \"state\": \"failed\", \
                         \"error\": {}}}",
                        milo_core::json_string(message)
                    ),
                    JobState::Cancelled => format!(
                        "{{\"ok\": true, \"v\": \"{PROTOCOL_VERSION}\", \"op\": \"result\", \"job\": {id}, \"state\": \"cancelled\"}}"
                    ),
                    _ => error_line("unreachable: non-terminal state after wait"),
                }
            }
        },
        Request::Cancel(id) => match shared.job(id) {
            None => error_line(&format!("no such job {id}")),
            Some(job) => {
                // Flag-set and queued-check happen under the state
                // lock, and the worker's queued→running transition
                // checks the flag under the same lock — so a `true`
                // here guarantees the job ends `cancelled`, never a
                // late `done`.
                let queued = {
                    let state = job.state.lock().unwrap_or_else(|e| e.into_inner());
                    let queued = matches!(&*state, JobState::Queued);
                    if queued {
                        job.cancel.store(true, Ordering::SeqCst);
                    }
                    queued
                };
                format!(
                    "{{\"ok\": true, \"v\": \"{PROTOCOL_VERSION}\", \"op\": \"cancel\", \"job\": {id}, \"cancelled\": {queued}}}"
                )
            }
        },
        Request::Stats => {
            let queue = shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .stats();
            format!(
                "{{\"ok\": true, \"v\": \"{PROTOCOL_VERSION}\", \"op\": \"stats\", \"stats\": {}}}",
                shared
                    .metrics
                    .to_json(&queue, &shared.cache.stats(), &shared.shards.shard_sizes())
            )
        }
        Request::Trace => {
            // `drain_chrome_json` is itself a JSON object, spliced in
            // raw; it's `{"traceEvents": []}`-shaped and empty unless
            // the server process runs with tracing enabled.
            format!(
                "{{\"ok\": true, \"v\": \"{PROTOCOL_VERSION}\", \"op\": \"trace\", \"trace\": {}}}",
                milo_trace::drain_chrome_json()
            )
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.queue_cv.notify_all();
            // Poke the accept loop with a throwaway connection so it
            // observes the flag instead of blocking in accept().
            let _ = TcpStream::connect(shared.addr);
            format!("{{\"ok\": true, \"v\": \"{PROTOCOL_VERSION}\", \"op\": \"shutdown\"}}")
        }
    }
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(unit) = shared.next_work() {
        let jobs: Vec<Arc<Job>> = unit.jobs.iter().filter_map(|&id| shared.job(id)).collect();
        let mut live = Vec::with_capacity(jobs.len());
        for job in jobs {
            if job.claim() {
                shared.metrics.running();
                live.push(job);
            } else {
                shared.metrics.cancelled();
            }
        }
        if live.is_empty() {
            continue;
        }
        let started = Instant::now();
        let _unit_span = milo_trace::enabled().then(|| {
            let ids = live
                .iter()
                .map(|j| j.id.to_string())
                .collect::<Vec<_>>()
                .join(",");
            milo_trace::span(&format!("job:{ids}"))
        });
        if live.len() == 1 {
            run_job(shared, &live[0]);
        } else {
            run_batch(shared, &live);
        }
        shared.metrics.busy(started.elapsed().as_nanos() as u64);
    }
}

/// Resolves an exact-tier lookup into a terminal `Done` state,
/// counting the right metric for the tier that answered. Returns
/// `false` on a miss.
fn resolve_from_cache(shared: &Arc<Shared>, job: &Job) -> bool {
    let Some((payload, tier)) = shared.cache.lookup(job.key) else {
        return false;
    };
    let outcome = match tier {
        HitTier::Memory => {
            shared.metrics.cache_hit();
            milo_trace::instant("cache.hit");
            CacheOutcome::Hit
        }
        HitTier::Disk => {
            shared.metrics.disk_hit();
            milo_trace::instant("cache.disk_hit");
            CacheOutcome::DiskHit
        }
    };
    shared.metrics.done();
    job.set_state(JobState::Done {
        payload,
        cache: outcome,
    });
    true
}

/// Executes one job: exact cache (memory, then disk) → prefix resume →
/// full run (with the batch driver's one-retry-on-panic recovery).
fn run_job(shared: &Arc<Shared>, job: &Job) {
    if resolve_from_cache(shared, job) {
        return;
    }

    let prefix = shared.cache.lookup_prefix(job.pkey);
    let outcome = if prefix.is_some() {
        milo_trace::instant("cache.prefix_hit");
        CacheOutcome::PrefixHit
    } else {
        CacheOutcome::Miss
    };

    let mut attempt = execute(shared, job, prefix.clone());
    if let Err(e) = &attempt {
        if e.is_panic() {
            // Mirror the batch driver: one retry against a fresh
            // snapshot. Injector charges are server-global, so a
            // once-only fault is spent by now; an `#inf` fault fails
            // the retry too, exactly like the offline batch.
            attempt = execute(shared, job, prefix);
        }
    }

    match attempt {
        Ok(payload) => {
            match outcome {
                CacheOutcome::PrefixHit => shared.metrics.prefix_hit(),
                _ => shared.metrics.cache_miss(),
            }
            shared.cache.store(job.key, payload.clone());
            shared.metrics.done();
            job.set_state(JobState::Done {
                payload,
                cache: outcome,
            });
        }
        Err(e) => {
            shared.metrics.cache_miss();
            shared.metrics.failed();
            job.set_state(JobState::Failed(e.to_string()));
        }
    }
}

/// Executes a `submit_batch` unit: cache-resolved members answer
/// immediately, the misses fan out through the offline batch driver
/// against one shared database snapshot. The driver already
/// panic-isolates arms and retries once, so per-member failures land
/// as per-member `Failed` states without touching their siblings.
///
/// Batch misses populate the exact tier only — the prefix-capture pass
/// is a service-flow splice, and the whole point of the batch path is
/// running the driver's recipe verbatim.
fn run_batch(shared: &Arc<Shared>, jobs: &[Arc<Job>]) {
    let misses: Vec<&Arc<Job>> = jobs
        .iter()
        .filter(|job| !resolve_from_cache(shared, job))
        .collect();
    if misses.is_empty() {
        return;
    }

    let designs: Vec<Netlist> = misses.iter().map(|j| j.netlist.clone()).collect();
    // Members of one batch share one constraint set by protocol
    // construction.
    let constraints = misses[0].constraints.clone();
    let mut milo = Milo::with_database(shared.lib.clone(), shared.shards.snapshot());
    if let Some(f) = &shared.fault {
        milo.set_fault_injector(f.clone());
    }
    let outputs = milo.synthesize_batch_outputs(&designs, &constraints);
    shared.shards.absorb(&milo.into_database());

    for (job, run) in misses.into_iter().zip(outputs) {
        shared.metrics.cache_miss();
        match run {
            Ok(output) => {
                shared
                    .metrics
                    .record_passes(output.report.passes.iter().map(|p| {
                        (
                            p.name.as_str(),
                            p.skipped,
                            u64::try_from(p.wall.as_nanos()).unwrap_or(u64::MAX),
                        )
                    }));
                let payload = Arc::new(CachedResult {
                    json: output.to_json(),
                    result_hash: output.report.result_hash,
                });
                shared.cache.store(job.key, payload.clone());
                shared.metrics.done();
                job.set_state(JobState::Done {
                    payload,
                    cache: CacheOutcome::Miss,
                });
            }
            Err(e) => {
                shared.metrics.failed();
                job.set_state(JobState::Failed(e.to_string()));
            }
        }
    }
}

/// One synthesis attempt. Full runs use the standard flow with a
/// prefix-capture pass spliced in after `fanout-repair`; prefix resumes
/// run `restore-prefix` → `timing-area` only. Either way the worker's
/// `Milo` is seeded with a whole-store snapshot and its database is
/// absorbed back on success.
fn execute(
    shared: &Arc<Shared>,
    job: &Job,
    prefix: Option<Arc<crate::cache::PrefixSnapshot>>,
) -> Result<Arc<CachedResult>, milo_core::MiloError> {
    let mut milo = Milo::with_database(shared.lib.clone(), shared.shards.snapshot());
    let mut capture_slot = None;
    let mut flow = match prefix {
        Some(snap) => {
            let mut flow = Flow::empty();
            flow.push(RestorePrefix::new(snap));
            flow.push(milo_core::TimingArea);
            flow
        }
        None => {
            let mut flow = Flow::standard();
            let (capture, slot) = CapturePrefix::new();
            flow.insert_after("fanout-repair", capture);
            capture_slot = Some(slot);
            flow
        }
    };
    flow.sample_stats(false);
    if let Some(f) = &shared.fault {
        flow.inject_faults(f.clone());
    }
    if let Some(sink) = &job.stream {
        let sink = sink.clone();
        let id = job.id;
        flow.observe(move |event| {
            let line = match event {
                FlowEvent::FlowStarted { design, passes } => format!(
                    "{{\"event\": \"flow-started\", \"job\": {id}, \"design\": {}, \"passes\": {passes}}}",
                    milo_core::json_string(design)
                ),
                FlowEvent::PassStarted { index, name } => format!(
                    "{{\"event\": \"pass-started\", \"job\": {id}, \"index\": {index}, \"pass\": {}}}",
                    milo_core::json_string(name)
                ),
                FlowEvent::PassFinished { index, report } => format!(
                    "{{\"event\": \"pass-finished\", \"job\": {id}, \"index\": {index}, \
                     \"pass\": {}, \"outcome\": \"{}\", \"wall_ns\": {}, \"rules_applied\": {}}}",
                    milo_core::json_string(&report.name),
                    report.outcome.as_str(),
                    report.wall.as_nanos(),
                    report.rules_applied
                ),
            };
            // A dead client connection must not fail the job.
            let _ = sink.send(&line);
        });
    }

    let output = flow.run(&mut milo, &job.netlist, &job.constraints)?;

    // Success: fold compiled designs back into the sharded store and
    // promote the captured mid-flow state into the prefix tier.
    shared.shards.absorb(&milo.into_database());
    if let Some(slot) = capture_slot {
        let snap = slot.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(snap) = snap {
            shared.cache.store_prefix(job.pkey, Arc::new(snap));
        }
    }
    shared
        .metrics
        .record_passes(output.report.passes.iter().map(|p| {
            (
                p.name.as_str(),
                p.skipped,
                u64::try_from(p.wall.as_nanos()).unwrap_or(u64::MAX),
            )
        }));
    Ok(Arc::new(CachedResult {
        json: output.to_json(),
        result_hash: output.report.result_hash,
    }))
}
