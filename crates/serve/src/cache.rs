//! Fingerprint-keyed result caching.
//!
//! Two tiers, both keyed off the netlist's structural fingerprint
//! ([`milo_netlist::structural_hash`]) extended with constraint data
//! via the FNV-1a chain:
//!
//! * **Exact tier** — key covers the full structure *and* the full
//!   constraint set ([`Constraints::cache_summary`]). A hit means an
//!   identical job already ran: the stored [`FlowOutput`] JSON is
//!   returned verbatim, no passes execute. Covering constraints in the
//!   key is load-bearing — two jobs differing only in `max_delay` must
//!   not alias.
//! * **Prefix tier** — key covers the structure and only the *tightest
//!   delay bound*. Of the five standard passes, only `micro-critic`
//!   (reads `Constraints::tightest_delay`) and `timing-area` (reads the
//!   full set) look at constraints at all; `compile`,
//!   `bottom-up-logic` and `fanout-repair` are constraint-blind. So
//!   the flow state right after `fanout-repair` is reusable across any
//!   two jobs that agree on structure and tightest bound — a near-miss
//!   resubmission restores that snapshot and runs only `timing-area`,
//!   the first constraint-dirty pass, plus the (always identical)
//!   driver epilogue.
//!
//! # Bounded memory
//!
//! Both tiers live under one byte budget ([`ResultCache::bounded`]).
//! Every entry is size-accounted — exact entries by their stored
//! response bytes (which is their real footprint), prefix snapshots by
//! an estimated netlist+artifact footprint — and when the combined
//! resident total exceeds the budget, the globally least-recently-used
//! entry is evicted, regardless of tier. Eviction never changes
//! response bytes: an evicted exact entry replays from disk (when a
//! [`DiskCache`] is attached) or re-runs the flow, and determinism
//! makes both byte-identical to the original; an evicted prefix
//! snapshot only costs re-running the constraint-blind prefix.
//!
//! Exact entries are written through to the disk tier on store, so
//! eviction from memory is a pure drop — the spill already happened,
//! on the non-latency-critical store path.
//!
//! Byte-identity: the resumed flow reconstructs exactly the
//! `FlowContext` a full run would have at the same point, and the
//! epilogue is shared, so the `SynthesisResult` JSON is byte-identical
//! to an offline `synthesize_batch_results` run — the contract the
//! loopback tests pin.

use crate::disk::DiskCache;
use milo_core::netlist::{fnv1a, structural_hash, DesignDb, Netlist};
use milo_core::{Constraints, FlowContext, MiloError, Pass, PassReport};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Exact-tier cache key: structure ⊕ full constraint rendering.
pub fn job_key(nl: &Netlist, constraints: &Constraints) -> u64 {
    let h = fnv1a(structural_hash(nl), b"|constraints|");
    fnv1a(h, constraints.cache_summary().as_bytes())
}

/// Prefix-tier cache key: structure ⊕ tightest delay bound only (the
/// single scalar the constraint-reading prefix pass, `micro-critic`,
/// consumes).
pub fn prefix_key(nl: &Netlist, constraints: &Constraints) -> u64 {
    let h = fnv1a(structural_hash(nl), b"|prefix|");
    let tag = match constraints.tightest_delay() {
        Some(ns) => format!("t{:016x}", ns.to_bits()),
        None => "t-".to_owned(),
    };
    fnv1a(h, tag.as_bytes())
}

/// A finished job's wire payload: the `FlowOutput` JSON exactly as the
/// first run rendered it, plus the result fingerprint for cheap
/// identity checks.
#[derive(Clone, Debug)]
pub struct CachedResult {
    /// `FlowOutput::to_json()` of the original run, spliced verbatim
    /// into cache-hit responses.
    pub json: String,
    /// `structural_hash` of the result netlist.
    pub result_hash: Option<u64>,
}

/// Flow state captured right after `fanout-repair` — everything a
/// resumed run needs to reconstruct the context for `timing-area`.
/// The database snapshot is `Arc`-backed (name-table copy), so the
/// expensive clone here is the work netlist.
#[derive(Clone)]
pub struct PrefixSnapshot {
    work: Netlist,
    db: DesignDb,
    top_name: Option<String>,
    mapped: bool,
    critic: Option<milo_core::microarch::CriticReport>,
    levels: Vec<milo_core::opt::LevelReport>,
    buffers_inserted: usize,
}

/// Fixed bookkeeping charged per cache entry on top of its payload.
const ENTRY_OVERHEAD: usize = 64;

impl PrefixSnapshot {
    /// Estimated resident footprint in bytes. A deliberate estimate,
    /// not a measurement: netlists are slot-counted at a conservative
    /// per-slot cost, and the `Arc`-shared database snapshot is charged
    /// shallowly (name-table entries only — the designs themselves are
    /// shared with the live store, so charging them here would bill the
    /// same bytes twice). What matters for the budget is that the
    /// estimate is deterministic and scales with the real footprint.
    pub fn estimated_bytes(&self) -> usize {
        let netlist = 256
            + self.work.net_slot_count() * 96
            + self.work.component_slot_count() * 128
            + self.work.ports().len() * 48;
        let artifacts = self.levels.len() * 64
            + if self.critic.is_some() { 256 } else { 0 }
            + self.db.len() * 48;
        ENTRY_OVERHEAD + netlist + artifacts
    }
}

/// Which tier answered an exact-cache lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HitTier {
    /// Served from resident memory.
    Memory,
    /// Memory-evicted (or never resident this boot); replayed from the
    /// disk store and re-promoted into memory.
    Disk,
}

/// One resident entry of either tier.
struct Slot<T> {
    val: Arc<T>,
    bytes: usize,
    tick: u64,
}

/// Identifies which tier an LRU victim belongs to.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Tier {
    Exact,
    Prefix,
}

/// Everything that moves together under the cache lock: both tier
/// maps, their recency orders, and the byte accounting. A single lock
/// (rather than the old one-per-tier) is what makes *global* LRU —
/// evict the coldest entry of either tier — race-free.
struct Inner {
    exact: HashMap<u64, Slot<CachedResult>>,
    prefix: HashMap<u64, Slot<PrefixSnapshot>>,
    /// tick → key, oldest first. Ticks are unique, so this is a exact
    /// recency order.
    exact_lru: BTreeMap<u64, u64>,
    prefix_lru: BTreeMap<u64, u64>,
    tick: u64,
    resident: usize,
}

impl Inner {
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// The globally least-recently-used entry across both tiers.
    fn coldest(&self) -> Option<(Tier, u64, u64)> {
        let exact = self
            .exact_lru
            .first_key_value()
            .map(|(&t, &k)| (Tier::Exact, t, k));
        let prefix = self
            .prefix_lru
            .first_key_value()
            .map(|(&t, &k)| (Tier::Prefix, t, k));
        match (exact, prefix) {
            (Some(e), Some(p)) => Some(if e.1 <= p.1 { e } else { p }),
            (e, p) => e.or(p),
        }
    }
}

/// The two cache tiers behind one lock, with optional byte budget and
/// disk spill.
pub struct ResultCache {
    inner: Mutex<Inner>,
    /// `usize::MAX` means unbounded (the pre-v1.1 behavior).
    budget: usize,
    disk: Option<DiskCache>,
    evictions: AtomicU64,
    spilled: AtomicU64,
    disk_hits: AtomicU64,
}

/// A point-in-time snapshot of the cache's storage counters — what the
/// `stats` response reports under `"cache"` (alongside the outcome
/// counters the server's `Metrics` tracks).
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Bytes resident in memory across both tiers (size-accounted).
    pub resident_bytes: usize,
    /// Exact-tier entries resident in memory.
    pub exact_entries: usize,
    /// Prefix-tier entries resident in memory.
    pub prefix_entries: usize,
    /// Distinct keys in the disk store (0 without `--cache-dir`).
    pub disk_entries: usize,
    /// Entries dropped from memory by the LRU budget, either tier.
    pub evictions: u64,
    /// Records written to the disk store.
    pub spilled: u64,
    /// Exact lookups served from disk after a memory miss.
    pub disk_hits: u64,
}

impl Default for ResultCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ResultCache {
    /// An unbounded, memory-only cache.
    pub fn new() -> Self {
        Self::bounded(None, None)
    }

    /// A cache with an optional byte `budget` (both tiers combined;
    /// `None` = unbounded) and an optional disk store for the exact
    /// tier.
    pub fn bounded(budget: Option<usize>, disk: Option<DiskCache>) -> Self {
        Self {
            inner: Mutex::new(Inner {
                exact: HashMap::new(),
                prefix: HashMap::new(),
                exact_lru: BTreeMap::new(),
                prefix_lru: BTreeMap::new(),
                tick: 0,
                resident: 0,
            }),
            budget: budget.unwrap_or(usize::MAX),
            disk,
            evictions: AtomicU64::new(0),
            spilled: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
        }
    }

    /// The disk store, when one is attached.
    pub fn disk(&self) -> Option<&DiskCache> {
        self.disk.as_ref()
    }

    /// Exact-tier lookup: memory first, then the disk store. A disk
    /// hit is re-promoted into memory (and may evict colder entries to
    /// make room).
    pub fn lookup(&self, key: u64) -> Option<(Arc<CachedResult>, HitTier)> {
        {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(slot) = inner.exact.get(&key) {
                let (old, val) = (slot.tick, slot.val.clone());
                let fresh = inner.next_tick();
                inner.exact_lru.remove(&old);
                inner.exact_lru.insert(fresh, key);
                if let Some(slot) = inner.exact.get_mut(&key) {
                    slot.tick = fresh;
                }
                return Some((val, HitTier::Memory));
            }
        }
        // Memory miss: probe the disk tier without holding the memory
        // lock across the read.
        let payload = Arc::new(self.disk.as_ref()?.get(key)?);
        self.disk_hits.fetch_add(1, Ordering::Relaxed);
        self.insert_exact(key, payload.clone(), false);
        Some((payload, HitTier::Disk))
    }

    /// Stores a finished job's payload under its exact key, writing
    /// through to the disk store when one is attached.
    pub fn store(&self, key: u64, payload: Arc<CachedResult>) {
        self.insert_exact(key, payload, true);
    }

    fn insert_exact(&self, key: u64, payload: Arc<CachedResult>, spill: bool) {
        if spill {
            if let Some(disk) = &self.disk {
                if disk.append(key, &payload) {
                    self.spilled.fetch_add(1, Ordering::Relaxed);
                    milo_trace::instant("cache.spill");
                }
            }
        }
        let bytes = ENTRY_OVERHEAD + payload.json.len();
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let tick = inner.next_tick();
        if let Some(old) = inner.exact.insert(
            key,
            Slot {
                val: payload,
                bytes,
                tick,
            },
        ) {
            // Racing stores of the same key carry identical bytes;
            // only the accounting needs reconciling.
            inner.exact_lru.remove(&old.tick);
            inner.resident -= old.bytes;
        }
        inner.exact_lru.insert(tick, key);
        inner.resident += bytes;
        self.enforce_budget(&mut inner);
    }

    /// Prefix-tier lookup.
    pub fn lookup_prefix(&self, key: u64) -> Option<Arc<PrefixSnapshot>> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let slot = inner.prefix.get(&key)?;
        let (old, val) = (slot.tick, slot.val.clone());
        let fresh = inner.next_tick();
        inner.prefix_lru.remove(&old);
        inner.prefix_lru.insert(fresh, key);
        if let Some(slot) = inner.prefix.get_mut(&key) {
            slot.tick = fresh;
        }
        Some(val)
    }

    /// Stores a prefix snapshot (first writer wins — all writers for a
    /// key hold equivalent state, so there is nothing to prefer).
    pub fn store_prefix(&self, key: u64, snap: Arc<PrefixSnapshot>) {
        let bytes = snap.estimated_bytes();
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.prefix.contains_key(&key) {
            return;
        }
        let tick = inner.next_tick();
        inner.prefix.insert(
            key,
            Slot {
                val: snap,
                bytes,
                tick,
            },
        );
        inner.prefix_lru.insert(tick, key);
        inner.resident += bytes;
        self.enforce_budget(&mut inner);
    }

    /// Evicts globally-coldest entries until the resident total fits
    /// the budget (or nothing is left — a single over-budget entry is
    /// stored, served once, and immediately dropped).
    fn enforce_budget(&self, inner: &mut Inner) {
        while inner.resident > self.budget {
            let Some((tier, tick, key)) = inner.coldest() else {
                break;
            };
            let freed = match tier {
                Tier::Exact => {
                    inner.exact_lru.remove(&tick);
                    inner.exact.remove(&key).map_or(0, |s| s.bytes)
                }
                Tier::Prefix => {
                    inner.prefix_lru.remove(&tick);
                    inner.prefix.remove(&key).map_or(0, |s| s.bytes)
                }
            };
            inner.resident -= freed;
            self.evictions.fetch_add(1, Ordering::Relaxed);
            milo_trace::instant("cache.evict");
        }
    }

    /// (exact entries, prefix entries) resident in memory — for the
    /// stats report.
    pub fn sizes(&self) -> (usize, usize) {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        (inner.exact.len(), inner.prefix.len())
    }

    /// Bytes currently resident in memory across both tiers.
    pub fn resident_bytes(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .resident
    }

    /// Snapshot of every storage counter, for `stats`.
    pub fn stats(&self) -> CacheStats {
        let (resident, exact_entries, prefix_entries) = {
            let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            (inner.resident, inner.exact.len(), inner.prefix.len())
        };
        CacheStats {
            resident_bytes: resident,
            exact_entries,
            prefix_entries,
            disk_entries: self.disk.as_ref().map_or(0, DiskCache::len),
            evictions: self.evictions.load(Ordering::Relaxed),
            spilled: self.spilled.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
        }
    }
}

/// A pass that records the flow state into a shared slot and changes
/// nothing. The server inserts it after `fanout-repair` on full runs;
/// the worker moves the captured snapshot into the prefix tier once
/// the run succeeds (a failed run must not poison the cache).
pub struct CapturePrefix {
    slot: Arc<Mutex<Option<PrefixSnapshot>>>,
}

impl CapturePrefix {
    /// Creates the pass and the slot the snapshot lands in.
    pub fn new() -> (Self, Arc<Mutex<Option<PrefixSnapshot>>>) {
        let slot = Arc::new(Mutex::new(None));
        (Self { slot: slot.clone() }, slot)
    }
}

impl Pass for CapturePrefix {
    fn name(&self) -> &str {
        "capture-prefix"
    }

    fn run(&mut self, ctx: &mut FlowContext<'_>) -> Result<PassReport, MiloError> {
        let snap = PrefixSnapshot {
            work: ctx.work.clone(),
            db: ctx.db.clone(),
            top_name: ctx.top_name.clone(),
            mapped: ctx.mapped,
            critic: ctx.critic.clone(),
            levels: ctx.levels.clone(),
            buffers_inserted: ctx.buffers_inserted,
        };
        *self.slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(snap);
        Ok(PassReport::noted(0, "snapshot captured"))
    }
}

/// A pass that overwrites the flow state with a [`PrefixSnapshot`],
/// placing the context exactly where a full run stands after
/// `fanout-repair`. Used as the first pass of the resume flow
/// (`restore-prefix` → `timing-area`).
pub struct RestorePrefix {
    snap: Arc<PrefixSnapshot>,
}

impl RestorePrefix {
    /// Creates the restore pass for `snap`.
    pub fn new(snap: Arc<PrefixSnapshot>) -> Self {
        Self { snap }
    }
}

impl Pass for RestorePrefix {
    fn name(&self) -> &str {
        "restore-prefix"
    }

    fn run(&mut self, ctx: &mut FlowContext<'_>) -> Result<PassReport, MiloError> {
        ctx.work = self.snap.work.clone();
        ctx.db.merge_from(&self.snap.db);
        ctx.top_name = self.snap.top_name.clone();
        ctx.mapped = self.snap.mapped;
        ctx.critic = self.snap.critic.clone();
        ctx.levels = self.snap.levels.clone();
        ctx.timing = None;
        ctx.buffers_inserted = self.snap.buffers_inserted;
        Ok(PassReport::noted(0, "prefix restored"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(name: &str, nets: usize) -> Netlist {
        let mut nl = Netlist::new(name);
        for i in 0..nets {
            nl.add_net(format!("n{i}"));
        }
        nl
    }

    fn payload(json: &str) -> Arc<CachedResult> {
        Arc::new(CachedResult {
            json: json.to_owned(),
            result_hash: Some(7),
        })
    }

    fn snapshot(nets: usize) -> Arc<PrefixSnapshot> {
        Arc::new(PrefixSnapshot {
            work: toy("snap", nets),
            db: DesignDb::new(),
            top_name: None,
            mapped: false,
            critic: None,
            levels: Vec::new(),
            buffers_inserted: 0,
        })
    }

    /// The regression the exact key exists for: identical structure,
    /// different constraints, distinct keys. Before constraints were
    /// folded in, these aliased and a cached answer for one delay
    /// budget was served for another.
    #[test]
    fn job_key_covers_constraints() {
        let nl = toy("t", 3);
        let loose = Constraints::none().with_max_delay(9.0);
        let tight = Constraints::none().with_max_delay(4.5);
        assert_ne!(job_key(&nl, &loose), job_key(&nl, &tight));
        assert_ne!(
            job_key(&nl, &Constraints::none()),
            job_key(&nl, &Constraints::none().with_max_area(50.0)),
            "area-only difference still diverges"
        );
        assert_eq!(job_key(&nl, &loose), job_key(&nl, &loose), "deterministic");
    }

    #[test]
    fn job_key_covers_structure() {
        let c = Constraints::none();
        assert_ne!(job_key(&toy("t", 3), &c), job_key(&toy("t", 4), &c));
        assert_ne!(job_key(&toy("t", 3), &c), job_key(&toy("u", 3), &c));
    }

    #[test]
    fn prefix_key_tracks_only_the_tightest_delay() {
        let nl = toy("t", 3);
        let a = Constraints::none().with_max_delay(4.5);
        let b = Constraints::none().with_max_delay(4.5).with_max_area(50.0);
        let c = Constraints::none().with_max_delay(9.0);
        assert_eq!(
            prefix_key(&nl, &a),
            prefix_key(&nl, &b),
            "area budget does not dirty the prefix"
        );
        assert_ne!(prefix_key(&nl, &a), prefix_key(&nl, &c), "delay bound does");
        assert_ne!(
            prefix_key(&nl, &a),
            prefix_key(&nl, &Constraints::none()),
            "unconstrained is its own bucket"
        );
    }

    #[test]
    fn exact_and_prefix_keys_never_share_a_chain() {
        let nl = toy("t", 3);
        let c = Constraints::none();
        assert_ne!(job_key(&nl, &c), prefix_key(&nl, &c));
    }

    #[test]
    fn cache_tiers_store_and_return() {
        let cache = ResultCache::new();
        assert!(cache.lookup(1).is_none());
        cache.store(1, payload("{}"));
        let (got, tier) = cache.lookup(1).expect("stored entry returns");
        assert_eq!(got.result_hash, Some(7));
        assert_eq!(tier, HitTier::Memory);
        assert_eq!(cache.sizes(), (1, 0));
        assert!(cache.resident_bytes() > 0);
    }

    #[test]
    fn budget_evicts_least_recently_used_first() {
        // Each entry costs ENTRY_OVERHEAD + 100 bytes; budget fits two.
        let body = "x".repeat(100);
        let cache = ResultCache::bounded(Some(2 * (ENTRY_OVERHEAD + 100)), None);
        cache.store(1, payload(&body));
        cache.store(2, payload(&body));
        assert_eq!(cache.sizes().0, 2);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.lookup(1).is_some());
        cache.store(3, payload(&body));
        assert!(cache.lookup(2).is_none(), "LRU entry evicted");
        assert!(cache.lookup(1).is_some(), "recently-touched survives");
        assert!(cache.lookup(3).is_some(), "newest survives");
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert!(stats.resident_bytes <= 2 * (ENTRY_OVERHEAD + 100));
    }

    #[test]
    fn budget_spans_both_tiers() {
        // A large prefix snapshot and a budget that can't also hold two
        // exact entries: storing exacts must push the cold snapshot out.
        let snap = snapshot(64);
        let snap_bytes = snap.estimated_bytes();
        let body = "y".repeat(200);
        let cache = ResultCache::bounded(Some(snap_bytes + 2 * (ENTRY_OVERHEAD + 200)), None);
        cache.store_prefix(9, snap);
        cache.store(1, payload(&body));
        cache.store(2, payload(&body));
        assert_eq!(cache.sizes(), (2, 1), "everything fits so far");
        cache.store(3, payload(&body));
        let stats = cache.stats();
        assert!(stats.evictions >= 1);
        assert_eq!(
            cache.sizes().1,
            0,
            "the cold prefix snapshot was the global LRU victim"
        );
        assert!(cache.lookup(3).is_some());
    }

    #[test]
    fn zero_budget_keeps_nothing_resident_but_disk_still_serves() {
        let dir = std::env::temp_dir().join(format!(
            "milo-serve-cache-zero-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let disk = DiskCache::open(&dir).expect("disk opens");
        let cache = ResultCache::bounded(Some(0), Some(disk));
        cache.store(5, payload("{\"z\": 0}"));
        assert_eq!(cache.sizes(), (0, 0), "nothing stays resident");
        let (got, tier) = cache.lookup(5).expect("disk replays");
        assert_eq!(got.json, "{\"z\": 0}");
        assert_eq!(tier, HitTier::Disk);
        let stats = cache.stats();
        assert_eq!(stats.disk_hits, 1);
        assert_eq!(stats.spilled, 1);
        assert!(stats.evictions >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_write_through_and_promotion() {
        let dir = std::env::temp_dir().join(format!(
            "milo-serve-cache-wt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let disk = DiskCache::open(&dir).expect("disk opens");
        let body = "w".repeat(50);
        let cache = ResultCache::bounded(Some(ENTRY_OVERHEAD + 50), Some(disk));
        cache.store(1, payload(&body));
        cache.store(2, payload(&body)); // evicts 1 from memory
        assert_eq!(cache.stats().spilled, 2, "write-through spills on store");
        let (got, tier) = cache.lookup(1).expect("evicted entry replays from disk");
        assert_eq!(tier, HitTier::Disk);
        assert_eq!(got.json, body);
        // Promotion made 1 resident again, evicting 2.
        assert_eq!(cache.lookup(2).map(|(_, t)| t), Some(HitTier::Disk));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prefix_snapshot_estimate_scales_with_the_netlist() {
        let small = snapshot(4).estimated_bytes();
        let large = snapshot(400).estimated_bytes();
        assert!(large > small + 300 * 96, "estimate tracks net count");
    }
}
