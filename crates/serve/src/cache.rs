//! Fingerprint-keyed result caching.
//!
//! Two tiers, both keyed off the netlist's structural fingerprint
//! ([`milo_netlist::structural_hash`]) extended with constraint data
//! via the FNV-1a chain:
//!
//! * **Exact tier** — key covers the full structure *and* the full
//!   constraint set ([`Constraints::cache_summary`]). A hit means an
//!   identical job already ran: the stored [`FlowOutput`] JSON is
//!   returned verbatim, no passes execute. Covering constraints in the
//!   key is load-bearing — two jobs differing only in `max_delay` must
//!   not alias.
//! * **Prefix tier** — key covers the structure and only the *tightest
//!   delay bound*. Of the five standard passes, only `micro-critic`
//!   (reads `Constraints::tightest_delay`) and `timing-area` (reads the
//!   full set) look at constraints at all; `compile`,
//!   `bottom-up-logic` and `fanout-repair` are constraint-blind. So
//!   the flow state right after `fanout-repair` is reusable across any
//!   two jobs that agree on structure and tightest bound — a near-miss
//!   resubmission restores that snapshot and runs only `timing-area`,
//!   the first constraint-dirty pass, plus the (always identical)
//!   driver epilogue.
//!
//! Byte-identity: the resumed flow reconstructs exactly the
//! `FlowContext` a full run would have at the same point, and the
//! epilogue is shared, so the `SynthesisResult` JSON is byte-identical
//! to an offline `synthesize_batch_results` run — the contract the
//! loopback tests pin.

use milo_core::netlist::{fnv1a, structural_hash, DesignDb, Netlist};
use milo_core::{Constraints, FlowContext, MiloError, Pass, PassReport};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Exact-tier cache key: structure ⊕ full constraint rendering.
pub fn job_key(nl: &Netlist, constraints: &Constraints) -> u64 {
    let h = fnv1a(structural_hash(nl), b"|constraints|");
    fnv1a(h, constraints.cache_summary().as_bytes())
}

/// Prefix-tier cache key: structure ⊕ tightest delay bound only (the
/// single scalar the constraint-reading prefix pass, `micro-critic`,
/// consumes).
pub fn prefix_key(nl: &Netlist, constraints: &Constraints) -> u64 {
    let h = fnv1a(structural_hash(nl), b"|prefix|");
    let tag = match constraints.tightest_delay() {
        Some(ns) => format!("t{:016x}", ns.to_bits()),
        None => "t-".to_owned(),
    };
    fnv1a(h, tag.as_bytes())
}

/// A finished job's wire payload: the `FlowOutput` JSON exactly as the
/// first run rendered it, plus the result fingerprint for cheap
/// identity checks.
#[derive(Clone, Debug)]
pub struct CachedResult {
    /// `FlowOutput::to_json()` of the original run, spliced verbatim
    /// into cache-hit responses.
    pub json: String,
    /// `structural_hash` of the result netlist.
    pub result_hash: Option<u64>,
}

/// Flow state captured right after `fanout-repair` — everything a
/// resumed run needs to reconstruct the context for `timing-area`.
/// The database snapshot is `Arc`-backed (name-table copy), so the
/// expensive clone here is the work netlist.
#[derive(Clone)]
pub struct PrefixSnapshot {
    work: Netlist,
    db: DesignDb,
    top_name: Option<String>,
    mapped: bool,
    critic: Option<milo_core::microarch::CriticReport>,
    levels: Vec<milo_core::opt::LevelReport>,
    buffers_inserted: usize,
}

/// The two cache tiers behind one lock each.
pub struct ResultCache {
    exact: Mutex<HashMap<u64, Arc<CachedResult>>>,
    prefix: Mutex<HashMap<u64, Arc<PrefixSnapshot>>>,
}

impl Default for ResultCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self {
            exact: Mutex::new(HashMap::new()),
            prefix: Mutex::new(HashMap::new()),
        }
    }

    /// Exact-tier lookup.
    pub fn lookup(&self, key: u64) -> Option<Arc<CachedResult>> {
        self.exact
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
            .cloned()
    }

    /// Stores a finished job's payload under its exact key.
    pub fn store(&self, key: u64, payload: Arc<CachedResult>) {
        self.exact
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, payload);
    }

    /// Prefix-tier lookup.
    pub fn lookup_prefix(&self, key: u64) -> Option<Arc<PrefixSnapshot>> {
        self.prefix
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
            .cloned()
    }

    /// Stores a prefix snapshot (first writer wins — all writers for a
    /// key hold equivalent state, so there is nothing to prefer).
    pub fn store_prefix(&self, key: u64, snap: Arc<PrefixSnapshot>) {
        self.prefix
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(key)
            .or_insert(snap);
    }

    /// (exact entries, prefix entries) — for the stats report.
    pub fn sizes(&self) -> (usize, usize) {
        (
            self.exact.lock().unwrap_or_else(|e| e.into_inner()).len(),
            self.prefix.lock().unwrap_or_else(|e| e.into_inner()).len(),
        )
    }
}

/// A pass that records the flow state into a shared slot and changes
/// nothing. The server inserts it after `fanout-repair` on full runs;
/// the worker moves the captured snapshot into the prefix tier once
/// the run succeeds (a failed run must not poison the cache).
pub struct CapturePrefix {
    slot: Arc<Mutex<Option<PrefixSnapshot>>>,
}

impl CapturePrefix {
    /// Creates the pass and the slot the snapshot lands in.
    pub fn new() -> (Self, Arc<Mutex<Option<PrefixSnapshot>>>) {
        let slot = Arc::new(Mutex::new(None));
        (Self { slot: slot.clone() }, slot)
    }
}

impl Pass for CapturePrefix {
    fn name(&self) -> &str {
        "capture-prefix"
    }

    fn run(&mut self, ctx: &mut FlowContext<'_>) -> Result<PassReport, MiloError> {
        let snap = PrefixSnapshot {
            work: ctx.work.clone(),
            db: ctx.db.clone(),
            top_name: ctx.top_name.clone(),
            mapped: ctx.mapped,
            critic: ctx.critic.clone(),
            levels: ctx.levels.clone(),
            buffers_inserted: ctx.buffers_inserted,
        };
        *self.slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(snap);
        Ok(PassReport::noted(0, "snapshot captured"))
    }
}

/// A pass that overwrites the flow state with a [`PrefixSnapshot`],
/// placing the context exactly where a full run stands after
/// `fanout-repair`. Used as the first pass of the resume flow
/// (`restore-prefix` → `timing-area`).
pub struct RestorePrefix {
    snap: Arc<PrefixSnapshot>,
}

impl RestorePrefix {
    /// Creates the restore pass for `snap`.
    pub fn new(snap: Arc<PrefixSnapshot>) -> Self {
        Self { snap }
    }
}

impl Pass for RestorePrefix {
    fn name(&self) -> &str {
        "restore-prefix"
    }

    fn run(&mut self, ctx: &mut FlowContext<'_>) -> Result<PassReport, MiloError> {
        ctx.work = self.snap.work.clone();
        ctx.db.merge_from(&self.snap.db);
        ctx.top_name = self.snap.top_name.clone();
        ctx.mapped = self.snap.mapped;
        ctx.critic = self.snap.critic.clone();
        ctx.levels = self.snap.levels.clone();
        ctx.timing = None;
        ctx.buffers_inserted = self.snap.buffers_inserted;
        Ok(PassReport::noted(0, "prefix restored"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(name: &str, nets: usize) -> Netlist {
        let mut nl = Netlist::new(name);
        for i in 0..nets {
            nl.add_net(format!("n{i}"));
        }
        nl
    }

    /// The regression the exact key exists for: identical structure,
    /// different constraints, distinct keys. Before constraints were
    /// folded in, these aliased and a cached answer for one delay
    /// budget was served for another.
    #[test]
    fn job_key_covers_constraints() {
        let nl = toy("t", 3);
        let loose = Constraints::none().with_max_delay(9.0);
        let tight = Constraints::none().with_max_delay(4.5);
        assert_ne!(job_key(&nl, &loose), job_key(&nl, &tight));
        assert_ne!(
            job_key(&nl, &Constraints::none()),
            job_key(&nl, &Constraints::none().with_max_area(50.0)),
            "area-only difference still diverges"
        );
        assert_eq!(job_key(&nl, &loose), job_key(&nl, &loose), "deterministic");
    }

    #[test]
    fn job_key_covers_structure() {
        let c = Constraints::none();
        assert_ne!(job_key(&toy("t", 3), &c), job_key(&toy("t", 4), &c));
        assert_ne!(job_key(&toy("t", 3), &c), job_key(&toy("u", 3), &c));
    }

    #[test]
    fn prefix_key_tracks_only_the_tightest_delay() {
        let nl = toy("t", 3);
        let a = Constraints::none().with_max_delay(4.5);
        let b = Constraints::none().with_max_delay(4.5).with_max_area(50.0);
        let c = Constraints::none().with_max_delay(9.0);
        assert_eq!(
            prefix_key(&nl, &a),
            prefix_key(&nl, &b),
            "area budget does not dirty the prefix"
        );
        assert_ne!(prefix_key(&nl, &a), prefix_key(&nl, &c), "delay bound does");
        assert_ne!(
            prefix_key(&nl, &a),
            prefix_key(&nl, &Constraints::none()),
            "unconstrained is its own bucket"
        );
    }

    #[test]
    fn exact_and_prefix_keys_never_share_a_chain() {
        let nl = toy("t", 3);
        let c = Constraints::none();
        assert_ne!(job_key(&nl, &c), prefix_key(&nl, &c));
    }

    #[test]
    fn cache_tiers_store_and_return() {
        let cache = ResultCache::new();
        assert!(cache.lookup(1).is_none());
        cache.store(
            1,
            Arc::new(CachedResult {
                json: "{}".into(),
                result_hash: Some(7),
            }),
        );
        assert_eq!(cache.lookup(1).map(|r| r.result_hash), Some(Some(7)));
        assert_eq!(cache.sizes(), (1, 0));
    }
}
