//! A small blocking client for the JSON-lines protocol — what the
//! loopback tests, benches, and the `--smoke` self-check drive the
//! daemon with.

use crate::json::{self, Value};
use crate::protocol::{constraints_to_json, Priority, PROTOCOL_VERSION};
use milo_core::Constraints;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Submission options for [`Client::submit_with`] and
/// [`Client::submit_batch`] — the v1.1 replacement for the old
/// positional `submit(design, constraints, stream)` signature, which
/// had nowhere to grow (every new knob meant another positional bool).
///
/// ```no_run
/// # use milo_serve::{Client, SubmitOptions, Priority};
/// # use milo_core::Constraints;
/// # let mut client = Client::connect("127.0.0.1:0")?;
/// let job = client.submit_with(
///     "design d\ninput a\noutput y\ncomp inv g A=a Y=y\n",
///     &Constraints::none(),
///     &SubmitOptions::new().priority(Priority::High).client("me"),
/// )?;
/// # Ok::<(), milo_serve::ClientError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct SubmitOptions {
    priority: Priority,
    stream: bool,
    client: Option<String>,
}

impl SubmitOptions {
    /// Defaults: `normal` priority, no streaming, per-connection
    /// client identity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the scheduling band.
    #[must_use]
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Streams flow events back on this connection as the job runs.
    #[must_use]
    pub fn stream(mut self, stream: bool) -> Self {
        self.stream = stream;
        self
    }

    /// Tags the submission with a client identity — fairness is
    /// per-tag, so submissions sharing a tag share one scheduling
    /// turn even across connections.
    #[must_use]
    pub fn client(mut self, tag: impl Into<String>) -> Self {
        self.client = Some(tag.into());
        self
    }

    /// The trailing request fields this option set contributes
    /// (always leads with `", "`; the caller supplies the braces).
    fn wire_suffix(&self) -> String {
        let mut s = format!(
            ", \"v\": \"{PROTOCOL_VERSION}\", \"priority\": \"{}\"",
            self.priority.as_str()
        );
        if self.stream {
            s.push_str(", \"stream\": true");
        }
        if let Some(tag) = &self.client {
            s.push_str(&format!(", \"client\": {}", milo_core::json_string(tag)));
        }
        s
    }
}

/// A client-side failure: transport, protocol, or a server-reported
/// error line.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server sent something that is not valid JSON.
    BadJson(json::JsonError),
    /// The server answered `{"ok": false, …}` or an unexpected shape.
    Server(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::BadJson(e) => write!(f, "bad server json: {e}"),
            ClientError::Server(message) => write!(f, "server error: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One connection to a running server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Streaming event lines read while waiting for a response.
    events: Vec<Value>,
}

impl Client {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        // Small request lines must not sit in Nagle's buffer waiting
        // for an ACK the server won't send until it sees them.
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: stream,
            events: Vec::new(),
        })
    }

    /// Sends one raw request line and returns the next *response* line
    /// unparsed. `{"event": …}` lines that arrive first (streamed flow
    /// progress) are parsed and buffered into [`Client::take_events`].
    ///
    /// # Errors
    ///
    /// Transport failures, or EOF before a response arrives.
    pub fn request_raw(&mut self, line: &str) -> Result<String, ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        loop {
            let mut reply = String::new();
            if self.reader.read_line(&mut reply)? == 0 {
                return Err(ClientError::Server("connection closed".to_owned()));
            }
            let trimmed = reply.trim_end_matches(['\n', '\r']);
            if trimmed.is_empty() {
                continue;
            }
            // Event lines interleave with responses on streaming
            // connections; only they carry an "event" key.
            if let Ok(v) = json::parse(trimmed) {
                if v.get("event").is_some() {
                    self.events.push(v);
                    continue;
                }
            }
            return Ok(trimmed.to_owned());
        }
    }

    /// Sends one request line and parses the response, surfacing
    /// `{"ok": false}` as [`ClientError::Server`].
    ///
    /// # Errors
    ///
    /// Transport, parse, and server-reported failures.
    pub fn request(&mut self, line: &str) -> Result<Value, ClientError> {
        let raw = self.request_raw(line)?;
        let v = json::parse(&raw).map_err(ClientError::BadJson)?;
        match v.get("ok").and_then(Value::as_bool) {
            Some(true) => Ok(v),
            _ => Err(ClientError::Server(
                v.get("error")
                    .and_then(Value::as_str)
                    .unwrap_or("missing ok field")
                    .to_owned(),
            )),
        }
    }

    /// Submits a job; returns its id.
    ///
    /// # Errors
    ///
    /// Transport and server-reported failures.
    #[deprecated(
        since = "0.1.0",
        note = "use `submit_with` and `SubmitOptions` — positional bools don't scale to \
                priority/client/batch"
    )]
    pub fn submit(
        &mut self,
        design_text: &str,
        constraints: &Constraints,
        stream: bool,
    ) -> Result<u64, ClientError> {
        self.submit_with(
            design_text,
            constraints,
            &SubmitOptions::new().stream(stream),
        )
    }

    /// Submits a job with explicit [`SubmitOptions`]; returns its id.
    ///
    /// # Errors
    ///
    /// Transport and server-reported failures.
    pub fn submit_with(
        &mut self,
        design_text: &str,
        constraints: &Constraints,
        opts: &SubmitOptions,
    ) -> Result<u64, ClientError> {
        let line = format!(
            "{{\"op\": \"submit\", \"design\": {}, \"constraints\": {}{}}}",
            milo_core::json_string(design_text),
            constraints_to_json(constraints),
            opts.wire_suffix(),
        );
        let v = self.request(&line)?;
        v.get("job")
            .and_then(Value::as_u64)
            .ok_or_else(|| ClientError::Server("submit response missing job id".to_owned()))
    }

    /// Submits N designs as one batch sharing one database snapshot
    /// and one constraint set; returns the member job ids in design
    /// order. Each member is individually `status`/`result`/`cancel`-
    /// able. (`opts.stream` is ignored — batch members don't stream.)
    ///
    /// # Errors
    ///
    /// Transport and server-reported failures.
    pub fn submit_batch(
        &mut self,
        design_texts: &[&str],
        constraints: &Constraints,
        opts: &SubmitOptions,
    ) -> Result<Vec<u64>, ClientError> {
        let designs = design_texts
            .iter()
            .map(|t| milo_core::json_string(t))
            .collect::<Vec<_>>()
            .join(", ");
        let line = format!(
            "{{\"op\": \"submit_batch\", \"designs\": [{designs}], \"constraints\": {}{}}}",
            constraints_to_json(constraints),
            opts.wire_suffix(),
        );
        let v = self.request(&line)?;
        v.get("jobs")
            .and_then(Value::as_array)
            .map(|ids| ids.iter().filter_map(Value::as_u64).collect::<Vec<u64>>())
            .filter(|ids| ids.len() == design_texts.len())
            .ok_or_else(|| ClientError::Server("submit_batch response missing job ids".to_owned()))
    }

    /// Polls a job's state label (`queued` / `running` / `done` / …).
    ///
    /// # Errors
    ///
    /// Transport and server-reported failures.
    pub fn status(&mut self, job: u64) -> Result<String, ClientError> {
        let v = self.request(&format!("{{\"op\": \"status\", \"job\": {job}}}"))?;
        v.get("state")
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| ClientError::Server("status response missing state".to_owned()))
    }

    /// Blocks until `job` is terminal; returns the raw response line
    /// (byte-exact, for splice comparisons against offline runs).
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn result_raw(&mut self, job: u64) -> Result<String, ClientError> {
        self.request_raw(&format!("{{\"op\": \"result\", \"job\": {job}}}"))
    }

    /// Blocks until `job` is terminal; returns the parsed response.
    ///
    /// # Errors
    ///
    /// Transport, parse, and server-reported failures.
    pub fn result(&mut self, job: u64) -> Result<Value, ClientError> {
        let raw = self.result_raw(job)?;
        let v = json::parse(&raw).map_err(ClientError::BadJson)?;
        match v.get("ok").and_then(Value::as_bool) {
            Some(true) => Ok(v),
            _ => Err(ClientError::Server(
                v.get("error")
                    .and_then(Value::as_str)
                    .unwrap_or("missing ok field")
                    .to_owned(),
            )),
        }
    }

    /// Requests cancellation; `true` when the job was still queued.
    ///
    /// # Errors
    ///
    /// Transport and server-reported failures.
    pub fn cancel(&mut self, job: u64) -> Result<bool, ClientError> {
        let v = self.request(&format!("{{\"op\": \"cancel\", \"job\": {job}}}"))?;
        Ok(v.get("cancelled").and_then(Value::as_bool).unwrap_or(false))
    }

    /// Fetches the service counters.
    ///
    /// # Errors
    ///
    /// Transport and server-reported failures.
    pub fn stats(&mut self) -> Result<Value, ClientError> {
        let v = self.request("{\"op\": \"stats\"}")?;
        v.get("stats")
            .cloned()
            .ok_or_else(|| ClientError::Server("stats response missing stats".to_owned()))
    }

    /// Drains the server's buffered trace events as a Chrome trace
    /// object (`{"traceEvents": […], …}` — load it in Perfetto or
    /// `chrome://tracing`). Empty unless the server process runs with
    /// tracing enabled.
    ///
    /// # Errors
    ///
    /// Transport and server-reported failures.
    pub fn trace(&mut self) -> Result<Value, ClientError> {
        let v = self.request("{\"op\": \"trace\"}")?;
        v.get("trace")
            .cloned()
            .ok_or_else(|| ClientError::Server("trace response missing trace".to_owned()))
    }

    /// Asks the server to shut down.
    ///
    /// # Errors
    ///
    /// Transport and server-reported failures.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request("{\"op\": \"shutdown\"}").map(|_| ())
    }

    /// Drains the streamed event lines collected so far.
    pub fn take_events(&mut self) -> Vec<Value> {
        std::mem::take(&mut self.events)
    }
}
