//! The `milo-serve` daemon binary.
//!
//! ```text
//! milo-serve [--addr HOST:PORT] [--workers N] [--shards N]
//!            [--cache-bytes SIZE] [--cache-dir DIR] [--smoke]
//! ```
//!
//! `--cache-bytes` bounds the in-memory result cache (suffixes `k`,
//! `m`, `g` accepted, e.g. `--cache-bytes 64m`); `--cache-dir` spills
//! evicted and committed exact-tier results to disk and warm-starts
//! from it on the next boot. Both also read the environment
//! (`MILO_SERVE_CACHE_BYTES`, `MILO_SERVE_CACHE_DIR`); flags win.
//!
//! Without `--smoke`, binds (default `MILO_SERVE_ADDR`, else
//! `127.0.0.1:7171`), prints the bound address, and serves until a
//! `shutdown` request arrives. With `--smoke`, spins a private server
//! on a free port, drives a submit → result → resubmit → stats
//! sequence through the loopback, verifies the resubmission was an
//! exact cache hit, and exits nonzero on any failure — the CI
//! self-check.

use milo_core::Constraints;
use milo_serve::{spawn, Client, ServerConfig, SubmitOptions, Value};
use milo_techmap::ecl_library;
use std::process::ExitCode;

/// Parses a byte size with an optional `k`/`m`/`g` suffix (powers of
/// 1024, case-insensitive).
fn parse_bytes(s: &str) -> Option<usize> {
    let s = s.trim();
    let (digits, shift) = match s.chars().last()? {
        'k' | 'K' => (&s[..s.len() - 1], 10u32),
        'm' | 'M' => (&s[..s.len() - 1], 20),
        'g' | 'G' => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    let n = digits.parse::<usize>().ok()?;
    n.checked_shl(shift)
}

fn main() -> ExitCode {
    let mut config = ServerConfig::new(ecl_library());
    let mut smoke = false;
    let mut addr_set_by_flag = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--addr" => match args.next() {
                Some(addr) => {
                    config = config.with_addr(addr);
                    addr_set_by_flag = true;
                }
                None => return usage("--addr needs a HOST:PORT value"),
            },
            "--workers" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => config = config.with_workers(n),
                _ => return usage("--workers needs a positive integer"),
            },
            "--shards" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => config = config.with_shards(n),
                _ => return usage("--shards needs a positive integer"),
            },
            "--cache-bytes" => match args.next().as_deref().and_then(parse_bytes) {
                Some(n) => config = config.with_cache_bytes(n),
                None => return usage("--cache-bytes needs a size like 1048576, 64m, or 1g"),
            },
            "--cache-dir" => match args.next() {
                Some(dir) => config = config.with_cache_dir(dir),
                None => return usage("--cache-dir needs a directory path"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    if smoke {
        // The self-check always uses a private free port.
        return match run_smoke(config.with_addr("127.0.0.1:0")) {
            Ok(()) => {
                println!("smoke: ok");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("smoke: FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }

    // A daemon needs a stable default port, not an ephemeral one.
    if !addr_set_by_flag && std::env::var("MILO_SERVE_ADDR").is_err() {
        config = config.with_addr("127.0.0.1:7171");
    }
    match spawn(config) {
        Ok(mut handle) => {
            println!("milo-serve listening on {}", handle.addr());
            // Serve until a shutdown request lands: the handle's drop
            // joins the accept loop and workers.
            handle.shutdown_on_request();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("milo-serve: cannot bind: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("milo-serve: {error}");
    }
    eprintln!(
        "usage: milo-serve [--addr HOST:PORT] [--workers N] [--shards N] \
         [--cache-bytes SIZE] [--cache-dir DIR] [--smoke]"
    );
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The CI smoke sequence: two distinct designs, a resubmission that
/// must hit the exact cache, and a stats cross-check.
fn run_smoke(config: ServerConfig) -> Result<(), String> {
    let handle = spawn(config).map_err(|e| format!("bind: {e}"))?;
    let mut client = Client::connect(handle.addr()).map_err(|e| format!("connect: {e}"))?;

    let design = "design smoke\ninput a b c\noutput y\n\
                  comp and2 g1 A0=a A1=b Y=t\ncomp or2 g2 A0=t A1=c Y=y\n";
    let constraints = Constraints::none().with_max_delay(6.0);

    let first = client
        .submit_with(design, &constraints, &SubmitOptions::new().stream(true))
        .map_err(|e| format!("submit: {e}"))?;
    let reply = client.result(first).map_err(|e| format!("result: {e}"))?;
    expect_str(&reply, "state", "done")?;
    expect_str(&reply, "cache", "miss")?;
    if client.take_events().is_empty() {
        return Err("streaming submit produced no flow events".to_owned());
    }
    let output = reply.get("output").ok_or("result carries no output")?;
    if output
        .get("flow")
        .and_then(|f| f.get("structural_hash"))
        .and_then(Value::as_str)
        .is_none_or(|h| !h.starts_with("0x"))
    {
        return Err("flow report carries no structural_hash".to_owned());
    }

    // Identical resubmission: must be answered from the exact tier.
    let second = client
        .submit_with(design, &constraints, &SubmitOptions::new())
        .map_err(|e| format!("resubmit: {e}"))?;
    let reply = client.result(second).map_err(|e| format!("result2: {e}"))?;
    expect_str(&reply, "state", "done")?;
    expect_str(&reply, "cache", "hit")?;

    let stats = client.stats().map_err(|e| format!("stats: {e}"))?;
    let hits = stats
        .get("cache")
        .and_then(|c| c.get("hits"))
        .and_then(Value::as_u64)
        .ok_or("stats carry no cache.hits")?;
    if hits < 1 {
        return Err(format!("expected ≥1 exact cache hit, stats say {hits}"));
    }

    client.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    Ok(())
}

fn expect_str(v: &Value, key: &str, want: &str) -> Result<(), String> {
    match v.get(key).and_then(Value::as_str) {
        Some(got) if got == want => Ok(()),
        got => Err(format!("expected {key}={want:?}, got {got:?} in {v}")),
    }
}
