//! # milo-serve
//!
//! Synthesis-as-a-service: a long-lived daemon wrapping the MILO flow
//! engine behind a plain TCP/JSON-lines protocol — no async runtime,
//! just `std` sockets, a thread-per-connection front end, and a fixed
//! pool of synthesis workers draining a condvar-signaled job queue.
//!
//! The service adds three things the offline driver doesn't have:
//!
//! * a **sharded design database** ([`ShardedDb`]) so concurrent
//!   workers merging compiled designs back don't serialize on one
//!   lock;
//! * **fingerprint-keyed result caching** ([`ResultCache`]): an exact
//!   tier (structure ⊕ constraints → replay stored bytes) and a
//!   prefix tier (structure ⊕ tightest delay → resume from the first
//!   constraint-dirty pass);
//! * **streaming progress**: jobs submitted with `"stream": true` get
//!   the engine's `FlowEvent`s bridged onto their connection as JSON
//!   lines.
//!
//! Since protocol v1.1 the service is also **bounded, persistent, and
//! fair**: the cache evicts least-recently-used entries to stay under
//! a byte budget (`--cache-bytes`), evicted or stored exact results
//! spill to a disk store (`--cache-dir`) that warm-starts the next
//! boot, and the FIFO queue is replaced by a priority + per-client
//! weighted-round-robin [`Scheduler`] so one client's backlog can't
//! starve another's interactive submit.
//!
//! Determinism is the service's core contract: a job's result JSON is
//! byte-identical to an offline `synthesize_batch_results` run of the
//! same design and constraints, regardless of arrival order, worker
//! count, or cache state. See `docs/SERVICE.md` for the protocol
//! grammar and ops knobs.
//!
//! # Examples
//!
//! ```
//! use milo_serve::{spawn, Client, ServerConfig};
//! use milo_core::Constraints;
//! use milo_techmap::ecl_library;
//!
//! use milo_serve::SubmitOptions;
//!
//! let handle = spawn(ServerConfig::new(ecl_library()).with_workers(1))?;
//! let mut client = Client::connect(handle.addr())?;
//! let job = client.submit_with(
//!     "design demo\ninput a b\noutput y\ncomp and2 g1 A0=a A1=b Y=y\n",
//!     &Constraints::none(),
//!     &SubmitOptions::new(),
//! )?;
//! let result = client.result(job)?;
//! assert_eq!(result.get("state").and_then(|s| s.as_str()), Some("done"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
// Service code must never die on a poisoned lock or an unexpected
// `None` — a panic in one handler is an outage for every connection.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod disk;
pub mod json;
pub mod metrics;
pub mod protocol;
pub mod scheduler;
pub mod shard;

mod client;
mod server;

pub use cache::{job_key, prefix_key, CacheStats, CachedResult, HitTier, ResultCache};
pub use client::{Client, ClientError, SubmitOptions};
pub use disk::DiskCache;
pub use json::{parse as parse_json, JsonError, Value};
pub use metrics::Metrics;
pub use protocol::{constraints_to_json, parse_request, Priority, Request, PROTOCOL_VERSION};
pub use scheduler::{QueueStats, Scheduler, WorkUnit};
pub use server::{spawn, CacheOutcome, ServerConfig, ServerHandle};
pub use shard::ShardedDb;
