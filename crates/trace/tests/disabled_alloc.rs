//! Pins the disabled-tracing contract: with the enabled flag off, the
//! span/instant API emits zero events and performs zero heap
//! allocations. This lives in its own integration-test binary so the
//! counting global allocator cannot interfere with unit tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System` unchanged; only adds
// a relaxed counter bump on the allocation path.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn disabled_span_path_allocates_nothing_and_emits_nothing() {
    milo_trace::set_enabled(false);
    // Flush any startup events and let lazy statics initialize outside
    // the measured window.
    let _ = milo_trace::drain_chrome_json();

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10_000 {
        let _span = milo_trace::span("disabled.span");
        milo_trace::instant("disabled.instant");
        milo_trace::instant_with("disabled.detail", "ignored");
        milo_trace::complete("disabled.complete", 0);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled tracing must not touch the heap"
    );

    let json = milo_trace::drain_chrome_json();
    assert!(
        !json.contains("disabled."),
        "disabled tracing must emit zero events, drained: {json}"
    );
}
