//! Named counters, gauges, and log-bucketed histograms behind
//! lock-free atomics.
//!
//! A [`Registry`] maps dotted names to metric handles. Lookup takes a
//! short-lived lock (get-or-create in a map), so hot paths resolve
//! their handle once — typically into a `OnceLock<Arc<Counter>>` —
//! and then record with single relaxed atomic operations. Histograms
//! bucket by powers of two, which is exact enough for latency
//! distributions (every bucket spans a 2× band) while keeping
//! recording to two `fetch_add`s plus one indexed `fetch_add`;
//! p50/p95/p99 are derived from the bucket counts at read time, on
//! whichever side of the wire wants them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depths, resident bytes).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Replaces the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the value by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket count: value 0, then one bucket per power of two up to
/// `u64::MAX` (bucket `i` holds `2^(i-1) ..= 2^i - 1`).
const BUCKETS: usize = 65;

/// A log-bucketed histogram of `u64` samples (by convention,
/// nanoseconds when the name ends in `_ns`).
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The bucket index for a sample: 0 for 0, else `64 - leading_zeros`.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The largest value bucket `i` can hold (its reported quantile bound).
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the distribution. Concurrent recording
    /// makes the copy approximate (count/sum/buckets are read
    /// independently), which is fine for reporting.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// A copied histogram state with derived statistics.
#[derive(Clone)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    buckets: [u64; BUCKETS],
}

impl HistogramSnapshot {
    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `q`-quantile (`0.0 ..= 1.0`): the top of
    /// the log bucket the quantile rank lands in, so the true value is
    /// within 2× below the returned bound. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    /// The non-empty buckets as `(upper_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_upper(i), n))
            .collect()
    }

    /// The summary object the service's `stats` response embeds:
    /// `{"count", "sum", "mean", "p50", "p95", "p99"}` (quantiles are
    /// log-bucket upper bounds).
    pub fn summary_json(&self) -> String {
        format!(
            "{{\"count\": {}, \"sum\": {}, \"mean\": {:.1}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
            self.count,
            self.sum,
            self.mean(),
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
        )
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A namespace of named metrics. Library code shares
/// [`Registry::global`]; embedders that need isolation (one service
/// instance per test, say) hold their own [`Registry::new`].
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty, private registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry the engine, STA, and pool record into.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The counter named `name`, created on first use. Hot paths
    /// should cache the returned handle.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.lock();
        match inner.counters.get(name) {
            Some(c) => c.clone(),
            None => {
                let c = Arc::new(Counter::default());
                inner.counters.insert(name.to_owned(), c.clone());
                c
            }
        }
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.lock();
        match inner.gauges.get(name) {
            Some(g) => g.clone(),
            None => {
                let g = Arc::new(Gauge::default());
                inner.gauges.insert(name.to_owned(), g.clone());
                g
            }
        }
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.lock();
        match inner.histograms.get(name) {
            Some(h) => h.clone(),
            None => {
                let h = Arc::new(Histogram::default());
                inner.histograms.insert(name.to_owned(), h.clone());
                h
            }
        }
    }

    /// Histogram snapshots for every registered histogram whose name
    /// starts with `prefix` (pass `""` for all), in name order.
    pub fn histograms_with_prefix(&self, prefix: &str) -> Vec<(String, HistogramSnapshot)> {
        let inner = self.lock();
        inner
            .histograms
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect()
    }

    /// Renders the whole registry:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {name: summary}}`.
    pub fn to_json(&self) -> String {
        let inner = self.lock();
        let mut out = String::from("{\"counters\": {");
        for (i, (name, c)) in inner.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {}", crate::json_escape(name), c.get()));
        }
        out.push_str("}, \"gauges\": {");
        for (i, (name, g)) in inner.gauges.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {}", crate::json_escape(name), g.get()));
        }
        out.push_str("}, \"histograms\": {");
        for (i, (name, h)) in inner.histograms.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{}: {}",
                crate::json_escape(name),
                h.snapshot().summary_json()
            ));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let r = Registry::new();
        let c = r.counter("a.b");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("a.b").get(), 5, "same name, same handle");
        let g = r.gauge("depth");
        g.set(10);
        g.add(-3);
        assert_eq!(r.gauge("depth").get(), 7);
    }

    #[test]
    fn histogram_buckets_by_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_bound_the_samples() {
        let h = Histogram::default();
        for v in [10u64, 20, 30, 40, 1000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 1100);
        // p50 rank lands among the tens; its bucket bound covers them.
        let p50 = snap.quantile(0.50);
        assert!((30..64).contains(&p50), "p50 bound {p50}");
        // p99 must reach the outlier's bucket.
        let p99 = snap.quantile(0.99);
        assert!(p99 >= 1000, "p99 bound {p99}");
        assert!(snap.mean() > 200.0 && snap.mean() < 250.0);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let snap = Histogram::default().snapshot();
        assert_eq!(snap.quantile(0.5), 0);
        assert_eq!(snap.mean(), 0.0);
        assert!(snap.nonzero_buckets().is_empty());
    }

    #[test]
    fn registries_are_isolated() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("x").inc();
        assert_eq!(b.counter("x").get(), 0);
    }

    #[test]
    fn to_json_is_valid_and_complete() {
        let r = Registry::new();
        r.counter("jobs").add(3);
        r.gauge("depth").set(-2);
        r.histogram("wait_ns").record(100);
        let json = r.to_json();
        assert!(json.contains("\"jobs\": 3"));
        assert!(json.contains("\"depth\": -2"));
        assert!(json.contains("\"wait_ns\": {\"count\": 1"));
        assert!(json.contains("\"p99\":"));
    }

    #[test]
    fn prefix_listing_filters() {
        let r = Registry::new();
        r.histogram("serve.pass_ns.compile").record(5);
        r.histogram("serve.queue_wait_ns.high").record(9);
        let passes = r.histograms_with_prefix("serve.pass_ns.");
        assert_eq!(passes.len(), 1);
        assert_eq!(passes[0].0, "serve.pass_ns.compile");
    }
}
