//! Per-thread lock-free event rings and the Chrome-trace drain.
//!
//! Each thread that emits while tracing is enabled lazily registers
//! one [`ThreadRing`]: a power-of-two array of slots written only by
//! the owning thread and read by whoever drains. Every slot is a
//! word-packed event guarded by a per-slot sequence number — the
//! writer publishes `2*index + 1` (odd: mid-write), stores the packed
//! words, then publishes `2*index + 2` (even: valid); a reader
//! re-checks the sequence after copying the words and discards the
//! slot on mismatch. All accesses are plain atomics, so a racing
//! overwrite costs a dropped event, never undefined behavior.
//!
//! When the ring wraps, the oldest undrained events are overwritten
//! and counted (surfaced as `droppedEvents` in the drain output) —
//! tracing never blocks or grows without bound.

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Events retained per thread. At ~104 bytes a slot this is ~426 KiB
/// per emitting thread — enough for thousands of pass/sweep spans, and
/// the bound that lets emission never block.
const RING_CAP: usize = 4096;

/// Span / event names are copied inline (no allocation, no lifetime
/// coupling); longer names truncate on a UTF-8 boundary.
const TEXT_MAX: usize = 40;
/// Same, for the free-form detail string of instant events.
const ARG_MAX: usize = 32;

/// Words per packed event: header, ts, dur, 5×text, 4×arg.
const EVENT_WORDS: usize = 12;

const KIND_BEGIN: u8 = 0;
const KIND_END: u8 = 1;
const KIND_INSTANT: u8 = 2;
const KIND_COMPLETE: u8 = 3;

/// One decoded event (the unpacked form of a slot).
#[derive(Clone, Copy)]
struct RawEvent {
    kind: u8,
    text_len: u8,
    arg_len: u8,
    ts_ns: u64,
    dur_ns: u64,
    text: [u8; TEXT_MAX],
    arg: [u8; ARG_MAX],
}

impl RawEvent {
    fn new(kind: u8, name: &str) -> Self {
        let mut ev = Self {
            kind,
            text_len: 0,
            arg_len: 0,
            ts_ns: now_ns(),
            dur_ns: 0,
            text: [0; TEXT_MAX],
            arg: [0; ARG_MAX],
        };
        ev.text_len = copy_truncated(name, &mut ev.text);
        ev
    }

    fn name(&self) -> &str {
        str_prefix(&self.text, self.text_len)
    }

    fn arg(&self) -> &str {
        str_prefix(&self.arg, self.arg_len)
    }
}

/// Copies `s` into `dst`, truncating on a char boundary; returns the
/// copied length.
fn copy_truncated(s: &str, dst: &mut [u8]) -> u8 {
    let mut end = s.len().min(dst.len());
    while end > 0 && !s.is_char_boundary(end) {
        end -= 1;
    }
    dst[..end].copy_from_slice(&s.as_bytes()[..end]);
    end as u8
}

/// The stored prefix as `&str`. Torn reads (writer lapped the reader
/// mid-copy) can leave arbitrary bytes, so this validates rather than
/// trusts — invalid UTF-8 degrades to an empty name.
fn str_prefix(buf: &[u8], len: u8) -> &str {
    let end = (len as usize).min(buf.len());
    std::str::from_utf8(&buf[..end]).unwrap_or("")
}

fn pack(ev: &RawEvent) -> [u64; EVENT_WORDS] {
    let mut w = [0u64; EVENT_WORDS];
    w[0] = u64::from(ev.kind) | u64::from(ev.text_len) << 8 | u64::from(ev.arg_len) << 16;
    w[1] = ev.ts_ns;
    w[2] = ev.dur_ns;
    for (i, chunk) in ev.text.chunks_exact(8).enumerate() {
        w[3 + i] = u64::from_le_bytes(chunk.try_into().unwrap_or([0; 8]));
    }
    for (i, chunk) in ev.arg.chunks_exact(8).enumerate() {
        w[8 + i] = u64::from_le_bytes(chunk.try_into().unwrap_or([0; 8]));
    }
    w
}

fn unpack(w: &[u64; EVENT_WORDS]) -> RawEvent {
    let mut ev = RawEvent {
        kind: (w[0] & 0xff) as u8,
        text_len: (w[0] >> 8 & 0xff) as u8,
        arg_len: (w[0] >> 16 & 0xff) as u8,
        ts_ns: w[1],
        dur_ns: w[2],
        text: [0; TEXT_MAX],
        arg: [0; ARG_MAX],
    };
    for (i, chunk) in ev.text.chunks_exact_mut(8).enumerate() {
        chunk.copy_from_slice(&w[3 + i].to_le_bytes());
    }
    for (i, chunk) in ev.arg.chunks_exact_mut(8).enumerate() {
        chunk.copy_from_slice(&w[8 + i].to_le_bytes());
    }
    ev
}

/// One slot: a sequence guard plus the packed event words.
struct Slot {
    /// `0` = never written; `2n+1` = event `n` mid-write;
    /// `2n+2` = event `n` valid.
    seq: AtomicU64,
    words: [AtomicU64; EVENT_WORDS],
}

impl Slot {
    fn new() -> Self {
        Self {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// One thread's event ring. Only the owning thread writes; any thread
/// may drain.
struct ThreadRing {
    tid: u64,
    name: String,
    slots: Box<[Slot]>,
    /// Total events ever written by this thread (monotone).
    head: AtomicU64,
    /// Drain watermark: events below this index were already exported.
    drained: AtomicU64,
    /// Undrained events lost to ring wrap.
    dropped: AtomicU64,
}

// Slots hold only atomics; the Box/Strings are written once at
// registration. Sharing across threads is the whole point.
impl ThreadRing {
    fn register() -> Arc<Self> {
        static NEXT_TID: AtomicU64 = AtomicU64::new(1);
        let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        let name = std::thread::current()
            .name()
            .map(str::to_owned)
            .unwrap_or_else(|| format!("thread-{tid}"));
        let ring = Arc::new(Self {
            tid,
            name,
            slots: (0..RING_CAP).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        });
        registry()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(ring.clone());
        ring
    }

    /// Owner-thread-only append.
    fn push(&self, ev: RawEvent) {
        let idx = self.head.load(Ordering::Relaxed);
        if idx >= RING_CAP as u64 && idx - RING_CAP as u64 >= self.drained.load(Ordering::Relaxed) {
            // The slot being reused still held an unexported event.
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        let slot = &self.slots[idx as usize & (RING_CAP - 1)];
        slot.seq.store(2 * idx + 1, Ordering::Relaxed);
        for (w, v) in slot.words.iter().zip(pack(&ev)) {
            w.store(v, Ordering::Relaxed);
        }
        slot.seq.store(2 * idx + 2, Ordering::Release);
        self.head.store(idx + 1, Ordering::Release);
    }

    /// Snapshots and consumes everything the owner has published,
    /// discarding slots the writer lapped mid-read.
    fn drain(&self) -> Vec<RawEvent> {
        let head = self.head.load(Ordering::Acquire);
        let start = self
            .drained
            .load(Ordering::Relaxed)
            .max(head.saturating_sub(RING_CAP as u64));
        let mut out = Vec::with_capacity((head - start) as usize);
        for idx in start..head {
            let slot = &self.slots[idx as usize & (RING_CAP - 1)];
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 != 2 * idx + 2 {
                continue; // overwritten (or mid-overwrite) — skip
            }
            let mut words = [0u64; EVENT_WORDS];
            for (dst, w) in words.iter_mut().zip(&slot.words) {
                *dst = w.load(Ordering::Relaxed);
            }
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) == s1 {
                out.push(unpack(&words));
            }
        }
        self.drained.store(head, Ordering::Release);
        out
    }
}

/// All rings ever registered. Locked only at thread registration and
/// drain — never on the emit path.
fn registry() -> &'static Mutex<Vec<Arc<ThreadRing>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<ThreadRing>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static RING: Arc<ThreadRing> = ThreadRing::register();
}

/// The shared clock every timestamp is measured from.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the trace epoch — the timestamp base of every
/// emitted event. Pair with [`complete`] to record an interval whose
/// start predates knowing its name (e.g. a measured idle wait).
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

fn emit(ev: RawEvent) {
    // Destructors can fire after the thread-local is torn down (e.g. a
    // SpanGuard owned by another TLS value); losing that event beats
    // panicking in a destructor.
    let _ = RING.try_with(|ring| ring.push(ev));
}

/// An active span: emitted `B` at creation, emits the matching `E`
/// when dropped. Bind it — `let _span = milo_trace::span("…");` — so
/// it lives to the end of the scope it measures.
#[must_use = "a span measures the scope it is bound to; dropping it immediately closes it"]
pub struct SpanGuard {
    armed: bool,
    text_len: u8,
    text: [u8; TEXT_MAX],
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            let mut ev = RawEvent::new(KIND_END, "");
            ev.text = self.text;
            ev.text_len = self.text_len;
            emit(ev);
        }
    }
}

/// Opens a span named `name` on the current thread. While tracing is
/// disabled this is one relaxed load, one branch, and a stack-only
/// guard — no allocation, no thread-local access, no event.
///
/// The guard closes the span even if tracing is disabled mid-span, so
/// drained output keeps begin/end pairs balanced.
#[inline]
pub fn span(name: &str) -> SpanGuard {
    if !enabled_fast() {
        return SpanGuard {
            armed: false,
            text_len: 0,
            text: [0; TEXT_MAX],
        };
    }
    let ev = RawEvent::new(KIND_BEGIN, name);
    let guard = SpanGuard {
        armed: true,
        text_len: ev.text_len,
        text: ev.text,
    };
    emit(ev);
    guard
}

#[inline]
fn enabled_fast() -> bool {
    crate::enabled()
}

/// Emits a thread-scoped instant event (a vertical tick in the
/// timeline). One branch when tracing is disabled.
#[inline]
pub fn instant(name: &str) {
    if enabled_fast() {
        emit(RawEvent::new(KIND_INSTANT, name));
    }
}

/// [`instant`] with a free-form detail string, surfaced as
/// `args.detail` in the Chrome trace. Callers formatting the detail
/// should gate on [`crate::enabled`] to keep the disabled path
/// allocation-free.
#[inline]
pub fn instant_with(name: &str, detail: &str) {
    if enabled_fast() {
        let mut ev = RawEvent::new(KIND_INSTANT, name);
        ev.arg_len = copy_truncated(detail, &mut ev.arg);
        emit(ev);
    }
}

/// Emits a complete (`X`) event spanning from `start_ns` (a prior
/// [`now_ns`] reading) to now — for intervals that should not stay
/// open across a drain, like a worker's idle wait. A `start_ns` of 0
/// (tracing was off when the interval began) is ignored.
#[inline]
pub fn complete(name: &str, start_ns: u64) {
    if enabled_fast() && start_ns > 0 {
        let mut ev = RawEvent::new(KIND_COMPLETE, name);
        ev.dur_ns = ev.ts_ns.saturating_sub(start_ns);
        ev.ts_ns = start_ns;
        emit(ev);
    }
}

/// Drains every thread's ring into one Chrome trace-event JSON object
/// (`{"traceEvents": […]}`), consuming the drained events. The output
/// loads directly in `chrome://tracing` and Perfetto: `B`/`E` pairs
/// for spans, `i` for instants, `X` for completes, plus a
/// `thread_name` metadata event per thread. Timestamps are
/// microseconds from the process trace epoch.
pub fn drain_chrome_json() -> String {
    let rings: Vec<Arc<ThreadRing>> = registry().lock().unwrap_or_else(|e| e.into_inner()).clone();
    let mut out = String::from("{\"traceEvents\": [");
    let mut first = true;
    let mut dropped_total = 0u64;
    for ring in &rings {
        let events = ring.drain();
        dropped_total += ring.dropped.load(Ordering::Relaxed);
        if events.is_empty() {
            continue;
        }
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"ph\": \"M\", \"pid\": 1, \"tid\": {}, \"name\": \"thread_name\", \
                 \"args\": {{\"name\": {}}}}}",
                ring.tid,
                crate::json_escape(&ring.name)
            ),
        );
        for ev in &events {
            let ts = ev.ts_ns as f64 / 1000.0;
            let line = match ev.kind {
                KIND_BEGIN => format!(
                    "{{\"ph\": \"B\", \"pid\": 1, \"tid\": {}, \"ts\": {ts:.3}, \"name\": {}}}",
                    ring.tid,
                    crate::json_escape(ev.name())
                ),
                KIND_END => format!(
                    "{{\"ph\": \"E\", \"pid\": 1, \"tid\": {}, \"ts\": {ts:.3}, \"name\": {}}}",
                    ring.tid,
                    crate::json_escape(ev.name())
                ),
                KIND_COMPLETE => format!(
                    "{{\"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"ts\": {ts:.3}, \
                     \"dur\": {:.3}, \"name\": {}}}",
                    ring.tid,
                    ev.dur_ns as f64 / 1000.0,
                    crate::json_escape(ev.name())
                ),
                _ => {
                    let args = if ev.arg_len > 0 {
                        format!(
                            ", \"args\": {{\"detail\": {}}}",
                            crate::json_escape(ev.arg())
                        )
                    } else {
                        String::new()
                    };
                    format!(
                        "{{\"ph\": \"i\", \"pid\": 1, \"tid\": {}, \"ts\": {ts:.3}, \
                         \"s\": \"t\", \"name\": {}{args}}}",
                        ring.tid,
                        crate::json_escape(ev.name())
                    )
                }
            };
            push_event(&mut out, &mut first, &line);
        }
    }
    out.push_str(&format!(
        "], \"displayTimeUnit\": \"ms\", \"otherData\": {{\"droppedEvents\": {dropped_total}}}}}"
    ));
    out
}

fn push_event(out: &mut String, first: &mut bool, line: &str) {
    if !*first {
        out.push_str(", ");
    }
    *first = false;
    out.push_str(line);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Span/instant tests share the process-global enabled flag and
    /// rings, so they run under one lock to stay deterministic.
    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_tracing_emits_nothing() {
        let _x = exclusive();
        crate::set_enabled(false);
        drain_chrome_json(); // flush anything older tests left behind
        for _ in 0..100 {
            let _s = span("quiet");
            instant("quiet.tick");
            complete("quiet.x", now_ns());
        }
        let json = drain_chrome_json();
        assert!(
            !json.contains("quiet"),
            "disabled path leaked events: {json}"
        );
    }

    #[test]
    fn spans_round_trip_balanced() {
        let _x = exclusive();
        crate::set_enabled(false);
        drain_chrome_json();
        crate::set_enabled(true);
        {
            let _outer = span("outer");
            let _inner = span("inner");
            instant_with("tick", "detail text");
        }
        crate::set_enabled(false);
        let json = drain_chrome_json();
        assert_eq!(json.matches("\"ph\": \"B\"").count(), 2);
        assert_eq!(json.matches("\"ph\": \"E\"").count(), 2);
        assert!(json.contains("\"name\": \"outer\""));
        assert!(json.contains("\"name\": \"inner\""));
        assert!(json.contains("\"detail\": \"detail text\""));
        assert!(json.contains("thread_name"));
    }

    #[test]
    fn span_closes_even_if_disabled_mid_flight() {
        let _x = exclusive();
        crate::set_enabled(false);
        drain_chrome_json();
        crate::set_enabled(true);
        let s = span("half");
        crate::set_enabled(false);
        drop(s);
        let json = drain_chrome_json();
        assert_eq!(json.matches("\"ph\": \"B\"").count(), 1);
        assert_eq!(
            json.matches("\"ph\": \"E\"").count(),
            1,
            "E emitted: {json}"
        );
    }

    #[test]
    fn ring_wrap_drops_oldest_and_counts() {
        let _x = exclusive();
        crate::set_enabled(false);
        drain_chrome_json();
        crate::set_enabled(true);
        for i in 0..(RING_CAP + 100) {
            instant(if i == 0 { "first" } else { "later" });
        }
        crate::set_enabled(false);
        let json = drain_chrome_json();
        assert!(!json.contains("\"first\""), "oldest event was overwritten");
        assert!(json.contains("\"later\""));
        assert!(!json.contains("\"droppedEvents\": 0"));
    }

    #[test]
    fn long_names_truncate_on_char_boundary() {
        let mut buf = [0u8; 10];
        let n = copy_truncated("ééééééé", &mut buf); // 2 bytes each
        assert_eq!(n, 10);
        assert_eq!(str_prefix(&buf, n), "ééééé");
        let n = copy_truncated("short", &mut buf);
        assert_eq!(str_prefix(&buf, n), "short");
    }

    #[test]
    fn pack_unpack_round_trips() {
        let mut ev = RawEvent::new(KIND_INSTANT, "some.name");
        ev.arg_len = copy_truncated("arg text", &mut ev.arg);
        ev.dur_ns = 12345;
        let back = unpack(&pack(&ev));
        assert_eq!(back.kind, KIND_INSTANT);
        assert_eq!(back.name(), "some.name");
        assert_eq!(back.arg(), "arg text");
        assert_eq!(back.ts_ns, ev.ts_ns);
        assert_eq!(back.dur_ns, 12345);
    }

    #[test]
    fn cross_thread_emission_gets_own_tid() {
        let _x = exclusive();
        crate::set_enabled(false);
        drain_chrome_json();
        crate::set_enabled(true);
        instant("from.main");
        std::thread::Builder::new()
            .name("trace-test-worker".to_owned())
            .spawn(|| {
                let _s = span("worker.task");
            })
            .expect("spawn")
            .join()
            .expect("join");
        crate::set_enabled(false);
        let json = drain_chrome_json();
        assert!(json.contains("\"from.main\""));
        assert!(json.contains("\"worker.task\""));
        assert!(json.contains("trace-test-worker"));
    }
}
