//! First-party observability substrate for the MILO workspace.
//!
//! The build environment has no crates.io access, so this crate
//! re-implements the two halves of `tracing` + `metrics` the system
//! actually needs, sized for a synthesis service:
//!
//! * **Span tracing** ([`span`], [`instant`], [`complete`]) — each
//!   thread owns a fixed-capacity lock-free ring buffer of events.
//!   Emitting is a thread-local write with no locks and no allocation;
//!   [`drain_chrome_json`] snapshots every ring into Chrome
//!   trace-event JSON that loads directly in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev). The whole subsystem is gated
//!   by one process-global flag ([`set_enabled`]): while tracing is
//!   off, a span costs exactly one relaxed atomic load and one branch.
//! * **Metrics registry** ([`Registry`]) — named counters, gauges, and
//!   log-bucketed histograms behind lock-free atomics. Unlike spans,
//!   metrics are always on: a counter bump is one relaxed
//!   `fetch_add`, cheap enough for the rule-engine hot path. The
//!   registry renders to JSON with derived histogram summaries
//!   (p50/p95/p99), and per-instance registries ([`Registry::new`])
//!   let embedders (the service's `Metrics`) keep isolated namespaces
//!   while library code shares [`Registry::global`].
//!
//! Naming convention: dotted lower-case paths, coarse-to-fine —
//! `engine.rewrites`, `sta.full_rebuilds`, `serve.queue_wait_ns.high`.
//! Durations are nanoseconds and say so in the name (`*_ns`).
//!
//! ```
//! milo_trace::set_enabled(true);
//! {
//!     let _sweep = milo_trace::span("engine.sweep");
//!     milo_trace::instant("cache.evict");
//! } // span closes here
//! let json = milo_trace::drain_chrome_json();
//! assert!(json.contains("\"traceEvents\""));
//! milo_trace::set_enabled(false);
//! ```

#![warn(missing_docs)]

mod metrics;
mod ring;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use ring::{complete, drain_chrome_json, instant, instant_with, now_ns, span, SpanGuard};

use std::sync::atomic::{AtomicBool, Ordering};

/// The one global gate for span tracing. Relaxed is deliberate: the
/// flag flips rarely (process start, a `trace` op) and an emit racing
/// the flip harmlessly lands or misses one event.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether span tracing is currently on. One relaxed load — this is
/// the entire disabled-path cost of [`span`] and [`instant`].
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns span tracing on or off process-wide. Metrics counters are
/// unaffected (always on).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Enables tracing when the `MILO_TRACE` environment variable is set
/// to anything other than `0` or the empty string. Binaries call this
/// once at startup; returns the resulting enabled state.
pub fn init_from_env() -> bool {
    if let Ok(v) = std::env::var("MILO_TRACE") {
        if !v.is_empty() && v != "0" {
            set_enabled(true);
        }
    }
    enabled()
}

/// Escapes `s` as the contents of a JSON string literal (quotes
/// included). Local copy — this crate sits below `milo-core`, so it
/// cannot borrow `json_string` from there.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
