//! Rete-style incremental conflict-set matching.
//!
//! OPS-family production systems avoid re-running every rule against
//! every working-memory element per cycle: "once a test has been
//! performed … it is not redone until a change in data occurs" (§2.2.1).
//! [`MatchIndex`] is that discipline for the netlist rule engine. It is
//! an alpha memory per rule, keyed by the *anchor* component of each
//! [`RuleMatch`] (`RuleMatch::site`), built once by full matching and
//! then **repaired** from [`UndoLog::touch_set`] after each accepted or
//! undone rewrite — instead of rescanned from scratch every
//! recognize–act cycle or sweep pass.
//!
//! # Repair contract
//!
//! A rule declares its support radius through [`Rule::locality`]:
//!
//! * [`Locality::Local`] — a match anchored at component `a` is fully
//!   determined by (1) `a`'s own kind and pin connections, (2) the
//!   nets on `a`'s pins — their driver/load lists (including order),
//!   fanout, and port bindings — and (3) the kinds and pin names of
//!   components loading nets that **`a` drives**. Matching must not
//!   read the STA, and must not read the internals (kind, other pins)
//!   of any component `a` does not drive — neither a net's driver from
//!   the load side nor a *sibling* load on a shared input net; rules
//!   that need any of those must stay `Global`. Under this contract,
//!   any match created or destroyed by a rewrite has its anchor inside
//!   a small closure of the touch set (touched components, components
//!   on touched nets, drivers of touched components' nets), so repair
//!   re-runs [`Rule::matches_at`] only there.
//! * [`Locality::Global`] — no support bound is promised (signature
//!   joins like duplicate-gate merging, STA-dependent criticality
//!   tests). The rule is re-matched in full on every repair; this is
//!   still no worse than the rescans it replaces.
//!
//! Correctness (index ≡ full rescan after every apply/undo step) is
//! property-tested in `tests/perf_equivalence.rs`, and the engine can
//! cross-check every indexed conflict set against a rescan when the
//! `MILO_MATCH_ORACLE` oracle flag is set (see `docs/PERFORMANCE.md`).
//!
//! [`UndoLog::touch_set`]: crate::UndoLog::touch_set
//! [`Rule::locality`]: crate::Rule::locality
//! [`Rule::matches_at`]: crate::Rule::matches_at

use crate::engine::{Rule, RuleClass, RuleCtx, RuleMatch};
use milo_netlist::{ComponentId, NetId, TouchSet};
use std::collections::{BTreeMap, BTreeSet};

/// How far a rule's match predicate reads from its anchor component —
/// the repair contract of [`MatchIndex`] (see the module docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Locality {
    /// Matches are determined by the anchor itself, its adjacent nets,
    /// and the loads on nets the anchor drives — and never read the
    /// STA (see the module docs for the exact support contract).
    Local,
    /// No support bound: re-match the whole rule on every repair.
    Global,
}

/// Counters describing how much work repairs did, for perf assertions
/// and traces.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RepairStats {
    /// Number of `repair` calls that did any work.
    pub repairs: u64,
    /// Anchor components re-matched across all local rules.
    pub anchors_rematched: u64,
    /// Full re-matches of `Global` rules.
    pub global_rematches: u64,
}

/// Per-rule storage: anchored matches for local rules, a flat list for
/// global ones, nothing for rules excluded by the class filter.
enum Entry {
    /// Rule filtered out by the index's class restriction.
    Skipped,
    /// `Locality::Local`: matches grouped by anchor, in anchor order
    /// (deterministic iteration regardless of repair history).
    Local(BTreeMap<ComponentId, Vec<RuleMatch>>),
    /// `Locality::Global`: matches exactly as `Rule::matches` returned
    /// them at the last (re)build.
    Global(Vec<RuleMatch>),
}

/// The incremental conflict-set index. Build once per optimization run,
/// repair after every committed rewrite (or undo) with the same touch
/// set that refreshes the incremental STA.
pub struct MatchIndex {
    class: Option<RuleClass>,
    with_sta: bool,
    entries: Vec<Entry>,
    stats: RepairStats,
}

impl MatchIndex {
    /// Full matching pass over `rules`, restricted to `class` when
    /// given. Records whether an STA was available so callers can
    /// detect staleness when the analysis appears or disappears.
    pub fn build(rules: &[Box<dyn Rule>], ctx: &RuleCtx, class: Option<RuleClass>) -> Self {
        let entries = rules
            .iter()
            .map(|rule| {
                if class.is_some_and(|c| rule.class() != c) {
                    return Entry::Skipped;
                }
                match rule.locality() {
                    Locality::Global => Entry::Global(rule.matches(ctx)),
                    Locality::Local => {
                        let mut map: BTreeMap<ComponentId, Vec<RuleMatch>> = BTreeMap::new();
                        for m in rule.matches(ctx) {
                            map.entry(m.site).or_default().push(m);
                        }
                        Entry::Local(map)
                    }
                }
            })
            .collect();
        Self {
            class,
            with_sta: ctx.sta.is_some(),
            entries,
            stats: RepairStats::default(),
        }
    }

    /// The class restriction the index was built with.
    pub fn class(&self) -> Option<RuleClass> {
        self.class
    }

    /// Whether the index was built with an STA in the rule context.
    /// Local rules never read it, but `Global` matches may; callers
    /// must rebuild when STA availability flips.
    pub fn with_sta(&self) -> bool {
        self.with_sta
    }

    /// Repair counters since construction.
    pub fn stats(&self) -> RepairStats {
        self.stats
    }

    /// Total matches currently indexed.
    pub fn len(&self) -> usize {
        self.entries
            .iter()
            .map(|e| match e {
                Entry::Skipped => 0,
                Entry::Local(map) => map.values().map(Vec::len).sum(),
                Entry::Global(v) => v.len(),
            })
            .sum()
    }

    /// Whether no matches are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Repairs the index after a rewrite (or its undo) described by
    /// `ts`. `ctx` must reflect the *current* netlist — and, for
    /// `Global` rules that read timing, an STA already refreshed from
    /// the same touch set.
    pub fn repair(&mut self, rules: &[Box<dyn Rule>], ctx: &RuleCtx, ts: &TouchSet) {
        if ts.is_empty() {
            return;
        }
        self.stats.repairs += 1;
        self.with_sta = ctx.sta.is_some();

        // Dirty anchors — every anchor whose support can intersect the
        // touch set under the `Local` contract:
        //   * every touched component (its own state changed);
        //   * every component on a touched net (it may read that net's
        //     connection list, fanout, or load order as one of its
        //     adjacent nets);
        //   * the driver of every net adjacent to a touched component
        //     (an anchor may read the kinds/pin names of loads on nets
        //     it drives, and a kind-change touches only the component —
        //     its drivers' load view changed without any net touched).
        // Removed components no longer resolve, but the undo log records
        // their connections, so their former nets are in `ts.nets`.
        let nl = ctx.nl;
        let mut anchors: BTreeSet<ComponentId> = ts.components.iter().copied().collect();
        for &n in &ts.nets {
            if let Ok(net) = nl.net(n) {
                for conn in &net.connections {
                    anchors.insert(conn.component);
                }
            }
        }
        let mut driver_nets: BTreeSet<NetId> = BTreeSet::new();
        for &c in &ts.components {
            if let Ok(comp) = nl.component(c) {
                for pin in &comp.pins {
                    if let Some(net) = pin.net {
                        driver_nets.insert(net);
                    }
                }
            }
        }
        for &n in &driver_nets {
            if let Some(drv) = nl.driver(n) {
                anchors.insert(drv.component);
            }
        }

        for (rule, entry) in rules.iter().zip(self.entries.iter_mut()) {
            match entry {
                Entry::Skipped => {}
                Entry::Global(stored) => {
                    self.stats.global_rematches += 1;
                    *stored = rule.matches(ctx);
                }
                Entry::Local(map) => {
                    for &a in &anchors {
                        self.stats.anchors_rematched += 1;
                        map.remove(&a);
                        let fresh = rule.matches_at(ctx, a);
                        if !fresh.is_empty() {
                            map.insert(a, fresh);
                        }
                    }
                }
            }
        }
    }

    /// The indexed conflict set: `(rule index, match)` pairs in
    /// deterministic order (rule-major; local rules by ascending anchor
    /// id). Refraction filtering is the engine's job.
    pub fn matches(&self) -> Vec<(usize, RuleMatch)> {
        let mut out = Vec::new();
        for (i, entry) in self.entries.iter().enumerate() {
            match entry {
                Entry::Skipped => {}
                Entry::Local(map) => {
                    for ms in map.values() {
                        out.extend(ms.iter().map(|m| (i, m.clone())));
                    }
                }
                Entry::Global(v) => {
                    out.extend(v.iter().map(|m| (i, m.clone())));
                }
            }
        }
        out
    }
}
