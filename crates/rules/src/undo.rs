//! Transactional netlist mutation with an undo log.
//!
//! "In constructing the search tree, SOCRATES keeps a log of changes made
//! to the circuit by each rule application. When backtracking is required,
//! the changes to the circuit can be quickly undone by referring to this
//! log" (§2.2.2). [`Tx`] records every mutation; [`UndoLog::undo`] replays
//! the inverses in reverse order.

use milo_netlist::{
    Component, ComponentId, ComponentKind, Net, NetId, Netlist, NetlistError, PinRef, TouchSet,
};

/// One recorded mutation.
#[derive(Clone, Debug)]
enum Op {
    AddedComponent(ComponentId),
    RemovedComponent(ComponentId, Component, Vec<(u16, NetId)>),
    Connected(PinRef, NetId),
    Disconnected(PinRef, NetId),
    AddedNet(NetId),
    RemovedNet(NetId, Net),
    KindChanged(ComponentId, ComponentKind),
}

impl Op {
    fn touch(&self, t: &mut TouchSet) {
        match self {
            Op::AddedComponent(id) => t.component(*id),
            Op::RemovedComponent(id, _, conns) => {
                t.component(*id);
                for (_, net) in conns {
                    t.net(*net);
                }
            }
            Op::Connected(pin, net) | Op::Disconnected(pin, net) => {
                t.component(pin.component);
                t.net(*net);
            }
            Op::AddedNet(id) | Op::RemovedNet(id, _) => t.net(*id),
            Op::KindChanged(id, _) => t.component(*id),
        }
    }
}

/// A committed change log that can be undone.
#[derive(Debug, Default)]
pub struct UndoLog {
    ops: Vec<Op>,
}

impl UndoLog {
    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the log is empty (the transaction made no changes).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The components and nets this log touches. The same set describes
    /// both the forward application and its undo, so incremental analyses
    /// can refresh from it after either direction.
    pub fn touch_set(&self) -> TouchSet {
        let mut t = TouchSet::new();
        for op in &self.ops {
            op.touch(&mut t);
        }
        t
    }

    /// Reverts all recorded changes, restoring the netlist to its exact
    /// pre-transaction state.
    ///
    /// # Panics
    ///
    /// Panics if the netlist was modified outside the transaction since
    /// the log was taken (the inverses then no longer apply).
    pub fn undo(self, nl: &mut Netlist) {
        for op in self.ops.into_iter().rev() {
            match op {
                Op::AddedComponent(id) => {
                    nl.remove_component(id).expect("undo: component exists");
                    // Free the tail slot so a re-application allocates the
                    // same ids (lookahead sequences depend on this).
                    nl.free_component_slot(id);
                }
                Op::RemovedComponent(id, comp, conns) => {
                    nl.restore_component(id, comp);
                    for (pin, net) in conns {
                        nl.connect(PinRef::new(id, pin), net)
                            .expect("undo: reconnect");
                    }
                }
                Op::Connected(pin, _) => {
                    nl.disconnect(pin).expect("undo: disconnect");
                }
                Op::Disconnected(pin, net) => {
                    nl.connect(pin, net).expect("undo: reconnect");
                }
                Op::AddedNet(id) => {
                    nl.remove_net(id).expect("undo: net unused by now");
                    nl.free_net_slot(id);
                }
                Op::RemovedNet(id, net) => {
                    nl.restore_net(id, net);
                }
                Op::KindChanged(id, kind) => {
                    nl.component_mut(id).expect("undo: component exists").kind = kind;
                }
            }
        }
    }
}

/// A transaction over a netlist: exposes the mutation API and records
/// inverse operations.
///
/// Mutations apply to the netlist immediately; [`Tx::commit`] hands the
/// recorded inverses to the caller. A `Tx` dropped *without* committing
/// rolls its mutations back — a strategy or rule that bails out halfway
/// through a rewrite (`?`/`continue`/panic unwind) leaves the netlist
/// exactly as it found it, never half-rewritten.
pub struct Tx<'a> {
    nl: &'a mut Netlist,
    ops: Vec<Op>,
}

impl Drop for Tx<'_> {
    fn drop(&mut self) {
        // Roll back an uncommitted (abandoned) transaction. `commit`
        // takes the ops out first, so a committed Tx undoes nothing.
        let ops = std::mem::take(&mut self.ops);
        if !ops.is_empty() {
            UndoLog { ops }.undo(self.nl);
        }
    }
}

impl<'a> Tx<'a> {
    /// Opens a transaction.
    pub fn new(nl: &'a mut Netlist) -> Self {
        Self {
            nl,
            ops: Vec::new(),
        }
    }

    /// Read access to the underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        self.nl
    }

    /// Finishes the transaction, returning the undo log.
    pub fn commit(mut self) -> UndoLog {
        UndoLog {
            ops: std::mem::take(&mut self.ops),
        }
    }

    /// Adds a net. See [`Netlist::add_net`].
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let id = self.nl.add_net(name);
        self.ops.push(Op::AddedNet(id));
        id
    }

    /// Adds a component. See [`Netlist::add_component`].
    pub fn add_component(&mut self, name: impl Into<String>, kind: ComponentKind) -> ComponentId {
        let id = self.nl.add_component(name, kind);
        self.ops.push(Op::AddedComponent(id));
        id
    }

    /// Connects a pin. See [`Netlist::connect`].
    ///
    /// # Errors
    ///
    /// Same as [`Netlist::connect`].
    pub fn connect(&mut self, pin: PinRef, net: NetId) -> Result<(), NetlistError> {
        self.nl.connect(pin, net)?;
        self.ops.push(Op::Connected(pin, net));
        Ok(())
    }

    /// Connects a named pin. See [`Netlist::connect_named`].
    ///
    /// # Errors
    ///
    /// Same as [`Netlist::connect_named`].
    pub fn connect_named(
        &mut self,
        component: ComponentId,
        pin_name: &str,
        net: NetId,
    ) -> Result<(), NetlistError> {
        let idx = self
            .nl
            .component(component)?
            .pin_index(pin_name)
            .ok_or(NetlistError::NoSuchPin(PinRef::new(component, u16::MAX)))?;
        self.connect(PinRef::new(component, idx), net)
    }

    /// Disconnects a pin. See [`Netlist::disconnect`].
    ///
    /// # Errors
    ///
    /// Same as [`Netlist::disconnect`].
    pub fn disconnect(&mut self, pin: PinRef) -> Result<NetId, NetlistError> {
        let net = self.nl.disconnect(pin)?;
        self.ops.push(Op::Disconnected(pin, net));
        Ok(net)
    }

    /// Removes a component (recording its connections for undo).
    ///
    /// # Errors
    ///
    /// Same as [`Netlist::remove_component`].
    pub fn remove_component(&mut self, id: ComponentId) -> Result<(), NetlistError> {
        let conns: Vec<(u16, NetId)> = self
            .nl
            .component(id)?
            .pins
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.net.map(|n| (i as u16, n)))
            .collect();
        let comp = self.nl.remove_component(id)?;
        self.ops.push(Op::RemovedComponent(id, comp, conns));
        Ok(())
    }

    /// Removes an unused net.
    ///
    /// # Errors
    ///
    /// Same as [`Netlist::remove_net`].
    pub fn remove_net(&mut self, id: NetId) -> Result<(), NetlistError> {
        let net = self.nl.remove_net(id)?;
        self.ops.push(Op::RemovedNet(id, net));
        Ok(())
    }

    /// Swaps a component's kind in place (pin layouts must be compatible).
    ///
    /// # Errors
    ///
    /// Fails if the component does not exist.
    pub fn change_kind(
        &mut self,
        id: ComponentId,
        kind: ComponentKind,
    ) -> Result<(), NetlistError> {
        let old = self.nl.component(id)?.kind.clone();
        self.nl.component_mut(id)?.kind = kind;
        self.ops.push(Op::KindChanged(id, old));
        Ok(())
    }

    /// Moves every load of `from` onto `to` (drivers stay) — the common
    /// "bypass this gate" operation.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn move_loads(&mut self, from: NetId, to: NetId) -> Result<usize, NetlistError> {
        let loads = self.nl.loads(from);
        let n = loads.len();
        for pin in loads {
            self.disconnect(pin)?;
            self.connect(pin, to)?;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_netlist::{GateFn, GenericMacro, PinDir};

    fn base() -> Netlist {
        let mut nl = Netlist::new("t");
        let a = nl.add_net("a");
        let y = nl.add_net("y");
        let g = nl.add_component(
            "g",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)),
        );
        nl.connect_named(g, "A0", a).unwrap();
        nl.connect_named(g, "Y", y).unwrap();
        nl.add_port("a", PinDir::In, a);
        nl.add_port("y", PinDir::Out, y);
        nl
    }

    #[test]
    fn undo_restores_exactly() {
        let mut nl = base();
        let before = format!("{nl:?}");
        let mut tx = Tx::new(&mut nl);
        // Splice a buffer after the inverter.
        let g = tx.netlist().component_ids().next().unwrap();
        let y = tx.netlist().pin_net(g, "Y").unwrap();
        let mid = tx.add_net("mid");
        tx.move_loads(y, mid).unwrap();
        let b = tx.add_component(
            "b",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Buf, 1)),
        );
        tx.connect_named(b, "A0", y).unwrap();
        // note: output port still on y; buffer output dangles — fine for test
        let log = tx.commit();
        assert!(!log.is_empty());
        log.undo(&mut nl);
        assert_eq!(format!("{nl:?}"), before);
    }

    #[test]
    fn abandoned_tx_rolls_back_on_drop() {
        let mut nl = base();
        let before = format!("{nl:?}");
        {
            let mut tx = Tx::new(&mut nl);
            let g = tx.netlist().component_ids().next().unwrap();
            tx.remove_component(g).unwrap();
            tx.add_net("orphan");
            // Dropped without commit — e.g. a strategy bailing out with
            // `?` halfway through a rewrite.
        }
        assert_eq!(
            format!("{nl:?}"),
            before,
            "drop must undo the partial rewrite"
        );
    }

    #[test]
    fn committed_tx_keeps_changes_on_drop() {
        let mut nl = base();
        let g = nl.component_ids().next().unwrap();
        let mut tx = Tx::new(&mut nl);
        tx.remove_component(g).unwrap();
        let log = tx.commit();
        assert_eq!(nl.component_count(), 0, "commit keeps the rewrite applied");
        log.undo(&mut nl);
        assert_eq!(nl.component_count(), 1);
    }

    #[test]
    fn undo_remove_component() {
        let mut nl = base();
        let g = nl.component_ids().next().unwrap();
        let before = format!("{nl:?}");
        let mut tx = Tx::new(&mut nl);
        tx.remove_component(g).unwrap();
        let log = tx.commit();
        log.undo(&mut nl);
        assert_eq!(format!("{nl:?}"), before);
    }

    #[test]
    fn undo_kind_change() {
        let mut nl = base();
        let g = nl.component_ids().next().unwrap();
        let mut tx = Tx::new(&mut nl);
        tx.change_kind(
            g,
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Buf, 1)),
        )
        .unwrap();
        let log = tx.commit();
        assert!(matches!(
            nl.component(g).unwrap().kind,
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Buf, 1))
        ));
        log.undo(&mut nl);
        assert!(matches!(
            nl.component(g).unwrap().kind,
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1))
        ));
    }

    #[test]
    fn nested_transactions_compose() {
        let mut nl = base();
        let before = format!("{nl:?}");
        let mut logs = Vec::new();
        for i in 0..3 {
            let mut tx = Tx::new(&mut nl);
            tx.add_net(format!("extra{i}"));
            logs.push(tx.commit());
        }
        for log in logs.into_iter().rev() {
            log.undo(&mut nl);
        }
        assert_eq!(format!("{nl:?}"), before);
    }

    /// Undo across nested checkpoints whose transactions build on each
    /// other structurally (later transactions rewire what earlier ones
    /// created): unwinding to any checkpoint restores that exact state,
    /// and new work can stack on top of a partial unwind.
    #[test]
    fn undo_across_nested_checkpoints() {
        let mut nl = base();
        let mut checkpoints = vec![format!("{nl:?}")];
        let mut logs = Vec::new();

        // Checkpoint 1: splice a buffer after the inverter.
        let g = nl.component_ids().next().unwrap();
        let y = nl.pin_net(g, "Y").unwrap();
        let mut tx = Tx::new(&mut nl);
        let mid = tx.add_net("mid");
        tx.move_loads(y, mid).unwrap();
        let b = tx.add_component(
            "b",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Buf, 1)),
        );
        tx.connect_named(b, "A0", y).unwrap();
        tx.connect_named(b, "Y", mid).unwrap();
        logs.push(tx.commit());
        checkpoints.push(format!("{nl:?}"));

        // Checkpoint 2: re-kind the buffer the previous checkpoint added.
        let mut tx = Tx::new(&mut nl);
        tx.change_kind(
            b,
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)),
        )
        .unwrap();
        logs.push(tx.commit());
        checkpoints.push(format!("{nl:?}"));

        // Checkpoint 3: remove the original inverter entirely.
        let mut tx = Tx::new(&mut nl);
        tx.remove_component(g).unwrap();
        logs.push(tx.commit());
        checkpoints.push(format!("{nl:?}"));

        // Unwind to checkpoint 1, verify, stack new work, then unwind
        // everything to the initial state.
        logs.pop().unwrap().undo(&mut nl);
        logs.pop().unwrap().undo(&mut nl);
        assert_eq!(format!("{nl:?}"), checkpoints[1]);
        let mut tx = Tx::new(&mut nl);
        tx.add_net("scratch");
        let redo = tx.commit();
        redo.undo(&mut nl);
        assert_eq!(format!("{nl:?}"), checkpoints[1]);
        logs.pop().unwrap().undo(&mut nl);
        assert_eq!(format!("{nl:?}"), checkpoints[0]);
    }

    /// A rejected (errored) rewrite still leaves a log whose touch set
    /// covers every element the partial work touched — the contract the
    /// incremental STA and the match-index repair both rely on.
    #[test]
    fn rejected_rewrite_touch_set_covers_partial_work() {
        let mut nl = base();
        let g = nl.component_ids().next().unwrap();
        let y = nl.pin_net(g, "Y").unwrap();
        let before = format!("{nl:?}");

        // Partial work, then a failing operation (removing a net that is
        // still in use), as a rule's apply would produce before erroring.
        let mut tx = Tx::new(&mut nl);
        let extra = tx.add_net("extra");
        let b = tx.add_component(
            "rej",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Buf, 1)),
        );
        tx.connect_named(b, "A0", y).unwrap();
        tx.connect_named(b, "Y", extra).unwrap();
        assert!(tx.remove_net(y).is_err(), "net in use: the rewrite fails");
        let log = tx.commit();

        let ts = log.touch_set();
        assert!(ts.components.contains(&b), "added component touched");
        assert!(ts.nets.contains(&extra), "added net touched");
        assert!(ts.nets.contains(&y), "connected-to net touched");
        // The failed op contributed nothing.
        assert_eq!(ts.components.len(), 3, "{ts:?}");

        // The same touch set describes the undo.
        log.undo(&mut nl);
        assert_eq!(format!("{nl:?}"), before);
    }
}
