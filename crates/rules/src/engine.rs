//! The OPS-style rule engine: rule trait, conflict set, conflict
//! resolution and the recognize–act cycle (§2.2.1).

use crate::undo::{Tx, UndoLog};
use milo_netlist::{ComponentId, Netlist, NetlistError, PinRef, TouchSet};
use milo_timing::{statistics, statistics_with_sta, DesignStats, IncrementalSta, Sta};
use std::collections::HashSet;

/// The rule classification of §6.4 (Fig. 17) plus the Logic Consultant's
/// high-priority "clean up" class (§2.2.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RuleClass {
    /// Always decreases both delay and area (the logic critic).
    Logic,
    /// Decreases delay at the expense of area/power (the timing critic).
    Timing,
    /// Decreases area at the expense of delay/power (the area critic).
    Area,
    /// Decreases power at the expense of delay (the power critic).
    Power,
    /// Spots and corrects electrical errors (the electric critic).
    Electric,
    /// High-priority clean-up rules, examined after regular applications.
    Cleanup,
    /// Microarchitecture-level rewrites (§6.3).
    Micro,
}

/// A located rule application opportunity.
#[derive(Clone, Debug)]
pub struct RuleMatch {
    /// Primary component the rule fires on.
    pub site: ComponentId,
    /// Other components involved.
    pub aux: Vec<ComponentId>,
    /// Pins involved (e.g. the pair to swap for strategy 1).
    pub pins: Vec<PinRef>,
    /// Rule-specific selector (e.g. index of the chosen replacement cell).
    pub choice: usize,
    /// Human-readable description for traces.
    pub note: String,
}

impl RuleMatch {
    /// A match on a single component.
    pub fn at(site: ComponentId) -> Self {
        Self {
            site,
            aux: Vec::new(),
            pins: Vec::new(),
            choice: 0,
            note: String::new(),
        }
    }

    /// Builder: attach auxiliary components.
    #[must_use]
    pub fn with_aux(mut self, aux: Vec<ComponentId>) -> Self {
        self.aux = aux;
        self
    }

    /// Builder: attach pins.
    #[must_use]
    pub fn with_pins(mut self, pins: Vec<PinRef>) -> Self {
        self.pins = pins;
        self
    }

    /// Builder: attach a choice index.
    #[must_use]
    pub fn with_choice(mut self, choice: usize) -> Self {
        self.choice = choice;
        self
    }

    /// Builder: attach a note.
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.note = note.into();
        self
    }

    /// Specificity ≈ number of conditions — OPS conflict resolution
    /// prefers more specific rules.
    pub fn specificity(&self) -> usize {
        1 + self.aux.len() + self.pins.len()
    }

    fn fingerprint(&self, rule_name: &str) -> (String, ComponentId, Vec<ComponentId>, usize) {
        (
            rule_name.to_owned(),
            self.site,
            self.aux.clone(),
            self.choice,
        )
    }
}

/// Context handed to rules during matching.
pub struct RuleCtx<'a> {
    /// The design under optimization.
    pub nl: &'a Netlist,
    /// Current timing analysis, when the caller has one.
    pub sta: Option<&'a Sta>,
}

/// A transformation rule.
pub trait Rule {
    /// Unique rule name.
    fn name(&self) -> &'static str;
    /// Classification (which critic owns it).
    fn class(&self) -> RuleClass;
    /// Finds all applicable sites.
    fn matches(&self, ctx: &RuleCtx) -> Vec<RuleMatch>;
    /// Applies the rule at a match, inside a transaction.
    ///
    /// # Errors
    ///
    /// Netlist manipulation errors abort (and the engine undoes) the
    /// application.
    fn apply(&self, tx: &mut Tx, m: &RuleMatch) -> Result<(), NetlistError>;
}

/// Measured effect of one rule application.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Effect {
    /// Reduction in worst delay (positive = faster).
    pub delay_gain: f64,
    /// Increase in area (negative = smaller).
    pub area_cost: f64,
    /// Increase in power (negative = less power).
    pub power_cost: f64,
}

impl Effect {
    /// Computes the effect between two statistics snapshots.
    pub fn between(before: &DesignStats, after: &DesignStats) -> Self {
        Self {
            delay_gain: before.delay - after.delay,
            area_cost: after.area - before.area,
            power_cost: after.power - before.power,
        }
    }

    /// Scalar figure of merit under objective weights (bigger = better).
    pub fn merit(&self, delay_weight: f64, area_weight: f64, power_weight: f64) -> f64 {
        self.delay_gain * delay_weight
            - self.area_cost * area_weight
            - self.power_cost * power_weight
    }
}

/// How the conflict set is resolved.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Selection {
    /// OPS ordering: refraction, then specificity, then recency
    /// (§2.2.1) — no gain evaluation.
    OpsOrder,
    /// Logic Consultant style: evaluate every candidate and fire the one
    /// with the largest gain under the given objective weights.
    MaxGain {
        /// Weight of delay improvement.
        delay: f64,
        /// Weight of area increase (cost).
        area: f64,
        /// Weight of power increase (cost).
        power: f64,
    },
}

/// One fired rule, for traces and reports.
#[derive(Clone, Debug)]
pub struct Firing {
    /// Rule name.
    pub rule: &'static str,
    /// Rule class.
    pub class: RuleClass,
    /// The match description.
    pub note: String,
    /// Measured effect.
    pub effect: Effect,
}

/// The recognize–act engine.
pub struct Engine {
    rules: Vec<Box<dyn Rule>>,
    refraction: HashSet<(String, ComponentId, Vec<ComponentId>, usize)>,
    /// Trace of fired rules.
    pub firings: Vec<Firing>,
}

impl Engine {
    /// Creates an engine over a rule set.
    pub fn new(rules: Vec<Box<dyn Rule>>) -> Self {
        Self {
            rules,
            refraction: HashSet::new(),
            firings: Vec::new(),
        }
    }

    /// The rules, for inspection.
    pub fn rules(&self) -> &[Box<dyn Rule>] {
        &self.rules
    }

    /// Clears refraction memory (e.g. between optimization phases).
    pub fn reset_refraction(&mut self) {
        self.refraction.clear();
    }

    /// Builds the conflict set: all (rule, match) pairs, refraction
    /// filtered, optionally restricted to one class.
    pub fn conflict_set(
        &self,
        nl: &Netlist,
        sta: Option<&Sta>,
        class: Option<RuleClass>,
    ) -> Vec<(usize, RuleMatch)> {
        let ctx = RuleCtx { nl, sta };
        let mut out = Vec::new();
        for (i, rule) in self.rules.iter().enumerate() {
            if class.is_some_and(|c| rule.class() != c) {
                continue;
            }
            for m in rule.matches(&ctx) {
                if !self.refraction.contains(&m.fingerprint(rule.name())) {
                    out.push((i, m));
                }
            }
        }
        out
    }

    /// Applies `(rule, match)` and measures the effect; on failure the
    /// change is undone and `None` returned.
    pub fn try_apply(
        &self,
        nl: &mut Netlist,
        rule_idx: usize,
        m: &RuleMatch,
    ) -> Option<(Effect, UndoLog)> {
        self.try_apply_inc(nl, &mut None, rule_idx, m)
    }

    /// [`Engine::try_apply`] against an incrementally maintained STA: the
    /// before/after statistics reuse the tracked analysis (refreshed from
    /// the transaction's touch set) instead of re-analyzing the netlist.
    fn try_apply_inc(
        &self,
        nl: &mut Netlist,
        inc: &mut Option<IncrementalSta>,
        rule_idx: usize,
        m: &RuleMatch,
    ) -> Option<(Effect, UndoLog)> {
        let before = match inc.as_ref() {
            Some(i) => statistics_with_sta(nl, i.sta()).ok()?,
            None => statistics(nl).ok()?,
        };
        let mut tx = Tx::new(nl);
        let result = self.rules[rule_idx].apply(&mut tx, m);
        let log = tx.commit();
        let ts = log.touch_set();
        match result {
            Ok(()) => {
                let after = if inc.is_some() {
                    refresh_or_rebuild(inc, nl, &ts);
                    inc.as_ref()
                        .and_then(|i| statistics_with_sta(nl, i.sta()).ok())
                } else {
                    statistics(nl).ok()
                };
                match after {
                    Some(after) => Some((Effect::between(&before, &after), log)),
                    None => {
                        // Cycle or hierarchy introduced: reject the rule.
                        log.undo(nl);
                        refresh_or_rebuild(inc, nl, &ts);
                        None
                    }
                }
            }
            Err(_) => {
                log.undo(nl);
                refresh_or_rebuild(inc, nl, &ts);
                None
            }
        }
    }

    /// One recognize–act cycle: build the conflict set, pick a rule per
    /// `selection`, fire it. Returns `false` when nothing fired.
    pub fn step(
        &mut self,
        nl: &mut Netlist,
        selection: Selection,
        class: Option<RuleClass>,
    ) -> bool {
        let mut inc = IncrementalSta::new(nl).ok();
        self.step_inc(nl, &mut inc, selection, class)
    }

    /// [`Engine::step`] against a maintained incremental STA.
    fn step_inc(
        &mut self,
        nl: &mut Netlist,
        inc: &mut Option<IncrementalSta>,
        selection: Selection,
        class: Option<RuleClass>,
    ) -> bool {
        // Mirror the old per-step analyze: a design that was cyclic at
        // engine start may have been fixed by an earlier firing.
        if inc.is_none() {
            *inc = IncrementalSta::new(nl).ok();
        }
        let conflict = self.conflict_set(nl, inc.as_ref().map(IncrementalSta::sta), class);
        if conflict.is_empty() {
            return false;
        }
        match selection {
            Selection::OpsOrder => {
                // Refraction is already applied; prefer specificity, then
                // recency (later matches first).
                let mut ordered: Vec<&(usize, RuleMatch)> = conflict.iter().collect();
                ordered.sort_by_key(|(_, m)| std::cmp::Reverse(m.specificity()));
                for (idx, m) in ordered {
                    if let Some((effect, _log)) = self.try_apply_inc(nl, inc, *idx, m) {
                        self.record(*idx, m, effect);
                        return true;
                    }
                }
                false
            }
            Selection::MaxGain { delay, area, power } => {
                // Evaluate each candidate by applying + undoing, fire the
                // best positive-merit one.
                let mut best: Option<(f64, usize, RuleMatch)> = None;
                for (idx, m) in &conflict {
                    if let Some((effect, log)) = self.try_apply_inc(nl, inc, *idx, m) {
                        let ts = log.touch_set();
                        log.undo(nl);
                        refresh_or_rebuild(inc, nl, &ts);
                        let merit = effect.merit(delay, area, power);
                        if merit > 1e-9 && best.as_ref().is_none_or(|(b, _, _)| merit > *b) {
                            best = Some((merit, *idx, m.clone()));
                        }
                    }
                }
                match best {
                    Some((_, idx, m)) => {
                        if let Some((effect, _log)) = self.try_apply_inc(nl, inc, idx, &m) {
                            self.record(idx, &m, effect);
                            true
                        } else {
                            false
                        }
                    }
                    None => false,
                }
            }
        }
    }

    fn record(&mut self, rule_idx: usize, m: &RuleMatch, effect: Effect) {
        let rule = &self.rules[rule_idx];
        self.refraction.insert(m.fingerprint(rule.name()));
        self.firings.push(Firing {
            rule: rule.name(),
            class: rule.class(),
            note: m.note.clone(),
            effect,
        });
    }

    /// One *sweep*: builds the conflict set once and applies every match
    /// whose components are still untouched in this pass. This amortizes
    /// matching the way Rete does for OPS (§2.2.1: "once a test has been
    /// performed … it is not redone until a change in data occurs") and
    /// keeps local-transformation synthesis time near-linear in design
    /// size — the LSS observation of §2.2.2.
    pub fn sweep(&mut self, nl: &mut Netlist, class: Option<RuleClass>) -> usize {
        let mut inc = IncrementalSta::new(nl).ok();
        self.sweep_inc(nl, &mut inc, class)
    }

    /// [`Engine::sweep`] against a maintained incremental STA: the
    /// conflict set is matched once from the tracked analysis, every
    /// accepted firing's touch set is merged, and the analysis is
    /// refreshed once at the end of the pass.
    fn sweep_inc(
        &mut self,
        nl: &mut Netlist,
        inc: &mut Option<IncrementalSta>,
        class: Option<RuleClass>,
    ) -> usize {
        if inc.is_none() {
            *inc = IncrementalSta::new(nl).ok();
        }
        let conflict = self.conflict_set(nl, inc.as_ref().map(IncrementalSta::sta), class);
        let mut touched: HashSet<ComponentId> = HashSet::new();
        let mut merged = TouchSet::new();
        let mut fired = 0usize;
        for (idx, m) in conflict {
            if touched.contains(&m.site) || m.aux.iter().any(|a| touched.contains(a)) {
                continue;
            }
            // Apply without per-candidate statistics measurement — sweep
            // mode is for always-beneficial local transformations, and the
            // O(design) cost of measuring every firing would defeat the
            // linearity the mode exists to provide.
            let mut tx = Tx::new(nl);
            let result = self.rules[idx].apply(&mut tx, &m);
            let log = tx.commit();
            match result {
                Ok(()) => {
                    touched.insert(m.site);
                    touched.extend(m.aux.iter().copied());
                    merged.merge(&log.touch_set());
                    self.record(idx, &m, Effect::default());
                    fired += 1;
                }
                Err(_) => log.undo(nl),
            }
        }
        if fired > 0 {
            refresh_or_rebuild(inc, nl, &merged);
        }
        fired
    }

    /// Repeats [`Engine::sweep`] until quiescence or `max_passes`.
    pub fn run_sweeps(
        &mut self,
        nl: &mut Netlist,
        class: Option<RuleClass>,
        max_passes: usize,
    ) -> usize {
        let mut inc = IncrementalSta::new(nl).ok();
        let mut total = 0;
        for _ in 0..max_passes {
            let fired = self.sweep_inc(nl, &mut inc, class);
            if fired == 0 {
                break;
            }
            total += fired;
        }
        total
    }

    /// Runs recognize–act cycles until quiescence or `max_steps`.
    /// Returns the number of rules fired.
    pub fn run(
        &mut self,
        nl: &mut Netlist,
        selection: Selection,
        class: Option<RuleClass>,
        max_steps: usize,
    ) -> usize {
        let mut inc = IncrementalSta::new(nl).ok();
        let mut fired = 0;
        while fired < max_steps && self.step_inc(nl, &mut inc, selection, class) {
            fired += 1;
        }
        fired
    }
}

/// Refreshes the tracked analysis from a touch set, falling back to a
/// full rebuild (or dropping the analysis entirely, e.g. on a
/// combinational cycle) when the incremental path cannot apply.
pub fn refresh_or_rebuild(inc: &mut Option<IncrementalSta>, nl: &Netlist, ts: &TouchSet) {
    // With no tracker there is nothing to keep fresh — callers that
    // want one (re)acquire it per step, so a failure path here must not
    // pay for a from-scratch analysis that is immediately dropped.
    if let Some(i) = inc.as_mut() {
        if i.refresh(nl, ts).is_err() {
            *inc = IncrementalSta::new(nl).ok();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_netlist::{ComponentKind, GateFn, GenericMacro, PinDir};

    /// Toy rule: remove double inverters (INV feeding INV with fanout 1).
    struct DoubleInv;

    impl Rule for DoubleInv {
        fn name(&self) -> &'static str {
            "double-inverter-elimination"
        }
        fn class(&self) -> RuleClass {
            RuleClass::Logic
        }
        fn matches(&self, ctx: &RuleCtx) -> Vec<RuleMatch> {
            let nl = ctx.nl;
            let mut out = Vec::new();
            for id in nl.component_ids() {
                let Ok(c) = nl.component(id) else { continue };
                if !matches!(
                    c.kind,
                    ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1))
                ) {
                    continue;
                }
                let Some(y) = nl.pin_net(id, "Y") else {
                    continue;
                };
                if nl.fanout(y) != 1 {
                    continue;
                }
                let Some(load) = nl.loads(y).first().copied() else {
                    continue;
                };
                let Ok(next) = nl.component(load.component) else {
                    continue;
                };
                if matches!(
                    next.kind,
                    ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1))
                ) {
                    out.push(RuleMatch::at(id).with_aux(vec![load.component]));
                }
            }
            out
        }
        fn apply(&self, tx: &mut Tx, m: &RuleMatch) -> Result<(), NetlistError> {
            let nl = tx.netlist();
            let input = nl.pin_net(m.site, "A0").expect("matched");
            let second = m.aux[0];
            let out = nl.pin_net(second, "Y").expect("matched");
            tx.remove_component(m.site)?;
            tx.remove_component(second)?;
            tx.move_loads(out, input)?;
            Ok(())
        }
    }

    fn inv_chain(n: usize) -> Netlist {
        let mut nl = Netlist::new("c");
        let mut prev = nl.add_net("a");
        nl.add_port("a", PinDir::In, prev);
        for i in 0..n {
            let g = nl.add_component(
                format!("g{i}"),
                ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)),
            );
            nl.connect_named(g, "A0", prev).unwrap();
            let y = nl.add_net(format!("n{i}"));
            nl.connect_named(g, "Y", y).unwrap();
            prev = y;
        }
        nl.add_port("y", PinDir::Out, prev);
        nl
    }

    #[test]
    fn engine_removes_inverter_pairs() {
        let mut nl = inv_chain(5);
        let mut engine = Engine::new(vec![Box::new(DoubleInv)]);
        let fired = engine.run(&mut nl, Selection::OpsOrder, None, 100);
        assert_eq!(fired, 2, "two pairs removed from a 5-chain");
        assert_eq!(nl.component_count(), 1);
    }

    #[test]
    fn max_gain_selection_fires_too() {
        let mut nl = inv_chain(4);
        let mut engine = Engine::new(vec![Box::new(DoubleInv)]);
        let fired = engine.run(
            &mut nl,
            Selection::MaxGain {
                delay: 1.0,
                area: 1.0,
                power: 0.1,
            },
            None,
            100,
        );
        assert_eq!(fired, 2);
        assert_eq!(nl.component_count(), 0);
        assert!(engine.firings.iter().all(|f| f.effect.area_cost < 0.0));
    }

    #[test]
    fn class_filter_blocks_rules() {
        let mut nl = inv_chain(2);
        let mut engine = Engine::new(vec![Box::new(DoubleInv)]);
        let fired = engine.run(&mut nl, Selection::OpsOrder, Some(RuleClass::Timing), 100);
        assert_eq!(fired, 0);
    }

    #[test]
    fn effect_merit() {
        let e = Effect {
            delay_gain: 2.0,
            area_cost: 1.0,
            power_cost: 0.5,
        };
        assert!(e.merit(1.0, 0.1, 0.1) > 0.0);
        assert!(e.merit(0.0, 1.0, 1.0) < 0.0);
    }
}
