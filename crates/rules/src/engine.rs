//! The OPS-style rule engine: rule trait, conflict set, conflict
//! resolution and the recognize–act cycle (§2.2.1).

use crate::matcher::{Locality, MatchIndex};
use crate::undo::{Tx, UndoLog};
use milo_netlist::{ComponentId, Netlist, NetlistError, PinRef, TouchSet};
use milo_timing::{statistics, statistics_with_sta, DesignStats, IncrementalSta, Sta};
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

/// Cached handles into the global metrics registry
/// (docs/OBSERVABILITY.md). Resolved once; recording afterwards is a
/// single relaxed atomic op, cheap enough for the recognize–act loop.
mod obs {
    use milo_trace::{Counter, Histogram, Registry};
    use std::sync::{Arc, OnceLock};

    /// `engine.rewrites` — committed rule firings.
    pub fn rewrites() -> &'static Counter {
        static C: OnceLock<Arc<Counter>> = OnceLock::new();
        C.get_or_init(|| Registry::global().counter("engine.rewrites"))
    }

    /// `engine.sweeps` — sweep passes executed.
    pub fn sweeps() -> &'static Counter {
        static C: OnceLock<Arc<Counter>> = OnceLock::new();
        C.get_or_init(|| Registry::global().counter("engine.sweeps"))
    }

    /// `engine.match_repairs` — incremental match-index repairs.
    pub fn match_repairs() -> &'static Counter {
        static C: OnceLock<Arc<Counter>> = OnceLock::new();
        C.get_or_init(|| Registry::global().counter("engine.match_repairs"))
    }

    /// `engine.repair_ns` — wall time of each match-index repair.
    pub fn repair_ns() -> &'static Histogram {
        static H: OnceLock<Arc<Histogram>> = OnceLock::new();
        H.get_or_init(|| Registry::global().histogram("engine.repair_ns"))
    }
}

/// The rule classification of §6.4 (Fig. 17) plus the Logic Consultant's
/// high-priority "clean up" class (§2.2.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RuleClass {
    /// Always decreases both delay and area (the logic critic).
    Logic,
    /// Decreases delay at the expense of area/power (the timing critic).
    Timing,
    /// Decreases area at the expense of delay/power (the area critic).
    Area,
    /// Decreases power at the expense of delay (the power critic).
    Power,
    /// Spots and corrects electrical errors (the electric critic).
    Electric,
    /// High-priority clean-up rules, examined after regular applications.
    Cleanup,
    /// Microarchitecture-level rewrites (§6.3).
    Micro,
}

/// A located rule application opportunity.
#[derive(Clone, Debug)]
pub struct RuleMatch {
    /// Primary component the rule fires on.
    pub site: ComponentId,
    /// Other components involved.
    pub aux: Vec<ComponentId>,
    /// Pins involved (e.g. the pair to swap for strategy 1).
    pub pins: Vec<PinRef>,
    /// Rule-specific selector (e.g. index of the chosen replacement cell).
    pub choice: usize,
    /// Human-readable description for traces.
    pub note: String,
}

impl RuleMatch {
    /// A match on a single component.
    pub fn at(site: ComponentId) -> Self {
        Self {
            site,
            aux: Vec::new(),
            pins: Vec::new(),
            choice: 0,
            note: String::new(),
        }
    }

    /// Builder: attach auxiliary components.
    #[must_use]
    pub fn with_aux(mut self, aux: Vec<ComponentId>) -> Self {
        self.aux = aux;
        self
    }

    /// Builder: attach pins.
    #[must_use]
    pub fn with_pins(mut self, pins: Vec<PinRef>) -> Self {
        self.pins = pins;
        self
    }

    /// Builder: attach a choice index.
    #[must_use]
    pub fn with_choice(mut self, choice: usize) -> Self {
        self.choice = choice;
        self
    }

    /// Builder: attach a note.
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.note = note.into();
        self
    }

    /// Specificity ≈ number of conditions — OPS conflict resolution
    /// prefers more specific rules.
    pub fn specificity(&self) -> usize {
        1 + self.aux.len() + self.pins.len()
    }

    fn fingerprint(&self, rule_name: &str) -> (String, ComponentId, Vec<ComponentId>, usize) {
        (
            rule_name.to_owned(),
            self.site,
            self.aux.clone(),
            self.choice,
        )
    }
}

/// Context handed to rules during matching.
pub struct RuleCtx<'a> {
    /// The design under optimization.
    pub nl: &'a Netlist,
    /// Current timing analysis, when the caller has one.
    pub sta: Option<&'a Sta>,
}

/// A transformation rule.
pub trait Rule {
    /// Unique rule name.
    fn name(&self) -> &'static str;
    /// Classification (which critic owns it).
    fn class(&self) -> RuleClass;
    /// Finds all applicable sites.
    fn matches(&self, ctx: &RuleCtx) -> Vec<RuleMatch>;
    /// The rule's support radius — the [`MatchIndex`] repair contract.
    ///
    /// Return [`Locality::Local`] only when a match anchored at a
    /// component is fully determined by that component, its adjacent
    /// nets, and the loads on nets the anchor drives, and matching
    /// never reads `ctx.sta` (see `crate::matcher` docs for the exact
    /// support contract). The safe default is [`Locality::Global`]:
    /// the rule is fully re-matched on every index repair.
    fn locality(&self) -> Locality {
        Locality::Global
    }
    /// Whether [`Rule::matches`] reads `ctx.sta`. [`Locality::Local`]
    /// rules contractually never do; `Global` rules default to a
    /// conservative "yes". When no rule in an engine's set uses the
    /// STA, sweep mode skips timing maintenance entirely.
    fn uses_sta(&self) -> bool {
        !matches!(self.locality(), Locality::Local)
    }
    /// All matches anchored exactly at `anchor` (`RuleMatch::site ==
    /// anchor`). Must agree with [`Rule::matches`] filtered by site.
    /// The default does exactly that — correct but O(design); rules
    /// declaring [`Locality::Local`] should override it with a
    /// constant-time neighborhood check, which is where the
    /// incremental matcher's speedup comes from.
    fn matches_at(&self, ctx: &RuleCtx, anchor: ComponentId) -> Vec<RuleMatch> {
        self.matches(ctx)
            .into_iter()
            .filter(|m| m.site == anchor)
            .collect()
    }
    /// Applies the rule at a match, inside a transaction.
    ///
    /// # Errors
    ///
    /// Netlist manipulation errors abort (and the engine undoes) the
    /// application.
    fn apply(&self, tx: &mut Tx, m: &RuleMatch) -> Result<(), NetlistError>;
}

/// Measured effect of one rule application.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Effect {
    /// Reduction in worst delay (positive = faster).
    pub delay_gain: f64,
    /// Increase in area (negative = smaller).
    pub area_cost: f64,
    /// Increase in power (negative = less power).
    pub power_cost: f64,
}

impl Effect {
    /// Computes the effect between two statistics snapshots.
    pub fn between(before: &DesignStats, after: &DesignStats) -> Self {
        Self {
            delay_gain: before.delay - after.delay,
            area_cost: after.area - before.area,
            power_cost: after.power - before.power,
        }
    }

    /// Scalar figure of merit under objective weights (bigger = better).
    pub fn merit(&self, delay_weight: f64, area_weight: f64, power_weight: f64) -> f64 {
        self.delay_gain * delay_weight
            - self.area_cost * area_weight
            - self.power_cost * power_weight
    }
}

/// How the conflict set is resolved.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Selection {
    /// OPS ordering: refraction, then specificity, then recency
    /// (§2.2.1) — no gain evaluation.
    OpsOrder,
    /// Logic Consultant style: evaluate every candidate and fire the one
    /// with the largest gain under the given objective weights.
    MaxGain {
        /// Weight of delay improvement.
        delay: f64,
        /// Weight of area increase (cost).
        area: f64,
        /// Weight of power increase (cost).
        power: f64,
    },
}

/// One fired rule, for traces and reports.
#[derive(Clone, Debug)]
pub struct Firing {
    /// Rule name.
    pub rule: &'static str,
    /// Rule class.
    pub class: RuleClass,
    /// The match description.
    pub note: String,
    /// Measured effect.
    pub effect: Effect,
}

/// Full-design scan for rules whose [`Rule::matches`] is just
/// [`Rule::matches_at`] over every component — the usual body of a
/// [`Locality::Local`] rule's `matches` implementation.
///
/// **The rule must override [`Rule::matches_at`].** The default
/// `matches_at` delegates back to `matches`; calling this helper from
/// `matches` without that override would recurse infinitely, so the
/// cycle is detected and reported as a panic naming the missing
/// override instead of a bare stack overflow.
///
/// # Panics
///
/// Panics when re-entered for the same rule — the signature of a
/// missing `matches_at` override.
pub fn scan_all_components(rule: &dyn Rule, ctx: &RuleCtx) -> Vec<RuleMatch> {
    use std::cell::Cell;
    thread_local! {
        static SCANNING: Cell<bool> = const { Cell::new(false) };
    }
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            SCANNING.with(|s| s.set(false));
        }
    }
    assert!(
        !SCANNING.with(|s| s.replace(true)),
        "scan_all_components re-entered while scanning `{}`: the rule \
         calls the helper from `matches` without overriding `matches_at` \
         (whose default delegates back to `matches`)",
        rule.name()
    );
    let _reset = Reset;
    ctx.nl
        .component_ids()
        .flat_map(|id| rule.matches_at(ctx, id))
        .collect()
}

/// Whether `MILO_MATCH_ORACLE` asks every indexed conflict set to be
/// cross-checked against a full rescan (set to anything but `0`).
fn oracle_from_env() -> bool {
    static FLAG: OnceLock<bool> = OnceLock::new();
    *FLAG
        .get_or_init(|| std::env::var("MILO_MATCH_ORACLE").is_ok_and(|v| !v.is_empty() && v != "0"))
}

/// The recognize–act engine.
pub struct Engine {
    rules: Vec<Box<dyn Rule>>,
    refraction: HashSet<(String, ComponentId, Vec<ComponentId>, usize)>,
    match_oracle: bool,
    /// Undo logs of committed firings, oldest first, recorded while the
    /// journal is enabled — the flow layer's checkpoint/rollback hook.
    journal: Option<Vec<UndoLog>>,
    /// Trace of fired rules.
    pub firings: Vec<Firing>,
}

impl Engine {
    /// Creates an engine over a rule set.
    pub fn new(rules: Vec<Box<dyn Rule>>) -> Self {
        Self {
            rules,
            refraction: HashSet::new(),
            match_oracle: oracle_from_env(),
            journal: None,
            firings: Vec::new(),
        }
    }

    /// The rules, for inspection.
    pub fn rules(&self) -> &[Box<dyn Rule>] {
        &self.rules
    }

    /// Clears refraction memory (e.g. between optimization phases).
    pub fn reset_refraction(&mut self) {
        self.refraction.clear();
    }

    /// Starts journaling committed rewrites: every firing accepted by
    /// [`Engine::run`] / [`Engine::step`] / [`Engine::sweep`] /
    /// [`Engine::run_sweeps`] keeps its [`UndoLog`] so a caller can
    /// [`Engine::rollback_to`] an earlier [`Engine::journal_mark`].
    /// Idempotent; journaling stays on until [`Engine::take_journal`].
    pub fn enable_journal(&mut self) {
        if self.journal.is_none() {
            self.journal = Some(Vec::new());
        }
    }

    /// A checkpoint mark: the number of journaled rewrites so far.
    /// Rewrites committed while the journal is disabled are not
    /// recorded (and can never be rolled back).
    pub fn journal_mark(&self) -> usize {
        self.journal.as_ref().map_or(0, Vec::len)
    }

    /// Undoes every journaled rewrite back to (and excluding) `mark`,
    /// newest first, restoring the netlist to its exact state at the
    /// matching [`Engine::journal_mark`] call. Returns the number of
    /// rewrites undone. Refraction memory is deliberately kept: a
    /// rolled-back application stays refracted, so a retry does not
    /// immediately re-fire into the same fault.
    ///
    /// The netlist must not have been mutated outside the engine since
    /// the mark was taken (the undo logs replay exact inverses).
    pub fn rollback_to(&mut self, nl: &mut Netlist, mark: usize) -> usize {
        let Some(journal) = self.journal.as_mut() else {
            return 0;
        };
        let mut undone = 0;
        while journal.len() > mark {
            let log = journal.pop().expect("len checked");
            log.undo(nl);
            undone += 1;
        }
        undone
    }

    /// Stops journaling and hands the recorded logs (oldest first) to
    /// the caller, e.g. to merge into an outer transaction scope.
    pub fn take_journal(&mut self) -> Vec<UndoLog> {
        self.journal.take().unwrap_or_default()
    }

    fn journal_push(&mut self, log: UndoLog) {
        if let Some(journal) = self.journal.as_mut() {
            journal.push(log);
        }
    }

    /// Forces the full-rescan oracle on or off (defaults to the
    /// `MILO_MATCH_ORACLE` environment variable): every conflict set
    /// served from the incremental [`MatchIndex`] is compared against
    /// [`Engine::conflict_set`], panicking on divergence.
    pub fn set_match_oracle(&mut self, on: bool) {
        self.match_oracle = on;
    }

    /// Builds the conflict set by **full rescan**: all (rule, match)
    /// pairs, refraction filtered, optionally restricted to one class.
    /// The engine's own loops serve conflict sets from an incremental
    /// [`MatchIndex`] instead; this path remains as the debug oracle
    /// (`MILO_MATCH_ORACLE`) and for one-shot callers.
    pub fn conflict_set(
        &self,
        nl: &Netlist,
        sta: Option<&Sta>,
        class: Option<RuleClass>,
    ) -> Vec<(usize, RuleMatch)> {
        let ctx = RuleCtx { nl, sta };
        let mut out = Vec::new();
        for (i, rule) in self.rules.iter().enumerate() {
            if class.is_some_and(|c| rule.class() != c) {
                continue;
            }
            for m in rule.matches(&ctx) {
                if !self.refraction.contains(&m.fingerprint(rule.name())) {
                    out.push((i, m));
                }
            }
        }
        out
    }

    /// Builds a [`MatchIndex`] over this engine's rules — the full
    /// matching pass that incremental repair then keeps alive.
    pub fn build_index(
        &self,
        nl: &Netlist,
        sta: Option<&Sta>,
        class: Option<RuleClass>,
    ) -> MatchIndex {
        MatchIndex::build(&self.rules, &RuleCtx { nl, sta }, class)
    }

    /// Reads the conflict set from an index (refraction filtered) —
    /// the incremental counterpart of [`Engine::conflict_set`].
    pub fn conflict_set_indexed(&self, index: &MatchIndex) -> Vec<(usize, RuleMatch)> {
        index
            .matches()
            .into_iter()
            .filter(|(i, m)| {
                !self
                    .refraction
                    .contains(&m.fingerprint(self.rules[*i].name()))
            })
            .collect()
    }

    /// Drops a stale index and (re)builds as needed, returning the
    /// refraction-filtered conflict set. An index goes stale when STA
    /// availability flips (global rules may read it) or the class
    /// restriction changes.
    fn indexed_conflict(
        &self,
        nl: &Netlist,
        inc: &Option<IncrementalSta>,
        index: &mut Option<MatchIndex>,
        class: Option<RuleClass>,
    ) -> Vec<(usize, RuleMatch)> {
        let sta = inc.as_ref().map(IncrementalSta::sta);
        if index
            .as_ref()
            .is_some_and(|ix| ix.with_sta() != sta.is_some() || ix.class() != class)
        {
            *index = None;
        }
        let ix = index.get_or_insert_with(|| self.build_index(nl, sta, class));
        let conflict = self.conflict_set_indexed(ix);
        if self.match_oracle {
            self.oracle_check(&conflict, nl, sta, class);
        }
        conflict
    }

    /// Repairs a maintained index after a committed rewrite (or undo)
    /// with touch set `ts`; `inc` must already be refreshed from the
    /// same touch set.
    fn repair_index(
        &self,
        nl: &Netlist,
        inc: &Option<IncrementalSta>,
        index: &mut Option<MatchIndex>,
        ts: &TouchSet,
    ) {
        if let Some(ix) = index.as_mut() {
            let ctx = RuleCtx {
                nl,
                sta: inc.as_ref().map(IncrementalSta::sta),
            };
            let started = std::time::Instant::now();
            ix.repair(&self.rules, &ctx, ts);
            obs::match_repairs().inc();
            obs::repair_ns().record(started.elapsed().as_nanos() as u64);
        }
    }

    /// The debug oracle: assert the indexed conflict set equals the
    /// full rescan (as multisets — index order is anchor-major, scan
    /// order is discovery-major).
    fn oracle_check(
        &self,
        indexed: &[(usize, RuleMatch)],
        nl: &Netlist,
        sta: Option<&Sta>,
        class: Option<RuleClass>,
    ) {
        let full = self.conflict_set(nl, sta, class);
        let key = |(i, m): &(usize, RuleMatch)| {
            (
                *i,
                m.site,
                m.aux.clone(),
                m.pins.clone(),
                m.choice,
                m.note.clone(),
            )
        };
        let mut a: Vec<_> = indexed.iter().map(key).collect();
        let mut b: Vec<_> = full.iter().map(key).collect();
        a.sort();
        b.sort();
        assert_eq!(
            a, b,
            "match-index conflict set diverged from full rescan (MILO_MATCH_ORACLE)"
        );
    }

    /// Applies `(rule, match)` and measures the effect; on failure the
    /// change is undone and `None` returned.
    pub fn try_apply(
        &self,
        nl: &mut Netlist,
        rule_idx: usize,
        m: &RuleMatch,
    ) -> Option<(Effect, UndoLog)> {
        self.try_apply_inc(nl, &mut None, rule_idx, m)
    }

    /// [`Engine::try_apply`] against an incrementally maintained STA: the
    /// before/after statistics reuse the tracked analysis (refreshed from
    /// the transaction's touch set) instead of re-analyzing the netlist.
    fn try_apply_inc(
        &self,
        nl: &mut Netlist,
        inc: &mut Option<IncrementalSta>,
        rule_idx: usize,
        m: &RuleMatch,
    ) -> Option<(Effect, UndoLog)> {
        let before = match inc.as_ref() {
            Some(i) => statistics_with_sta(nl, i.sta()).ok()?,
            None => statistics(nl).ok()?,
        };
        let mut tx = Tx::new(nl);
        // A rule that panics mid-apply (stale match, buggy user rule)
        // must not poison the synthesis run: every mutation made so far
        // is already recorded in the transaction, so catch the unwind,
        // commit the partial log, and back it out like any rejected
        // rewrite. (Recovery is exact because the netlist's own
        // primitives are panic-free once entered — they validate first,
        // then mutate.)
        let result = catch_unwind(AssertUnwindSafe(|| self.rules[rule_idx].apply(&mut tx, m)));
        let log = tx.commit();
        let ts = log.touch_set();
        match result {
            Ok(Ok(())) => {
                let after = if inc.is_some() {
                    refresh_or_rebuild(inc, nl, &ts);
                    inc.as_ref()
                        .and_then(|i| statistics_with_sta(nl, i.sta()).ok())
                } else {
                    statistics(nl).ok()
                };
                match after {
                    Some(after) => Some((Effect::between(&before, &after), log)),
                    None => {
                        // Cycle or hierarchy introduced: reject the rule.
                        log.undo(nl);
                        refresh_or_rebuild(inc, nl, &ts);
                        None
                    }
                }
            }
            // Netlist error or caught panic: reject and restore.
            Ok(Err(_)) | Err(_) => {
                log.undo(nl);
                refresh_or_rebuild(inc, nl, &ts);
                None
            }
        }
    }

    /// One recognize–act cycle: build the conflict set, pick a rule per
    /// `selection`, fire it. Returns `false` when nothing fired.
    pub fn step(
        &mut self,
        nl: &mut Netlist,
        selection: Selection,
        class: Option<RuleClass>,
    ) -> bool {
        let mut inc = IncrementalSta::new(nl).ok();
        self.step_inc(nl, &mut inc, &mut None, false, selection, class)
    }

    /// [`Engine::step`] against a maintained incremental STA and match
    /// index; both are repaired from the accepted firing's touch set.
    /// `maintain` is false for one-shot callers whose index dies with
    /// the call — repairing it (a full `Global` re-match) would be
    /// thrown-away work.
    fn step_inc(
        &mut self,
        nl: &mut Netlist,
        inc: &mut Option<IncrementalSta>,
        index: &mut Option<MatchIndex>,
        maintain: bool,
        selection: Selection,
        class: Option<RuleClass>,
    ) -> bool {
        // Mirror the old per-step analyze: a design that was cyclic at
        // engine start may have been fixed by an earlier firing.
        if inc.is_none() {
            *inc = IncrementalSta::new(nl).ok();
        }
        let conflict = self.indexed_conflict(nl, inc, index, class);
        if conflict.is_empty() {
            return false;
        }
        match selection {
            Selection::OpsOrder => {
                // Refraction is already applied; prefer specificity, then
                // recency (later matches first).
                let mut ordered: Vec<&(usize, RuleMatch)> = conflict.iter().collect();
                ordered.sort_by_key(|(_, m)| std::cmp::Reverse(m.specificity()));
                for (idx, m) in ordered {
                    if let Some((effect, log)) = self.try_apply_inc(nl, inc, *idx, m) {
                        self.record(*idx, m, effect);
                        if maintain {
                            self.repair_index(nl, inc, index, &log.touch_set());
                        }
                        self.journal_push(log);
                        return true;
                    }
                }
                false
            }
            Selection::MaxGain { delay, area, power } => {
                // Evaluate each candidate by applying + undoing, fire the
                // best positive-merit one. The apply/undo pairs restore
                // the netlist exactly, so the index needs no repair
                // until the winner is committed.
                let mut best: Option<(f64, usize, RuleMatch)> = None;
                for (idx, m) in &conflict {
                    if let Some((effect, log)) = self.try_apply_inc(nl, inc, *idx, m) {
                        let ts = log.touch_set();
                        log.undo(nl);
                        refresh_or_rebuild(inc, nl, &ts);
                        let merit = effect.merit(delay, area, power);
                        if merit > 1e-9 && best.as_ref().is_none_or(|(b, _, _)| merit > *b) {
                            best = Some((merit, *idx, m.clone()));
                        }
                    }
                }
                match best {
                    Some((_, idx, m)) => {
                        if let Some((effect, log)) = self.try_apply_inc(nl, inc, idx, &m) {
                            self.record(idx, &m, effect);
                            if maintain {
                                self.repair_index(nl, inc, index, &log.touch_set());
                            }
                            self.journal_push(log);
                            true
                        } else {
                            false
                        }
                    }
                    None => false,
                }
            }
        }
    }

    fn record(&mut self, rule_idx: usize, m: &RuleMatch, effect: Effect) {
        obs::rewrites().inc();
        let rule = &self.rules[rule_idx];
        self.refraction.insert(m.fingerprint(rule.name()));
        self.firings.push(Firing {
            rule: rule.name(),
            class: rule.class(),
            note: m.note.clone(),
            effect,
        });
    }

    /// One *sweep*: builds the conflict set once and applies every match
    /// whose components are still untouched in this pass. This amortizes
    /// matching the way Rete does for OPS (§2.2.1: "once a test has been
    /// performed … it is not redone until a change in data occurs") and
    /// keeps local-transformation synthesis time near-linear in design
    /// size — the LSS observation of §2.2.2.
    pub fn sweep(&mut self, nl: &mut Netlist, class: Option<RuleClass>) -> usize {
        self.sweep_inc(nl, &mut None, &mut None, false, class)
    }

    /// [`Engine::sweep`] against a maintained incremental STA and match
    /// index: the conflict set is served from the index, every accepted
    /// firing's touch set is merged, and analysis + index are repaired
    /// once at the end of the pass — so a multi-pass run re-matches
    /// only where the previous pass rewrote.
    fn sweep_inc(
        &mut self,
        nl: &mut Netlist,
        inc: &mut Option<IncrementalSta>,
        index: &mut Option<MatchIndex>,
        maintain: bool,
        class: Option<RuleClass>,
    ) -> usize {
        let _span = milo_trace::span("engine.sweep");
        obs::sweeps().inc();
        // Sweep mode never measures per-firing statistics, so timing
        // analysis exists only for `matches` to read — skip building
        // and refreshing it when no rule in scope looks at it.
        let needs_sta = self
            .rules
            .iter()
            .any(|r| !class.is_some_and(|c| r.class() != c) && r.uses_sta());
        if inc.is_none() && needs_sta {
            *inc = IncrementalSta::new(nl).ok();
        }
        let conflict = self.indexed_conflict(nl, inc, index, class);
        let mut touched: HashSet<ComponentId> = HashSet::new();
        let mut merged = TouchSet::new();
        let mut fired = 0usize;
        for (idx, m) in conflict {
            if touched.contains(&m.site) || m.aux.iter().any(|a| touched.contains(a)) {
                continue;
            }
            // Apply without per-candidate statistics measurement — sweep
            // mode is for always-beneficial local transformations, and the
            // O(design) cost of measuring every firing would defeat the
            // linearity the mode exists to provide.
            let mut tx = Tx::new(nl);
            // Same mid-apply panic isolation as `try_apply_inc`: commit
            // the partial transaction and undo it.
            let result = catch_unwind(AssertUnwindSafe(|| self.rules[idx].apply(&mut tx, &m)));
            let log = tx.commit();
            match result {
                Ok(Ok(())) => {
                    touched.insert(m.site);
                    touched.extend(m.aux.iter().copied());
                    merged.merge(&log.touch_set());
                    self.record(idx, &m, Effect::default());
                    self.journal_push(log);
                    fired += 1;
                }
                Ok(Err(_)) | Err(_) => log.undo(nl),
            }
        }
        if fired > 0 {
            refresh_or_rebuild(inc, nl, &merged);
            if maintain {
                self.repair_index(nl, inc, index, &merged);
            }
        }
        fired
    }

    /// Repeats [`Engine::sweep`] until quiescence or `max_passes`,
    /// keeping one match index alive across passes (built on the first
    /// pass, repaired from each pass's merged touch set after that).
    pub fn run_sweeps(
        &mut self,
        nl: &mut Netlist,
        class: Option<RuleClass>,
        max_passes: usize,
    ) -> usize {
        let mut inc = None;
        let mut index = None;
        let mut total = 0;
        for _ in 0..max_passes {
            let fired = self.sweep_inc(nl, &mut inc, &mut index, true, class);
            if fired == 0 {
                break;
            }
            total += fired;
        }
        total
    }

    /// Runs recognize–act cycles until quiescence or `max_steps`.
    /// Returns the number of rules fired.
    pub fn run(
        &mut self,
        nl: &mut Netlist,
        selection: Selection,
        class: Option<RuleClass>,
        max_steps: usize,
    ) -> usize {
        let mut inc = IncrementalSta::new(nl).ok();
        let mut index = None;
        let mut fired = 0;
        while fired < max_steps && self.step_inc(nl, &mut inc, &mut index, true, selection, class) {
            fired += 1;
        }
        fired
    }
}

/// Refreshes the tracked analysis from a touch set, falling back to a
/// full rebuild (or dropping the analysis entirely, e.g. on a
/// combinational cycle) when the incremental path cannot apply.
pub fn refresh_or_rebuild(inc: &mut Option<IncrementalSta>, nl: &Netlist, ts: &TouchSet) {
    // With no tracker there is nothing to keep fresh — callers that
    // want one (re)acquire it per step, so a failure path here must not
    // pay for a from-scratch analysis that is immediately dropped.
    if let Some(i) = inc.as_mut() {
        if i.refresh(nl, ts).is_err() {
            *inc = IncrementalSta::new(nl).ok();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_netlist::{ComponentKind, GateFn, GenericMacro, PinDir};

    /// Toy rule: remove double inverters (INV feeding INV with fanout 1).
    struct DoubleInv;

    impl Rule for DoubleInv {
        fn name(&self) -> &'static str {
            "double-inverter-elimination"
        }
        fn class(&self) -> RuleClass {
            RuleClass::Logic
        }
        fn matches(&self, ctx: &RuleCtx) -> Vec<RuleMatch> {
            scan_all_components(self, ctx)
        }
        fn locality(&self) -> crate::matcher::Locality {
            crate::matcher::Locality::Local
        }
        fn matches_at(&self, ctx: &RuleCtx, id: ComponentId) -> Vec<RuleMatch> {
            let nl = ctx.nl;
            let is_inv = |c: ComponentId| {
                matches!(
                    nl.component(c).map(|x| &x.kind),
                    Ok(ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)))
                )
            };
            if !is_inv(id) {
                return Vec::new();
            }
            let Some(y) = nl.pin_net(id, "Y") else {
                return Vec::new();
            };
            if nl.fanout(y) != 1 {
                return Vec::new();
            }
            let Some(load) = nl.loads(y).first().copied() else {
                return Vec::new();
            };
            if is_inv(load.component) {
                vec![RuleMatch::at(id).with_aux(vec![load.component])]
            } else {
                Vec::new()
            }
        }
        fn apply(&self, tx: &mut Tx, m: &RuleMatch) -> Result<(), NetlistError> {
            let nl = tx.netlist();
            let input = nl.pin_net(m.site, "A0").expect("matched");
            let second = m.aux[0];
            let out = nl.pin_net(second, "Y").expect("matched");
            tx.remove_component(m.site)?;
            tx.remove_component(second)?;
            tx.move_loads(out, input)?;
            Ok(())
        }
    }

    fn inv_chain(n: usize) -> Netlist {
        let mut nl = Netlist::new("c");
        let mut prev = nl.add_net("a");
        nl.add_port("a", PinDir::In, prev);
        for i in 0..n {
            let g = nl.add_component(
                format!("g{i}"),
                ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)),
            );
            nl.connect_named(g, "A0", prev).unwrap();
            let y = nl.add_net(format!("n{i}"));
            nl.connect_named(g, "Y", y).unwrap();
            prev = y;
        }
        nl.add_port("y", PinDir::Out, prev);
        nl
    }

    #[test]
    fn engine_removes_inverter_pairs() {
        let mut nl = inv_chain(5);
        let mut engine = Engine::new(vec![Box::new(DoubleInv)]);
        let fired = engine.run(&mut nl, Selection::OpsOrder, None, 100);
        assert_eq!(fired, 2, "two pairs removed from a 5-chain");
        assert_eq!(nl.component_count(), 1);
    }

    #[test]
    fn max_gain_selection_fires_too() {
        let mut nl = inv_chain(4);
        let mut engine = Engine::new(vec![Box::new(DoubleInv)]);
        let fired = engine.run(
            &mut nl,
            Selection::MaxGain {
                delay: 1.0,
                area: 1.0,
                power: 0.1,
            },
            None,
            100,
        );
        assert_eq!(fired, 2);
        assert_eq!(nl.component_count(), 0);
        assert!(engine.firings.iter().all(|f| f.effect.area_cost < 0.0));
    }

    #[test]
    fn class_filter_blocks_rules() {
        let mut nl = inv_chain(2);
        let mut engine = Engine::new(vec![Box::new(DoubleInv)]);
        let fired = engine.run(&mut nl, Selection::OpsOrder, Some(RuleClass::Timing), 100);
        assert_eq!(fired, 0);
    }

    #[test]
    fn indexed_run_matches_oracle() {
        // With the oracle on, every conflict set served from the index
        // is asserted equal to a full rescan — across all firings.
        let mut nl = inv_chain(7);
        let mut engine = Engine::new(vec![Box::new(DoubleInv)]);
        engine.set_match_oracle(true);
        let fired = engine.run(&mut nl, Selection::OpsOrder, None, 100);
        assert_eq!(fired, 3);
        assert_eq!(nl.component_count(), 1);
    }

    #[test]
    fn indexed_sweeps_match_oracle() {
        let mut nl = inv_chain(8);
        let mut engine = Engine::new(vec![Box::new(DoubleInv)]);
        engine.set_match_oracle(true);
        let fired = engine.run_sweeps(&mut nl, None, 20);
        assert_eq!(fired, 4);
        assert_eq!(nl.component_count(), 0);
    }

    #[test]
    fn repair_tracks_apply_and_undo() {
        let mut nl = inv_chain(6);
        let engine = Engine::new(vec![Box::new(DoubleInv)]);
        let mut index = engine.build_index(&nl, None, None);
        let full = engine.conflict_set(&nl, None, None);
        assert_eq!(index.matches().len(), full.len());

        // Apply the first match, repair, and check against a rescan.
        let (idx, m) = full[0].clone();
        let mut tx = Tx::new(&mut nl);
        engine.rules()[idx].apply(&mut tx, &m).unwrap();
        let log = tx.commit();
        let ts = log.touch_set();
        index.repair(engine.rules(), &RuleCtx { nl: &nl, sta: None }, &ts);
        assert_eq!(
            index.matches().len(),
            engine.conflict_set(&nl, None, None).len()
        );

        // Undo it; the same touch set describes the reverse repair.
        log.undo(&mut nl);
        index.repair(engine.rules(), &RuleCtx { nl: &nl, sta: None }, &ts);
        assert_eq!(
            index.matches().len(),
            engine.conflict_set(&nl, None, None).len()
        );
        assert!(index.stats().repairs == 2 && index.stats().anchors_rematched > 0);
    }

    /// Multi-driven nets make `IncrementalSta::refresh` bail out;
    /// `refresh_or_rebuild` must fall back to a full rebuild (keeping
    /// the analysis usable for the matcher's rule context) instead of
    /// panicking or going stale.
    #[test]
    fn multi_driven_net_falls_back_to_rebuild() {
        let mut nl = inv_chain(2);
        let mut inc = IncrementalSta::new(&nl).ok();
        assert!(inc.is_some());

        // Second driver onto the chain's middle net.
        let mid = nl.pin_net(nl.component_ids().next().unwrap(), "Y").unwrap();
        let mut tx = Tx::new(&mut nl);
        let extra = tx.add_component(
            "extra_drv",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)),
        );
        let a = tx.netlist().ports()[0].net;
        tx.connect_named(extra, "A0", a).unwrap();
        tx.connect_named(extra, "Y", mid).unwrap();
        let log = tx.commit();
        let ts = log.touch_set();

        refresh_or_rebuild(&mut inc, &nl, &ts);
        let fresh = milo_timing::analyze(&nl).expect("still analyzable");
        assert_eq!(
            inc.as_ref().map(|i| i.sta().worst_delay().to_bits()),
            Some(fresh.worst_delay().to_bits()),
            "fallback rebuild matches a from-scratch analysis"
        );

        // And the index repair path survives the same shape.
        let engine = Engine::new(vec![Box::new(DoubleInv)]);
        let mut index = engine.build_index(&nl, inc.as_ref().map(IncrementalSta::sta), None);
        let mut tx = Tx::new(&mut nl);
        tx.disconnect(milo_netlist::PinRef::new(extra, 1)).unwrap();
        let log2 = tx.commit();
        index.repair(
            engine.rules(),
            &RuleCtx { nl: &nl, sta: None },
            &log2.touch_set(),
        );
        let full = engine.conflict_set(&nl, None, None);
        assert_eq!(index.matches().len(), full.len());
    }

    /// A rule that mutates the netlist mid-apply and then panics — the
    /// worst-case fault shape: partial work inside an open transaction.
    struct MidApplyPanic;

    impl Rule for MidApplyPanic {
        fn name(&self) -> &'static str {
            "mid-apply-panic"
        }
        fn class(&self) -> RuleClass {
            RuleClass::Logic
        }
        fn matches(&self, ctx: &RuleCtx) -> Vec<RuleMatch> {
            ctx.nl.component_ids().take(1).map(RuleMatch::at).collect()
        }
        fn apply(&self, tx: &mut Tx, m: &RuleMatch) -> Result<(), NetlistError> {
            tx.add_net("partial_work");
            tx.remove_component(m.site)?;
            panic!("rule fault after partial mutation");
        }
    }

    /// Panicking mid-apply must behave exactly like a rejected rewrite:
    /// the partial transaction is undone, nothing fires, the engine and
    /// the process survive.
    #[test]
    fn rule_panic_mid_apply_is_isolated_and_undone() {
        let mut nl = inv_chain(3);
        let before = format!("{nl:?}");
        let mut engine = Engine::new(vec![Box::new(MidApplyPanic)]);
        let fired = engine.run(&mut nl, Selection::OpsOrder, None, 10);
        assert_eq!(fired, 0);
        assert_eq!(format!("{nl:?}"), before, "partial work rolled back");

        let swept = engine.sweep(&mut nl, None);
        assert_eq!(swept, 0);
        assert_eq!(format!("{nl:?}"), before, "sweep path rolled back too");
    }

    /// The journal records every committed firing; rolling back to a
    /// mark restores the exact netlist at that mark.
    #[test]
    fn journal_rollback_restores_marked_state() {
        let mut nl = inv_chain(8);
        let mut engine = Engine::new(vec![Box::new(DoubleInv)]);
        engine.enable_journal();

        let mark0 = engine.journal_mark();
        assert_eq!(mark0, 0);
        let at_mark0 = format!("{nl:?}");

        assert!(engine.step(&mut nl, Selection::OpsOrder, None));
        let mark1 = engine.journal_mark();
        assert_eq!(mark1, 1);
        let at_mark1 = format!("{nl:?}");

        let fired = engine.run_sweeps(&mut nl, None, 20);
        assert!(fired > 0);
        assert_eq!(engine.journal_mark(), 1 + fired);

        // Unwind to the intermediate mark, then all the way out.
        assert_eq!(engine.rollback_to(&mut nl, mark1), fired);
        assert_eq!(format!("{nl:?}"), at_mark1);
        assert_eq!(engine.rollback_to(&mut nl, mark0), 1);
        assert_eq!(format!("{nl:?}"), at_mark0);

        // The journal is empty now; taking it disables journaling.
        assert!(engine.take_journal().is_empty());
        assert!(engine.step(&mut nl, Selection::OpsOrder, None));
        assert_eq!(engine.journal_mark(), 0, "journaling off after take");
    }

    #[test]
    fn effect_merit() {
        let e = Effect {
            delay_gain: 2.0,
            area_cost: 1.0,
            power_cost: 0.5,
        };
        assert!(e.merit(1.0, 0.1, 0.1) > 0.0);
        assert!(e.merit(0.0, 1.0, 1.0) < 0.0);
    }
}
