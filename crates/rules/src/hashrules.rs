//! The truth-table hash rules of strategy 4 (§4.1.2, Fig. 10).
//!
//! "Lookup in the hash table is accomplished through a key that is the
//! truth table entry for a particular function. The hash table is
//! typically limited to entries of up to five variables, making each hash
//! table key a maximum of 32 bits — a common computer word." One table
//! entry covers every *structural* implementation of the same function —
//! Fig. 10's two mux circuits need two pattern rules but only one hash
//! entry.

use milo_logic::TruthTable;
#[cfg(test)]
use milo_netlist::GateFn;
use milo_netlist::{CellFunction, ComponentKind, NetId, Netlist, PinDir, TechCell};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

/// A replacement candidate stored under a truth-table key.
#[derive(Clone, Debug)]
pub struct HashEntry {
    /// The cell that implements the function.
    pub cell: TechCell,
    /// Input permutation: cell input pin `i` connects to cone input
    /// `perm[i]`.
    pub perm: Vec<u8>,
}

/// The hash-rule table: 32-bit truth-table keys → replacement cells.
#[derive(Clone, Debug, Default)]
pub struct HashRuleTable {
    map: HashMap<(u8, u32), Vec<HashEntry>>,
}

/// The single-output combinational function of a cell, if it has one of
/// at most five inputs.
pub fn cell_truth_table(cell: &TechCell) -> Option<TruthTable> {
    match &cell.function {
        CellFunction::Gate(f, n) if *n <= 5 => {
            let f = *f;
            let n = *n;
            Some(TruthTable::from_fn(n, move |row| f.eval(row as u64, n)))
        }
        CellFunction::Table(tt) if tt.vars() <= 5 => Some(*tt),
        CellFunction::Mux { selects } if (1 << selects) + selects <= 5 => {
            let s = *selects;
            let data = 1u32 << s;
            Some(TruthTable::from_fn((data + s as u32) as u8, move |row| {
                let sel = (row >> data) & ((1 << s) - 1);
                row >> sel & 1 == 1
            }))
        }
        _ => None,
    }
}

impl HashRuleTable {
    /// Builds the table from a technology library: every ≤ 5-input
    /// single-output combinational cell is entered under the keys of all
    /// input permutations of its truth table, so lookup is a single probe
    /// regardless of how the matched cone orders its inputs.
    pub fn from_library(lib: &crate::LibraryRef<'_>) -> Self {
        let mut table = Self::default();
        for cell in lib.cells {
            let Some(tt) = cell_truth_table(cell) else {
                continue;
            };
            let n = tt.vars();
            permutations(n, &mut (0..n).collect::<Vec<u8>>(), 0, &mut |perm| {
                let permuted = tt.permute(perm);
                let key = permuted.key32().expect("≤5 vars");
                let entries = table.map.entry((n, key)).or_default();
                // Avoid exact duplicates (symmetric functions generate
                // identical permuted tables).
                if !entries
                    .iter()
                    .any(|e| e.cell.name == cell.name && e.perm == perm)
                    && entries.iter().all(|e| e.cell.name != cell.name)
                {
                    entries.push(HashEntry {
                        cell: cell.clone(),
                        perm: perm.to_vec(),
                    });
                }
            });
        }
        table
    }

    /// [`HashRuleTable::from_library`] through a process-wide memo cache.
    ///
    /// Building the table enumerates every input permutation of every
    /// ≤ 5-input cell — ~100 µs per library — and the result is a pure
    /// function of the cell list, so synthesis pipelines that construct
    /// fresh `Milo` instances per run share one build via a fingerprint
    /// of the cells.
    pub fn cached(lib: &crate::LibraryRef<'_>) -> Arc<Self> {
        static CACHE: OnceLock<Mutex<HashMap<u64, Arc<HashRuleTable>>>> = OnceLock::new();
        let mut h = std::collections::hash_map::DefaultHasher::new();
        lib.cells.len().hash(&mut h);
        for cell in lib.cells {
            // Every field of the cell participates: entries carry full
            // TechCell clones, so libraries differing in *any* attribute
            // (pin skews, fanout limits, power grade, family, function)
            // must not share a table.
            cell.name.hash(&mut h);
            cell.family.hash(&mut h);
            cell.area.to_bits().hash(&mut h);
            cell.delay.to_bits().hash(&mut h);
            cell.load_delay.to_bits().hash(&mut h);
            cell.power.to_bits().hash(&mut h);
            cell.max_fanout.hash(&mut h);
            (cell.level as u8).hash(&mut h);
            cell.pin_delay.len().hash(&mut h);
            for d in &cell.pin_delay {
                d.to_bits().hash(&mut h);
            }
            match cell_truth_table(cell) {
                Some(tt) => {
                    tt.vars().hash(&mut h);
                    tt.key32().hash(&mut h);
                }
                // No compact truth table (MSI/sequential): hash the
                // function's debug form instead.
                None => format!("{:?}", cell.function).hash(&mut h),
            }
        }
        let key = h.finish();
        let cache = CACHE.get_or_init(Default::default);
        let mut guard = cache.lock().expect("hash-rule cache poisoned");
        if let Some(t) = guard.get(&key) {
            return Arc::clone(t);
        }
        let t = Arc::new(Self::from_library(lib));
        guard.insert(key, Arc::clone(&t));
        t
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Single-probe lookup: all replacement cells implementing `tt`.
    pub fn lookup(&self, tt: &TruthTable) -> &[HashEntry] {
        let Some(key) = tt.key32() else { return &[] };
        self.map.get(&(tt.vars(), key)).map_or(&[], Vec::as_slice)
    }

    /// The smallest-area replacement for `tt` — used by the area critic
    /// on paths with timing slack.
    pub fn best_for_area(&self, tt: &TruthTable) -> Option<&HashEntry> {
        self.lookup(tt)
            .iter()
            .min_by(|a, b| a.cell.area.partial_cmp(&b.cell.area).expect("not NaN"))
    }

    /// The fastest replacement for `tt`, optionally bounded by area and
    /// power budgets (strategy 4 demands "no cost"; strategy 6 relaxes
    /// the bound).
    pub fn best_for_delay(
        &self,
        tt: &TruthTable,
        max_area: Option<f64>,
        max_power: Option<f64>,
    ) -> Option<&HashEntry> {
        self.lookup(tt)
            .iter()
            .filter(|e| max_area.is_none_or(|a| e.cell.area <= a + 1e-9))
            .filter(|e| max_power.is_none_or(|p| e.cell.power <= p + 1e-9))
            .min_by(|a, b| a.cell.delay.partial_cmp(&b.cell.delay).expect("not NaN"))
    }
}

fn permutations(n: u8, scratch: &mut Vec<u8>, k: usize, f: &mut impl FnMut(&[u8])) {
    if k == n as usize {
        f(scratch);
        return;
    }
    for i in k..n as usize {
        scratch.swap(k, i);
        permutations(n, scratch, k + 1, f);
        scratch.swap(k, i);
    }
}

/// Borrow-view of a library's cells (avoids a dependency on
/// `milo-techmap` from this crate).
pub struct LibraryRef<'a> {
    /// The library's cells.
    pub cells: &'a [TechCell],
}

/// Extracts the local single-output function of a fanin cone rooted at a
/// component output, up to `max_inputs` distinct input nets. Returns the
/// truth table and the cone's input nets (in variable order) plus the
/// interior components.
///
/// Cones stop at sequential elements, ports and components that are not
/// single-output combinational cells.
pub fn extract_cone(
    nl: &Netlist,
    root: milo_netlist::ComponentId,
    max_inputs: usize,
) -> Option<(TruthTable, Vec<NetId>, Vec<milo_netlist::ComponentId>)> {
    extract_cone_min(nl, root, max_inputs, 0)
}

/// [`extract_cone`] that bails out — *before* the exhaustive cone
/// simulation — when the cone has fewer than `min_interior` components.
/// The cone-merge strategies all require ≥ 2 interior cells, and on a
/// quiesced netlist most cones are single cells, so skipping the
/// truth-table evaluation for them removes most of the scan cost.
pub fn extract_cone_min(
    nl: &Netlist,
    root: milo_netlist::ComponentId,
    max_inputs: usize,
    min_interior: usize,
) -> Option<(TruthTable, Vec<NetId>, Vec<milo_netlist::ComponentId>)> {
    let comp = nl.component(root).ok()?;
    if comp.kind.is_sequential() {
        return None;
    }
    let out_pins: Vec<_> = comp.output_pins().collect();
    if out_pins.len() != 1 {
        return None;
    }
    // Gather the cone: DFS from the root, stopping at boundaries.
    let mut interior = vec![root];
    let mut inputs: Vec<NetId> = Vec::new();
    let mut stack: Vec<NetId> = comp
        .pins
        .iter()
        .filter(|p| p.dir == PinDir::In)
        .filter_map(|p| p.net)
        .collect();
    let mut seen_nets: Vec<NetId> = stack.clone();
    while let Some(net) = stack.pop() {
        let expandable = match nl.driver(net) {
            None => None,
            Some(drv) => {
                let c = nl.component(drv.component).ok()?;
                let single_out = c.output_pins().count() == 1;
                let comb = !c.kind.is_sequential();
                let small = matches!(&c.kind, ComponentKind::Tech(_) | ComponentKind::Generic(_));
                // Only expand gates whose *only* fanout is inside the cone
                // (duplication would change cost accounting).
                let exclusive = nl.fanout(net) == 1;
                (single_out && comb && small && exclusive && !interior.contains(&drv.component))
                    .then_some(drv.component)
            }
        };
        match expandable {
            Some(c) if interior.len() < 8 => {
                interior.push(c);
                let comp = nl.component(c).ok()?;
                for p in comp.pins.iter().filter(|p| p.dir == PinDir::In) {
                    if let Some(n) = p.net {
                        if !seen_nets.contains(&n) {
                            seen_nets.push(n);
                            stack.push(n);
                        }
                    }
                }
            }
            _ => {
                if !inputs.contains(&net) {
                    inputs.push(net);
                }
            }
        }
    }
    if inputs.len() > max_inputs || inputs.is_empty() || interior.len() < min_interior {
        return None;
    }
    // Evaluate the cone exhaustively.
    let nvars = inputs.len() as u8;
    let root_out_net = comp.pins[out_pins[0] as usize].net?;
    let tt = TruthTable::from_fn(nvars, |row| {
        eval_cone(nl, &interior, &inputs, row, root_out_net)
    });
    Some((tt, inputs, interior))
}

/// Evaluates the cone for one input assignment by topological relaxation
/// over the interior components.
fn eval_cone(
    nl: &Netlist,
    interior: &[milo_netlist::ComponentId],
    inputs: &[NetId],
    row: u32,
    root_out: NetId,
) -> bool {
    let mut values: HashMap<NetId, bool> = HashMap::new();
    for (i, net) in inputs.iter().enumerate() {
        values.insert(*net, row >> i & 1 == 1);
    }
    // Relax until stable (cones are tiny).
    for _ in 0..interior.len() + 1 {
        for &c in interior {
            let Ok(comp) = nl.component(c) else { continue };
            let ins: Vec<bool> = comp
                .pins
                .iter()
                .filter(|p| p.dir == PinDir::In)
                .map(|p| p.net.and_then(|n| values.get(&n).copied()).unwrap_or(false))
                .collect();
            let outs = milo_netlist::eval_component(&comp.kind, &ins, 0);
            for (p, out) in comp.pins.iter().filter(|p| p.dir == PinDir::Out).zip(outs) {
                if let Some(n) = p.net {
                    values.insert(n, out);
                }
            }
        }
    }
    values.get(&root_out).copied().unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_netlist::{GenericMacro, PowerLevel};

    fn mk_cell(name: &str, f: GateFn, n: u8, delay: f64, area: f64) -> TechCell {
        TechCell {
            name: name.into(),
            family: "t".into(),
            function: CellFunction::Gate(f, n),
            area,
            delay,
            pin_delay: Vec::new(),
            load_delay: 0.1,
            power: 0.5,
            max_fanout: 8,
            level: PowerLevel::Standard,
        }
    }

    fn mux_cell() -> TechCell {
        TechCell {
            name: "MUX2TO1".into(),
            family: "t".into(),
            function: CellFunction::Mux { selects: 1 },
            area: 1.6,
            delay: 0.9,
            pin_delay: Vec::new(),
            load_delay: 0.1,
            power: 0.9,
            max_fanout: 8,
            level: PowerLevel::Standard,
        }
    }

    #[test]
    fn fig10_one_entry_covers_both_structures() {
        // Two structurally different 1-bit mux implementations produce the
        // same truth table, hence a single hash probe finds MUX2TO1.
        let cells = vec![mux_cell()];
        let table = HashRuleTable::from_library(&LibraryRef { cells: &cells });

        // Structure 1: (D0 & !S) | (D1 & S), vars: 0=D0, 1=D1, 2=S.
        let s1 = TruthTable::from_fn(3, |r| {
            let d0 = r & 1 == 1;
            let d1 = r >> 1 & 1 == 1;
            let s = r >> 2 & 1 == 1;
            if s {
                d1
            } else {
                d0
            }
        });
        // Structure 2: same function via (D0|S)&(D1|!S) ... evaluated it
        // is the identical table, which is the point of Fig. 10.
        #[allow(clippy::nonminimal_bool)] // redundant consensus term is the point
        let s2 = TruthTable::from_fn(3, |r| {
            let d0 = r & 1 == 1;
            let d1 = r >> 1 & 1 == 1;
            let s = r >> 2 & 1 == 1;
            (d0 || s) && (d1 || !s) && (d0 || d1)
        });
        assert_eq!(s1, s2);
        let hits = table.lookup(&s1);
        assert!(!hits.is_empty(), "mux function found by hash lookup");
        assert_eq!(hits[0].cell.name, "MUX2TO1");
    }

    #[test]
    fn permuted_inputs_still_hit() {
        let cells = vec![mk_cell("AND2", GateFn::And, 2, 0.5, 1.0)];
        let table = HashRuleTable::from_library(&LibraryRef { cells: &cells });
        let tt = TruthTable::from_fn(2, |r| r == 3);
        assert!(!table.lookup(&tt).is_empty());
    }

    #[test]
    fn best_for_delay_respects_budgets() {
        let cells = vec![
            mk_cell("AND2_SLOW", GateFn::And, 2, 1.0, 1.0),
            mk_cell("AND2_FAST", GateFn::And, 2, 0.4, 3.0),
        ];
        let table = HashRuleTable::from_library(&LibraryRef { cells: &cells });
        let tt = TruthTable::from_fn(2, |r| r == 3);
        let unbounded = table.best_for_delay(&tt, None, None).unwrap();
        assert_eq!(unbounded.cell.name, "AND2_FAST");
        let bounded = table.best_for_delay(&tt, Some(1.5), None).unwrap();
        assert_eq!(bounded.cell.name, "AND2_SLOW");
    }

    #[test]
    fn extract_cone_of_two_gates() {
        // y = (a & b) | c as AND2 -> OR2.
        let mut nl = Netlist::new("c");
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        let c = nl.add_net("c");
        let ab = nl.add_net("ab");
        let y = nl.add_net("y");
        let g1 = nl.add_component(
            "g1",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::And, 2)),
        );
        let g2 = nl.add_component(
            "g2",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Or, 2)),
        );
        nl.connect_named(g1, "A0", a).unwrap();
        nl.connect_named(g1, "A1", b).unwrap();
        nl.connect_named(g1, "Y", ab).unwrap();
        nl.connect_named(g2, "A0", ab).unwrap();
        nl.connect_named(g2, "A1", c).unwrap();
        nl.connect_named(g2, "Y", y).unwrap();
        nl.add_port("a", PinDir::In, a);
        nl.add_port("b", PinDir::In, b);
        nl.add_port("c", PinDir::In, c);
        nl.add_port("y", PinDir::Out, y);

        let (tt, inputs, interior) = extract_cone(&nl, g2, 5).expect("cone extracted");
        assert_eq!(interior.len(), 2);
        assert_eq!(inputs.len(), 3);
        // Verify against the expected function under the cone's own
        // variable ordering.
        for row in 0..8u32 {
            let val = |net: NetId| -> bool {
                let idx = inputs.iter().position(|&n| n == net).unwrap();
                row >> idx & 1 == 1
            };
            assert_eq!(tt.eval(row), (val(a) && val(b)) || val(c), "row {row}");
        }
    }

    #[test]
    fn cone_not_extracted_past_fanout() {
        // The AND's output also feeds a port: cone must stop there.
        let mut nl = Netlist::new("c");
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        let c = nl.add_net("c");
        let ab = nl.add_net("ab");
        let y = nl.add_net("y");
        let g1 = nl.add_component(
            "g1",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::And, 2)),
        );
        let g2 = nl.add_component(
            "g2",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Or, 2)),
        );
        nl.connect_named(g1, "A0", a).unwrap();
        nl.connect_named(g1, "A1", b).unwrap();
        nl.connect_named(g1, "Y", ab).unwrap();
        nl.connect_named(g2, "A0", ab).unwrap();
        nl.connect_named(g2, "A1", c).unwrap();
        nl.connect_named(g2, "Y", y).unwrap();
        nl.add_port("a", PinDir::In, a);
        nl.add_port("b", PinDir::In, b);
        nl.add_port("c", PinDir::In, c);
        nl.add_port("ab", PinDir::Out, ab);
        nl.add_port("y", PinDir::Out, y);
        let (_, inputs, interior) = extract_cone(&nl, g2, 5).expect("cone extracted");
        assert_eq!(interior.len(), 1, "AND not absorbed (its net has fanout 2)");
        assert_eq!(inputs.len(), 2);
    }
}
