//! SOCRATES-style state-space search with metarules (§2.2.2).
//!
//! The optimizer builds a depth-first search tree whose nodes are circuit
//! states and whose arcs are rule applications; backtracking uses the undo
//! log. Metarule parameters bound the tree: `B` (breadth), `Dmax` (depth),
//! `Dapp` (how much of the best sequence is applied), `N` (neighborhood),
//! and `Δcost` (maximum cost increase tolerated per application). Dynamic
//! metarules vary the lookahead depth by rule class — "greater lookahead
//! is required for area-saving rules than general rules … little or no
//! lookahead is required for the most powerful rules".

use crate::engine::{Engine, RuleClass, RuleMatch, Selection};
use milo_netlist::{ComponentId, Netlist};
use milo_timing::{analyze, statistics};
use std::collections::{HashMap, HashSet, VecDeque};

/// The SOCRATES metarule control parameters (§2.2.2).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MetaParams {
    /// `B`: maximum sons per search node.
    pub breadth: usize,
    /// `Dmax`: maximum depth of the search tree.
    pub depth: usize,
    /// `Dapp`: how many rules of the best sequence are applied.
    pub apply_depth: usize,
    /// `N`: restrict rule applications to components within this path
    /// distance of the previous firing (`None` = unrestricted).
    pub neighborhood: Option<usize>,
    /// `Δcost`: maximum tolerated cost increase for a single application.
    pub max_cost_increase: f64,
    /// `R`: weight of area in the cost function.
    pub area_weight: f64,
    /// `S`: weight of delay in the cost function.
    pub delay_weight: f64,
}

impl Default for MetaParams {
    fn default() -> Self {
        Self {
            breadth: 3,
            depth: 3,
            apply_depth: 1,
            neighborhood: None,
            max_cost_increase: 5.0,
            area_weight: 1.0,
            delay_weight: 1.0,
        }
    }
}

/// Counters from a search run.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct SearchStats {
    /// Search-tree nodes visited.
    pub states_explored: usize,
    /// Rules actually applied to the design.
    pub rules_fired: usize,
    /// Candidate (rule, match) evaluations.
    pub evaluations: usize,
}

fn cost_of(nl: &Netlist, p: &MetaParams) -> f64 {
    match statistics(nl) {
        Ok(s) => p.area_weight * s.area + p.delay_weight * s.delay,
        Err(_) => f64::MAX,
    }
}

/// BFS distance between components over the net graph (for `N`).
fn within_distance(nl: &Netlist, from: ComponentId, to: ComponentId, limit: usize) -> bool {
    if from == to {
        return true;
    }
    let mut seen: HashSet<ComponentId> = HashSet::new();
    let mut queue: VecDeque<(ComponentId, usize)> = VecDeque::new();
    queue.push_back((from, 0));
    seen.insert(from);
    while let Some((c, d)) = queue.pop_front() {
        if d >= limit {
            continue;
        }
        let Ok(comp) = nl.component(c) else { continue };
        for pin in &comp.pins {
            let Some(net) = pin.net else { continue };
            let Ok(n) = nl.net(net) else { continue };
            for p in &n.connections {
                if seen.insert(p.component) {
                    if p.component == to {
                        return true;
                    }
                    queue.push_back((p.component, d + 1));
                }
            }
        }
    }
    false
}

/// Lookahead optimization loop. Returns search statistics; the netlist is
/// optimized in place.
///
/// With `dynamic_metarules` the per-branch depth shrinks for high-merit
/// ("powerful") candidates and non-area rules, reproducing the CoBa85
/// observation the paper cites: metarules roughly halve the search cost
/// while keeping the area result.
pub fn lookahead_optimize(
    nl: &mut Netlist,
    engine: &mut Engine,
    params: MetaParams,
    dynamic_metarules: bool,
    max_firings: usize,
) -> SearchStats {
    let mut stats = SearchStats::default();
    let mut last_site: Option<ComponentId> = None;
    while stats.rules_fired < max_firings {
        let (delta, seq) = search(
            nl,
            engine,
            params,
            dynamic_metarules,
            params.depth,
            last_site,
            &mut stats,
        );
        if delta >= -1e-9 || seq.is_empty() {
            break;
        }
        // Apply the first Dapp rules of the best sequence.
        let mut applied = 0;
        for (rule_idx, m) in seq.into_iter().take(params.apply_depth.max(1)) {
            match engine.try_apply(nl, rule_idx, &m) {
                Some((_, _log)) => {
                    applied += 1;
                    stats.rules_fired += 1;
                    last_site = Some(m.site);
                }
                None => break,
            }
        }
        if applied == 0 {
            break;
        }
    }
    stats
}

/// DFS returning (best cost delta, rule sequence achieving it). The
/// netlist is restored before returning.
fn search(
    nl: &mut Netlist,
    engine: &Engine,
    params: MetaParams,
    dynamic: bool,
    depth: usize,
    last_site: Option<ComponentId>,
    stats: &mut SearchStats,
) -> (f64, Vec<(usize, RuleMatch)>) {
    stats.states_explored += 1;
    if depth == 0 {
        return (0.0, Vec::new());
    }
    let base_cost = cost_of(nl, &params);
    let sta = analyze(nl).ok();
    let mut conflict = engine.conflict_set(nl, sta.as_ref(), None);
    if let (Some(n), Some(site)) = (params.neighborhood, last_site) {
        conflict.retain(|(_, m)| within_distance(nl, site, m.site, n));
    }
    // Rank candidates by immediate merit; keep the best B.
    let mut ranked: Vec<(f64, usize, RuleMatch)> = Vec::new();
    for (idx, m) in conflict {
        stats.evaluations += 1;
        let Some((effect, log)) = engine.try_apply(nl, idx, &m) else {
            continue;
        };
        log.undo(nl);
        let merit = effect.merit(params.delay_weight, params.area_weight, 0.0);
        ranked.push((merit, idx, m));
    }
    ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("merits are not NaN"));
    ranked.truncate(params.breadth);

    let mut best: (f64, Vec<(usize, RuleMatch)>) = (0.0, Vec::new());
    for (merit, idx, m) in ranked {
        let Some((_, log)) = engine.try_apply(nl, idx, &m) else {
            continue;
        };
        let new_cost = cost_of(nl, &params);
        let delta = new_cost - base_cost;
        if delta > params.max_cost_increase {
            // "If the resulting circuit is deemed unacceptable, SOCRATES
            // backtracks to the node's father."
            log.undo(nl);
            continue;
        }
        // Dynamic metarules: powerful rules need little lookahead; area
        // rules warrant the full depth.
        let child_depth = if dynamic {
            let class = engine.rules()[idx].class();
            if merit > 1.0 {
                1 // powerful rule: no further lookahead
            } else if class == RuleClass::Area {
                depth
            } else {
                depth / 2 + 1
            }
        } else {
            depth
        };
        let (future, mut seq) = search(
            nl,
            engine,
            params,
            dynamic,
            child_depth - 1,
            Some(m.site),
            stats,
        );
        log.undo(nl);
        let total = delta + future;
        if total < best.0 {
            seq.insert(0, (idx, m));
            best = (total, seq);
        }
    }
    best
}

/// Greedy (no-lookahead) optimization with the same cost function — the
/// baseline the paper compares lookahead against. Returns rules fired.
pub fn greedy_optimize(
    nl: &mut Netlist,
    engine: &mut Engine,
    params: MetaParams,
    max_firings: usize,
) -> usize {
    engine.run(
        nl,
        Selection::MaxGain {
            delay: params.delay_weight,
            area: params.area_weight,
            power: 0.0,
        },
        None,
        max_firings,
    )
}

/// Distances used by tests and the neighborhood metarule.
pub fn component_distances(
    nl: &Netlist,
    from: ComponentId,
    limit: usize,
) -> HashMap<ComponentId, usize> {
    let mut dist = HashMap::new();
    let mut queue = VecDeque::new();
    dist.insert(from, 0usize);
    queue.push_back(from);
    while let Some(c) = queue.pop_front() {
        let d = dist[&c];
        if d >= limit {
            continue;
        }
        let Ok(comp) = nl.component(c) else { continue };
        for pin in &comp.pins {
            let Some(net) = pin.net else { continue };
            let Ok(n) = nl.net(net) else { continue };
            for p in &n.connections {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(p.component) {
                    e.insert(d + 1);
                    queue.push_back(p.component);
                }
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Rule, RuleCtx};
    use crate::undo::Tx;
    use milo_netlist::{ComponentKind, GateFn, GenericMacro, NetlistError, PinDir};

    /// Rule A: replace a BUF with two INVs (cost increase, enables B).
    struct BufToInvs;
    impl Rule for BufToInvs {
        fn name(&self) -> &'static str {
            "buf-to-inverters"
        }
        fn class(&self) -> RuleClass {
            RuleClass::Area
        }
        fn matches(&self, ctx: &RuleCtx) -> Vec<RuleMatch> {
            ctx.nl
                .component_ids()
                .filter(|&id| {
                    matches!(
                        ctx.nl.component(id).map(|c| &c.kind),
                        Ok(ComponentKind::Generic(GenericMacro::Gate(GateFn::Buf, 1)))
                    )
                })
                .map(RuleMatch::at)
                .collect()
        }
        fn apply(&self, tx: &mut Tx, m: &RuleMatch) -> Result<(), NetlistError> {
            let a = tx.netlist().pin_net(m.site, "A0").expect("buf input");
            let y = tx.netlist().pin_net(m.site, "Y").expect("buf output");
            tx.remove_component(m.site)?;
            let i1 = tx.add_component(
                "li1",
                ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)),
            );
            let i2 = tx.add_component(
                "li2",
                ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)),
            );
            let mid = tx.add_net("lmid");
            tx.connect_named(i1, "A0", a)?;
            tx.connect_named(i1, "Y", mid)?;
            tx.connect_named(i2, "A0", mid)?;
            tx.connect_named(i2, "Y", y)?;
            Ok(())
        }
    }

    /// Rule B: a pair of chained inverters disappears entirely when the
    /// first drives only the second.
    struct InvPair;
    impl Rule for InvPair {
        fn name(&self) -> &'static str {
            "inverter-pair"
        }
        fn class(&self) -> RuleClass {
            RuleClass::Logic
        }
        fn matches(&self, ctx: &RuleCtx) -> Vec<RuleMatch> {
            let nl = ctx.nl;
            let mut out = Vec::new();
            for id in nl.component_ids() {
                let Ok(c) = nl.component(id) else { continue };
                if !matches!(
                    c.kind,
                    ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1))
                ) {
                    continue;
                }
                let Some(y) = nl.pin_net(id, "Y") else {
                    continue;
                };
                if nl.fanout(y) != 1 {
                    continue;
                }
                let Some(load) = nl.loads(y).first().copied() else {
                    continue;
                };
                let Ok(n) = nl.component(load.component) else {
                    continue;
                };
                if matches!(
                    n.kind,
                    ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1))
                ) {
                    out.push(RuleMatch::at(id).with_aux(vec![load.component]));
                }
            }
            out
        }
        fn apply(&self, tx: &mut Tx, m: &RuleMatch) -> Result<(), NetlistError> {
            let input = tx.netlist().pin_net(m.site, "A0").expect("matched");
            let out = tx.netlist().pin_net(m.aux[0], "Y").expect("matched");
            tx.remove_component(m.site)?;
            tx.remove_component(m.aux[0])?;
            tx.move_loads(out, input)?;
            Ok(())
        }
    }

    fn buf_chain(n: usize) -> Netlist {
        let mut nl = Netlist::new("b");
        let mut prev = nl.add_net("a");
        nl.add_port("a", PinDir::In, prev);
        for i in 0..n {
            let g = nl.add_component(
                format!("b{i}"),
                ComponentKind::Generic(GenericMacro::Gate(GateFn::Buf, 1)),
            );
            nl.connect_named(g, "A0", prev).unwrap();
            let y = nl.add_net(format!("n{i}"));
            nl.connect_named(g, "Y", y).unwrap();
            prev = y;
        }
        nl.add_port("y", PinDir::Out, prev);
        nl
    }

    #[test]
    fn lookahead_finds_two_step_win() {
        // Greedy can't improve a BUF chain (BUF→2×INV is an immediate
        // loss), but lookahead sees INV-pair elimination afterwards.
        let mut nl = buf_chain(2);
        let mut engine = Engine::new(vec![Box::new(BufToInvs), Box::new(InvPair)]);
        let greedy_fired = greedy_optimize(&mut nl.clone(), &mut engine, MetaParams::default(), 50);
        assert_eq!(greedy_fired, 0, "greedy sees no immediate gain");

        let mut engine2 = Engine::new(vec![Box::new(BufToInvs), Box::new(InvPair)]);
        let params = MetaParams {
            depth: 3,
            breadth: 4,
            apply_depth: 2,
            ..MetaParams::default()
        };
        let stats = lookahead_optimize(&mut nl, &mut engine2, params, false, 50);
        assert!(stats.rules_fired > 0, "lookahead fires: {stats:?}");
        // Each BUF (area ~0.5, delay 0.3) became nothing.
        assert_eq!(nl.component_count(), 0, "{nl:?}");
    }

    #[test]
    fn metarules_reduce_exploration() {
        let run = |dynamic: bool| -> (SearchStats, usize) {
            let mut nl = buf_chain(4);
            let mut engine = Engine::new(vec![Box::new(BufToInvs), Box::new(InvPair)]);
            let params = MetaParams {
                depth: 4,
                breadth: 4,
                apply_depth: 2,
                ..MetaParams::default()
            };
            let stats = lookahead_optimize(&mut nl, &mut engine, params, dynamic, 60);
            (stats, nl.component_count())
        };
        let (full, full_count) = run(false);
        let (meta, meta_count) = run(true);
        assert!(meta.states_explored <= full.states_explored);
        assert_eq!(full_count, meta_count, "same final quality");
    }

    #[test]
    fn neighborhood_limits_candidates() {
        let nl = buf_chain(6);
        let first = nl.component_ids().next().unwrap();
        let d = component_distances(&nl, first, 2);
        // Within 2 hops of the first buffer: itself + 2 neighbors.
        assert!(d.len() <= 3);
        let last = nl.component_ids().last().unwrap();
        assert!(!within_distance(&nl, first, last, 2));
        assert!(within_distance(&nl, first, last, 10));
    }
}
