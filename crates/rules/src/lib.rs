//! # milo-rules
//!
//! The expert-system machinery of the MILO reproduction (§2.2):
//!
//! * [`Rule`] / [`Engine`] — an OPS-style recognize–act cycle with
//!   conflict-set construction, refraction, specificity ordering and
//!   Logic-Consultant-style maximum-gain selection (§2.2.1);
//! * [`Tx`] / [`UndoLog`] — transactional netlist mutation with the change
//!   log SOCRATES uses for backtracking (§2.2.2);
//! * [`lookahead_optimize`] — the SOCRATES search tree with the metarule
//!   parameters B, Dmax, Dapp, N and Δcost, plus dynamic metarules;
//! * [`HashRuleTable`] — the 32-bit truth-table hash rules of strategy 4
//!   (Fig. 10), with cone extraction ([`extract_cone`]).
//!
//! # Performance architecture
//!
//! The engine's accept/undo loop maintains an incremental STA
//! ([`milo_timing::IncrementalSta`]) instead of re-analyzing the whole
//! netlist per candidate: [`UndoLog::touch_set`] reports exactly which
//! components and nets a transaction (or its undo) touched, and the
//! analysis re-propagates only that fan-out cone.
//! [`HashRuleTable::cached`] memoizes table construction process-wide,
//! and [`extract_cone_min`] skips the exhaustive cone simulation for
//! cones below the caller's minimum size.
//!
//! Conflict-set matching is incremental too: [`MatchIndex`] keeps a
//! Rete-style per-rule match memory keyed by anchor component, repaired
//! from [`UndoLog::touch_set`] after every committed rewrite instead of
//! rescanning every rule against every component ([`Rule::locality`] /
//! [`Rule::matches_at`] define the repair contract; the full-rescan
//! [`Engine::conflict_set`] remains as the `MILO_MATCH_ORACLE` debug
//! oracle). See `docs/PERFORMANCE.md`.

#![warn(missing_docs)]

mod engine;
mod hashrules;
mod matcher;
mod search;
mod undo;

pub use engine::{
    refresh_or_rebuild, scan_all_components, Effect, Engine, Firing, Rule, RuleClass, RuleCtx,
    RuleMatch, Selection,
};
pub use hashrules::{
    cell_truth_table, extract_cone, extract_cone_min, HashEntry, HashRuleTable, LibraryRef,
};
pub use matcher::{Locality, MatchIndex, RepairStats};
pub use search::{
    component_distances, greedy_optimize, lookahead_optimize, MetaParams, SearchStats,
};
pub use undo::{Tx, UndoLog};
