//! The design database: named designs with hierarchical instantiation and
//! flattening.
//!
//! The paper's design compilers "see if the requested design already exists
//! in the database" before building (§6.1) and "build circuits in a
//! hierarchical fashion", one design calling another (the register compiler
//! calls the multiplexor compiler). [`DesignDb`] is that database;
//! [`DesignDb::flatten`] expands the hierarchy for analysis.

use crate::kind::PinSpec;
use crate::netlist::{ComponentKind, Netlist, NetlistError};
use crate::{ComponentId, NetId};
use std::collections::HashMap;
use std::sync::Arc;

/// A store of named designs.
///
/// Designs are held behind [`Arc`], so cloning a database — e.g. to hand
/// a read-mostly snapshot to a parallel synthesis arm — copies only the
/// name table, never the netlists themselves. Mutation through
/// [`DesignDb::get_mut`] is copy-on-write.
///
/// # Examples
///
/// ```
/// use milo_netlist::{DesignDb, Netlist};
///
/// let mut db = DesignDb::new();
/// db.insert(Netlist::new("ADD4"));
/// assert!(db.get("ADD4").is_some());
/// assert!(db.get("MUX2") .is_none());
/// ```
#[derive(Clone, Debug, Default)]
pub struct DesignDb {
    designs: HashMap<String, Arc<Netlist>>,
}

impl DesignDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a design under its own name, replacing any previous entry.
    pub fn insert(&mut self, design: Netlist) -> String {
        let name = design.name.clone();
        self.designs.insert(name.clone(), Arc::new(design));
        name
    }

    /// Looks up a design by name.
    pub fn get(&self, name: &str) -> Option<&Netlist> {
        self.designs.get(name).map(Arc::as_ref)
    }

    /// Mutable lookup (copy-on-write when the design is shared with a
    /// snapshot of this database).
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Netlist> {
        self.designs.get_mut(name).map(Arc::make_mut)
    }

    /// Adopts every design of `other`, overwriting same-name entries.
    /// Sharing is by [`Arc`], so this moves pointers, not netlists —
    /// the merge step batched synthesis uses to fold each arm's compiled
    /// designs back into the caller's cache.
    pub fn merge_from(&mut self, other: &DesignDb) {
        for (name, design) in &other.designs {
            self.designs.insert(name.clone(), Arc::clone(design));
        }
    }

    /// Stores an already-shared design under `name`. The [`Arc`] is
    /// adopted as-is — this is the building block for redistributing
    /// designs across storage shards without cloning netlists.
    pub fn insert_shared(&mut self, name: impl Into<String>, design: Arc<Netlist>) {
        self.designs.insert(name.into(), design);
    }

    /// Iterates `(name, shared design)` pairs. Exposing the [`Arc`]
    /// (rather than the netlist reference [`DesignDb::get`] returns)
    /// lets callers move designs between databases — merge-back into a
    /// sharded store, snapshot assembly — at pointer cost.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &Arc<Netlist>)> {
        self.designs.iter().map(|(n, d)| (n.as_str(), d))
    }

    /// Whether a design exists (the compilers' cache check).
    pub fn contains(&self, name: &str) -> bool {
        self.designs.contains_key(name)
    }

    /// Number of stored designs.
    pub fn len(&self) -> usize {
        self.designs.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.designs.is_empty()
    }

    /// Iterates design names.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.designs.keys().map(String::as_str)
    }

    /// The port layout of a design, as pin specs for an instance
    /// (directions are the design's own port directions).
    pub fn instance_ports(&self, name: &str) -> Option<Vec<PinSpec>> {
        self.get(name).map(|d| {
            d.ports()
                .iter()
                .map(|p| PinSpec {
                    name: p.name.clone(),
                    dir: p.dir,
                })
                .collect()
        })
    }

    /// Creates an instance component kind for `design`.
    pub fn instance_kind(&self, design: &str) -> Option<ComponentKind> {
        self.instance_ports(design)
            .map(|ports| ComponentKind::Instance {
                design: design.to_owned(),
                ports,
            })
    }

    /// Recursively flattens `design`: every [`ComponentKind::Instance`] is
    /// replaced by a copy of the instantiated design's contents, with
    /// instance pins spliced onto the surrounding nets.
    ///
    /// # Errors
    ///
    /// Fails if an instance references an unknown design or the hierarchy
    /// is malformed.
    pub fn flatten(&self, design: &str) -> Result<Netlist, NetlistError> {
        let top = self
            .get(design)
            .ok_or_else(|| NetlistError::NoSuchPort(format!("design {design}")))?;
        let mut out = top.clone();
        // Iterate until no instances remain (handles nested hierarchy).
        loop {
            let instance = out.component_ids().find(|&id| {
                matches!(
                    out.component(id).map(|c| &c.kind),
                    Ok(ComponentKind::Instance { .. })
                )
            });
            let Some(inst_id) = instance else { break };
            self.expand_instance(&mut out, inst_id)?;
        }
        out.sweep_dead_nets();
        Ok(out)
    }

    fn expand_instance(&self, nl: &mut Netlist, inst_id: ComponentId) -> Result<(), NetlistError> {
        let (design_name, pin_nets): (String, Vec<(String, Option<NetId>)>) = {
            let comp = nl.component(inst_id)?;
            let ComponentKind::Instance { design, .. } = &comp.kind else {
                return Ok(());
            };
            (
                design.clone(),
                comp.pins.iter().map(|p| (p.name.clone(), p.net)).collect(),
            )
        };
        let inner = self
            .get(&design_name)
            .ok_or_else(|| NetlistError::NoSuchPort(format!("design {design_name}")))?
            .clone();
        let prefix = nl.component(inst_id)?.name.clone();
        nl.remove_component(inst_id)?;

        // Copy inner nets.
        let mut net_map: HashMap<NetId, NetId> = HashMap::new();
        for nid in inner.net_ids() {
            let inner_net = inner.net(nid)?;
            // Port nets of the inner design splice onto the outer nets.
            let port = inner.ports().iter().find(|p| p.net == nid);
            let outer = match port {
                Some(p) => {
                    let bound = pin_nets
                        .iter()
                        .find(|(n, _)| *n == p.name)
                        .and_then(|(_, net)| *net);
                    match bound {
                        Some(net) => net,
                        None => nl.add_net(format!("{prefix}.{}", inner_net.name)),
                    }
                }
                None => nl.add_net(format!("{prefix}.{}", inner_net.name)),
            };
            net_map.insert(nid, outer);
        }
        // Copy inner components.
        for cid in inner.component_ids() {
            let c = inner.component(cid)?;
            let new_id = nl.add_component(format!("{prefix}.{}", c.name), c.kind.clone());
            for (pin_idx, pin) in c.pins.iter().enumerate() {
                if let Some(net) = pin.net {
                    nl.connect(crate::PinRef::new(new_id, pin_idx as u16), net_map[&net])?;
                }
            }
        }
        Ok(())
    }
}

/// Convenience: builds a one-level test hierarchy and flattens it.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::{GateFn, GenericMacro, PinDir};
    use crate::Simulator;

    /// An inner design: y = !(a & b).
    fn inner_nand() -> Netlist {
        let mut nl = Netlist::new("NAND2D");
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        let y = nl.add_net("y");
        let g = nl.add_component(
            "g",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Nand, 2)),
        );
        nl.connect_named(g, "A0", a).unwrap();
        nl.connect_named(g, "A1", b).unwrap();
        nl.connect_named(g, "Y", y).unwrap();
        nl.add_port("a", PinDir::In, a);
        nl.add_port("b", PinDir::In, b);
        nl.add_port("y", PinDir::Out, y);
        nl
    }

    #[test]
    fn flatten_single_level() {
        let mut db = DesignDb::new();
        db.insert(inner_nand());

        let mut top = Netlist::new("TOP");
        let x = top.add_net("x");
        let y = top.add_net("y");
        let z = top.add_net("z");
        let kind = db.instance_kind("NAND2D").unwrap();
        let u = top.add_component("u0", kind);
        top.connect_named(u, "a", x).unwrap();
        top.connect_named(u, "b", y).unwrap();
        top.connect_named(u, "y", z).unwrap();
        top.add_port("x", PinDir::In, x);
        top.add_port("y", PinDir::In, y);
        top.add_port("z", PinDir::Out, z);
        db.insert(top);

        let flat = db.flatten("TOP").unwrap();
        assert!(!flat.has_hierarchy());
        assert_eq!(flat.component_count(), 1);

        let mut sim = Simulator::new(&flat).unwrap();
        for (a, b) in [(false, false), (true, false), (true, true)] {
            sim.set_input("x", a).unwrap();
            sim.set_input("y", b).unwrap();
            sim.settle();
            assert_eq!(sim.output("z").unwrap(), !(a && b), "{a} {b}");
        }
    }

    #[test]
    fn flatten_nested_hierarchy() {
        let mut db = DesignDb::new();
        db.insert(inner_nand());

        // MID wraps NAND2D and inverts its output: y = a & b.
        let mut mid = Netlist::new("MID");
        let a = mid.add_net("a");
        let b = mid.add_net("b");
        let n = mid.add_net("n");
        let y = mid.add_net("y");
        let u = mid.add_component("u", db.instance_kind("NAND2D").unwrap());
        let inv = mid.add_component(
            "i",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)),
        );
        mid.connect_named(u, "a", a).unwrap();
        mid.connect_named(u, "b", b).unwrap();
        mid.connect_named(u, "y", n).unwrap();
        mid.connect_named(inv, "A0", n).unwrap();
        mid.connect_named(inv, "Y", y).unwrap();
        mid.add_port("a", PinDir::In, a);
        mid.add_port("b", PinDir::In, b);
        mid.add_port("y", PinDir::Out, y);
        db.insert(mid);

        let mut top = Netlist::new("TOP2");
        let p = top.add_net("p");
        let q = top.add_net("q");
        let r = top.add_net("r");
        let m = top.add_component("m0", db.instance_kind("MID").unwrap());
        top.connect_named(m, "a", p).unwrap();
        top.connect_named(m, "b", q).unwrap();
        top.connect_named(m, "y", r).unwrap();
        top.add_port("p", PinDir::In, p);
        top.add_port("q", PinDir::In, q);
        top.add_port("r", PinDir::Out, r);
        db.insert(top);

        let flat = db.flatten("TOP2").unwrap();
        assert_eq!(flat.component_count(), 2);
        let mut sim = Simulator::new(&flat).unwrap();
        sim.set_input("p", true).unwrap();
        sim.set_input("q", true).unwrap();
        sim.settle();
        assert!(sim.output("r").unwrap());
        sim.set_input("q", false).unwrap();
        sim.settle();
        assert!(!sim.output("r").unwrap());
    }

    #[test]
    fn cache_check() {
        let mut db = DesignDb::new();
        assert!(!db.contains("NAND2D"));
        db.insert(inner_nand());
        assert!(db.contains("NAND2D"));
        assert_eq!(db.len(), 1);
    }
}
