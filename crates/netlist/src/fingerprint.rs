//! Structural fingerprints: a canonical text summary of a netlist and a
//! stable 64-bit hash of it.
//!
//! The differential-fuzz harness compares synthesis arms by fingerprint
//! (identical summaries ⇒ identical structure), and the zoo's golden
//! tests pin [`structural_hash`] per generator family so refactors
//! cannot silently change a generated design. Unlike `emit_netlist`,
//! the summary handles every component kind, including technology
//! cells; unlike `Debug`, its format is a stability contract — change
//! it only together with the pinned golden hashes.

use crate::netlist::Netlist;
use std::fmt::Write;

/// The FNV-1a 64-bit offset basis — the seed every fingerprint chain
/// starts from.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into an FNV-1a hash chain starting at `h`. Feeding
/// [`FNV_OFFSET`] as the seed yields the plain FNV-1a hash; feeding a
/// previous fingerprint extends it — which is how cache keys cover data
/// beyond the netlist itself (e.g. the synthesis constraints: hashing
/// a canonical constraint rendering on top of [`structural_hash`] keeps
/// two jobs that differ only in constraints from aliasing).
pub fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Canonical structural summary: design name, net count, one line per
/// live component (name, kind label, `pin=net` bindings in pin order),
/// one line per port. Two netlists with equal summaries are
/// structurally identical up to dead arena slots.
pub fn structural_summary(nl: &Netlist) -> String {
    let mut out = format!("design {} nets {}\n", nl.name, nl.net_count());
    for id in nl.component_ids() {
        let c = nl.component(id).expect("live id");
        write!(out, "comp {} {}", c.name, c.kind.label()).expect("string write");
        for pin in &c.pins {
            if let Some(net) = pin.net {
                write!(out, " {}=n{}", pin.name, net.index()).expect("string write");
            }
        }
        out.push('\n');
    }
    for p in nl.ports() {
        writeln!(out, "port {} {:?} n{}", p.name, p.dir, p.net.index()).expect("string write");
    }
    out
}

/// FNV-1a hash of [`structural_summary`] — a compact, stable structural
/// fingerprint suitable for pinning in golden tests and for cheap
/// equality checks across synthesis arms.
pub fn structural_hash(nl: &Netlist) -> u64 {
    fnv1a(FNV_OFFSET, structural_summary(nl).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::{GateFn, GenericMacro, PinDir};
    use crate::netlist::ComponentKind;

    fn inv_chain(name: &str, len: usize) -> Netlist {
        let mut nl = Netlist::new(name);
        let mut cur = nl.add_net("a");
        nl.add_port("a", PinDir::In, cur);
        for k in 0..len {
            let iv = nl.add_component(
                format!("i{k}"),
                ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)),
            );
            nl.connect_named(iv, "A0", cur).unwrap();
            cur = nl.add_net(format!("n{k}"));
            nl.connect_named(iv, "Y", cur).unwrap();
        }
        nl.add_port("y", PinDir::Out, cur);
        nl
    }

    #[test]
    fn equal_structures_hash_equal() {
        let a = inv_chain("t", 5);
        let b = inv_chain("t", 5);
        assert_eq!(structural_summary(&a), structural_summary(&b));
        assert_eq!(structural_hash(&a), structural_hash(&b));
    }

    #[test]
    fn different_structures_hash_differently() {
        let a = inv_chain("t", 5);
        let b = inv_chain("t", 6);
        let c = inv_chain("u", 5);
        assert_ne!(structural_hash(&a), structural_hash(&b));
        assert_ne!(structural_hash(&a), structural_hash(&c), "name is covered");
    }

    #[test]
    fn fnv_chain_extends_the_structural_hash() {
        let nl = inv_chain("t", 3);
        let base = structural_hash(&nl);
        assert_eq!(
            base,
            fnv1a(FNV_OFFSET, structural_summary(&nl).as_bytes()),
            "structural_hash is the plain FNV-1a of the summary"
        );
        let a = fnv1a(base, b"max_delay=4.5");
        let b = fnv1a(base, b"max_delay=9.0");
        assert_ne!(a, base);
        assert_ne!(a, b, "different suffixes diverge");
        assert_eq!(a, fnv1a(base, b"max_delay=4.5"), "chain is deterministic");
    }

    #[test]
    fn summary_covers_components_nets_and_ports() {
        let nl = inv_chain("t", 2);
        let s = structural_summary(&nl);
        assert!(s.starts_with("design t nets 3\n"));
        assert!(s.contains("comp i0 INV A0=n0 Y=n1"));
        assert!(s.contains("port a In n0"));
        assert!(s.contains("port y Out n2"));
    }
}
