//! Component kinds: microarchitecture components (paper Fig. 12), generic
//! library macros (Fig. 13), and technology-specific cells.

use milo_logic::TruthTable;
use std::fmt;

/// Basic gate functions shared by generic macros and technology cells.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum GateFn {
    /// Conjunction.
    And,
    /// Disjunction.
    Or,
    /// Negated conjunction.
    Nand,
    /// Negated disjunction.
    Nor,
    /// Exclusive-or.
    Xor,
    /// Negated exclusive-or.
    Xnor,
    /// Inverter (1 input).
    Inv,
    /// Buffer (1 input).
    Buf,
}

impl GateFn {
    /// Evaluates the gate over `n` input bits packed into `inputs`.
    pub fn eval(self, inputs: u64, n: u8) -> bool {
        let mask = if n >= 64 { u64::MAX } else { (1u64 << n) - 1 };
        let bits = inputs & mask;
        match self {
            GateFn::And => bits == mask,
            GateFn::Nand => bits != mask,
            GateFn::Or => bits != 0,
            GateFn::Nor => bits == 0,
            GateFn::Xor => bits.count_ones() & 1 == 1,
            GateFn::Xnor => bits.count_ones() & 1 == 0,
            GateFn::Inv => bits & 1 == 0,
            GateFn::Buf => bits & 1 == 1,
        }
    }

    /// Whether the function is associative/decomposable into a gate tree
    /// (AND/OR/XOR families).
    pub fn is_associative(self) -> bool {
        !matches!(self, GateFn::Inv | GateFn::Buf)
    }

    /// The non-inverting base of an inverted gate (`Nand → And`), if any.
    pub fn deinverted(self) -> Option<GateFn> {
        match self {
            GateFn::Nand => Some(GateFn::And),
            GateFn::Nor => Some(GateFn::Or),
            GateFn::Xnor => Some(GateFn::Xor),
            GateFn::Inv => Some(GateFn::Buf),
            _ => None,
        }
    }

    /// The inverted variant (`And → Nand`), if it exists in the family.
    pub fn inverted(self) -> GateFn {
        match self {
            GateFn::And => GateFn::Nand,
            GateFn::Nand => GateFn::And,
            GateFn::Or => GateFn::Nor,
            GateFn::Nor => GateFn::Or,
            GateFn::Xor => GateFn::Xnor,
            GateFn::Xnor => GateFn::Xor,
            GateFn::Inv => GateFn::Buf,
            GateFn::Buf => GateFn::Inv,
        }
    }

    /// Short lowercase mnemonic (`and`, `nor`, …).
    pub fn mnemonic(self) -> &'static str {
        match self {
            GateFn::And => "and",
            GateFn::Or => "or",
            GateFn::Nand => "nand",
            GateFn::Nor => "nor",
            GateFn::Xor => "xor",
            GateFn::Xnor => "xnor",
            GateFn::Inv => "inv",
            GateFn::Buf => "buf",
        }
    }
}

impl fmt::Display for GateFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Pin direction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PinDir {
    /// Signal flows into the component.
    In,
    /// Signal flows out of the component.
    Out,
}

/// Static description of one pin of a component kind.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PinSpec {
    /// Pin name, unique within the component.
    pub name: String,
    /// Direction.
    pub dir: PinDir,
}

impl PinSpec {
    fn input(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            dir: PinDir::In,
        }
    }

    fn output(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            dir: PinDir::Out,
        }
    }
}

fn bus(prefix: &str, n: u8, dir: PinDir) -> impl Iterator<Item = PinSpec> + '_ {
    (0..n).map(move |i| PinSpec {
        name: format!("{prefix}{i}"),
        dir,
    })
}

/// Generic library macros — Fig. 13 of the paper.
///
/// These are the technology-independent SSI/MSI elements the logic
/// compilers emit: gates of 2–4 inputs, constants, small muxes, decoders,
/// adders (including the 4-bit carry-lookahead variant), comparators,
/// counters, and single-bit storage elements.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum GenericMacro {
    /// An `n`-input gate (`Inv`/`Buf` take 1 input, others 2–4).
    Gate(GateFn, u8),
    /// Logic high constant.
    Vdd,
    /// Logic low constant.
    Vss,
    /// A `2^selects`-to-1 single-bit multiplexor (selects ∈ {1, 2}).
    Mux {
        /// Number of select inputs.
        selects: u8,
    },
    /// A `inputs`-to-`2^inputs` decoder (inputs ∈ {1, 2}).
    Decoder {
        /// Number of address inputs.
        inputs: u8,
    },
    /// A ripple or carry-lookahead binary adder (bits ∈ {1, 4}).
    Adder {
        /// Word width.
        bits: u8,
        /// Carry-lookahead implementation (only for 4 bits).
        cla: bool,
    },
    /// An equality/magnitude comparator (bits ∈ {2, 4}).
    Comparator {
        /// Word width.
        bits: u8,
    },
    /// An up/down counter with reset/load/enable (bits ∈ {2, 4}).
    Counter {
        /// Word width.
        bits: u8,
    },
    /// An edge-triggered D flip-flop.
    Dff {
        /// Asynchronous set pin present.
        set: bool,
        /// Asynchronous reset pin present.
        reset: bool,
        /// Clock-enable pin present.
        enable: bool,
    },
    /// A level-sensitive latch.
    Latch {
        /// Asynchronous set pin present.
        set: bool,
        /// Asynchronous reset pin present.
        reset: bool,
    },
}

impl GenericMacro {
    /// Pin layout of the macro.
    pub fn pin_specs(&self) -> Vec<PinSpec> {
        match *self {
            GenericMacro::Gate(_, n) => {
                let mut pins: Vec<PinSpec> = bus("A", n, PinDir::In).collect();
                pins.push(PinSpec::output("Y"));
                pins
            }
            GenericMacro::Vdd | GenericMacro::Vss => vec![PinSpec::output("Y")],
            GenericMacro::Mux { selects } => {
                let data = 1u8 << selects;
                let mut pins: Vec<PinSpec> = bus("D", data, PinDir::In).collect();
                pins.extend(bus("S", selects, PinDir::In));
                pins.push(PinSpec::output("Y"));
                pins
            }
            GenericMacro::Decoder { inputs } => {
                let outs = 1u8 << inputs;
                let mut pins: Vec<PinSpec> = bus("A", inputs, PinDir::In).collect();
                pins.extend(bus("Y", outs, PinDir::Out));
                pins
            }
            GenericMacro::Adder { bits, .. } => {
                let mut pins: Vec<PinSpec> = bus("A", bits, PinDir::In).collect();
                pins.extend(bus("B", bits, PinDir::In));
                pins.push(PinSpec::input("CIN"));
                pins.extend(bus("S", bits, PinDir::Out));
                pins.push(PinSpec::output("COUT"));
                pins
            }
            GenericMacro::Comparator { bits } => {
                let mut pins: Vec<PinSpec> = bus("A", bits, PinDir::In).collect();
                pins.extend(bus("B", bits, PinDir::In));
                pins.push(PinSpec::output("EQ"));
                pins.push(PinSpec::output("LT"));
                pins.push(PinSpec::output("GT"));
                pins
            }
            GenericMacro::Counter { bits } => {
                let mut pins: Vec<PinSpec> = bus("D", bits, PinDir::In).collect();
                pins.push(PinSpec::input("LOAD"));
                pins.push(PinSpec::input("UP"));
                pins.push(PinSpec::input("EN"));
                pins.push(PinSpec::input("RST"));
                pins.push(PinSpec::input("CLK"));
                pins.extend(bus("Q", bits, PinDir::Out));
                pins
            }
            GenericMacro::Dff { set, reset, enable } => {
                let mut pins = vec![PinSpec::input("D"), PinSpec::input("CLK")];
                if set {
                    pins.push(PinSpec::input("SET"));
                }
                if reset {
                    pins.push(PinSpec::input("RST"));
                }
                if enable {
                    pins.push(PinSpec::input("EN"));
                }
                pins.push(PinSpec::output("Q"));
                pins
            }
            GenericMacro::Latch { set, reset } => {
                let mut pins = vec![PinSpec::input("D"), PinSpec::input("G")];
                if set {
                    pins.push(PinSpec::input("SET"));
                }
                if reset {
                    pins.push(PinSpec::input("RST"));
                }
                pins.push(PinSpec::output("Q"));
                pins
            }
        }
    }

    /// Whether the macro holds state across clock edges.
    pub fn is_sequential(&self) -> bool {
        matches!(
            self,
            GenericMacro::Counter { .. } | GenericMacro::Dff { .. } | GenericMacro::Latch { .. }
        )
    }

    /// Catalog name, e.g. `AND3`, `MUX4TO1`, `ADD4CLA`.
    pub fn catalog_name(&self) -> String {
        match *self {
            GenericMacro::Gate(f, n) => match f {
                GateFn::Inv => "INV".to_owned(),
                GateFn::Buf => "BUF".to_owned(),
                other => format!("{}{n}", other.mnemonic().to_uppercase()),
            },
            GenericMacro::Vdd => "VDD".to_owned(),
            GenericMacro::Vss => "VSS".to_owned(),
            GenericMacro::Mux { selects } => format!("MUX{}TO1", 1u8 << selects),
            GenericMacro::Decoder { inputs } => format!("DEC{}TO{}", inputs, 1u8 << inputs),
            GenericMacro::Adder { bits, cla } => {
                format!("ADD{bits}{}", if cla { "CLA" } else { "" })
            }
            GenericMacro::Comparator { bits } => format!("CMP{bits}"),
            GenericMacro::Counter { bits } => format!("CTR{bits}"),
            GenericMacro::Dff { set, reset, enable } => {
                let mut s = "DFF".to_owned();
                if set {
                    s.push('S');
                }
                if reset {
                    s.push('R');
                }
                if enable {
                    s.push('E');
                }
                s
            }
            GenericMacro::Latch { set, reset } => {
                let mut s = "LATCH".to_owned();
                if set {
                    s.push('S');
                }
                if reset {
                    s.push('R');
                }
                s
            }
        }
    }
}

/// Carry-chain structure of an arithmetic unit (Fig. 12).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CarryMode {
    /// Ripple-carry: small, slow.
    Ripple,
    /// Carry-lookahead: larger, faster.
    CarryLookahead,
}

/// Comparison predicate computed by a microarchitectural comparator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Strictly less-than.
    Lt,
    /// Strictly greater-than.
    Gt,
    /// Less-or-equal.
    Le,
    /// Greater-or-equal.
    Ge,
    /// Inequality.
    Ne,
}

impl CmpOp {
    /// Evaluates the predicate on unsigned words.
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Lt => a < b,
            CmpOp::Gt => a > b,
            CmpOp::Le => a <= b,
            CmpOp::Ge => a >= b,
            CmpOp::Ne => a != b,
        }
    }
}

/// The operations an arithmetic unit supports (at least one).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct ArithOps {
    /// Two-operand addition.
    pub add: bool,
    /// Two-operand subtraction.
    pub sub: bool,
    /// Increment (A + 1).
    pub inc: bool,
    /// Decrement (A − 1).
    pub dec: bool,
}

impl ArithOps {
    /// Add-only unit.
    pub const ADD: Self = Self {
        add: true,
        sub: false,
        inc: false,
        dec: false,
    };
    /// Add/subtract unit.
    pub const ADD_SUB: Self = Self {
        add: true,
        sub: true,
        inc: false,
        dec: false,
    };
    /// Increment-only unit.
    pub const INC: Self = Self {
        add: false,
        sub: false,
        inc: true,
        dec: false,
    };

    /// The enabled operations in canonical order.
    pub fn ops(&self) -> Vec<ArithOp> {
        let mut v = Vec::new();
        if self.add {
            v.push(ArithOp::Add);
        }
        if self.sub {
            v.push(ArithOp::Sub);
        }
        if self.inc {
            v.push(ArithOp::Inc);
        }
        if self.dec {
            v.push(ArithOp::Dec);
        }
        v
    }

    /// Number of operation-select pins (`ceil(log2(#ops))`).
    pub fn select_pins(&self) -> u8 {
        let n = self.ops().len();
        assert!(n >= 1, "arithmetic unit needs at least one operation");
        (usize::BITS - (n - 1).leading_zeros()) as u8
    }

    /// Whether any two-operand op (add/sub) is present (B bus needed).
    pub fn needs_b(&self) -> bool {
        self.add || self.sub
    }
}

/// One arithmetic operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ArithOp {
    /// A + B.
    Add,
    /// A − B.
    Sub,
    /// A + 1.
    Inc,
    /// A − 1.
    Dec,
}

/// Storage-element trigger style (Fig. 12 register `type`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Trigger {
    /// Level-sensitive latch.
    Latch,
    /// Edge-triggered flip-flop.
    EdgeTriggered,
}

/// Register data functions (Fig. 12 register `function`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct RegFunctions {
    /// Parallel load.
    pub load: bool,
    /// Shift toward the MSB.
    pub shift_left: bool,
    /// Shift toward the LSB.
    pub shift_right: bool,
}

impl RegFunctions {
    /// Plain parallel-load register.
    pub const LOAD: Self = Self {
        load: true,
        shift_left: false,
        shift_right: false,
    };

    /// The selectable data sources in canonical order: hold, load, shl, shr.
    /// Hold is always available (the register keeps its value).
    pub fn source_count(&self) -> u8 {
        1 + u8::from(self.load) + u8::from(self.shift_left) + u8::from(self.shift_right)
    }

    /// Select pins needed by the input multiplexors.
    pub fn select_pins(&self) -> u8 {
        let n = self.source_count();
        (u8::BITS - (n - 1).leading_zeros()) as u8
    }
}

/// Counter functions (Fig. 12 counter `function`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct CounterFunctions {
    /// Parallel load.
    pub load: bool,
    /// Count up.
    pub up: bool,
    /// Count down.
    pub down: bool,
}

impl CounterFunctions {
    /// Up-only counter with load.
    pub const UP_LOAD: Self = Self {
        load: true,
        up: true,
        down: false,
    };
    /// Up-only counter.
    pub const UP: Self = Self {
        load: false,
        up: true,
        down: false,
    };
}

/// Control pins shared by registers and counters (Fig. 12 `control`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct ControlSet {
    /// Synchronous/asynchronous set-to-ones.
    pub set: bool,
    /// Reset-to-zero.
    pub reset: bool,
    /// Clock/count enable.
    pub enable: bool,
}

impl ControlSet {
    /// Reset only.
    pub const RESET: Self = Self {
        set: false,
        reset: true,
        enable: false,
    };
    /// No controls.
    pub const NONE: Self = Self {
        set: false,
        reset: false,
        enable: false,
    };
}

/// Parameterized microarchitecture components — Fig. 12 of the paper.
///
/// These are what the designer enters at the microarchitecture level; the
/// logic compilers expand each into generic macros.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MicroComponent {
    /// A wide gate (`#inputs` beyond the generic library's 4).
    Gate {
        /// Gate function.
        function: GateFn,
        /// Number of inputs.
        inputs: u8,
    },
    /// A word-wide multiplexor.
    Multiplexor {
        /// Word width (#bits).
        bits: u8,
        /// Number of data inputs (power of two).
        inputs: u8,
        /// Output-enable control.
        enable: bool,
    },
    /// An address decoder.
    Decoder {
        /// Number of address bits.
        bits: u8,
        /// Enable control.
        enable: bool,
    },
    /// A word comparator.
    Comparator {
        /// Word width.
        bits: u8,
        /// Predicate.
        function: CmpOp,
    },
    /// A bitwise logic unit applying `function` across `inputs` words.
    LogicUnit {
        /// Bitwise function.
        function: GateFn,
        /// Number of input words.
        inputs: u8,
        /// Word width.
        bits: u8,
    },
    /// An arithmetic unit.
    ArithmeticUnit {
        /// Word width.
        bits: u8,
        /// Supported operations.
        ops: ArithOps,
        /// Carry structure.
        mode: CarryMode,
    },
    /// A register.
    Register {
        /// Word width.
        bits: u8,
        /// Latch or edge-triggered.
        trigger: Trigger,
        /// Data functions.
        funcs: RegFunctions,
        /// Control pins.
        ctrl: ControlSet,
    },
    /// A counter.
    Counter {
        /// Word width.
        bits: u8,
        /// Count/load functions.
        funcs: CounterFunctions,
        /// Control pins.
        ctrl: ControlSet,
    },
}

impl MicroComponent {
    /// Pin layout of the component.
    pub fn pin_specs(&self) -> Vec<PinSpec> {
        match *self {
            MicroComponent::Gate { inputs, .. } => {
                let mut pins: Vec<PinSpec> = bus("A", inputs, PinDir::In).collect();
                pins.push(PinSpec::output("Y"));
                pins
            }
            MicroComponent::Multiplexor {
                bits,
                inputs,
                enable,
            } => {
                let mut pins = Vec::new();
                for i in 0..inputs {
                    pins.extend(bus(&format!("D{i}_"), bits, PinDir::In));
                }
                let selects = sel_bits(inputs);
                pins.extend(bus("S", selects, PinDir::In));
                if enable {
                    pins.push(PinSpec::input("EN"));
                }
                pins.extend(bus("Y", bits, PinDir::Out));
                pins
            }
            MicroComponent::Decoder { bits, enable } => {
                let outs = 1u8 << bits;
                let mut pins: Vec<PinSpec> = bus("A", bits, PinDir::In).collect();
                if enable {
                    pins.push(PinSpec::input("EN"));
                }
                pins.extend(bus("Y", outs, PinDir::Out));
                pins
            }
            MicroComponent::Comparator { bits, .. } => {
                let mut pins: Vec<PinSpec> = bus("A", bits, PinDir::In).collect();
                pins.extend(bus("B", bits, PinDir::In));
                pins.push(PinSpec::output("F"));
                pins
            }
            MicroComponent::LogicUnit { inputs, bits, .. } => {
                let mut pins = Vec::new();
                for i in 0..inputs {
                    pins.extend(bus(&format!("A{i}_"), bits, PinDir::In));
                }
                pins.extend(bus("Y", bits, PinDir::Out));
                pins
            }
            MicroComponent::ArithmeticUnit { bits, ops, .. } => {
                let mut pins: Vec<PinSpec> = bus("A", bits, PinDir::In).collect();
                if ops.needs_b() {
                    pins.extend(bus("B", bits, PinDir::In));
                }
                if ops.ops().len() > 1 {
                    pins.extend(bus("OP", ops.select_pins(), PinDir::In));
                }
                pins.push(PinSpec::input("CIN"));
                pins.extend(bus("S", bits, PinDir::Out));
                pins.push(PinSpec::output("COUT"));
                pins
            }
            MicroComponent::Register {
                bits, funcs, ctrl, ..
            } => {
                let mut pins = Vec::new();
                if funcs.load {
                    pins.extend(bus("D", bits, PinDir::In));
                }
                if funcs.shift_left {
                    pins.push(PinSpec::input("SIL")); // serial in, shifting left
                }
                if funcs.shift_right {
                    pins.push(PinSpec::input("SIR"));
                }
                if funcs.source_count() > 1 {
                    pins.extend(bus("F", funcs.select_pins(), PinDir::In));
                }
                if ctrl.set {
                    pins.push(PinSpec::input("SET"));
                }
                if ctrl.reset {
                    pins.push(PinSpec::input("RST"));
                }
                if ctrl.enable {
                    pins.push(PinSpec::input("EN"));
                }
                pins.push(PinSpec::input("CLK"));
                pins.extend(bus("Q", bits, PinDir::Out));
                pins
            }
            MicroComponent::Counter { bits, funcs, ctrl } => {
                let mut pins = Vec::new();
                if funcs.load {
                    pins.extend(bus("D", bits, PinDir::In));
                    pins.push(PinSpec::input("LOAD"));
                }
                if funcs.up && funcs.down {
                    pins.push(PinSpec::input("UP"));
                }
                if ctrl.set {
                    pins.push(PinSpec::input("SET"));
                }
                if ctrl.reset {
                    pins.push(PinSpec::input("RST"));
                }
                if ctrl.enable {
                    pins.push(PinSpec::input("EN"));
                }
                pins.push(PinSpec::input("CLK"));
                pins.extend(bus("Q", bits, PinDir::Out));
                pins.push(PinSpec::output("CO"));
                pins
            }
        }
    }

    /// Whether the component holds state.
    pub fn is_sequential(&self) -> bool {
        matches!(
            self,
            MicroComponent::Register { .. } | MicroComponent::Counter { .. }
        )
    }

    /// Word width of the component's primary output.
    pub fn bits(&self) -> u8 {
        match *self {
            MicroComponent::Gate { .. } | MicroComponent::Comparator { .. } => 1,
            MicroComponent::Multiplexor { bits, .. }
            | MicroComponent::LogicUnit { bits, .. }
            | MicroComponent::ArithmeticUnit { bits, .. }
            | MicroComponent::Register { bits, .. }
            | MicroComponent::Counter { bits, .. } => bits,
            MicroComponent::Decoder { bits, .. } => 1 << bits,
        }
    }

    /// Descriptive name, e.g. `AU4(add,ripple)`.
    pub fn describe(&self) -> String {
        match *self {
            MicroComponent::Gate { function, inputs } => format!("{function}{inputs}"),
            MicroComponent::Multiplexor {
                bits,
                inputs,
                enable,
            } => {
                format!("MUX{inputs}:1:{bits}{}", if enable { "E" } else { "" })
            }
            MicroComponent::Decoder { bits, enable } => {
                format!("DEC{bits}:{}{}", 1u8 << bits, if enable { "E" } else { "" })
            }
            MicroComponent::Comparator { bits, function } => format!("CMP{bits}({function:?})"),
            MicroComponent::LogicUnit {
                function,
                inputs,
                bits,
            } => {
                format!("LU{bits}({function}x{inputs})")
            }
            MicroComponent::ArithmeticUnit { bits, ops, mode } => {
                let mut s = format!("AU{bits}(");
                for (i, op) in ops.ops().iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(match op {
                        ArithOp::Add => "add",
                        ArithOp::Sub => "sub",
                        ArithOp::Inc => "inc",
                        ArithOp::Dec => "dec",
                    });
                }
                s.push_str(match mode {
                    CarryMode::Ripple => ",ripple)",
                    CarryMode::CarryLookahead => ",cla)",
                });
                s
            }
            MicroComponent::Register { bits, .. } => format!("REG{bits}"),
            MicroComponent::Counter { bits, .. } => format!("CTR{bits}"),
        }
    }
}

/// Number of select lines for an `inputs`-way mux.
pub fn sel_bits(inputs: u8) -> u8 {
    assert!(
        inputs >= 2 && inputs.is_power_of_two(),
        "mux inputs must be a power of two >= 2"
    );
    inputs.trailing_zeros() as u8
}

/// Relative power/speed grade of a technology cell (strategy 2 replaces a
/// standard macro with a high-power, higher-speed one — ECL only).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum PowerLevel {
    /// Low power, slowest.
    Low,
    /// Standard.
    Standard,
    /// High power, fastest.
    High,
}

/// The logic function a technology cell computes.
#[derive(Clone, PartialEq, Debug)]
pub enum CellFunction {
    /// Simple gate of `n` inputs.
    Gate(GateFn, u8),
    /// Arbitrary single-output function (complex cells such as AOI).
    /// Inputs map to truth-table variables in pin order.
    Table(TruthTable),
    /// `2^selects`-to-1 multiplexor.
    Mux {
        /// Number of select pins.
        selects: u8,
    },
    /// D flip-flop.
    Dff {
        /// Asynchronous set.
        set: bool,
        /// Asynchronous reset.
        reset: bool,
        /// Clock enable.
        enable: bool,
    },
    /// D flip-flop with a `2^selects`-to-1 input multiplexor (the merged
    /// mux-FF macros used in the Fig. 18 hierarchy optimization).
    MuxDff {
        /// Number of select pins.
        selects: u8,
    },
    /// Level-sensitive latch.
    Latch {
        /// Asynchronous set.
        set: bool,
        /// Asynchronous reset.
        reset: bool,
    },
    /// Constant output.
    Const(bool),
    /// MSI adder macro (mirrors [`GenericMacro::Adder`]).
    Adder {
        /// Word width.
        bits: u8,
        /// Carry-lookahead internals (affects delay, not function).
        cla: bool,
    },
    /// MSI decoder macro (mirrors [`GenericMacro::Decoder`]).
    Decoder {
        /// Address inputs.
        inputs: u8,
    },
    /// MSI comparator macro (mirrors [`GenericMacro::Comparator`]).
    Comparator {
        /// Word width.
        bits: u8,
    },
    /// MSI counter macro (mirrors [`GenericMacro::Counter`]).
    Counter {
        /// Word width.
        bits: u8,
    },
}

impl CellFunction {
    /// Pin layout implied by the function.
    pub fn pin_specs(&self) -> Vec<PinSpec> {
        match self {
            CellFunction::Gate(_, n) => {
                let mut pins: Vec<PinSpec> = bus("A", *n, PinDir::In).collect();
                pins.push(PinSpec::output("Y"));
                pins
            }
            CellFunction::Table(tt) => {
                let mut pins: Vec<PinSpec> = bus("A", tt.vars(), PinDir::In).collect();
                pins.push(PinSpec::output("Y"));
                pins
            }
            CellFunction::Mux { selects } => GenericMacro::Mux { selects: *selects }.pin_specs(),
            CellFunction::Dff { set, reset, enable } => GenericMacro::Dff {
                set: *set,
                reset: *reset,
                enable: *enable,
            }
            .pin_specs(),
            CellFunction::MuxDff { selects } => {
                let data = 1u8 << *selects;
                let mut pins: Vec<PinSpec> = bus("D", data, PinDir::In).collect();
                pins.extend(bus("S", *selects, PinDir::In));
                pins.push(PinSpec::input("CLK"));
                pins.push(PinSpec::output("Q"));
                pins
            }
            CellFunction::Latch { set, reset } => GenericMacro::Latch {
                set: *set,
                reset: *reset,
            }
            .pin_specs(),
            CellFunction::Const(_) => vec![PinSpec::output("Y")],
            CellFunction::Adder { bits, cla } => GenericMacro::Adder {
                bits: *bits,
                cla: *cla,
            }
            .pin_specs(),
            CellFunction::Decoder { inputs } => {
                GenericMacro::Decoder { inputs: *inputs }.pin_specs()
            }
            CellFunction::Comparator { bits } => {
                GenericMacro::Comparator { bits: *bits }.pin_specs()
            }
            CellFunction::Counter { bits } => GenericMacro::Counter { bits: *bits }.pin_specs(),
        }
    }

    /// Whether the cell holds state.
    pub fn is_sequential(&self) -> bool {
        matches!(
            self,
            CellFunction::Dff { .. }
                | CellFunction::MuxDff { .. }
                | CellFunction::Latch { .. }
                | CellFunction::Counter { .. }
        )
    }
}

/// A technology-specific cell instance descriptor.
///
/// The descriptor is self-contained (the netlist does not reference the
/// library object) so that timing/power analysis and simulation need only
/// the netlist. Libraries in `milo-techmap` are collections of these.
#[derive(Clone, PartialEq, Debug)]
pub struct TechCell {
    /// Library-unique cell name, e.g. `NAND3H`.
    pub name: String,
    /// Library family this cell belongs to, e.g. `ecl-ga`.
    pub family: String,
    /// Logic function.
    pub function: CellFunction,
    /// Area in cell units.
    pub area: f64,
    /// Intrinsic pin-to-output delay in ns.
    pub delay: f64,
    /// Optional per-input-pin delays in ns (empty = uniform `delay`).
    /// Strategy 1 ("swap equivalent signals on the same component",
    /// Fig. 9a) exploits cells whose inputs have different delays.
    pub pin_delay: Vec<f64>,
    /// Additional delay per fanout load in ns.
    pub load_delay: f64,
    /// Static power draw in mA.
    pub power: f64,
    /// Maximum fanout before the electric critic flags the net.
    pub max_fanout: u32,
    /// Power/speed grade.
    pub level: PowerLevel,
}

impl TechCell {
    /// Pin layout of the cell.
    pub fn pin_specs(&self) -> Vec<PinSpec> {
        self.function.pin_specs()
    }

    /// Intrinsic delay from the `i`-th *input* pin to the output.
    pub fn input_delay(&self, input_index: usize) -> f64 {
        self.pin_delay
            .get(input_index)
            .copied()
            .unwrap_or(self.delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_eval() {
        assert!(GateFn::And.eval(0b111, 3));
        assert!(!GateFn::And.eval(0b101, 3));
        assert!(GateFn::Nor.eval(0, 2));
        assert!(GateFn::Xor.eval(0b100, 3));
        assert!(!GateFn::Xor.eval(0b11, 2));
        assert!(GateFn::Inv.eval(0, 1));
        assert!(GateFn::Buf.eval(1, 1));
    }

    #[test]
    fn gate_inversion_roundtrip() {
        for f in [
            GateFn::And,
            GateFn::Or,
            GateFn::Nand,
            GateFn::Nor,
            GateFn::Xor,
            GateFn::Xnor,
        ] {
            assert_eq!(f.inverted().inverted(), f);
        }
        assert_eq!(GateFn::Nand.deinverted(), Some(GateFn::And));
        assert_eq!(GateFn::And.deinverted(), None);
    }

    #[test]
    fn generic_pin_counts() {
        assert_eq!(GenericMacro::Gate(GateFn::And, 3).pin_specs().len(), 4);
        assert_eq!(GenericMacro::Mux { selects: 2 }.pin_specs().len(), 7); // 4 data + 2 sel + Y
        assert_eq!(GenericMacro::Decoder { inputs: 2 }.pin_specs().len(), 6);
        assert_eq!(
            GenericMacro::Adder { bits: 4, cla: true }.pin_specs().len(),
            14
        );
        assert_eq!(
            GenericMacro::Dff {
                set: false,
                reset: true,
                enable: false
            }
            .pin_specs()
            .len(),
            4
        );
    }

    #[test]
    fn catalog_names() {
        assert_eq!(GenericMacro::Gate(GateFn::Nand, 3).catalog_name(), "NAND3");
        assert_eq!(GenericMacro::Gate(GateFn::Inv, 1).catalog_name(), "INV");
        assert_eq!(
            GenericMacro::Adder { bits: 4, cla: true }.catalog_name(),
            "ADD4CLA"
        );
        assert_eq!(GenericMacro::Mux { selects: 1 }.catalog_name(), "MUX2TO1");
        assert_eq!(
            GenericMacro::Dff {
                set: true,
                reset: true,
                enable: false
            }
            .catalog_name(),
            "DFFSR"
        );
    }

    #[test]
    fn micro_pin_counts() {
        let mux = MicroComponent::Multiplexor {
            bits: 4,
            inputs: 2,
            enable: false,
        };
        // 2 data words of 4 + 1 select + 4 outputs = 13
        assert_eq!(mux.pin_specs().len(), 13);

        let au = MicroComponent::ArithmeticUnit {
            bits: 4,
            ops: ArithOps::ADD,
            mode: CarryMode::Ripple,
        };
        // A4 + B4 + CIN + S4 + COUT = 14 (single op: no OP pins)
        assert_eq!(au.pin_specs().len(), 14);

        let inc = MicroComponent::ArithmeticUnit {
            bits: 4,
            ops: ArithOps::INC,
            mode: CarryMode::Ripple,
        };
        // A4 + CIN + S4 + COUT = 10 (no B bus for inc-only)
        assert_eq!(inc.pin_specs().len(), 10);
    }

    #[test]
    fn register_pins_include_mux_controls() {
        let reg = MicroComponent::Register {
            bits: 4,
            trigger: Trigger::EdgeTriggered,
            funcs: RegFunctions {
                load: true,
                shift_left: false,
                shift_right: true,
            },
            ctrl: ControlSet::RESET,
        };
        let pins = reg.pin_specs();
        let names: Vec<&str> = pins.iter().map(|p| p.name.as_str()).collect();
        assert!(names.contains(&"D0"));
        assert!(names.contains(&"SIR"));
        assert!(names.contains(&"F0"), "select pins: {names:?}"); // 3 sources -> 2 select pins
        assert!(names.contains(&"F1"));
        assert!(names.contains(&"RST"));
        assert!(names.contains(&"CLK"));
        assert!(names.contains(&"Q3"));
    }

    #[test]
    fn arith_select_pins() {
        assert_eq!(ArithOps::ADD.select_pins(), 0);
        assert_eq!(ArithOps::ADD_SUB.select_pins(), 1);
        let all = ArithOps {
            add: true,
            sub: true,
            inc: true,
            dec: true,
        };
        assert_eq!(all.select_pins(), 2);
    }

    #[test]
    fn sequential_flags() {
        assert!(GenericMacro::Dff {
            set: false,
            reset: false,
            enable: false
        }
        .is_sequential());
        assert!(!GenericMacro::Gate(GateFn::And, 2).is_sequential());
        assert!(MicroComponent::Counter {
            bits: 4,
            funcs: CounterFunctions::UP,
            ctrl: ControlSet::NONE
        }
        .is_sequential());
    }

    #[test]
    fn cmp_eval() {
        assert!(CmpOp::Lt.eval(2, 5));
        assert!(!CmpOp::Gt.eval(2, 5));
        assert!(CmpOp::Ge.eval(5, 5));
    }

    #[test]
    fn sel_bits_powers() {
        assert_eq!(sel_bits(2), 1);
        assert_eq!(sel_bits(4), 2);
        assert_eq!(sel_bits(8), 3);
    }
}
