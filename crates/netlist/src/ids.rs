//! Typed identifiers for netlist entities.

use std::fmt;

/// Identifier of a component inside a [`crate::Netlist`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentId(pub(crate) u32);

/// Identifier of a net inside a [`crate::Netlist`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) u32);

/// A pin, addressed as a component plus the pin's index within it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PinRef {
    /// Owning component.
    pub component: ComponentId,
    /// Index into the component's pin list.
    pub pin: u16,
}

impl ComponentId {
    /// Raw index value (stable for the lifetime of the component).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl NetId {
    /// Raw index value (stable for the lifetime of the net).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl PinRef {
    /// Creates a pin reference.
    pub fn new(component: ComponentId, pin: u16) -> Self {
        Self { component, pin }
    }
}

impl fmt::Debug for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Debug for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for PinRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}.p{}", self.component.0, self.pin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_formats() {
        let p = PinRef::new(ComponentId(3), 1);
        assert_eq!(format!("{p:?}"), "c3.p1");
        assert_eq!(format!("{:?}", ComponentId(7)), "c7");
        assert_eq!(format!("{:?}", NetId(9)), "n9");
    }
}
