//! # milo-netlist
//!
//! The netlist substrate of the MILO reproduction: components, pins, nets,
//! hierarchical design database, cycle-based simulation and structural
//! validation.
//!
//! Component kinds mirror the paper's three representation levels:
//!
//! * [`MicroComponent`] — the parameterized microarchitecture components of
//!   Fig. 12 (multiplexors, decoders, comparators, logic units, arithmetic
//!   units, registers, counters);
//! * [`GenericMacro`] — the technology-independent generic library of
//!   Fig. 13 that the logic compilers emit;
//! * [`TechCell`] — technology-specific cells produced by the technology
//!   mapper.
//!
//! # Examples
//!
//! ```
//! use milo_netlist::{Netlist, ComponentKind, GenericMacro, GateFn, PinDir, Simulator};
//!
//! // y = a NAND b
//! let mut nl = Netlist::new("nand");
//! let (a, b, y) = (nl.add_net("a"), nl.add_net("b"), nl.add_net("y"));
//! let g = nl.add_component("u1", ComponentKind::Generic(GenericMacro::Gate(GateFn::Nand, 2)));
//! nl.connect_named(g, "A0", a)?;
//! nl.connect_named(g, "A1", b)?;
//! nl.connect_named(g, "Y", y)?;
//! nl.add_port("a", PinDir::In, a);
//! nl.add_port("b", PinDir::In, b);
//! nl.add_port("y", PinDir::Out, y);
//!
//! let mut sim = Simulator::new(&nl)?;
//! sim.set_input("a", true)?;
//! sim.set_input("b", true)?;
//! sim.settle();
//! assert!(!sim.output("y")?);
//! # Ok::<(), milo_netlist::NetlistError>(())
//! ```

#![warn(missing_docs)]

mod db;
mod dot;
mod fingerprint;
mod ids;
mod kind;
mod netlist;
mod sim;
mod validate;

pub use db::DesignDb;
pub use dot::to_dot;
pub use fingerprint::{fnv1a, structural_hash, structural_summary, FNV_OFFSET};
pub use ids::{ComponentId, NetId, PinRef};
pub use kind::{
    sel_bits, ArithOp, ArithOps, CarryMode, CellFunction, CmpOp, ControlSet, CounterFunctions,
    GateFn, GenericMacro, MicroComponent, PinDir, PinSpec, PowerLevel, RegFunctions, TechCell,
    Trigger,
};
pub use netlist::{Component, ComponentKind, Net, Netlist, NetlistError, Pin, Port, TouchSet};
pub use sim::{eval_component, next_state, Simulator};
pub use validate::{fatal_violations, validate, Violation};
