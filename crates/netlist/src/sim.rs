//! A cycle-based netlist simulator.
//!
//! Used throughout the workspace to prove that every transformation —
//! logic compilation, technology mapping, microarchitecture rewrites,
//! logic optimization — preserves circuit behaviour.

use crate::kind::{CellFunction, GenericMacro, MicroComponent, PinDir, TechCell};
use crate::netlist::{ComponentKind, Netlist, NetlistError};
use crate::{ComponentId, NetId};
use std::collections::HashMap;

/// A simulator bound to a (flat) netlist.
///
/// Combinational settling is iterated to a fixed point, so latches and
/// components whose outputs combinationally depend on their inputs (e.g. a
/// counter's carry-out) are handled. [`Simulator::step`] models one rising
/// clock edge on every sequential element.
///
/// # Examples
///
/// ```
/// use milo_netlist::{Netlist, ComponentKind, GenericMacro, GateFn, PinDir, Simulator};
///
/// let mut nl = Netlist::new("inv");
/// let a = nl.add_net("a");
/// let y = nl.add_net("y");
/// let g = nl.add_component("u1", ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)));
/// nl.connect_named(g, "A0", a)?;
/// nl.connect_named(g, "Y", y)?;
/// nl.add_port("a", PinDir::In, a);
/// nl.add_port("y", PinDir::Out, y);
///
/// let mut sim = Simulator::new(&nl)?;
/// sim.set_input("a", false)?;
/// sim.settle();
/// assert!(sim.output("y")?);
/// # Ok::<(), milo_netlist::NetlistError>(())
/// ```
pub struct Simulator<'a> {
    nl: &'a Netlist,
    order: Vec<ComponentId>,
    net_vals: Vec<bool>,
    state: HashMap<ComponentId, u64>,
    inputs: HashMap<String, bool>,
}

impl<'a> Simulator<'a> {
    /// Binds a simulator to `netlist`.
    ///
    /// # Errors
    ///
    /// Fails if the netlist still contains design instances
    /// ([`NetlistError::HierarchyPresent`]) or has a combinational cycle.
    pub fn new(netlist: &'a Netlist) -> Result<Self, NetlistError> {
        if let Some(id) = netlist.component_ids().find(|&id| {
            matches!(
                netlist.component(id).map(|c| &c.kind),
                Ok(ComponentKind::Instance { .. })
            )
        }) {
            return Err(NetlistError::HierarchyPresent(id));
        }
        let order = netlist.topo_order()?;
        let max_net = netlist.net_ids().map(|n| n.index() + 1).max().unwrap_or(0);
        let state = netlist
            .component_ids()
            .filter(|&id| netlist.component(id).is_ok_and(|c| c.kind.is_sequential()))
            .map(|id| (id, 0u64))
            .collect();
        Ok(Self {
            nl: netlist,
            order,
            net_vals: vec![false; max_net],
            state,
            inputs: HashMap::new(),
        })
    }

    /// Sets the value of a top-level input port.
    ///
    /// # Errors
    ///
    /// [`NetlistError::NoSuchPort`] if the port is unknown or not an input.
    pub fn set_input(&mut self, name: &str, value: bool) -> Result<(), NetlistError> {
        match self.nl.port(name) {
            Some(p) if p.dir == PinDir::In => {
                self.inputs.insert(name.to_owned(), value);
                Ok(())
            }
            _ => Err(NetlistError::NoSuchPort(name.to_owned())),
        }
    }

    /// Directly sets the internal state word of a sequential component
    /// (useful for establishing initial conditions in tests).
    pub fn set_state(&mut self, id: ComponentId, value: u64) {
        self.state.insert(id, value);
    }

    /// The internal state word of a sequential component.
    pub fn state(&self, id: ComponentId) -> Option<u64> {
        self.state.get(&id).copied()
    }

    /// Propagates values until the combinational part stabilizes.
    pub fn settle(&mut self) {
        // Drive input-port nets.
        for p in self.nl.ports() {
            if p.dir == PinDir::In {
                let v = self.inputs.get(p.name.as_str()).copied().unwrap_or(false);
                self.net_vals[p.net.index()] = v;
            }
        }
        // Iterate to fixed point (bounded; each pass at least finalizes one
        // level, and latch feedback converges because values are binary).
        let max_passes = self.order.len() + 2;
        for _ in 0..max_passes {
            let mut changed = false;
            for &id in &self.order {
                let comp = self.nl.component(id).expect("order holds live ids");
                let ins = self.gather_inputs(id);
                let st = self.state.get(&id).copied().unwrap_or(0);
                let outs = eval_component(&comp.kind, &ins, st);
                let mut oi = 0;
                for (pin_idx, pin) in comp.pins.iter().enumerate() {
                    if pin.dir != PinDir::Out {
                        continue;
                    }
                    let v = outs[oi];
                    oi += 1;
                    let _ = pin_idx;
                    if let Some(net) = pin.net {
                        if self.net_vals[net.index()] != v {
                            self.net_vals[net.index()] = v;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// One rising clock edge: settle, latch next state into every
    /// sequential component, settle again.
    pub fn step(&mut self) {
        self.settle();
        let mut next: Vec<(ComponentId, u64)> = Vec::with_capacity(self.state.len());
        for (&id, &st) in &self.state {
            let comp = self.nl.component(id).expect("live id");
            let ins = self.gather_inputs(id);
            next.push((id, next_state(&comp.kind, &ins, st)));
        }
        for (id, st) in next {
            self.state.insert(id, st);
        }
        self.settle();
    }

    /// Value of a top-level output port after the last [`Simulator::settle`].
    ///
    /// # Errors
    ///
    /// [`NetlistError::NoSuchPort`] if the port is unknown.
    pub fn output(&self, name: &str) -> Result<bool, NetlistError> {
        let p = self
            .nl
            .port(name)
            .ok_or_else(|| NetlistError::NoSuchPort(name.to_owned()))?;
        Ok(self.net_vals[p.net.index()])
    }

    /// Value currently on a net.
    pub fn net_value(&self, net: NetId) -> bool {
        self.net_vals[net.index()]
    }

    fn gather_inputs(&self, id: ComponentId) -> Vec<bool> {
        let comp = self.nl.component(id).expect("live id");
        comp.pins
            .iter()
            .filter(|p| p.dir == PinDir::In)
            .map(|p| p.net.is_some_and(|n| self.net_vals[n.index()]))
            .collect()
    }
}

fn word(bits: &[bool]) -> u64 {
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
}

fn unword(v: u64, n: u8) -> Vec<bool> {
    (0..n).map(|i| v >> i & 1 == 1).collect()
}

fn mask(bits: u8) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Evaluates the combinational outputs of a component given its input pin
/// values (in pin order) and its current state word.
pub fn eval_component(kind: &ComponentKind, ins: &[bool], state: u64) -> Vec<bool> {
    match kind {
        ComponentKind::Generic(m) => eval_generic(m, ins, state),
        ComponentKind::Micro(m) => eval_micro(m, ins, state),
        ComponentKind::Tech(c) => eval_tech(c, ins, state),
        ComponentKind::Instance { .. } => panic!("cannot evaluate an unexpanded instance"),
    }
}

fn eval_generic(m: &GenericMacro, ins: &[bool], state: u64) -> Vec<bool> {
    match *m {
        GenericMacro::Gate(f, n) => vec![f.eval(word(ins), n)],
        GenericMacro::Vdd => vec![true],
        GenericMacro::Vss => vec![false],
        GenericMacro::Mux { selects } => {
            let data = 1usize << selects;
            let sel = word(&ins[data..data + selects as usize]) as usize;
            vec![ins[sel]]
        }
        GenericMacro::Decoder { inputs } => {
            let addr = word(&ins[..inputs as usize]) as usize;
            (0..(1usize << inputs)).map(|i| i == addr).collect()
        }
        GenericMacro::Adder { bits, .. } => {
            let b = bits as usize;
            let a = word(&ins[..b]);
            let bb = word(&ins[b..2 * b]);
            let cin = u64::from(ins[2 * b]);
            let sum = a + bb + cin;
            let mut out = unword(sum, bits);
            out.push(sum >> bits & 1 == 1);
            out
        }
        GenericMacro::Comparator { bits } => {
            let b = bits as usize;
            let a = word(&ins[..b]);
            let bb = word(&ins[b..2 * b]);
            vec![a == bb, a < bb, a > bb]
        }
        GenericMacro::Counter { bits } => unword(state, bits),
        GenericMacro::Dff { .. } => vec![state & 1 == 1],
        GenericMacro::Latch { set, reset } => {
            // ins: D, G, [SET], [RST]
            let mut idx = 2;
            let s = if set {
                let v = ins[idx];
                idx += 1;
                v
            } else {
                false
            };
            let r = reset && ins[idx];
            let d = ins[0];
            let g = ins[1];
            let q = if s {
                true
            } else if r {
                false
            } else if g {
                d
            } else {
                state & 1 == 1
            };
            vec![q]
        }
    }
}

fn eval_micro(m: &MicroComponent, ins: &[bool], state: u64) -> Vec<bool> {
    match *m {
        MicroComponent::Gate { function, inputs } => vec![function.eval(word(ins), inputs)],
        MicroComponent::Multiplexor {
            bits,
            inputs,
            enable,
        } => {
            let b = bits as usize;
            let n = inputs as usize;
            let selects = crate::kind::sel_bits(inputs) as usize;
            let sel = word(&ins[n * b..n * b + selects]) as usize;
            let en = !enable || ins[n * b + selects];
            (0..b).map(|j| en && ins[sel * b + j]).collect()
        }
        MicroComponent::Decoder { bits, enable } => {
            let k = bits as usize;
            let addr = word(&ins[..k]) as usize;
            let en = !enable || ins[k];
            (0..(1usize << k)).map(|i| en && i == addr).collect()
        }
        MicroComponent::Comparator { bits, function } => {
            let b = bits as usize;
            let a = word(&ins[..b]);
            let bb = word(&ins[b..2 * b]);
            vec![function.eval(a, bb)]
        }
        MicroComponent::LogicUnit {
            function,
            inputs,
            bits,
        } => {
            let b = bits as usize;
            (0..b)
                .map(|j| {
                    let mut packed = 0u64;
                    for i in 0..inputs as usize {
                        packed |= u64::from(ins[i * b + j]) << i;
                    }
                    function.eval(packed, inputs)
                })
                .collect()
        }
        MicroComponent::ArithmeticUnit { bits, ops, .. } => {
            let b = bits as usize;
            let a = word(&ins[..b]);
            let mut idx = b;
            let bb = if ops.needs_b() {
                let v = word(&ins[idx..idx + b]);
                idx += b;
                v
            } else {
                0
            };
            let op_list = ops.ops();
            let op = if op_list.len() > 1 {
                let sel_pins = ops.select_pins() as usize;
                let sel = word(&ins[idx..idx + sel_pins]) as usize;
                idx += sel_pins;
                op_list[sel.min(op_list.len() - 1)]
            } else {
                op_list[0]
            };
            let cin = u64::from(ins[idx]);
            let m = mask(bits);
            let full = match op {
                crate::kind::ArithOp::Add => a + bb + cin,
                crate::kind::ArithOp::Sub => a + (!bb & m) + cin,
                // Inc = A + 0…01 with carry-in forced high; Dec = A + 1…1
                // with carry-in low (two's-complement −1). COUT is the raw
                // adder carry in every mode, matching the compiled designs.
                crate::kind::ArithOp::Inc => a + 1,
                crate::kind::ArithOp::Dec => a + m,
            };
            let mut out = unword(full & m, bits);
            out.push(full >> bits & 1 == 1);
            out
        }
        MicroComponent::Register { bits, .. } => unword(state, bits),
        MicroComponent::Counter { bits, funcs, ctrl } => {
            let mut out = unword(state, bits);
            // CO: at terminal count while enabled and counting.
            let lay = counter_layout(bits, funcs, ctrl);
            let en = lay.en.is_none_or(|i| ins[i]);
            let up = if funcs.up && funcs.down {
                ins[lay.up.expect("up pin")]
            } else {
                funcs.up
            };
            let loading = lay.load.is_some_and(|i| ins[i]);
            let m = mask(bits);
            let counts = funcs.up || funcs.down;
            let co = counts && en && !loading && ((up && state == m) || (!up && state == 0));
            out.push(co);
            out
        }
    }
}

fn eval_tech(c: &TechCell, ins: &[bool], state: u64) -> Vec<bool> {
    match &c.function {
        CellFunction::Gate(f, n) => vec![f.eval(word(ins), *n)],
        CellFunction::Table(tt) => vec![tt.eval(word(ins) as u32)],
        CellFunction::Mux { selects } => {
            let data = 1usize << selects;
            let sel = word(&ins[data..data + *selects as usize]) as usize;
            vec![ins[sel]]
        }
        CellFunction::Dff { .. } | CellFunction::MuxDff { .. } => vec![state & 1 == 1],
        CellFunction::Latch { set, reset } => eval_generic(
            &GenericMacro::Latch {
                set: *set,
                reset: *reset,
            },
            ins,
            state,
        ),
        CellFunction::Const(b) => vec![*b],
        CellFunction::Adder { bits, cla } => eval_generic(
            &GenericMacro::Adder {
                bits: *bits,
                cla: *cla,
            },
            ins,
            state,
        ),
        CellFunction::Decoder { inputs } => {
            eval_generic(&GenericMacro::Decoder { inputs: *inputs }, ins, state)
        }
        CellFunction::Comparator { bits } => {
            eval_generic(&GenericMacro::Comparator { bits: *bits }, ins, state)
        }
        CellFunction::Counter { bits } => {
            eval_generic(&GenericMacro::Counter { bits: *bits }, ins, state)
        }
    }
}

/// Pin-layout bookkeeping for the microarchitectural counter.
struct CounterLayout {
    load: Option<usize>,
    up: Option<usize>,
    set: Option<usize>,
    rst: Option<usize>,
    en: Option<usize>,
    d_base: Option<usize>,
}

fn counter_layout(
    bits: u8,
    funcs: crate::kind::CounterFunctions,
    ctrl: crate::kind::ControlSet,
) -> CounterLayout {
    let mut idx = 0usize;
    let d_base = funcs.load.then_some(0);
    if funcs.load {
        idx += bits as usize;
    }
    let load = funcs.load.then(|| {
        let i = idx;
        idx += 1;
        i
    });
    let up = (funcs.up && funcs.down).then(|| {
        let i = idx;
        idx += 1;
        i
    });
    let set = ctrl.set.then(|| {
        let i = idx;
        idx += 1;
        i
    });
    let rst = ctrl.reset.then(|| {
        let i = idx;
        idx += 1;
        i
    });
    let en = ctrl.enable.then(|| {
        let i = idx;
        idx += 1;
        i
    });
    // CLK follows but is not needed by the cycle-based model.
    CounterLayout {
        load,
        up,
        set,
        rst,
        en,
        d_base,
    }
}

/// Computes the post-clock-edge state of a sequential component.
pub fn next_state(kind: &ComponentKind, ins: &[bool], state: u64) -> u64 {
    match kind {
        ComponentKind::Generic(GenericMacro::Dff { set, reset, enable }) => {
            // ins: D, CLK, [SET], [RST], [EN]
            let mut idx = 2;
            let s = *set && {
                let v = ins[idx];
                idx += 1;
                v
            };
            let r = *reset && {
                let v = ins[idx];
                idx += 1;
                v
            };
            let e = !*enable || ins[idx];
            if s {
                1
            } else if r {
                0
            } else if e {
                u64::from(ins[0])
            } else {
                state
            }
        }
        ComponentKind::Generic(GenericMacro::Latch { set, reset }) => {
            let q = eval_generic(
                &GenericMacro::Latch {
                    set: *set,
                    reset: *reset,
                },
                ins,
                state,
            );
            u64::from(q[0])
        }
        ComponentKind::Generic(GenericMacro::Counter { bits }) => {
            // ins: D0..D{b-1}, LOAD, UP, EN, RST, CLK
            let b = *bits as usize;
            let d = word(&ins[..b]);
            let load = ins[b];
            let up = ins[b + 1];
            let en = ins[b + 2];
            let rst = ins[b + 3];
            let m = mask(*bits);
            if rst {
                0
            } else if load {
                d
            } else if en {
                if up {
                    (state + 1) & m
                } else {
                    state.wrapping_sub(1) & m
                }
            } else {
                state
            }
        }
        ComponentKind::Micro(MicroComponent::Register {
            bits, funcs, ctrl, ..
        }) => {
            // pins: [D bits] [SIL] [SIR] [F sel] [SET] [RST] [EN] CLK
            let b = *bits as usize;
            let mut idx = 0usize;
            let d = if funcs.load {
                let v = word(&ins[..b]);
                idx += b;
                Some(v)
            } else {
                None
            };
            let sil = funcs.shift_left.then(|| {
                let v = ins[idx];
                idx += 1;
                v
            });
            let sir = funcs.shift_right.then(|| {
                let v = ins[idx];
                idx += 1;
                v
            });
            let nsel = if funcs.source_count() > 1 {
                funcs.select_pins() as usize
            } else {
                0
            };
            let sel = word(&ins[idx..idx + nsel]) as usize;
            idx += nsel;
            let s = ctrl.set && {
                let v = ins[idx];
                idx += 1;
                v
            };
            let r = ctrl.reset && {
                let v = ins[idx];
                idx += 1;
                v
            };
            let e = !ctrl.enable || ins[idx];
            let m = mask(*bits);
            if s {
                return m;
            }
            if r {
                return 0;
            }
            if !e {
                return state;
            }
            // Source order: hold, load, shift-left, shift-right (enabled subset).
            let mut sources: Vec<u64> = vec![state];
            if let Some(dv) = d {
                sources.push(dv);
            }
            if let Some(si) = sil {
                sources.push(((state << 1) | u64::from(si)) & m);
            }
            if let Some(si) = sir {
                sources.push((state >> 1) | (u64::from(si) << (bits - 1)));
            }
            // Out-of-range selects hold: the compiled designs pad unused
            // multiplexor inputs with the hold value.
            sources.get(sel).copied().unwrap_or(sources[0])
        }
        ComponentKind::Micro(MicroComponent::Counter { bits, funcs, ctrl }) => {
            let lay = counter_layout(*bits, *funcs, *ctrl);
            let m = mask(*bits);
            if lay.set.is_some_and(|i| ins[i]) {
                return m;
            }
            if lay.rst.is_some_and(|i| ins[i]) {
                return 0;
            }
            if !lay.en.is_none_or(|i| ins[i]) {
                return state;
            }
            if lay.load.is_some_and(|i| ins[i]) {
                let base = lay.d_base.expect("load implies data bus");
                return word(&ins[base..base + *bits as usize]);
            }
            let up = if funcs.up && funcs.down {
                ins[lay.up.expect("up pin present")]
            } else {
                funcs.up
            };
            if !funcs.up && !funcs.down {
                return state;
            }
            if up {
                (state + 1) & m
            } else {
                state.wrapping_sub(1) & m
            }
        }
        ComponentKind::Tech(c) => match &c.function {
            CellFunction::Dff { set, reset, enable } => next_state(
                &ComponentKind::Generic(GenericMacro::Dff {
                    set: *set,
                    reset: *reset,
                    enable: *enable,
                }),
                ins,
                state,
            ),
            CellFunction::MuxDff { selects } => {
                let data = 1usize << *selects;
                let sel = word(&ins[data..data + *selects as usize]) as usize;
                u64::from(ins[sel])
            }
            CellFunction::Latch { set, reset } => {
                let q = eval_generic(
                    &GenericMacro::Latch {
                        set: *set,
                        reset: *reset,
                    },
                    ins,
                    state,
                );
                u64::from(q[0])
            }
            CellFunction::Counter { bits } => next_state(
                &ComponentKind::Generic(GenericMacro::Counter { bits: *bits }),
                ins,
                state,
            ),
            _ => state,
        },
        _ => state,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::{
        ArithOps, CarryMode, CmpOp, ControlSet, CounterFunctions, GateFn, RegFunctions, Trigger,
    };

    #[test]
    fn adder_generic_eval() {
        let kind = ComponentKind::Generic(GenericMacro::Adder {
            bits: 4,
            cla: false,
        });
        // A=5, B=9, CIN=1 -> 15, COUT=0
        let mut ins = vec![true, false, true, false]; // A=5
        ins.extend([true, false, false, true]); // B=9
        ins.push(true); // CIN
        let out = eval_component(&kind, &ins, 0);
        assert_eq!(word(&out[..4]), 15);
        assert!(!out[4]);
        // A=15, B=1, CIN=0 -> 0, COUT=1
        let mut ins = vec![true; 4];
        ins.extend([true, false, false, false]);
        ins.push(false);
        let out = eval_component(&kind, &ins, 0);
        assert_eq!(word(&out[..4]), 0);
        assert!(out[4]);
    }

    #[test]
    fn micro_mux_selects_word() {
        let kind = ComponentKind::Micro(MicroComponent::Multiplexor {
            bits: 2,
            inputs: 2,
            enable: false,
        });
        // D0 = 01, D1 = 10, S=1 -> Y = 10
        let ins = vec![true, false, false, true, true];
        let out = eval_component(&kind, &ins, 0);
        assert_eq!(out, vec![false, true]);
    }

    #[test]
    fn micro_arith_sub() {
        let kind = ComponentKind::Micro(MicroComponent::ArithmeticUnit {
            bits: 4,
            ops: ArithOps::ADD_SUB,
            mode: CarryMode::Ripple,
        });
        // A=9, B=3, OP=1 (sub), CIN=1 -> 6
        let mut ins = vec![true, false, false, true]; // A=9
        ins.extend([true, true, false, false]); // B=3
        ins.push(true); // OP=sub
        ins.push(true); // CIN=1 completes two's complement
        let out = eval_component(&kind, &ins, 0);
        assert_eq!(word(&out[..4]), 6);
    }

    #[test]
    fn micro_comparator() {
        let kind = ComponentKind::Micro(MicroComponent::Comparator {
            bits: 3,
            function: CmpOp::Lt,
        });
        let mut ins = vec![false, true, false]; // A=2
        ins.extend([true, false, true]); // B=5
        assert_eq!(eval_component(&kind, &ins, 0), vec![true]);
    }

    #[test]
    fn register_full_cycle() {
        let mut nl = Netlist::new("reg");
        let kind = ComponentKind::Micro(MicroComponent::Register {
            bits: 2,
            trigger: Trigger::EdgeTriggered,
            funcs: RegFunctions::LOAD,
            ctrl: ControlSet::RESET,
        });
        let r = nl.add_component("r", kind);
        let d0 = nl.add_net("d0");
        let d1 = nl.add_net("d1");
        let f0 = nl.add_net("f0");
        let rst = nl.add_net("rst");
        let clk = nl.add_net("clk");
        let q0 = nl.add_net("q0");
        let q1 = nl.add_net("q1");
        for (p, n) in [
            ("D0", d0),
            ("D1", d1),
            ("F0", f0),
            ("RST", rst),
            ("CLK", clk),
            ("Q0", q0),
            ("Q1", q1),
        ] {
            nl.connect_named(r, p, n).unwrap();
        }
        for (n, d) in [
            (d0, "d0"),
            (d1, "d1"),
            (f0, "f0"),
            (rst, "rst"),
            (clk, "clk"),
        ] {
            nl.add_port(d, PinDir::In, n);
        }
        nl.add_port("q0", PinDir::Out, q0);
        nl.add_port("q1", PinDir::Out, q1);

        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input("d0", true).unwrap();
        sim.set_input("d1", true).unwrap();
        sim.set_input("f0", true).unwrap(); // select load
        sim.step();
        assert!(sim.output("q0").unwrap());
        assert!(sim.output("q1").unwrap());
        // Hold (f0 = 0)
        sim.set_input("d0", false).unwrap();
        sim.set_input("f0", false).unwrap();
        sim.step();
        assert!(sim.output("q0").unwrap());
        // Reset dominates
        sim.set_input("rst", true).unwrap();
        sim.step();
        assert!(!sim.output("q0").unwrap());
        assert!(!sim.output("q1").unwrap());
    }

    #[test]
    fn counter_counts_up_with_carry() {
        let kind = ComponentKind::Micro(MicroComponent::Counter {
            bits: 2,
            funcs: CounterFunctions::UP,
            ctrl: ControlSet::NONE,
        });
        // pins: CLK, Q0, Q1, CO — only CLK input.
        let ins = vec![false]; // CLK (unused by model)
        assert_eq!(next_state(&kind, &ins, 0), 1);
        assert_eq!(next_state(&kind, &ins, 3), 0);
        let out = eval_component(&kind, &ins, 3);
        assert_eq!(out, vec![true, true, true]); // Q=11, CO at terminal count
    }

    #[test]
    fn dff_with_enable_holds() {
        let kind = ComponentKind::Generic(GenericMacro::Dff {
            set: false,
            reset: false,
            enable: true,
        });
        // ins: D, CLK, EN
        assert_eq!(next_state(&kind, &[true, false, false], 0), 0);
        assert_eq!(next_state(&kind, &[true, false, true], 0), 1);
    }

    #[test]
    fn gate_chain_settles() {
        let mut nl = Netlist::new("chain");
        let a = nl.add_net("a");
        let m = nl.add_net("m");
        let y = nl.add_net("y");
        let g1 = nl.add_component(
            "g1",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)),
        );
        let g2 = nl.add_component(
            "g2",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)),
        );
        nl.connect_named(g1, "A0", a).unwrap();
        nl.connect_named(g1, "Y", m).unwrap();
        nl.connect_named(g2, "A0", m).unwrap();
        nl.connect_named(g2, "Y", y).unwrap();
        nl.add_port("a", PinDir::In, a);
        nl.add_port("y", PinDir::Out, y);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input("a", true).unwrap();
        sim.settle();
        assert!(sim.output("y").unwrap());
    }

    #[test]
    fn logic_unit_bitwise() {
        let kind = ComponentKind::Micro(MicroComponent::LogicUnit {
            function: GateFn::Xor,
            inputs: 2,
            bits: 3,
        });
        // A0 = 0b101, A1 = 0b011 -> Y = 0b110
        let ins = vec![true, false, true, true, true, false];
        let out = eval_component(&kind, &ins, 0);
        assert_eq!(word(&out), 0b110);
    }
}
