//! Structural validation — the data behind the paper's *electric critic*
//! ("rules that spot and correct electrical errors in the circuit …
//! very much like an electronic rule checker", §6.4).

use crate::kind::PinDir;
use crate::netlist::{ComponentKind, Netlist};
use crate::{ComponentId, NetId};
use std::fmt;

/// One structural/electrical problem found in a netlist.
#[derive(Clone, PartialEq, Debug)]
pub enum Violation {
    /// A net with more than one driving output pin.
    MultipleDrivers {
        /// The offending net.
        net: NetId,
        /// Number of drivers found.
        drivers: usize,
    },
    /// An input pin (or output port) on a net with no driver.
    UndrivenNet {
        /// The offending net.
        net: NetId,
    },
    /// A component input pin left unconnected.
    UnconnectedInput {
        /// The component.
        component: ComponentId,
        /// Pin index.
        pin: u16,
    },
    /// A net whose fanout exceeds the driving cell's `max_fanout`.
    FanoutExceeded {
        /// The offending net.
        net: NetId,
        /// Actual fanout.
        fanout: usize,
        /// The driving cell's limit.
        limit: u32,
    },
    /// An output pin driving nothing (dead logic).
    DanglingOutput {
        /// The component.
        component: ComponentId,
        /// Pin index.
        pin: u16,
    },
}

impl Violation {
    /// Whether this violation means the netlist is structurally corrupt
    /// — logic function undefined — rather than merely suboptimal or
    /// repairable. Fault-tolerant flow execution treats fatal
    /// violations as `DesignCorrupt`/`ValidationFailed` errors;
    /// non-fatal ones (fanout overruns the electric critic repairs,
    /// benign dangling outputs, unconnected inputs in mid-compilation
    /// hierarchy) stay warnings.
    pub fn is_fatal(&self) -> bool {
        matches!(
            self,
            Violation::MultipleDrivers { .. } | Violation::UndrivenNet { .. }
        )
    }
}

/// The fatal subset of [`validate`] — the corruption test the flow's
/// per-pass validation checkpoints and batch pre-flight use.
pub fn fatal_violations(nl: &Netlist) -> Vec<Violation> {
    validate(nl, false)
        .into_iter()
        .filter(Violation::is_fatal)
        .collect()
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::MultipleDrivers { net, drivers } => {
                write!(f, "net {net:?} has {drivers} drivers")
            }
            Violation::UndrivenNet { net } => write!(f, "net {net:?} has loads but no driver"),
            Violation::UnconnectedInput { component, pin } => {
                write!(f, "input pin {pin} of {component:?} unconnected")
            }
            Violation::FanoutExceeded { net, fanout, limit } => {
                write!(f, "net {net:?} fanout {fanout} exceeds limit {limit}")
            }
            Violation::DanglingOutput { component, pin } => {
                write!(f, "output pin {pin} of {component:?} drives nothing")
            }
        }
    }
}

/// Checks a netlist for structural and electrical problems.
///
/// `check_fanout` additionally compares each net's fanout against the
/// driving technology cell's `max_fanout` (meaningful only on mapped
/// netlists).
pub fn validate(nl: &Netlist, check_fanout: bool) -> Vec<Violation> {
    let mut out = Vec::new();

    for net in nl.net_ids() {
        let n = nl.net(net).expect("live net");
        let drivers: Vec<_> = n
            .connections
            .iter()
            .filter(|p| {
                nl.component(p.component)
                    .ok()
                    .and_then(|c| c.pins.get(p.pin as usize))
                    .is_some_and(|pin| pin.dir == PinDir::Out)
            })
            .collect();
        let port_driven = nl.net_is_port_driven(net);
        let total_drivers = drivers.len() + usize::from(port_driven);
        if total_drivers > 1 {
            out.push(Violation::MultipleDrivers {
                net,
                drivers: total_drivers,
            });
        }
        let load_count = nl.fanout(net);
        if total_drivers == 0 && load_count > 0 {
            out.push(Violation::UndrivenNet { net });
        }
        if check_fanout && total_drivers == 1 {
            if let Some(drv) = drivers.first() {
                if let Ok(comp) = nl.component(drv.component) {
                    if let ComponentKind::Tech(cell) = &comp.kind {
                        if load_count as u32 > cell.max_fanout {
                            out.push(Violation::FanoutExceeded {
                                net,
                                fanout: load_count,
                                limit: cell.max_fanout,
                            });
                        }
                    }
                }
            }
        }
    }

    for id in nl.component_ids() {
        let comp = nl.component(id).expect("live id");
        for (i, pin) in comp.pins.iter().enumerate() {
            match pin.dir {
                PinDir::In if pin.net.is_none() => {
                    out.push(Violation::UnconnectedInput {
                        component: id,
                        pin: i as u16,
                    });
                }
                PinDir::Out => {
                    let dangling = match pin.net {
                        None => true,
                        Some(net) => nl.fanout(net) == 0,
                    };
                    if dangling {
                        out.push(Violation::DanglingOutput {
                            component: id,
                            pin: i as u16,
                        });
                    }
                }
                _ => {}
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::{GateFn, GenericMacro};
    use crate::netlist::ComponentKind;

    #[test]
    fn clean_netlist_passes() {
        let mut nl = Netlist::new("ok");
        let a = nl.add_net("a");
        let y = nl.add_net("y");
        let g = nl.add_component(
            "g",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)),
        );
        nl.connect_named(g, "A0", a).unwrap();
        nl.connect_named(g, "Y", y).unwrap();
        nl.add_port("a", PinDir::In, a);
        nl.add_port("y", PinDir::Out, y);
        assert!(validate(&nl, true).is_empty());
    }

    #[test]
    fn detects_multiple_drivers() {
        let mut nl = Netlist::new("bad");
        let a = nl.add_net("a");
        let y = nl.add_net("y");
        let g1 = nl.add_component(
            "g1",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)),
        );
        let g2 = nl.add_component(
            "g2",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)),
        );
        nl.connect_named(g1, "A0", a).unwrap();
        nl.connect_named(g2, "A0", a).unwrap();
        nl.connect_named(g1, "Y", y).unwrap();
        nl.connect_named(g2, "Y", y).unwrap();
        nl.add_port("a", PinDir::In, a);
        nl.add_port("y", PinDir::Out, y);
        let v = validate(&nl, false);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::MultipleDrivers { drivers: 2, .. })));
    }

    #[test]
    fn detects_undriven_and_unconnected() {
        let mut nl = Netlist::new("bad");
        let a = nl.add_net("a"); // no driver
        let y = nl.add_net("y");
        let g = nl.add_component(
            "g",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::And, 2)),
        );
        nl.connect_named(g, "A0", a).unwrap();
        // A1 left unconnected
        nl.connect_named(g, "Y", y).unwrap();
        nl.add_port("y", PinDir::Out, y);
        let v = validate(&nl, false);
        assert!(v.iter().any(|x| matches!(x, Violation::UndrivenNet { .. })));
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::UnconnectedInput { .. })));
    }

    #[test]
    fn detects_dangling_output() {
        let mut nl = Netlist::new("bad");
        let a = nl.add_net("a");
        let g = nl.add_component(
            "g",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)),
        );
        nl.connect_named(g, "A0", a).unwrap();
        nl.add_port("a", PinDir::In, a);
        let v = validate(&nl, false);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::DanglingOutput { .. })));
    }
}
