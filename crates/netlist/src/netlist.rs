//! The netlist graph: components with pins, nets, and top-level ports.

use crate::kind::{GenericMacro, MicroComponent, PinDir, PinSpec, TechCell};
use crate::{ComponentId, NetId, PinRef};
use std::fmt;

/// What a component is.
#[derive(Clone, PartialEq, Debug)]
pub enum ComponentKind {
    /// A generic library macro (Fig. 13).
    Generic(GenericMacro),
    /// A parameterized microarchitecture component (Fig. 12).
    Micro(MicroComponent),
    /// A technology-specific cell.
    Tech(TechCell),
    /// An instance of a named design in a [`crate::DesignDb`].
    Instance {
        /// Name of the instantiated design.
        design: String,
        /// Port layout copied from the design at instantiation time.
        ports: Vec<PinSpec>,
    },
}

impl ComponentKind {
    /// Pin layout of the component.
    pub fn pin_specs(&self) -> Vec<PinSpec> {
        match self {
            ComponentKind::Generic(m) => m.pin_specs(),
            ComponentKind::Micro(m) => m.pin_specs(),
            ComponentKind::Tech(c) => c.pin_specs(),
            ComponentKind::Instance { ports, .. } => ports.clone(),
        }
    }

    /// Whether the component holds state across clock edges.
    pub fn is_sequential(&self) -> bool {
        match self {
            ComponentKind::Generic(m) => m.is_sequential(),
            ComponentKind::Micro(m) => m.is_sequential(),
            ComponentKind::Tech(c) => c.function.is_sequential(),
            // Conservative: treat unexpanded instances as sequential
            // boundaries so analyses do not look through them.
            ComponentKind::Instance { .. } => true,
        }
    }

    /// Short label for display.
    pub fn label(&self) -> String {
        match self {
            ComponentKind::Generic(m) => m.catalog_name(),
            ComponentKind::Micro(m) => m.describe(),
            ComponentKind::Tech(c) => c.name.clone(),
            ComponentKind::Instance { design, .. } => format!("@{design}"),
        }
    }
}

/// One pin of a placed component.
#[derive(Clone, PartialEq, Debug)]
pub struct Pin {
    /// Pin name (from the kind's pin spec).
    pub name: String,
    /// Direction.
    pub dir: PinDir,
    /// Net the pin is attached to, if any.
    pub net: Option<NetId>,
}

/// A placed component.
#[derive(Clone, PartialEq, Debug)]
pub struct Component {
    /// Instance name (unique within the netlist by convention, not
    /// enforced).
    pub name: String,
    /// What the component is.
    pub kind: ComponentKind,
    /// Pins, in the order given by the kind's pin specs.
    pub pins: Vec<Pin>,
}

impl Component {
    fn new(name: String, kind: ComponentKind) -> Self {
        let pins = kind
            .pin_specs()
            .into_iter()
            .map(|s| Pin {
                name: s.name,
                dir: s.dir,
                net: None,
            })
            .collect();
        Self { name, kind, pins }
    }

    /// Index of the pin called `name`.
    pub fn pin_index(&self, name: &str) -> Option<u16> {
        self.pins
            .iter()
            .position(|p| p.name == name)
            .map(|i| i as u16)
    }

    /// Indices of all input pins.
    pub fn input_pins(&self) -> impl Iterator<Item = u16> + '_ {
        self.pins
            .iter()
            .enumerate()
            .filter(|(_, p)| p.dir == PinDir::In)
            .map(|(i, _)| i as u16)
    }

    /// Indices of all output pins.
    pub fn output_pins(&self) -> impl Iterator<Item = u16> + '_ {
        self.pins
            .iter()
            .enumerate()
            .filter(|(_, p)| p.dir == PinDir::Out)
            .map(|(i, _)| i as u16)
    }
}

/// A net (electrical node).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Net {
    /// Net name.
    pub name: String,
    /// Attached pins (drivers and loads).
    pub connections: Vec<PinRef>,
}

/// A top-level port of the design.
#[derive(Clone, PartialEq, Debug)]
pub struct Port {
    /// Port name.
    pub name: String,
    /// Direction, from outside the design: `In` ports drive their net.
    pub dir: PinDir,
    /// The net the port is bound to.
    pub net: NetId,
}

/// Errors from netlist operations.
#[derive(Clone, PartialEq, Debug)]
pub enum NetlistError {
    /// A referenced component does not exist (or was removed).
    NoSuchComponent(ComponentId),
    /// A referenced net does not exist (or was removed).
    NoSuchNet(NetId),
    /// Pin index out of range for the component.
    NoSuchPin(PinRef),
    /// The pin is already connected to a net.
    PinAlreadyConnected(PinRef),
    /// The pin is not connected to a net.
    PinNotConnected(PinRef),
    /// Removing a net that still has connections or ports.
    NetInUse(NetId),
    /// No port by that name.
    NoSuchPort(String),
    /// The combinational part of the netlist has a cycle.
    CombinationalCycle,
    /// The operation requires a flat netlist but an instance was found.
    HierarchyPresent(ComponentId),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::NoSuchComponent(c) => write!(f, "no such component {c:?}"),
            NetlistError::NoSuchNet(n) => write!(f, "no such net {n:?}"),
            NetlistError::NoSuchPin(p) => write!(f, "no such pin {p:?}"),
            NetlistError::PinAlreadyConnected(p) => write!(f, "pin {p:?} already connected"),
            NetlistError::PinNotConnected(p) => write!(f, "pin {p:?} not connected"),
            NetlistError::NetInUse(n) => write!(f, "net {n:?} still has connections"),
            NetlistError::NoSuchPort(s) => write!(f, "no such port {s}"),
            NetlistError::CombinationalCycle => write!(f, "combinational cycle detected"),
            NetlistError::HierarchyPresent(c) => {
                write!(f, "unexpanded design instance {c:?} present")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

/// The netlist: a flat (or hierarchical, via [`ComponentKind::Instance`])
/// graph of components and nets with named top-level ports.
///
/// # Examples
///
/// ```
/// use milo_netlist::{Netlist, ComponentKind, GenericMacro, GateFn, PinDir};
///
/// let mut nl = Netlist::new("demo");
/// let a = nl.add_net("a");
/// let y = nl.add_net("y");
/// let inv = nl.add_component("u1", ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)));
/// nl.connect_named(inv, "A0", a)?;
/// nl.connect_named(inv, "Y", y)?;
/// nl.add_port("a", PinDir::In, a);
/// nl.add_port("y", PinDir::Out, y);
/// assert_eq!(nl.component_count(), 1);
/// # Ok::<(), milo_netlist::NetlistError>(())
/// ```
#[derive(Clone, Default)]
pub struct Netlist {
    /// Design name.
    pub name: String,
    components: Vec<Option<Component>>,
    nets: Vec<Option<Net>>,
    ports: Vec<Port>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            components: Vec::new(),
            nets: Vec::new(),
            ports: Vec::new(),
        }
    }

    /// Adds a net and returns its id.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        self.nets.push(Some(Net {
            name: name.into(),
            connections: Vec::new(),
        }));
        NetId(self.nets.len() as u32 - 1)
    }

    /// Adds a component (all pins unconnected) and returns its id.
    pub fn add_component(&mut self, name: impl Into<String>, kind: ComponentKind) -> ComponentId {
        self.components
            .push(Some(Component::new(name.into(), kind)));
        ComponentId(self.components.len() as u32 - 1)
    }

    /// Declares a top-level port bound to `net`.
    pub fn add_port(&mut self, name: impl Into<String>, dir: PinDir, net: NetId) {
        self.ports.push(Port {
            name: name.into(),
            dir,
            net,
        });
    }

    /// The component with the given id.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NoSuchComponent`] if absent.
    pub fn component(&self, id: ComponentId) -> Result<&Component, NetlistError> {
        self.components
            .get(id.index())
            .and_then(Option::as_ref)
            .ok_or(NetlistError::NoSuchComponent(id))
    }

    /// Mutable access to a component.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NoSuchComponent`] if absent.
    pub fn component_mut(&mut self, id: ComponentId) -> Result<&mut Component, NetlistError> {
        self.components
            .get_mut(id.index())
            .and_then(Option::as_mut)
            .ok_or(NetlistError::NoSuchComponent(id))
    }

    /// The net with the given id.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NoSuchNet`] if absent.
    pub fn net(&self, id: NetId) -> Result<&Net, NetlistError> {
        self.nets
            .get(id.index())
            .and_then(Option::as_ref)
            .ok_or(NetlistError::NoSuchNet(id))
    }

    /// Iterates live component ids.
    pub fn component_ids(&self) -> impl Iterator<Item = ComponentId> + '_ {
        self.components
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_some())
            .map(|(i, _)| ComponentId(i as u32))
    }

    /// Iterates live net ids.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> + '_ {
        self.nets
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_some())
            .map(|(i, _)| NetId(i as u32))
    }

    /// Number of live components.
    pub fn component_count(&self) -> usize {
        self.components.iter().filter(|c| c.is_some()).count()
    }

    /// Number of live nets.
    pub fn net_count(&self) -> usize {
        self.nets.iter().filter(|n| n.is_some()).count()
    }

    /// Arena capacity of the component store: every live
    /// [`ComponentId::index`] is below this. Lets analyses use dense
    /// id-indexed vectors instead of hash maps.
    pub fn component_slot_count(&self) -> usize {
        self.components.len()
    }

    /// Arena capacity of the net store: every live [`NetId::index`] is
    /// below this.
    pub fn net_slot_count(&self) -> usize {
        self.nets.len()
    }

    /// Top-level ports.
    pub fn ports(&self) -> &[Port] {
        &self.ports
    }

    /// Finds a port by name.
    pub fn port(&self, name: &str) -> Option<&Port> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// Connects a pin to a net.
    ///
    /// # Errors
    ///
    /// Fails if the pin/net does not exist or the pin is already connected.
    pub fn connect(&mut self, pin: PinRef, net: NetId) -> Result<(), NetlistError> {
        self.net(net)?;
        let comp = self.component_mut(pin.component)?;
        let p = comp
            .pins
            .get_mut(pin.pin as usize)
            .ok_or(NetlistError::NoSuchPin(pin))?;
        if p.net.is_some() {
            return Err(NetlistError::PinAlreadyConnected(pin));
        }
        p.net = Some(net);
        self.nets[net.index()]
            .as_mut()
            .expect("checked above")
            .connections
            .push(pin);
        Ok(())
    }

    /// Connects a pin (looked up by name) to a net.
    ///
    /// # Errors
    ///
    /// Fails like [`Netlist::connect`], or with [`NetlistError::NoSuchPin`]
    /// for an unknown pin name.
    pub fn connect_named(
        &mut self,
        component: ComponentId,
        pin_name: &str,
        net: NetId,
    ) -> Result<(), NetlistError> {
        let idx = self
            .component(component)?
            .pin_index(pin_name)
            .ok_or(NetlistError::NoSuchPin(PinRef::new(component, u16::MAX)))?;
        self.connect(PinRef::new(component, idx), net)
    }

    /// Disconnects a pin, returning the net it was attached to.
    ///
    /// # Errors
    ///
    /// Fails if the pin does not exist or is not connected.
    pub fn disconnect(&mut self, pin: PinRef) -> Result<NetId, NetlistError> {
        let comp = self.component_mut(pin.component)?;
        let p = comp
            .pins
            .get_mut(pin.pin as usize)
            .ok_or(NetlistError::NoSuchPin(pin))?;
        let net = p.net.take().ok_or(NetlistError::PinNotConnected(pin))?;
        let n = self.nets[net.index()]
            .as_mut()
            .expect("net exists while referenced");
        n.connections.retain(|c| *c != pin);
        Ok(net)
    }

    /// Removes a component, disconnecting all its pins first. Returns the
    /// removed component.
    ///
    /// # Errors
    ///
    /// Fails if the component does not exist.
    pub fn remove_component(&mut self, id: ComponentId) -> Result<Component, NetlistError> {
        let pin_count = self.component(id)?.pins.len();
        for pin in 0..pin_count {
            let r = PinRef::new(id, pin as u16);
            if self.component(id)?.pins[pin].net.is_some() {
                self.disconnect(r)?;
            }
        }
        Ok(self.components[id.index()].take().expect("checked above"))
    }

    /// Re-inserts a previously removed component under its old id
    /// (used by the undo log). The slot must be empty.
    ///
    /// # Panics
    ///
    /// Panics if the slot is occupied or out of range.
    pub fn restore_component(&mut self, id: ComponentId, component: Component) {
        let slot = &mut self.components[id.index()];
        assert!(slot.is_none(), "restore into occupied slot");
        *slot = Some(component);
    }

    /// Removes an unused net.
    ///
    /// # Errors
    ///
    /// Fails if the net does not exist, still has connections, or is bound
    /// to a port.
    pub fn remove_net(&mut self, id: NetId) -> Result<Net, NetlistError> {
        let net = self.net(id)?;
        if !net.connections.is_empty() || self.ports.iter().any(|p| p.net == id) {
            return Err(NetlistError::NetInUse(id));
        }
        Ok(self.nets[id.index()].take().expect("checked above"))
    }

    /// Re-inserts a previously removed net under its old id (undo log).
    ///
    /// # Panics
    ///
    /// Panics if the slot is occupied.
    pub fn restore_net(&mut self, id: NetId, net: Net) {
        let slot = &mut self.nets[id.index()];
        assert!(slot.is_none(), "restore into occupied slot");
        *slot = Some(net);
    }

    /// Frees the (already removed) component slot `id`, which must be the
    /// last arena slot. Used by undo logs so that future id allocation is
    /// deterministic after a rollback.
    ///
    /// # Panics
    ///
    /// Panics if the slot is occupied or not the last one.
    pub fn free_component_slot(&mut self, id: ComponentId) {
        assert_eq!(
            id.index() + 1,
            self.components.len(),
            "only the tail slot can be freed"
        );
        assert!(self.components[id.index()].is_none(), "slot still occupied");
        self.components.pop();
    }

    /// Frees the (already removed) net slot `id`, which must be the last
    /// arena slot. See [`Netlist::free_component_slot`].
    ///
    /// # Panics
    ///
    /// Panics if the slot is occupied or not the last one.
    pub fn free_net_slot(&mut self, id: NetId) {
        assert_eq!(
            id.index() + 1,
            self.nets.len(),
            "only the tail slot can be freed"
        );
        assert!(self.nets[id.index()].is_none(), "slot still occupied");
        self.nets.pop();
    }

    /// The output pin driving `net`, if any. Input *ports* also drive their
    /// nets but are not pins; see [`Netlist::net_is_port_driven`].
    pub fn driver(&self, net: NetId) -> Option<PinRef> {
        let n = self.nets.get(net.index())?.as_ref()?;
        n.connections.iter().copied().find(|p| {
            self.component(p.component)
                .ok()
                .and_then(|c| c.pins.get(p.pin as usize))
                .is_some_and(|pin| pin.dir == PinDir::Out)
        })
    }

    /// Whether an input port drives this net.
    pub fn net_is_port_driven(&self, net: NetId) -> bool {
        self.ports
            .iter()
            .any(|p| p.net == net && p.dir == PinDir::In)
    }

    /// The load pins of `net`, lazily — one definition of "load" (a
    /// connection whose pin is an input) backing [`Netlist::loads`],
    /// [`Netlist::load_count`], [`Netlist::first_load`], and
    /// [`Netlist::fanout`].
    fn load_pins(&self, net: NetId) -> impl Iterator<Item = PinRef> + '_ {
        self.nets
            .get(net.index())
            .and_then(Option::as_ref)
            .into_iter()
            .flat_map(|n| n.connections.iter().copied())
            .filter(|p| {
                self.component(p.component)
                    .ok()
                    .and_then(|c| c.pins.get(p.pin as usize))
                    .is_some_and(|pin| pin.dir == PinDir::In)
            })
    }

    /// The input pins loading `net`.
    pub fn loads(&self, net: NetId) -> Vec<PinRef> {
        self.load_pins(net).collect()
    }

    /// Number of input pins loading `net` — the port-free part of
    /// [`Netlist::fanout`], without allocating.
    pub fn load_count(&self, net: NetId) -> usize {
        self.load_pins(net).count()
    }

    /// The first input pin loading `net` (the head of
    /// [`Netlist::loads`]), without allocating.
    pub fn first_load(&self, net: NetId) -> Option<PinRef> {
        self.load_pins(net).next()
    }

    /// Whether any top-level port (either direction) binds `net`.
    pub fn net_is_port_bound(&self, net: NetId) -> bool {
        self.ports.iter().any(|p| p.net == net)
    }

    /// Fanout of a net: input pins plus output ports attached.
    pub fn fanout(&self, net: NetId) -> usize {
        self.load_count(net)
            + self
                .ports
                .iter()
                .filter(|p| p.net == net && p.dir == PinDir::Out)
                .count()
    }

    /// The net attached to a named pin of a component, if connected.
    pub fn pin_net(&self, component: ComponentId, pin_name: &str) -> Option<NetId> {
        let c = self.component(component).ok()?;
        let idx = c.pin_index(pin_name)?;
        c.pins[idx as usize].net
    }

    /// Topological order of the combinational components. Sequential
    /// components appear first (their outputs are sources); their inputs do
    /// not create dependency edges.
    ///
    /// # Errors
    ///
    /// [`NetlistError::CombinationalCycle`] if the combinational part is
    /// cyclic.
    pub fn topo_order(&self) -> Result<Vec<ComponentId>, NetlistError> {
        let ids: Vec<ComponentId> = self.component_ids().collect();
        // Dense id-indexed tables instead of hash maps: position of each
        // live component, and the driving pin of each net (one pass over
        // the connection lists, mirroring `driver`'s first-output-pin
        // choice).
        let mut pos = vec![usize::MAX; self.components.len()];
        for (i, id) in ids.iter().enumerate() {
            pos[id.index()] = i;
        }
        let mut drv: Vec<Option<PinRef>> = vec![None; self.nets.len()];
        for (ni, slot) in self.nets.iter().enumerate() {
            let Some(net) = slot else { continue };
            for p in &net.connections {
                let is_out = self
                    .components
                    .get(p.component.index())
                    .and_then(Option::as_ref)
                    .and_then(|c| c.pins.get(p.pin as usize))
                    .is_some_and(|pin| pin.dir == PinDir::Out);
                if is_out {
                    drv[ni] = Some(*p);
                    break;
                }
            }
        }
        let mut indegree = vec![0usize; ids.len()];
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); ids.len()];
        for (i, id) in ids.iter().enumerate() {
            let comp = self.component(*id)?;
            if comp.kind.is_sequential() {
                continue; // no incoming combinational edges
            }
            for pin_idx in comp.input_pins() {
                if let Some(net) = comp.pins[pin_idx as usize].net {
                    if let Some(d) = drv[net.index()] {
                        let j = pos[d.component.index()];
                        edges[j].push(i);
                        indegree[i] += 1;
                    }
                }
            }
        }
        let mut queue: Vec<usize> = (0..ids.len()).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(ids.len());
        while let Some(i) = queue.pop() {
            order.push(ids[i]);
            for &j in &edges[i] {
                indegree[j] -= 1;
                if indegree[j] == 0 {
                    queue.push(j);
                }
            }
        }
        if order.len() != ids.len() {
            return Err(NetlistError::CombinationalCycle);
        }
        Ok(order)
    }

    /// Whether the netlist contains unexpanded design instances.
    pub fn has_hierarchy(&self) -> bool {
        self.component_ids().any(|id| {
            matches!(
                self.component(id).map(|c| &c.kind),
                Ok(ComponentKind::Instance { .. })
            )
        })
    }

    /// Removes nets that have no connections and no port bindings.
    /// Returns how many were removed.
    pub fn sweep_dead_nets(&mut self) -> usize {
        let dead: Vec<NetId> = self
            .net_ids()
            .filter(|&n| {
                self.nets[n.index()]
                    .as_ref()
                    .is_some_and(|net| net.connections.is_empty())
                    && !self.ports.iter().any(|p| p.net == n)
            })
            .collect();
        for n in &dead {
            self.nets[n.index()] = None;
        }
        dead.len()
    }
}

/// The set of components and nets a transaction (or its undo) touched.
///
/// Produced by the rules engine's undo log and consumed by incremental
/// analyses (`milo-timing`'s incremental STA) to re-propagate only the
/// affected fan-out cone instead of re-analyzing the whole netlist.
/// Entries may reference components/nets that no longer exist (e.g. after
/// an undo removed them); consumers must tolerate dead ids.
#[derive(Clone, Debug, Default)]
pub struct TouchSet {
    /// Components added, removed, re-kinded, or re-pinned.
    pub components: Vec<ComponentId>,
    /// Nets added, removed, or whose connection list changed.
    pub nets: Vec<NetId>,
}

impl TouchSet {
    /// An empty touch set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a touched component.
    pub fn component(&mut self, id: ComponentId) {
        self.components.push(id);
    }

    /// Records a touched net.
    pub fn net(&mut self, id: NetId) {
        self.nets.push(id);
    }

    /// Merges another touch set into this one.
    pub fn merge(&mut self, other: &TouchSet) {
        self.components.extend_from_slice(&other.components);
        self.nets.extend_from_slice(&other.nets);
    }

    /// Whether nothing was touched.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty() && self.nets.is_empty()
    }
}

impl fmt::Debug for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Netlist {} ({} components, {} nets, {} ports)",
            self.name,
            self.component_count(),
            self.net_count(),
            self.ports.len()
        )?;
        for id in self.component_ids() {
            let c = self.component(id).expect("live id");
            write!(f, "  {id:?} {} [{}]:", c.name, c.kind.label())?;
            for p in &c.pins {
                match p.net {
                    Some(n) => write!(f, " {}={:?}", p.name, n)?,
                    None => write!(f, " {}=-", p.name)?,
                }
            }
            writeln!(f)?;
        }
        for p in &self.ports {
            writeln!(f, "  port {} {:?} -> {:?}", p.name, p.dir, p.net)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::GateFn;

    fn gate(nl: &mut Netlist, name: &str, f: GateFn, n: u8) -> ComponentId {
        nl.add_component(name, ComponentKind::Generic(GenericMacro::Gate(f, n)))
    }

    #[test]
    fn connect_and_query() {
        let mut nl = Netlist::new("t");
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        let y = nl.add_net("y");
        let g = gate(&mut nl, "g", GateFn::And, 2);
        nl.connect_named(g, "A0", a).unwrap();
        nl.connect_named(g, "A1", b).unwrap();
        nl.connect_named(g, "Y", y).unwrap();
        assert_eq!(nl.driver(y), Some(PinRef::new(g, 2)));
        assert_eq!(nl.loads(a).len(), 1);
        assert_eq!(nl.fanout(a), 1);
        assert_eq!(nl.pin_net(g, "Y"), Some(y));
    }

    #[test]
    fn double_connect_fails() {
        let mut nl = Netlist::new("t");
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        let g = gate(&mut nl, "g", GateFn::Inv, 1);
        nl.connect_named(g, "A0", a).unwrap();
        let err = nl.connect_named(g, "A0", b).unwrap_err();
        assert!(matches!(err, NetlistError::PinAlreadyConnected(_)));
    }

    #[test]
    fn remove_component_detaches_pins() {
        let mut nl = Netlist::new("t");
        let a = nl.add_net("a");
        let g = gate(&mut nl, "g", GateFn::Inv, 1);
        nl.connect_named(g, "A0", a).unwrap();
        let removed = nl.remove_component(g).unwrap();
        assert_eq!(removed.name, "g");
        assert!(nl.net(a).unwrap().connections.is_empty());
        assert!(nl.component(g).is_err());
    }

    #[test]
    fn restore_after_remove() {
        let mut nl = Netlist::new("t");
        let g = gate(&mut nl, "g", GateFn::Inv, 1);
        let removed = nl.remove_component(g).unwrap();
        nl.restore_component(g, removed);
        assert!(nl.component(g).is_ok());
    }

    #[test]
    fn remove_net_in_use_fails() {
        let mut nl = Netlist::new("t");
        let a = nl.add_net("a");
        let g = gate(&mut nl, "g", GateFn::Inv, 1);
        nl.connect_named(g, "A0", a).unwrap();
        assert!(matches!(nl.remove_net(a), Err(NetlistError::NetInUse(_))));
        nl.disconnect(PinRef::new(g, 0)).unwrap();
        assert!(nl.remove_net(a).is_ok());
    }

    #[test]
    fn topo_order_chain() {
        let mut nl = Netlist::new("t");
        let a = nl.add_net("a");
        let m = nl.add_net("m");
        let y = nl.add_net("y");
        let g1 = gate(&mut nl, "g1", GateFn::Inv, 1);
        let g2 = gate(&mut nl, "g2", GateFn::Inv, 1);
        nl.connect_named(g1, "A0", a).unwrap();
        nl.connect_named(g1, "Y", m).unwrap();
        nl.connect_named(g2, "A0", m).unwrap();
        nl.connect_named(g2, "Y", y).unwrap();
        let order = nl.topo_order().unwrap();
        let p1 = order.iter().position(|&c| c == g1).unwrap();
        let p2 = order.iter().position(|&c| c == g2).unwrap();
        assert!(p1 < p2);
    }

    #[test]
    fn topo_detects_cycle() {
        let mut nl = Netlist::new("t");
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        let g1 = gate(&mut nl, "g1", GateFn::Inv, 1);
        let g2 = gate(&mut nl, "g2", GateFn::Inv, 1);
        nl.connect_named(g1, "A0", a).unwrap();
        nl.connect_named(g1, "Y", b).unwrap();
        nl.connect_named(g2, "A0", b).unwrap();
        nl.connect_named(g2, "Y", a).unwrap();
        assert_eq!(
            nl.topo_order().unwrap_err(),
            NetlistError::CombinationalCycle
        );
    }

    #[test]
    fn sequential_breaks_cycle() {
        let mut nl = Netlist::new("t");
        let d = nl.add_net("d");
        let q = nl.add_net("q");
        let ff = nl.add_component(
            "ff",
            ComponentKind::Generic(GenericMacro::Dff {
                set: false,
                reset: false,
                enable: false,
            }),
        );
        let g = gate(&mut nl, "g", GateFn::Inv, 1);
        let clk = nl.add_net("clk");
        nl.connect_named(ff, "D", d).unwrap();
        nl.connect_named(ff, "CLK", clk).unwrap();
        nl.connect_named(ff, "Q", q).unwrap();
        nl.connect_named(g, "A0", q).unwrap();
        nl.connect_named(g, "Y", d).unwrap();
        assert!(nl.topo_order().is_ok());
    }

    #[test]
    fn sweep_dead_nets() {
        let mut nl = Netlist::new("t");
        let _a = nl.add_net("a");
        let b = nl.add_net("b");
        nl.add_port("b", PinDir::In, b);
        assert_eq!(nl.sweep_dead_nets(), 1);
        assert_eq!(nl.net_count(), 1);
    }
}
